//! Smart bandage: the paper's flagship application class (§1, §3.2, §5.2).
//!
//! A wearable patch samples a wound sensor once per second, de-noises the
//! stream with the IntAvg exponential filter, detects out-of-range values
//! with the Thresholding kernel, and must survive on a 3 V, 5 mAh flexible
//! battery. This example reproduces the §5.2 deployment arithmetic:
//! ~3.6 J/day for filter+threshold at one sample/second and roughly two
//! weeks of battery life with perfect power gating.
//!
//! ```sh
//! cargo run -p flexbench --example smart_bandage
//! ```

use flexasm::Target;
use flexicore::energy::{joules_per_day, BatteryModel, EnergyModel, EnergyReport};
use flexkernels::harness::measure;
use flexkernels::inputs::Sampler;
use flexkernels::{Kernel, STREAM_LEN};

fn main() {
    println!("smart bandage on a FlexiCore4 (12.5 kHz, 360 nJ/instruction)\n");
    let model = EnergyModel::flexicore4_measured();

    // measure the two kernels of the pipeline over sampled sensor streams
    let mut per_sample_uj = 0.0;
    let mut per_sample_ms = 0.0;
    for kernel in [Kernel::IntAvg, Kernel::Thresholding] {
        let cases = Sampler::new(kernel, 0xBA4D).draw_many(40);
        let stats = measure(kernel, Target::fc4(), &cases).expect("kernels verify");
        let per = STREAM_LEN as f64;
        let report = EnergyReport::from_counts(
            &model,
            (stats.mean_instructions / per) as u64,
            (stats.mean_cycles / per) as u64,
        );
        println!(
            "{:<14} {:>7.0} insns/sample  {:>6.2} ms  {:>6.2} µJ",
            kernel.name(),
            stats.mean_instructions / per,
            report.latency_ms,
            report.energy_uj
        );
        per_sample_uj += report.energy_uj;
        per_sample_ms += report.latency_ms;
    }

    println!("\npipeline per sensor sample: {per_sample_ms:.2} ms, {per_sample_uj:.2} µJ");
    assert!(
        per_sample_ms < 1_000.0,
        "one sample must finish before the next arrives"
    );

    // §5.2's deployment estimate
    let daily = joules_per_day(per_sample_uj, 1.0);
    let battery = BatteryModel::flexible_3v_5mah();
    let days = battery.lifetime_days(daily);
    println!("at one sample per second: {daily:.2} J/day (paper: ~3.6 J/day)");
    println!(
        "on a 3 V, 5 mAh flexible battery ({:.0} J): {days:.1} days of monitoring (paper: ~2 weeks)",
        battery.energy_j()
    );

    // what the paper's §6 cores would buy the bandage
    let revised = measure(
        Kernel::IntAvg,
        Target::xacc_revised(),
        &Sampler::new(Kernel::IntAvg, 0xBA4D).draw_many(40),
    )
    .expect("kernels verify");
    let base = measure(
        Kernel::IntAvg,
        Target::fc4(),
        &Sampler::new(Kernel::IntAvg, 0xBA4D).draw_many(40),
    )
    .expect("kernels verify");
    println!(
        "\nthe revised DSE ISA cuts IntAvg from {:.0} to {:.0} instructions per sample — \
         right shifts stop hurting (§6.1)",
        base.mean_instructions / STREAM_LEN as f64,
        revised.mean_instructions / STREAM_LEN as f64,
    );
}
