//! Quickstart: assemble a FlexiCore4 program, run it on the functional
//! simulator, and co-simulate it against the gate-level netlist.
//!
//! ```sh
//! cargo run -p flexbench --example quickstart
//! ```

use flexasm::{Assembler, Target};
use flexicore::io::{ConstInput, RecordingOutput};
use flexicore::sim::fc4::Fc4Core;
use flexrtl::cosim::cosim_fc4;

fn main() {
    // a tiny field program: read the input bus, add 3, emit, halt
    let source = "
        ; FlexiCore4 quickstart: OPORT = IPORT + 3
        load  r0
        addi  3
        store r1
        halt
    ";

    let assembler = Assembler::new(Target::fc4());
    let assembly = assembler.assemble(source).expect("program assembles");
    println!("assembled {} instructions:", assembly.static_instructions());
    print!("{}", assembly.listing_text());

    // run on the architectural simulator
    let mut core = Fc4Core::new(assembly.program().clone());
    let mut input = ConstInput::new(0x6);
    let mut output = RecordingOutput::new();
    let result = core
        .run(&mut input, &mut output, 1_000)
        .expect("program runs");
    println!(
        "\nISA simulation: halted after {} instructions, OPORT = {:#x}",
        result.instructions,
        output.last().expect("one output")
    );

    // prove the gate-level FlexiCore4 does exactly the same, cycle by cycle
    let netlist = flexrtl::build_fc4();
    println!(
        "gate-level FlexiCore4: {} cells, {} devices",
        netlist.cells().len(),
        flexgate::report::Report::of(&netlist).total.devices
    );
    let cosim = cosim_fc4(&netlist, assembly.program(), &mut ConstInput::new(0x6), 100);
    assert!(cosim.is_equivalent(), "{:?}", cosim.mismatches);
    println!(
        "co-simulation: RTL matched the ISA model on all {} cycles",
        cosim.cycles
    );
}
