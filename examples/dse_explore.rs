//! Run the design-space exploration of §6 and print the trade-off view.
//!
//! Evaluates the FlexiCore4 baseline and the six DSE cores over the full
//! benchmark suite, under both program-bus assumptions, and reports the
//! Pareto frontier on (area, code size).
//!
//! ```sh
//! cargo run --release -p flexbench --example dse_explore
//! ```

use flexdse::config::CoreConfig;
use flexdse::pareto::{figure12_points, pareto_frontier, summarize};
use flexdse::perf::evaluate;
use flexicore::uarch::BusWidth;

fn main() {
    println!("design-space exploration: accumulator vs load-store × SC/P/MC\n");

    let summary = summarize().expect("population evaluates");
    let base = &summary.population[0];
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>11} {:>11}",
        "config", "area", "fmax kHz", "power mW", "time (rel)", "energy(rel)"
    );
    for r in &summary.population {
        println!(
            "{:<10} {:>10.0} {:>10.1} {:>10.2} {:>11.2} {:>11.2}",
            if r.config.features.is_base() {
                "FC4 base".to_string()
            } else {
                r.config.label()
            },
            r.cost.area_nand2,
            r.cost.fmax_hz(4.5) / 1000.0,
            r.cost.static_power_mw(4.5),
            r.geomean_time_ms() / base.geomean_time_ms(),
            r.geomean_energy_uj() / base.geomean_energy_uj(),
        );
    }

    println!(
        "\nheadline: energy {:.2}..{:.2}x, area {:.2}..{:.2}x, best code {:.2}x, speedup up to {:.2}x",
        summary.energy_range.0,
        summary.energy_range.1,
        summary.area_range.0,
        summary.area_range.1,
        summary.best_code,
        summary.speedup_range.1,
    );

    // the §6.2 bus constraint: which cores survive an 8-bit program bus?
    println!("\nwith the fabricated 8-bit program bus:");
    for cfg in CoreConfig::dse_cores() {
        let r = evaluate(&cfg, BusWidth::BYTE).expect("evaluates");
        println!(
            "  {:<8} {}",
            cfg.label(),
            if r.feasible {
                format!(
                    "feasible, {:.2}x baseline energy",
                    r.geomean_energy_uj() / base.geomean_energy_uj()
                )
            } else {
                "infeasible (cannot fetch a 16-bit instruction per cycle)".to_string()
            }
        );
    }

    let points = figure12_points().expect("points compute");
    let frontier = pareto_frontier(&points);
    println!("\nPareto frontier on (area, code size):");
    for p in frontier {
        println!(
            "  {:<10} area {:.2}x, code {:.2}x",
            if (p.rel_area - 1.0).abs() < 1e-9 {
                "FC4 base".to_string()
            } else {
                p.config.label()
            },
            p.rel_area,
            p.rel_code
        );
    }
}
