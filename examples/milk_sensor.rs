//! "A flexible odor sensor on the package may need to determine if milk
//! has expired" (§3.2) — the paper's motivating classifier use case,
//! running the Decision Tree kernel on a FlexiCore4.
//!
//! Three gas-sensor channels feed the depth-4 decision tree; classes map
//! to freshness grades. The example also shows the field-reprogrammable
//! angle: the same (simulated) chip is reflashed from the thresholding
//! firmware to the classifier firmware at "deployment".
//!
//! ```sh
//! cargo run --release -p flexbench --example milk_sensor
//! ```

use flexasm::Target;
use flexicore::io::{RecordingOutput, ScriptedInput};
use flexicore::sim::fc4::Fc4Core;
use flexkernels::sources::DecisionTreeSpec;
use flexkernels::Kernel;

fn grade(class: u8) -> &'static str {
    match class {
        0..=5 => "fresh",
        6..=10 => "use soon",
        _ => "expired",
    }
}

fn main() {
    println!("milk freshness classifier on a FlexiCore4 (depth-4 tree, 3 gas channels)\n");

    // the chip ships with the thresholding firmware...
    let mut chip = Fc4Core::new(
        Kernel::Thresholding
            .assemble(Target::fc4())
            .expect("kernels assemble")
            .into_program(),
    );
    // ...and is reflashed in the field with the classifier
    let classifier = Kernel::DecisionTree
        .assemble(Target::fc4())
        .expect("kernels assemble");
    println!(
        "reflashed: {} instructions across {} MMU pages\n",
        classifier.static_instructions(),
        classifier.program().page_count()
    );
    chip.reprogram(classifier.into_program());

    // a day of simulated readings: [ammonia-ish, sulfide-ish, CO2-ish]
    let readings: [[u8; 3]; 5] = [
        [1, 0, 2], // morning, fridge closed
        [2, 1, 3],
        [3, 3, 4], // left on the counter…
        [5, 4, 6],
        [7, 6, 7], // definitely off
    ];

    println!(
        "{:<22} {:>6} {:>8} {:>10}",
        "reading [f0,f1,f2]", "class", "insns", "verdict"
    );
    for reading in readings {
        chip.reset();
        let mut input = ScriptedInput::new(reading.to_vec());
        let mut output = RecordingOutput::new();
        let result = chip
            .run(&mut input, &mut output, 10_000)
            .expect("classifier runs");
        assert!(result.halted());
        // outputs: MMU escape triple, then [class, 0]
        let class = output.values()[3];
        assert_eq!(class, DecisionTreeSpec::classify(reading), "oracle agrees");
        println!(
            "{:<22} {:>6} {:>8} {:>10}",
            format!("{reading:?}"),
            class,
            result.instructions,
            grade(class),
        );
    }

    println!("\nevery inference verified against the Rust oracle; each costs a few dozen");
    println!("instructions — a few milliseconds of a minutes-scale duty cycle (Table 1).");
}
