//! Fabricate and probe-test a virtual wafer of FlexiCores (§4).
//!
//! Prints the Figure 6-style error map, the Figure 7-style current map,
//! and the yield/variation statistics for one wafer at both test voltages.
//! Pass a different seed to fabricate a different wafer:
//!
//! ```sh
//! cargo run --release -p flexbench --example wafer_yield -- 7
//! ```

use flexfab::wafer_run::{CoreDesign, WaferExperiment};
use flexfab::wafermap;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(flexfab::calibration::seeds::YIELD);

    let exp = WaferExperiment::new(CoreDesign::FlexiCore4, seed);
    println!(
        "FlexiCore4 wafer (seed {seed:#x}): {} dies, {} in the inclusion zone\n",
        exp.layout().die_count(),
        exp.layout().inclusion_count()
    );

    for voltage in [4.5, 3.0] {
        let run = exp.run(voltage, 20_000).expect("wafer test failed");
        println!("--- test at {voltage} V ---");
        println!(
            "error map ('.' functional, ',' functional in edge zone, digits = error magnitude):"
        );
        print!("{}", wafermap::error_map(&run));
        let stats = run.current_stats();
        println!(
            "yield: {:.0}% full wafer, {:.0}% inclusion zone",
            run.yield_full() * 100.0,
            run.yield_inclusion() * 100.0
        );
        println!(
            "current draw (functional dies): mean {:.2} mA, range {:.2}..{:.2} mA, RSD {:.1}%\n",
            stats.mean_ma,
            stats.min_ma,
            stats.max_ma,
            stats.rsd * 100.0
        );
    }

    let run = exp.run(4.5, 5_000).expect("wafer test failed");
    println!("current-draw map at 4.5 V (darker = more current):");
    print!("{}", wafermap::current_map(&run));
    println!(
        "\nCSV for external plotting:\n{}",
        &wafermap::to_csv(&run)[..240]
    );
    println!("...");
}
