//! Property-based tests (proptest) over the core data structures and
//! invariants: instruction-set round-trips, ALU-vs-oracle equivalence,
//! gate-level arithmetic, MMU behaviour and simulator determinism.

use proptest::prelude::*;

use flexgate::netlist::Netlist;
use flexgate::sim::BatchSim;
use flexicore::io::{ConstInput, RecordingOutput};
use flexicore::isa::xacc::Cond;
use flexicore::isa::{fc4, fc8, xacc, xls, AluOp};
use flexicore::mmu::Mmu;
use flexicore::program::Program;
use flexicore::sim::fc4::Fc4Core;

// ---------------------------------------------------------------------------
// instruction encodings
// ---------------------------------------------------------------------------

fn arb_fc4_instruction() -> impl Strategy<Value = fc4::Instruction> {
    prop_oneof![
        (0u8..16).prop_map(|imm| fc4::Instruction::AddImm { imm }),
        (0u8..16).prop_map(|imm| fc4::Instruction::NandImm { imm }),
        (0u8..16).prop_map(|imm| fc4::Instruction::XorImm { imm }),
        (0u8..8).prop_map(|src| fc4::Instruction::AddMem { src }),
        (0u8..8).prop_map(|src| fc4::Instruction::NandMem { src }),
        (0u8..8).prop_map(|src| fc4::Instruction::XorMem { src }),
        (0u8..8).prop_map(|addr| fc4::Instruction::Load { addr }),
        (0u8..8).prop_map(|addr| fc4::Instruction::Store { addr }),
        (0u8..128).prop_map(|target| fc4::Instruction::Branch { target }),
    ]
}

fn arb_xacc_instruction() -> impl Strategy<Value = xacc::Instruction> {
    prop_oneof![
        (0u8..8).prop_map(|m| xacc::Instruction::Add { m }),
        (0u8..8).prop_map(|m| xacc::Instruction::Adc { m }),
        (0u8..8).prop_map(|m| xacc::Instruction::Sub { m }),
        (0u8..8).prop_map(|m| xacc::Instruction::Swb { m }),
        (0u8..8).prop_map(|m| xacc::Instruction::Nand { m }),
        (0u8..8).prop_map(|m| xacc::Instruction::Or { m }),
        (0u8..8).prop_map(|m| xacc::Instruction::Xor { m }),
        (0u8..8).prop_map(|m| xacc::Instruction::Xch { m }),
        (0u8..8).prop_map(|m| xacc::Instruction::Load { m }),
        (0u8..8).prop_map(|m| xacc::Instruction::Store { m }),
        (0u8..16).prop_map(|imm| xacc::Instruction::AddImm { imm }),
        (0u8..16).prop_map(|imm| xacc::Instruction::NandImm { imm }),
        (0u8..16).prop_map(|imm| xacc::Instruction::OrImm { imm }),
        (0u8..16).prop_map(|imm| xacc::Instruction::XorImm { imm }),
        (0u8..16).prop_map(|imm| xacc::Instruction::AdcImm { imm }),
        (0u8..8).prop_map(|amount| xacc::Instruction::AsrImm { amount }),
        (0u8..8).prop_map(|amount| xacc::Instruction::LsrImm { amount }),
        (0u8..4).prop_map(|m| xacc::Instruction::MulL { m }),
        (0u8..4).prop_map(|m| xacc::Instruction::MulH { m }),
        Just(xacc::Instruction::Neg),
        Just(xacc::Instruction::Ret),
        ((0u8..8), (0u8..128)).prop_map(|(c, target)| xacc::Instruction::Br {
            cond: Cond::from_bits(c),
            target,
        }),
        (0u8..128).prop_map(|target| xacc::Instruction::Call { target }),
    ]
}

fn arb_xls_instruction() -> impl Strategy<Value = xls::Instruction> {
    let op = prop_oneof![
        Just(xls::Op::Add),
        Just(xls::Op::Adc),
        Just(xls::Op::Sub),
        Just(xls::Op::Swb),
        Just(xls::Op::And),
        Just(xls::Op::Or),
        Just(xls::Op::Xor),
        Just(xls::Op::Nand),
        Just(xls::Op::Mov),
        Just(xls::Op::Neg),
        Just(xls::Op::Asr),
        Just(xls::Op::Lsr),
        Just(xls::Op::MulL),
        Just(xls::Op::MulH),
    ];
    prop_oneof![
        (
            op,
            0u8..8,
            prop_oneof![
                (0u8..8).prop_map(xls::Operand::Reg),
                (0u8..16).prop_map(xls::Operand::Imm),
            ]
        )
            .prop_map(|(op, rd, operand)| {
                // NEG is canonicalized to its operand-less form
                let operand = if op == xls::Op::Neg {
                    xls::Operand::Imm(0)
                } else {
                    operand
                };
                xls::Instruction::Alu { op, rd, operand }
            }),
        ((0u8..8), any::<u8>()).prop_map(|(c, target)| xls::Instruction::Br {
            cond: Cond::from_bits(c),
            target,
        }),
        any::<u8>().prop_map(|target| xls::Instruction::Call { target }),
        Just(xls::Instruction::Ret),
    ]
}

proptest! {
    #[test]
    fn fc4_encode_decode_roundtrip(insn in arb_fc4_instruction()) {
        let byte = insn.encode();
        prop_assert_eq!(fc4::Instruction::decode(byte), Ok(insn));
    }

    #[test]
    fn fc8_every_byte_decodes_or_rejects_consistently(byte in any::<u8>(), second in any::<u8>()) {
        // any decodable byte must re-encode to itself
        if let Ok((insn, len)) = fc8::Instruction::decode(&[byte, second]) {
            let bytes = insn.encode();
            prop_assert_eq!(bytes.len(), len);
            prop_assert_eq!(bytes[0], byte);
            if len == 2 {
                prop_assert_eq!(bytes[1], second);
            }
        }
    }

    #[test]
    fn xacc_encode_decode_roundtrip(insn in arb_xacc_instruction()) {
        let bytes = insn.encode();
        let (decoded, len) = xacc::Instruction::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, insn);
        prop_assert_eq!(len, bytes.len());
    }

    #[test]
    fn xls_encode_decode_roundtrip(insn in arb_xls_instruction()) {
        let h = insn.encode();
        prop_assert_eq!(xls::Instruction::decode(h), Ok(insn));
    }

    #[test]
    fn alu_matches_wide_integer_oracle(a in 0u8..16, b in 0u8..16) {
        prop_assert_eq!(
            AluOp::Add.apply(a, b, 4),
            ((u16::from(a) + u16::from(b)) & 0xF) as u8
        );
        prop_assert_eq!(AluOp::Nand.apply(a, b, 4), !(a & b) & 0xF);
        prop_assert_eq!(AluOp::Xor.apply(a, b, 4), (a ^ b) & 0xF);
    }
}

// ---------------------------------------------------------------------------
// gate-level arithmetic
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn netlist_adder_matches_u32_addition(a in 0u64..256, b in 0u64..256) {
        let mut n = Netlist::new();
        let ia = n.inputs("a", 8);
        let ib = n.inputs("b", 8);
        let zero = n.const0();
        let (sum, carry) = n.ripple_adder(&ia, &ib, zero);
        n.outputs("sum", &sum);
        n.output("carry", carry);
        let mut sim = BatchSim::new(&n).unwrap();
        sim.set_input_value("a", a, !0);
        sim.set_input_value("b", b, !0);
        sim.settle();
        prop_assert_eq!(sim.output_value("sum", 0), (a + b) & 0xFF);
        prop_assert_eq!(sim.output_value("carry", 0), (a + b) >> 8);
    }

    #[test]
    fn netlist_incrementer_matches(a in 0u64..128) {
        let mut n = Netlist::new();
        let ia = n.inputs("a", 7);
        let one = n.const1();
        let out = n.incrementer(&ia, one);
        n.outputs("out", &out);
        let mut sim = BatchSim::new(&n).unwrap();
        sim.set_input_value("a", a, !0);
        sim.settle();
        prop_assert_eq!(sim.output_value("out", 0), (a + 1) & 0x7F);
    }

    #[test]
    fn mux_tree_selects_the_indexed_word(sel in 0u64..8, words in proptest::array::uniform8(0u64..16)) {
        let mut n = Netlist::new();
        let s = n.inputs("sel", 3);
        let _ = s;
        let ws: Vec<Vec<flexgate::Net>> =
            (0..8).map(|k| n.inputs(&format!("w{k}"), 4)).collect();
        let sel_nets = n.input_ports()["sel"].clone();
        let out = n.mux_tree(&sel_nets, &ws);
        n.outputs("out", &out);
        let mut sim = BatchSim::new(&n).unwrap();
        sim.set_input_value("sel", sel, !0);
        for (k, w) in words.iter().enumerate() {
            sim.set_input_value(&format!("w{k}"), *w, !0);
        }
        sim.settle();
        prop_assert_eq!(sim.output_value("out", 0), words[sel as usize]);
    }
}

// ---------------------------------------------------------------------------
// simulator invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random legal programs either halt, run out of budget, or fault —
    /// and do so *deterministically*.
    #[test]
    fn fc4_simulation_is_deterministic(
        insns in proptest::collection::vec(arb_fc4_instruction(), 1..60),
        input in 0u8..16,
    ) {
        let program = Program::from_bytes(insns.iter().map(|i| i.encode()).collect());
        let run = |program: Program| {
            let mut core = Fc4Core::new(program);
            let mut output = RecordingOutput::new();
            let r = core.run(&mut ConstInput::new(input), &mut output, 2_000);
            (r.map(|x| (x.cycles, x.instructions, x.stop)), output.values(),
             core.acc(), core.pc())
        };
        prop_assert_eq!(run(program.clone()), run(program));
    }

    /// The accumulator and memory never exceed 4 bits, whatever executes.
    #[test]
    fn fc4_state_stays_in_range(
        insns in proptest::collection::vec(arb_fc4_instruction(), 1..60),
        input in 0u8..16,
    ) {
        let program = Program::from_bytes(insns.iter().map(|i| i.encode()).collect());
        let mut core = Fc4Core::new(program);
        let mut output = RecordingOutput::new();
        let mut inp = ConstInput::new(input);
        for _ in 0..500 {
            if core.is_halted() || core.step(&mut inp, &mut output).is_err() {
                break;
            }
            prop_assert!(core.acc() < 16);
            prop_assert!(core.pc() < 128);
            for a in 0..8 {
                prop_assert!(core.mem(a).unwrap() < 16);
            }
        }
        for v in output.values() {
            prop_assert!(v < 16);
        }
    }

    /// Whatever the output stream, the MMU page register only changes via
    /// a complete escape sequence.
    #[test]
    fn mmu_only_switches_on_full_escapes(values in proptest::collection::vec(0u8..16, 0..64)) {
        let mut mmu = Mmu::new();
        let mut last_three = Vec::new();
        for &v in &values {
            mmu.tick();
            mmu.tick();
            mmu.tick();
            let before = mmu.page();
            let fired = mmu.observe(v);
            last_three.push(v);
            if last_three.len() > 3 {
                last_three.remove(0);
            }
            if fired {
                prop_assert_eq!(last_three.len(), 3);
                prop_assert_eq!(last_three[0], flexicore::mmu::ESCAPE_1);
                prop_assert_eq!(last_three[1], flexicore::mmu::ESCAPE_2);
            } else {
                // page can only change through a previously recognised,
                // now-committing escape — observed via pending
                let _ = before;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// assembler round-trips
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Disassembling an assembled single-page fc4 program and re-assembling
    /// the text yields the same machine code (branch targets are rewritten
    /// to labels; programs whose branches land mid-instruction are skipped
    /// — fc4 instructions are all one byte so that never happens here).
    #[test]
    fn fc4_disassembly_reassembles_identically(
        insns in proptest::collection::vec(arb_fc4_instruction(), 1..100),
    ) {
        use flexasm::disasm::disassemble;
        let bytes: Vec<u8> = insns.iter().map(|i| i.encode()).collect();
        // branches must target addresses inside the program
        prop_assume!(insns.iter().all(|i| match i {
            fc4::Instruction::Branch { target } => usize::from(*target) < bytes.len(),
            _ => true,
        }));
        let program = Program::from_bytes(bytes.clone());
        let lines = disassemble(flexicore::isa::Dialect::Fc4, &program);
        let mut src = String::new();
        for line in &lines {
            src.push_str(&format!("a{}:\n", line.address));
            if let Some(rest) = line.text.strip_prefix("br ") {
                let t = u8::from_str_radix(rest.trim_start_matches("0x"), 16).unwrap();
                src.push_str(&format!("br a{t}\n"));
            } else {
                src.push_str(&line.text);
                src.push('\n');
            }
        }
        let reassembled = flexasm::Assembler::new(flexasm::Target::fc4())
            .assemble(&src)
            .unwrap();
        prop_assert_eq!(reassembled.program().as_bytes(), &bytes[..]);
    }

    /// A zero-fault [`FaultPlane`] must be invisible: for every kernel ×
    /// dialect pair the dialect can hold, the hooked run reproduces the
    /// clean run bit-for-bit — same outputs, same raw stream, same cycle
    /// and instruction counts, same stop reason.
    #[test]
    fn zero_fault_plane_is_bit_for_bit_transparent(seed in any::<u64>()) {
        use flexicore::sim::fault::{FaultPlane, NoFaults};
        use flexkernels::harness::{run_kernel_with, CYCLE_BUDGET};
        use flexkernels::inputs::Sampler;
        use flexkernels::Kernel;

        for name in ["fc4", "fc8", "xacc", "xls"] {
            let target = flexinject::target_from_name(name).unwrap();
            for kernel in Kernel::ALL {
                if !kernel.supports(target.dialect) {
                    continue;
                }
                let inputs = Sampler::new(kernel, seed).draw();
                let clean = run_kernel_with(kernel, target, &inputs, CYCLE_BUDGET, &mut NoFaults)
                    .expect("clean run must verify");
                let mut plane = FaultPlane::new();
                let hooked = run_kernel_with(kernel, target, &inputs, CYCLE_BUDGET, &mut plane)
                    .expect("zero-fault run must verify");
                prop_assert_eq!(&clean.outputs, &hooked.outputs, "{} on {}", kernel.name(), name);
                prop_assert_eq!(&clean.raw_outputs, &hooked.raw_outputs);
                prop_assert_eq!(clean.result, hooked.result);
                prop_assert!(hooked.verified);
            }
        }
    }

    /// The shared [`flexicore::exec::Engine`] upholds its accounting
    /// invariants on every dialect: a retired instruction costs at least
    /// one cycle and at least one fetched byte, kernels terminate via
    /// the halt idiom (not the watchdog), and [`NoFaults`] is
    /// indistinguishable from an armed-but-empty [`FaultPlane`].
    #[test]
    fn engine_invariants_hold_on_all_dialects(seed in any::<u64>()) {
        use flexicore::exec::AnyCore;
        use flexicore::io::ScriptedInput;
        use flexicore::sim::fault::FaultPlane;
        use flexicore::sim::StopReason;
        use flexkernels::inputs::Sampler;
        use flexkernels::Kernel;

        for name in ["fc4", "fc8", "xacc", "xls"] {
            let target = flexinject::target_from_name(name).unwrap();
            for kernel in [Kernel::ParityCheck, Kernel::XorShift8] {
                if !kernel.supports(target.dialect) {
                    continue;
                }
                let program = kernel.assemble(target).unwrap().into_program();
                let inputs = Sampler::new(kernel, seed).draw();

                let mut core =
                    AnyCore::for_dialect(target.dialect, target.features, program.clone());
                let mut input = ScriptedInput::new(inputs.clone());
                let mut output = RecordingOutput::new();
                let result = core.run(&mut input, &mut output, 200_000).unwrap();

                prop_assert!(result.cycles >= result.instructions, "{name}: {result:?}");
                prop_assert!(result.fetched_bytes >= result.instructions, "{name}: {result:?}");
                prop_assert_eq!(result.stop, StopReason::Halted, "{} must halt", name);
                prop_assert!(core.is_halted());

                // an empty fault plane threads through the same engine
                // without disturbing a single architectural event
                let mut hooked_core =
                    AnyCore::for_dialect(target.dialect, target.features, program.clone());
                let mut hooked_input = ScriptedInput::new(inputs.clone());
                let mut hooked_output = RecordingOutput::new();
                let mut plane = FaultPlane::new();
                let hooked = hooked_core
                    .run_with(&mut hooked_input, &mut hooked_output, 200_000, &mut plane)
                    .unwrap();
                prop_assert_eq!(result, hooked, "{} diverged under the empty plane", name);
                prop_assert_eq!(output.values(), hooked_output.values());
                prop_assert_eq!(core.pc(), hooked_core.pc());
            }
        }
    }

    /// Campaign classification is a pure function of the seed: replaying
    /// a campaign reproduces every fault draw and every outcome.
    #[test]
    fn campaigns_classify_deterministically(seed in any::<u64>(), trials in 1usize..24) {
        use flexinject::{run_campaign, CampaignConfig, FaultModel};
        use flexkernels::Kernel;

        let target = flexinject::target_from_name("fc4").unwrap();
        let mut config = CampaignConfig::new(target, Kernel::XorShift8, trials, seed);
        config.model = FaultModel::Mixed;
        let a = run_campaign(config).unwrap();
        let b = run_campaign(config).unwrap();
        prop_assert_eq!(a.trials, b.trials);
        prop_assert_eq!(a.clean_cycles, b.clean_cycles);
    }

    /// Branch-free load-store programs disassemble and reassemble to the
    /// same halfwords.
    #[test]
    fn xls_disassembly_reassembles_identically(
        insns in proptest::collection::vec(arb_xls_instruction(), 1..60),
    ) {
        use flexasm::disasm::disassemble;
        // keep only data instructions: labels for branch targets are
        // covered by the fc4 round-trip above
        let insns: Vec<xls::Instruction> = insns
            .into_iter()
            .filter(|i| matches!(i, xls::Instruction::Alu { .. }))
            .collect();
        prop_assume!(!insns.is_empty());
        let mut bytes = Vec::new();
        for i in &insns {
            i.encode_into(&mut bytes);
        }
        let program = Program::from_bytes(bytes.clone());
        let lines = disassemble(flexicore::isa::Dialect::LoadStore, &program);
        let src: String = lines
            .iter()
            .map(|l| format!("{}\n", l.text))
            .collect();
        // all features on: the generator draws multiplier/shift ops too
        let all_features: flexicore::isa::features::FeatureSet =
            flexicore::isa::features::Feature::ALL.into_iter().collect();
        let reassembled = flexasm::Assembler::new(flexasm::Target::xls(all_features))
            .assemble(&src)
            .unwrap();
        prop_assert_eq!(reassembled.program().as_bytes(), &bytes[..]);
    }
}
