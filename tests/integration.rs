//! Cross-crate integration tests: the full pipeline from assembly source
//! through functional simulation, gate-level co-simulation, wafer testing
//! and the DSE — the paths every published table/figure takes.

use flexasm::{Assembler, Target};
use flexfab::wafer_run::{CoreDesign, WaferExperiment};
use flexicore::io::{ConstInput, RecordingOutput, ScriptedInput};
use flexicore::sim::fc4::Fc4Core;
use flexkernels::inputs::Sampler;
use flexkernels::Kernel;
use flexrtl::cosim::{cosim_fc4, cosim_fc8};

/// A kernel assembled by `flexasm` must behave identically on the
/// architectural simulator and on the gate-level FlexiCore4 netlist —
/// the §4.1 test methodology end to end.
#[test]
fn parity_kernel_runs_identically_on_rtl_and_isa() {
    let assembly = Kernel::ParityCheck.assemble(Target::fc4()).unwrap();
    let netlist = flexrtl::build_fc4();
    // the kernel reads two input nibbles through the scripted port; the
    // cosim input presents the same fixed value to both models each cycle,
    // so use a constant word
    let result = cosim_fc4(&netlist, assembly.program(), &mut ConstInput::new(0x9), 500);
    assert!(result.is_equivalent(), "{:?}", result.mismatches);
    assert!(result.cycles > 30, "ran {} cycles", result.cycles);
}

#[test]
fn thresholding_kernel_cosimulates_on_fc4_rtl() {
    let assembly = Kernel::Thresholding.assemble(Target::fc4()).unwrap();
    let netlist = flexrtl::build_fc4();
    let result = cosim_fc4(
        &netlist,
        assembly.program(),
        &mut ConstInput::new(0x3),
        2_000,
    );
    assert!(result.is_equivalent(), "{:?}", result.mismatches);
}

#[test]
fn fc8_program_cosimulates_including_load_byte() {
    let src = "
        ldb   0x5A
        store r2
        load  r0
        nand  r2
        store r1
        halt
    ";
    let assembly = Assembler::new(Target::fc8()).assemble(src).unwrap();
    let netlist = flexrtl::build_fc8();
    let result = cosim_fc8(
        &netlist,
        assembly.program(),
        &mut ConstInput::new(0x66),
        500,
    );
    assert!(result.is_equivalent(), "{:?}", result.mismatches);
}

/// Every kernel × every DSE target: assemble, run, oracle-verify. This is
/// the correctness backbone of Figures 8–13.
#[test]
fn kernel_matrix_verifies_against_oracles() {
    let targets = [
        ("fc4", Target::fc4()),
        ("xacc revised", Target::xacc_revised()),
        ("xls revised", Target::xls_revised()),
    ];
    for (name, target) in targets {
        for kernel in Kernel::ALL {
            let mut sampler = Sampler::new(kernel, 42);
            for case in sampler.draw_many(6) {
                let run = kernel
                    .run(target, &case)
                    .unwrap_or_else(|e| panic!("{kernel} on {name}: {e}"));
                assert!(run.verified);
            }
        }
    }
}

/// The xorshift kernel, chained output→input, must traverse the full
/// 255-state period — exercising the simulator, the assembler and the
/// PRNG's mathematical property together.
#[test]
fn xorshift_kernel_has_full_period_end_to_end() {
    let program = Kernel::XorShift8
        .assemble(Target::fc4())
        .unwrap()
        .into_program();
    let mut state = 1u8;
    let mut seen = std::collections::HashSet::new();
    for _ in 0..255 {
        assert!(seen.insert(state), "state {state:#04x} repeated");
        let mut core = Fc4Core::new(program.clone());
        let mut input = ScriptedInput::new(vec![state & 0xF, state >> 4]);
        let mut output = RecordingOutput::new();
        let r = core.run(&mut input, &mut output, 100_000).unwrap();
        assert!(r.halted());
        let vals = output.values();
        state = (vals[2] << 4) | vals[0];
        assert_ne!(state, 0);
    }
    assert_eq!(state, 1, "period must be exactly 255");
}

/// The paged calculator runs *gate level* end-to-end: assembled program,
/// seven MMU pages, and the FlexiCore4 netlist matching the ISA model on
/// every cycle — the full §4.1 + §5.1 methodology in one test.
#[test]
fn calculator_cosimulates_through_the_mmu_on_gate_level() {
    let assembly = Kernel::Calculator.assemble(Target::fc4()).unwrap();
    let netlist = flexrtl::build_fc4();
    // op, a, b arrive on the input port; the cosim presents a constant
    // byte, so pick an op whose reads tolerate repetition: op=2 (multiply)
    // reads op, a, b as three successive IPORT samples -> 2 * 2 = 4.
    let result = cosim_fc4(&netlist, assembly.program(), &mut ConstInput::new(2), 2_000);
    assert!(result.is_equivalent(), "{:?}", result.mismatches);
    assert!(
        result.cycles > 100,
        "multiply crosses four pages: {} cycles",
        result.cycles
    );
}

/// The paged calculator exercises the off-chip MMU across up to seven
/// pages; exhaustive over all operations on a spread of operands.
#[test]
fn calculator_pages_through_the_mmu_correctly() {
    for op in 0..4u8 {
        for (a, b) in [(0, 0), (15, 15), (7, 9), (12, 5), (3, 14)] {
            let b = if op == 3 && b == 0 { 1 } else { b };
            let run = Kernel::Calculator
                .run(Target::fc4(), &[op, a, b])
                .unwrap_or_else(|e| panic!("op {op} a {a} b {b}: {e}"));
            assert!(run.verified);
        }
    }
}

/// The native FlexiCore8 parity demo, gate-level: the ISA-exhaustive
/// program also matches the FlexiCore8 netlist cycle-for-cycle.
#[test]
fn fc8_native_parity_cosimulates() {
    let assembly = Assembler::new(Target::fc8())
        .assemble(&flexkernels::fc8_demo::parity8_source())
        .unwrap();
    let netlist = flexrtl::build_fc8();
    for word in [0x00u8, 0x01, 0x5A, 0xFF, 0x80] {
        let result = cosim_fc8(
            &netlist,
            assembly.program(),
            &mut ConstInput::new(word),
            500,
        );
        assert!(
            result.is_equivalent(),
            "word {word:#04x}: {:?}",
            result.mismatches
        );
    }
}

/// Wafer experiments must regenerate identically from their seed, and
/// the published seed must reproduce the Table 5 bands.
#[test]
fn wafer_results_are_reproducible_and_in_band() {
    let exp = WaferExperiment::published(CoreDesign::FlexiCore4);
    let run_a = exp.run(4.5, 3_000).unwrap();
    let run_b = exp.run(4.5, 3_000).unwrap();
    assert_eq!(run_a.outcomes, run_b.outcomes);
    let y = run_a.yield_inclusion();
    assert!((0.70..=0.95).contains(&y), "inclusion yield {y}");
}

/// FlexiCore8 must be strictly worse than FlexiCore4 at 3 V — the paper's
/// central voltage-sensitivity observation.
#[test]
fn voltage_sensitivity_orders_the_cores() {
    let fc4 = WaferExperiment::published(CoreDesign::FlexiCore4)
        .run(3.0, 2_000)
        .unwrap();
    let fc8 = WaferExperiment::published(CoreDesign::FlexiCore8)
        .run(3.0, 2_000)
        .unwrap();
    assert!(fc4.yield_inclusion() > 2.0 * fc8.yield_inclusion());
}

/// Reprogramming the same chip with every kernel in turn — the "field
/// reprogrammable" headline property.
#[test]
fn one_chip_runs_every_kernel() {
    let mut core = Fc4Core::new(
        Kernel::ParityCheck
            .assemble(Target::fc4())
            .unwrap()
            .into_program(),
    );
    for kernel in Kernel::ALL {
        let program = kernel.assemble(Target::fc4()).unwrap().into_program();
        core.reprogram(program);
        let mut sampler = Sampler::new(kernel, 5);
        let case = sampler.draw();
        let mut input = ScriptedInput::new(case.clone());
        let mut output = RecordingOutput::new();
        let r = core.run(&mut input, &mut output, 200_000).unwrap();
        assert!(r.halted(), "{kernel} halted");
        let expected =
            flexkernels::oracle::expected_outputs(kernel, flexicore::isa::Dialect::Fc4, &case);
        assert_eq!(output.values(), expected, "{kernel}");
    }
}

/// The paper's measured 360 nJ/instruction and the gate-level static
/// power model must agree: both describe the same chip (§3.1's "power is
/// static" means energy/instruction = P / f).
#[test]
fn per_instruction_energy_is_consistent_with_gate_level_power() {
    use flexicore::energy::{FLEXICORE4_NJ_PER_INSN, FLEXICORE_CLOCK_HZ};
    let netlist = flexrtl::build_fc4();
    let report = flexgate::report::Report::of(&netlist);
    let power_mw = report.total.static_power_mw(4.5);
    let nj_per_insn = power_mw * 1e6 / FLEXICORE_CLOCK_HZ;
    let ratio = nj_per_insn / FLEXICORE4_NJ_PER_INSN;
    assert!(
        (0.8..1.25).contains(&ratio),
        "gate-level model gives {nj_per_insn:.0} nJ/insn vs the paper's 360 (x{ratio:.2})"
    );
}

/// Cross-page `call` without `pjmp` must be rejected at assembly time,
/// like cross-page branches.
#[test]
fn cross_page_call_is_rejected() {
    let src = "
        call far
        halt
    .page 1
    far:
        ret
    ";
    let err = Assembler::new(Target::xacc_revised())
        .assemble(src)
        .unwrap_err();
    assert!(
        matches!(
            err.kind(),
            flexasm::error::AsmErrorKind::CrossPageBranch { .. }
        ),
        "{err}"
    );
}
