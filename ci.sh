#!/bin/sh
# The full local gate: everything CI would run, in the order that fails
# fastest. Pass `--offline` through automatically — this repo vendors
# every dependency and must build without a network.
set -eu

cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== resilience smoke =="
# the acceptance gates for the resilient execution layer (TMR masking,
# >= 90 % transient recovery, bit-for-bit replay) run first in release
# mode: they are the slowest property-style tests and fail fastest here
cargo test --release --offline -p flexresilient -q

echo "== link soak smoke =="
# end-to-end field-reprogramming soak: every kernel transferred over a
# noisy channel, upset in service, and still oracle-exact
cargo test --release --offline -p flexlink -q --test soak_acceptance

echo "== attacker soak smoke =="
# authenticated-update threat gate: >= 1000 seeded trials sweeping
# forged, replayed, downgraded, truncated and power-cut updates across
# all four dialects; `flexi attack` exits nonzero on any accepted
# forgery or bricked die, failing the build
./target/release/flexi attack --trials 1000 --seed 1

echo "== sharded campaign smoke =="
# determinism gate for the --threads/--shards knobs: a threaded, sharded
# campaign must print the exact bytes the serial run prints
./target/release/flexi inject --faults 64 --seed 11 > /tmp/flexi_serial.txt
./target/release/flexi inject --faults 64 --seed 11 --threads 8 --shards 16 \
    > /tmp/flexi_sharded.txt
cmp /tmp/flexi_serial.txt /tmp/flexi_sharded.txt
./target/release/flexi link --rates 0,5e-4 --seed 11 > /tmp/flexi_serial.txt
./target/release/flexi link --rates 0,5e-4 --seed 11 --threads 8 --shards 8 \
    > /tmp/flexi_sharded.txt
cmp /tmp/flexi_serial.txt /tmp/flexi_sharded.txt
rm -f /tmp/flexi_serial.txt /tmp/flexi_sharded.txt

echo "== mission soak smoke =="
# lifetime soak gate: the closed-loop health manager vs the static
# always-TMR baseline under the same seeded stress histories; `flexi
# mission` exits nonzero on any accepted forged re-flash, and the report
# must replay bit-for-bit whatever the worker topology — including a
# FLEXSHARD_FORCE_THREADS override fighting the --shards split
./target/release/flexi mission --trials 24 --ticks 6 --seed 17 \
    --shards 1 > /tmp/flexi_serial.txt
FLEXSHARD_FORCE_THREADS=3 ./target/release/flexi mission --trials 24 \
    --ticks 6 --seed 17 --shards 64 > /tmp/flexi_sharded.txt
cmp /tmp/flexi_serial.txt /tmp/flexi_sharded.txt
rm -f /tmp/flexi_serial.txt /tmp/flexi_sharded.txt

echo "== flexcheck gate =="
# static analysis over the kernel suite (all dialects must lint clean at
# error severity) plus a seeded differential soundness smoke campaign:
# every analyzer verdict is replayed against the functional simulator
for target in fc4 fc8 xacc xls; do
    ./target/release/flexi check --kernels --target "$target" \
        --features revised > /dev/null
done
./target/release/flexi check --campaign 25 --seed 1 | tail -2

echo "== vuln gate =="
# static fault-vulnerability analysis: the per-dialect kernel-suite
# classification must be deterministic (printed digest compared across
# two runs), and the differential masking campaign re-injects every
# provably-masked site through the real engine — any observable
# divergence exits nonzero
for target in fc4 fc8 xacc xls; do
    ./target/release/flexi check --kernels --vuln --target "$target" \
        --features revised > /tmp/flexi_vuln_a.txt
    ./target/release/flexi check --kernels --vuln --target "$target" \
        --features revised > /tmp/flexi_vuln_b.txt
    cmp /tmp/flexi_vuln_a.txt /tmp/flexi_vuln_b.txt
    grep -q "suite vuln digest 0x" /tmp/flexi_vuln_a.txt
done
rm -f /tmp/flexi_vuln_a.txt /tmp/flexi_vuln_b.txt
cargo test --release --offline -p flexcheck -q vuln_smoke_campaign

echo "== serve smoke =="
# crash-safety gate for the toolchain daemon: batch twice (the second
# run must be all cache hits with the same reply digest), kill -9 the
# daemon mid-batch, restart it on the same cache directory, and verify
# the re-issued batch still matches byte-for-byte — a crash must never
# poison the content-addressed cache
serve_cache=/tmp/flexi_serve_cache
serve_log=/tmp/flexi_serve_log
serve_fifo=/tmp/flexi_serve_stdin
rm -rf "$serve_cache" "$serve_log" "$serve_fifo"
mkfifo "$serve_fifo"
start_serve() {
    # the daemon drains on stdin EOF, so hand it a fifo this script
    # holds open — otherwise a CI runner's /dev/null stdin would drain
    # it before the first batch lands
    ./target/release/flexi serve --cache "$serve_cache" \
        < "$serve_fifo" > "$serve_log" &
    serve_pid=$!
    exec 9> "$serve_fifo"
    for _ in $(seq 1 100); do
        grep -q "flexi serve: listening on" "$serve_log" 2> /dev/null && break
        sleep 0.1
    done
    serve_port=$(sed -n 's/.*listening on .*:\([0-9]*\) .*/\1/p' "$serve_log")
    test -n "$serve_port"
}
start_serve
cold=$(./target/release/flexi client batch --port "$serve_port")
warm=$(./target/release/flexi client batch --port "$serve_port")
echo "$warm" | grep -q "all cache hits"
cold_digest=$(echo "$cold" | sed -n 's/^batch digest //p')
warm_digest=$(echo "$warm" | sed -n 's/^batch digest //p')
test -n "$cold_digest" && test "$cold_digest" = "$warm_digest"
./target/release/flexi client batch --port "$serve_port" --seed 99 \
    > /dev/null 2>&1 &
interrupted=$!
sleep 0.05
kill -9 "$serve_pid"
wait "$serve_pid" 2> /dev/null || true
wait "$interrupted" 2> /dev/null || true
start_serve
again=$(./target/release/flexi client batch --port "$serve_port")
again_digest=$(echo "$again" | sed -n 's/^batch digest //p')
test "$again_digest" = "$warm_digest"
./target/release/flexi client drain --port "$serve_port" > /dev/null
wait "$serve_pid"
exec 9>&-
rm -rf "$serve_cache" "$serve_log" "$serve_fifo"

echo "== cargo test =="
cargo test --offline --workspace -q

echo "== cargo test --release (forced thread pools) =="
# FLEXSHARD_FORCE_THREADS overrides every campaign's requested worker
# count, so the whole suite — including the single-threaded golden-value
# tests — runs once with real thread pools engaged; the determinism
# contract says nothing may change
FLEXSHARD_FORCE_THREADS=3 cargo test --release --offline --workspace -q

echo "== cargo doc =="
# -p per first-party crate: the vendored stubs are workspace members and
# must not be held to -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps \
    -p flexicore -p flexasm -p flexgate -p flexrtl -p flexfab \
    -p flexkernels -p flexinject -p flexresilient -p flexlink -p flexdse \
    -p flexcheck -p flexshard -p flexmission -p flexserve -p flexcli \
    -p flexbench

echo "== cargo clippy =="
# -D warnings plus the pedantic subset this workspace has adopted
# wholesale: pass-by-value that forces callers to clone, redundant
# clones, and expression-valued statements missing their semicolon
cargo clippy --offline --workspace --all-targets -- -D warnings \
    -D clippy::needless_pass_by_value \
    -D clippy::redundant_clone \
    -D clippy::semicolon_if_nothing_returned

echo "== cargo fmt --check =="
cargo fmt --check

echo "ci: all green"
