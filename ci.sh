#!/bin/sh
# The full local gate: everything CI would run, in the order that fails
# fastest. Pass `--offline` through automatically — this repo vendors
# every dependency and must build without a network.
set -eu

cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== resilience smoke =="
# the acceptance gates for the resilient execution layer (TMR masking,
# >= 90 % transient recovery, bit-for-bit replay) run first in release
# mode: they are the slowest property-style tests and fail fastest here
cargo test --release --offline -p flexresilient -q

echo "== link soak smoke =="
# end-to-end field-reprogramming soak: every kernel transferred over a
# noisy channel, upset in service, and still oracle-exact
cargo test --release --offline -p flexlink -q --test soak_acceptance

echo "== attacker soak smoke =="
# authenticated-update threat gate: >= 1000 seeded trials sweeping
# forged, replayed, downgraded, truncated and power-cut updates across
# all four dialects; `flexi attack` exits nonzero on any accepted
# forgery or bricked die, failing the build
./target/release/flexi attack --trials 1000 --seed 1

echo "== flexcheck gate =="
# static analysis over the kernel suite (all dialects must lint clean at
# error severity) plus a seeded differential soundness smoke campaign:
# every analyzer verdict is replayed against the functional simulator
for target in fc4 fc8 xacc xls; do
    ./target/release/flexi check --kernels --target "$target" \
        --features revised > /dev/null
done
./target/release/flexi check --campaign 25 --seed 1 | tail -2

echo "== cargo test =="
cargo test --offline --workspace -q

echo "== cargo test --release =="
cargo test --release --offline --workspace -q

echo "== cargo doc =="
# -p per first-party crate: the vendored stubs are workspace members and
# must not be held to -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps \
    -p flexicore -p flexasm -p flexgate -p flexrtl -p flexfab \
    -p flexkernels -p flexinject -p flexresilient -p flexlink -p flexdse \
    -p flexcheck -p flexcli -p flexbench

echo "== cargo clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "ci: all green"
