#!/bin/sh
# The full local gate: everything CI would run, in the order that fails
# fastest. Pass `--offline` through automatically — this repo vendors
# every dependency and must build without a network.
set -eu

cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test =="
cargo test --offline --workspace -q

echo "== cargo clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "ci: all green"
