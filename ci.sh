#!/bin/sh
# The full local gate: everything CI would run, in the order that fails
# fastest. Pass `--offline` through automatically — this repo vendors
# every dependency and must build without a network.
set -eu

cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== resilience smoke =="
# the acceptance gates for the resilient execution layer (TMR masking,
# >= 90 % transient recovery, bit-for-bit replay) run first in release
# mode: they are the slowest property-style tests and fail fastest here
cargo test --release --offline -p flexresilient -q

echo "== link soak smoke =="
# end-to-end field-reprogramming soak: every kernel transferred over a
# noisy channel, upset in service, and still oracle-exact
cargo test --release --offline -p flexlink -q --test soak_acceptance

echo "== attacker soak smoke =="
# authenticated-update threat gate: >= 1000 seeded trials sweeping
# forged, replayed, downgraded, truncated and power-cut updates across
# all four dialects; `flexi attack` exits nonzero on any accepted
# forgery or bricked die, failing the build
./target/release/flexi attack --trials 1000 --seed 1

echo "== sharded campaign smoke =="
# determinism gate for the --threads/--shards knobs: a threaded, sharded
# campaign must print the exact bytes the serial run prints
./target/release/flexi inject --faults 64 --seed 11 > /tmp/flexi_serial.txt
./target/release/flexi inject --faults 64 --seed 11 --threads 8 --shards 16 \
    > /tmp/flexi_sharded.txt
cmp /tmp/flexi_serial.txt /tmp/flexi_sharded.txt
./target/release/flexi link --rates 0,5e-4 --seed 11 > /tmp/flexi_serial.txt
./target/release/flexi link --rates 0,5e-4 --seed 11 --threads 8 --shards 8 \
    > /tmp/flexi_sharded.txt
cmp /tmp/flexi_serial.txt /tmp/flexi_sharded.txt
rm -f /tmp/flexi_serial.txt /tmp/flexi_sharded.txt

echo "== mission soak smoke =="
# lifetime soak gate: the closed-loop health manager vs the static
# always-TMR baseline under the same seeded stress histories; `flexi
# mission` exits nonzero on any accepted forged re-flash, and the report
# must replay bit-for-bit whatever the worker topology — including a
# FLEXSHARD_FORCE_THREADS override fighting the --shards split
./target/release/flexi mission --trials 24 --ticks 6 --seed 17 \
    --shards 1 > /tmp/flexi_serial.txt
FLEXSHARD_FORCE_THREADS=3 ./target/release/flexi mission --trials 24 \
    --ticks 6 --seed 17 --shards 64 > /tmp/flexi_sharded.txt
cmp /tmp/flexi_serial.txt /tmp/flexi_sharded.txt
rm -f /tmp/flexi_serial.txt /tmp/flexi_sharded.txt

echo "== flexcheck gate =="
# static analysis over the kernel suite (all dialects must lint clean at
# error severity) plus a seeded differential soundness smoke campaign:
# every analyzer verdict is replayed against the functional simulator
for target in fc4 fc8 xacc xls; do
    ./target/release/flexi check --kernels --target "$target" \
        --features revised > /dev/null
done
./target/release/flexi check --campaign 25 --seed 1 | tail -2

echo "== cargo test =="
cargo test --offline --workspace -q

echo "== cargo test --release (forced thread pools) =="
# FLEXSHARD_FORCE_THREADS overrides every campaign's requested worker
# count, so the whole suite — including the single-threaded golden-value
# tests — runs once with real thread pools engaged; the determinism
# contract says nothing may change
FLEXSHARD_FORCE_THREADS=3 cargo test --release --offline --workspace -q

echo "== cargo doc =="
# -p per first-party crate: the vendored stubs are workspace members and
# must not be held to -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps \
    -p flexicore -p flexasm -p flexgate -p flexrtl -p flexfab \
    -p flexkernels -p flexinject -p flexresilient -p flexlink -p flexdse \
    -p flexcheck -p flexshard -p flexmission -p flexcli -p flexbench

echo "== cargo clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "ci: all green"
