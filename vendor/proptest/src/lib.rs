//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest 1.x API its tests use: the [`Strategy`]
//! trait with `prop_map`, range and tuple strategies, [`strategy::Just`],
//! [`arbitrary::any`], `prop_oneof!`, `proptest::collection::vec`,
//! `proptest::array::uniform8`, the `proptest!` test macro, and the
//! `prop_assert*` / `prop_assume!` assertion macros.
//!
//! Unlike real proptest this harness does **not shrink** failing inputs —
//! it samples `Config::cases` deterministic pseudo-random cases per test
//! (seeded from the test name, so failures reproduce across runs) and
//! panics with the sampled values' failure message on the first failing
//! case.

pub mod rng {
    //! Deterministic sampling source for strategies (splitmix64).

    /// The generator threaded through every [`Strategy`](crate::strategy::Strategy).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is fully determined by `seed`.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// An unbiased draw from `[0, span)` by rejection sampling.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "cannot sample from an empty span");
            let zone = u64::MAX - (u64::MAX % span);
            loop {
                let draw = self.next_u64();
                if draw < zone {
                    return draw % span;
                }
            }
        }
    }
}

pub mod test_runner {
    //! Test-case configuration and control-flow signals.

    /// Per-`proptest!`-block configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases sampled per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single sampled case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is resampled.
        Reject,
        /// A `prop_assert*!` failed; the test fails with this message.
        Fail(String),
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::rng::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between several strategies of the same value type
    /// (the engine behind `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms`.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// String literals are string strategies: a `[class]{lo,hi}` pattern
    /// (char class with ranges and `\n`/`\t`/`\r`/`\\` escapes, plus an
    /// optional repetition count) generates matching strings; any other
    /// literal generates itself. This is the subset of proptest's regex
    /// strategies the workspace uses.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let bytes: Vec<char> = pattern.chars().collect();
        if bytes.first() != Some(&'[') {
            return pattern.to_string();
        }
        // parse the char class
        let mut class = Vec::new();
        let mut i = 1;
        let mut closed = None;
        while i < bytes.len() {
            match bytes[i] {
                ']' => {
                    closed = Some(i);
                    break;
                }
                '\\' if i + 1 < bytes.len() => {
                    class.push(match bytes[i + 1] {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    });
                    i += 2;
                }
                c if i + 2 < bytes.len() && bytes[i + 1] == '-' && bytes[i + 2] != ']' => {
                    let (lo, hi) = (c as u32, bytes[i + 2] as u32);
                    assert!(lo <= hi, "invalid char range in pattern {pattern:?}");
                    for v in lo..=hi {
                        if let Some(ch) = char::from_u32(v) {
                            class.push(ch);
                        }
                    }
                    i += 3;
                }
                c => {
                    class.push(c);
                    i += 1;
                }
            }
        }
        let end = closed.unwrap_or_else(|| panic!("unterminated char class in {pattern:?}"));
        assert!(!class.is_empty(), "empty char class in {pattern:?}");
        // parse the optional {lo,hi} / {n} repetition
        let rest: String = bytes[end + 1..].iter().collect();
        let (lo, hi) =
            if let Some(counts) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
                match counts.split_once(',') {
                    Some((a, b)) => (
                        a.parse::<usize>().unwrap_or(0),
                        b.parse::<usize>().unwrap_or(0),
                    ),
                    None => {
                        let n = counts.parse::<usize>().unwrap_or(1);
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
        assert!(lo <= hi, "invalid repetition in pattern {pattern:?}");
        let len = lo + rng.below((hi - lo) as u64 + 1) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F2);
}

pub mod arbitrary {
    //! `any::<T>()` — whole-domain strategies.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// One uniform sample of the domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// An inclusive length range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// The strategy returned by [`uniform8`].
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.element.sample(rng))
        }
    }

    /// A strategy for `[T; 8]` with every element drawn from `element`.
    pub fn uniform8<S: Strategy>(element: S) -> UniformArray<S, 8> {
        UniformArray { element }
    }

    /// A strategy for `[T; 4]` with every element drawn from `element`.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        UniformArray { element }
    }
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// A deterministic per-test seed derived from the test's name (FNV-1a),
/// so a failing case reproduces run-over-run.
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Uniform choice between strategies (boxed union).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Reject the current case (it is resampled, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` sampling `Config::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::rng::TestRng::new($crate::seed_from_name(stringify!($name)));
                let mut ran: u32 = 0;
                let mut rejected: u32 = 0;
                while ran < config.cases {
                    assert!(
                        rejected <= config.cases.saturating_mul(16).max(1024),
                        "too many prop_assume! rejections in {}",
                        stringify!($name)
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => ran += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed after {} passing cases: {}",
                                   stringify!($name), ran, msg);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u8, u8)> {
        ((0u8..16), (0u8..16))
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 3u8..17) {
            prop_assert!((3..17).contains(&v));
        }

        #[test]
        fn oneof_and_map_compose(insn in prop_oneof![
            (0u8..8).prop_map(|x| x * 2),
            Just(99u8),
        ]) {
            prop_assert!(insn == 99 || insn < 16);
        }

        #[test]
        fn tuples_and_pairs(p in arb_pair(), extra in any::<u8>()) {
            let (a, b) = p;
            prop_assert!(a < 16 && b < 16);
            let _ = extra;
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn assume_rejects_without_failing(v in 0u8..10) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }

        #[test]
        fn string_patterns_generate_matching_text(s in "[ -~\n]{0,30}") {
            prop_assert!(s.chars().count() <= 30);
            prop_assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_is_honoured(ws in crate::array::uniform8(0u64..16)) {
            prop_assert_eq!(ws.len(), 8);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_from_name("a"), crate::seed_from_name("b"));
    }
}
