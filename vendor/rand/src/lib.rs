//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the small slice of the rand 0.8 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and `f64` ranges, and [`Rng::gen`].
//!
//! The generator is splitmix64 (the same mixer `flexgate::fault` uses for
//! its dependency-free determinism), *not* ChaCha12: streams differ from
//! upstream `StdRng`, but every consumer in this workspace only relies on
//! seeded determinism and uniformity, never on a specific stream.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// A generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform sample of the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        sample_unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types uniformly sampleable over their whole domain (rand's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// A uniform sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        sample_unit_f64(rng.next_u64())
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// A uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Maps a raw 64-bit draw onto `[0, 1)`.
fn sample_unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits scaled by 2^-53
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// An unbiased draw from `[0, span)` by rejection sampling.
fn sample_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // largest multiple of `span` representable in u64
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let draw = rng.next_u64();
        if draw < zone {
            return draw % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(sample_below(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // the full u64 domain
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(sample_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + sample_unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + sample_unit_f64(rng.next_u64()) * (hi - lo)
    }
}

pub mod rngs {
    //! Concrete generators.

    use crate::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (splitmix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u8..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(1..=255u8);
            assert!((1..=255).contains(&i));
        }
    }

    #[test]
    fn unit_samples_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
