//! Offline stand-in for the `criterion` crate.
//!
//! Implements the slice of the 0.5 API the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Throughput`], `criterion_group!`/`criterion_main!` and
//! [`black_box`] — with a plain wall-clock measurement loop instead of
//! criterion's statistical machinery. Numbers are printed as
//! median-of-batches nanoseconds per iteration.

use std::time::{Duration, Instant};

/// Re-export of the standard hint; prevents the optimizer from deleting
/// benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters_per_batch: u64,
    batches: Vec<Duration>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            iters_per_batch: 0,
            batches: Vec::new(),
        }
    }

    /// Measure `f` repeatedly; the harness times several batches and keeps
    /// the per-batch durations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // calibrate: grow the batch until it runs at least ~2ms
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        self.iters_per_batch = iters;
        const BATCHES: usize = 7;
        self.batches.clear();
        for _ in 0..BATCHES {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.batches.push(t.elapsed());
        }
    }

    fn median_ns_per_iter(&mut self) -> f64 {
        if self.batches.is_empty() || self.iters_per_batch == 0 {
            return f64::NAN;
        }
        self.batches.sort();
        let mid = self.batches[self.batches.len() / 2];
        mid.as_nanos() as f64 / self.iters_per_batch as f64
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Report per-iteration throughput in these units.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.throughput, f);
        self
    }

    /// Finish the group (retained for API compatibility).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher::new();
    f(&mut b);
    let ns = b.median_ns_per_iter();
    match throughput {
        Some(Throughput::Elements(n)) if ns.is_finite() && ns > 0.0 => {
            let per_sec = n as f64 * 1e9 / ns;
            println!("{name:<44} {ns:>12.1} ns/iter   {per_sec:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if ns.is_finite() && ns > 0.0 => {
            let per_sec = n as f64 * 1e9 / ns;
            println!("{name:<44} {ns:>12.1} ns/iter   {per_sec:>14.0} B/s");
        }
        _ => println!("{name:<44} {ns:>12.1} ns/iter"),
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new();
        b.iter(|| (0..100u64).sum::<u64>());
        let ns = b.median_ns_per_iter();
        assert!(ns.is_finite() && ns > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
