//! Cross-checks between the static analyzer and the DSE measurement
//! stack: dead-code-stripped sizes never exceed raw sizes, and the
//! analyzer's worst-case cycle bound dominates what the functional
//! simulator actually spends.

use flexasm::{Assembler, Target};
use flexdse::codesize::{suite_code_sizes, suite_stripped_bits, suite_total_bits};
use flexdse::config::CoreConfig;
use flexicore::exec::AnyCore;
use flexicore::io::{ConstInput, RecordingOutput};

#[test]
fn stripped_sizes_are_bounded_by_raw_sizes() {
    for config in CoreConfig::dse_cores() {
        let sizes = suite_code_sizes(&config).unwrap_or_else(|e| panic!("{}: {e}", config.label()));
        for k in &sizes {
            assert!(
                k.stripped_bits <= k.bits,
                "{}/{}: stripped {} > raw {}",
                config.label(),
                k.kernel,
                k.stripped_bits,
                k.bits
            );
            assert!(
                k.reachable_instructions > 0,
                "{}/{}",
                config.label(),
                k.kernel
            );
        }
        let raw = suite_total_bits(&config).unwrap();
        let stripped = suite_stripped_bits(&config).unwrap();
        assert!(stripped <= raw);
    }
}

#[test]
fn cycle_bound_dominates_concrete_straight_line_cost() {
    // a straight-line fc4 program: the analyzer's worst-case cycle
    // bound must equal what the simulator spends (single-cycle insns)
    let src = "
        load  r0
        addi  3
        store r2
        xori  5
        store r1
        halt
    ";
    let target = Target::fc4();
    let assembly = Assembler::new(target).assemble(src).unwrap();
    let report = flexcheck::check_assembly(&assembly);
    let bound = report.cycle_bound.expect("straight-line code has a bound");

    let mut core = AnyCore::for_dialect(target.dialect, target.features, assembly.into_program());
    let mut output = RecordingOutput::new();
    let run = core
        .run(&mut ConstInput::new(2), &mut output, 10 * bound)
        .unwrap();
    assert!(run.halted());
    assert!(
        core.cycles() <= bound,
        "spent {} cycles, bound was {bound}",
        core.cycles()
    );
}

#[test]
fn fc8_cycle_bound_accounts_for_two_byte_fetches() {
    // fc8 charges `len` cycles per instruction; the bound must agree
    let src = "
        ldb   0x12
        store r2
        halt
    ";
    let target = Target::fc8();
    let assembly = Assembler::new(target).assemble(src).unwrap();
    let report = flexcheck::check_assembly(&assembly);
    let bound = report.cycle_bound.expect("straight-line code has a bound");

    let mut core = AnyCore::for_dialect(target.dialect, target.features, assembly.into_program());
    let mut output = RecordingOutput::new();
    let run = core
        .run(&mut ConstInput::new(0), &mut output, 10 * bound)
        .unwrap();
    assert!(run.halted());
    assert_eq!(
        core.cycles(),
        bound,
        "fc8 bound is tight on straight-line code"
    );
}
