//! Benchmark-suite code size per configuration (Figures 9, 10, 12),
//! raw and dead-code-stripped (via the `flexcheck` reachability pass).

use crate::config::CoreConfig;
use flexasm::AsmError;
use flexkernels::Kernel;

/// Code size of one kernel under one configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelCodeSize {
    /// The kernel.
    pub kernel: Kernel,
    /// Machine instructions.
    pub static_instructions: usize,
    /// Bits of program storage (the Figure 12 metric).
    pub bits: usize,
    /// Instructions the static analyzer proves reachable from power-on.
    pub reachable_instructions: usize,
    /// Bits after stripping unreachable instructions. Equal to `bits`
    /// when the image has no dead code, or when the analysis is not
    /// exact (no strip is claimed then — shared software-expansion
    /// routines reached via `ret` and page changes stay conservative).
    pub stripped_bits: usize,
}

/// Assemble every kernel for `config` and collect code sizes.
///
/// # Errors
///
/// Propagates assembler errors (a mnemonic without hardware or software
/// lowering on the configuration).
pub fn suite_code_sizes(config: &CoreConfig) -> Result<Vec<KernelCodeSize>, AsmError> {
    let target = config.target();
    Kernel::ALL
        .iter()
        .map(|&kernel| {
            let asm = kernel.assemble(target)?;
            let report = flexcheck::check_assembly(&asm);
            let bits = asm.code_bits();
            let stripped_bits = if report.exact {
                (report.reachable_bytes() * 8).min(bits)
            } else {
                bits
            };
            Ok(KernelCodeSize {
                kernel,
                static_instructions: asm.static_instructions(),
                bits,
                reachable_instructions: report.reachable_instructions,
                stripped_bits,
            })
        })
        .collect()
}

/// Total dead-code-stripped bits of the whole suite under `config`.
///
/// # Errors
///
/// Propagates assembler errors.
pub fn suite_stripped_bits(config: &CoreConfig) -> Result<usize, AsmError> {
    Ok(suite_code_sizes(config)?
        .iter()
        .map(|k| k.stripped_bits)
        .sum())
}

/// Total bits of the whole benchmark suite under `config`.
///
/// # Errors
///
/// Propagates assembler errors.
pub fn suite_total_bits(config: &CoreConfig) -> Result<usize, AsmError> {
    Ok(suite_code_sizes(config)?.iter().map(|k| k.bits).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OperandModel;
    use flexicore::isa::features::{Feature, FeatureSet};
    use flexicore::uarch::Microarch;

    fn acc_cfg(features: FeatureSet) -> CoreConfig {
        CoreConfig {
            operand: OperandModel::Accumulator,
            uarch: Microarch::SingleCycle,
            features,
        }
    }

    #[test]
    fn every_dse_core_assembles_the_suite() {
        for c in CoreConfig::dse_cores() {
            let sizes = suite_code_sizes(&c).unwrap_or_else(|e| panic!("{}: {e}", c.label()));
            assert_eq!(sizes.len(), 7);
        }
    }

    #[test]
    fn extensions_shrink_the_suite() {
        let base = suite_total_bits(&CoreConfig::flexicore4()).unwrap();
        let revised = suite_total_bits(&acc_cfg(FeatureSet::revised())).unwrap();
        assert!(
            (revised as f64) < 0.8 * base as f64,
            "revised {revised} vs base {base}"
        );
    }

    #[test]
    fn barrel_shifter_helps_shift_heavy_kernels_most() {
        let base = suite_code_sizes(&CoreConfig::flexicore4()).unwrap();
        let shifter = suite_code_sizes(&acc_cfg(FeatureSet::only(Feature::BarrelShifter))).unwrap();
        let ratio = |k: Kernel| {
            let b = base.iter().find(|x| x.kernel == k).unwrap().bits as f64;
            let s = shifter.iter().find(|x| x.kernel == k).unwrap().bits as f64;
            s / b
        };
        // IntAvg and XorShift8 use right shifts (Figure 10)
        assert!(ratio(Kernel::IntAvg) < 0.55, "{}", ratio(Kernel::IntAvg));
        assert!(
            ratio(Kernel::XorShift8) < 0.75,
            "{}",
            ratio(Kernel::XorShift8)
        );
        // Thresholding has no shifts: nearly unchanged
        assert!(ratio(Kernel::Thresholding) > 0.9);
    }

    #[test]
    fn double_regfile_does_not_change_code_size() {
        // Figure 9: "Increasing the size of data-memory does not effect
        // test code size"
        let base = suite_total_bits(&acc_cfg(FeatureSet::BASE)).unwrap();
        let doubled = suite_total_bits(&acc_cfg(FeatureSet::only(Feature::DoubleRegfile))).unwrap();
        assert_eq!(base, doubled);
    }
}
