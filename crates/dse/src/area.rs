//! Gate-derived cost models for every design point.
//!
//! Rather than hand-waving percentages, each configuration's cost is
//! *composed from real `flexgate` component netlists*: the base
//! FlexiCore4 netlist plus, per enabled feature and microarchitecture,
//! the actual gates the feature needs (a carry flop and operand
//! inverters for ADC/SWB, a two-stage mux shifter, a 4×4 array
//! multiplier, a second register-file read port, pipeline registers, a
//! multicycle control FSM…). The components are built, measured with
//! [`flexgate::report`] and [`flexgate::timing`], and summed.
//!
//! The composition is structural rather than a fully wired core — the
//! functional behaviour of every configuration is covered by the ISA
//! simulators — but every NAND2 of the totals comes from an actual cell
//! instance.

use crate::config::{CoreConfig, OperandModel};
use flexgate::netlist::Netlist;
use flexgate::report::{ModuleStats, Report};
use flexgate::timing::{analyze, DelayModel};
use flexicore::isa::features::Feature;
use flexicore::uarch::Microarch;

/// Delay units charged to instruction fetch/decode before execution can
/// start in a single-cycle machine (pad drivers + wire + decode fan-out).
const FETCH_UNITS: f64 = 8.0;
/// Extra units a pipeline register costs between stages.
const PIPE_OVERHEAD_UNITS: f64 = 2.5;

/// Composed cost of one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreCost {
    /// Total area, NAND2 equivalents.
    pub area_nand2: f64,
    /// TFTs + resistors.
    pub devices: u64,
    /// Static current at 4.5 V, µA.
    pub static_ua: f64,
    /// Clock-limiting path in delay units.
    pub path_units: f64,
    /// Cell instances.
    pub cells: usize,
}

impl CoreCost {
    /// Static power in mW at `volts`.
    #[must_use]
    pub fn static_power_mw(&self, volts: f64) -> f64 {
        self.static_ua / 1000.0 * (volts / 4.5) * volts
    }

    /// Maximum clock frequency at `volts` for a nominal die.
    #[must_use]
    pub fn fmax_hz(&self, volts: f64) -> f64 {
        let m = DelayModel::igzo();
        m.fmax_hz(self.path_units, volts, m.vth_nom)
    }

    fn absorb(&mut self, stats: ModuleStats, extra_path: f64) {
        self.area_nand2 += stats.area();
        self.devices += stats.devices;
        self.static_ua += stats.static_ua;
        self.cells += stats.cells;
        self.path_units += extra_path;
    }
}

/// Estimate the cost of `config`.
#[must_use]
pub fn estimate(config: &CoreConfig) -> CoreCost {
    let mut cost = base_cost(config.operand);

    // feature hardware
    for feature in config.features.iter() {
        let (netlist, timing) = feature_component(feature);
        let report = Report::of(&netlist);
        let extra = match timing {
            FeatureTiming::Off => 0.0,
            // serial insertion into the execute path (an operand mux, a
            // writeback-mux level, ...)
            FeatureTiming::Serial(units) => units,
            // a parallel unit only matters if its own path is longer than
            // the existing execute path
            FeatureTiming::Parallel => {
                let p = analyze(&netlist)
                    .map(|t| t.critical_path_units)
                    .unwrap_or(0.0);
                (p + 1.8 - cost.path_units).max(0.0)
            }
        };
        cost.absorb(report.total, extra);
    }

    // microarchitecture
    match config.uarch {
        Microarch::SingleCycle => {
            cost.path_units += FETCH_UNITS;
        }
        Microarch::TwoStage => {
            let pipe = pipeline_registers(config.operand);
            cost.absorb(Report::of(&pipe).total, 0.0);
            // fetch overlaps execute; the clock sees the longer stage plus
            // the pipe register overhead
            cost.path_units = cost.path_units.max(FETCH_UNITS) + PIPE_OVERHEAD_UNITS;
        }
        Microarch::MultiCycle => {
            let ctrl = multicycle_controller(config.operand);
            cost.absorb(Report::of(&ctrl).total, 0.0);
            cost.path_units = cost.path_units.max(FETCH_UNITS) + PIPE_OVERHEAD_UNITS;
            if config.operand == OperandModel::LoadStore {
                // the multicycle machine time-shares one register-file read
                // port (§6.2) — remove the second port added in base_cost
                let port = regfile_read_port();
                let r = Report::of(&port).total;
                cost.area_nand2 -= r.area();
                cost.devices -= r.devices;
                cost.static_ua -= r.static_ua;
                cost.cells -= r.cells;
            }
        }
    }
    cost
}

/// The base datapath cost per operand model.
fn base_cost(operand: OperandModel) -> CoreCost {
    match operand {
        OperandModel::Accumulator => {
            let n = flexrtl::build_fc4();
            let r = Report::of(&n).total;
            let path = analyze(&n).expect("fc4 is well-formed").critical_path_units;
            CoreCost {
                area_nand2: r.area(),
                devices: r.devices,
                static_ua: r.static_ua,
                path_units: path,
                cells: r.cells,
            }
        }
        OperandModel::LoadStore => {
            // accumulator datapath minus the accumulator register (the
            // register file subsumes it), plus: a second register-file
            // read port, a wider (16-bit) instruction decode, and a flags
            // register
            let mut cost = base_cost(OperandModel::Accumulator);
            let fc4 = flexrtl::build_fc4();
            let acc = Report::of(&fc4).module_rollup("acc");
            cost.area_nand2 -= acc.area();
            cost.devices -= acc.devices;
            cost.static_ua -= acc.static_ua;
            cost.cells -= acc.cells;
            let port = regfile_read_port();
            cost.absorb(Report::of(&port).total, 0.5);
            let decode = wide_decode();
            cost.absorb(Report::of(&decode).total, 1.0);
            let flags = flags_register();
            cost.absorb(Report::of(&flags).total, 0.0);
            cost
        }
    }
}

// ---- component netlists ----------------------------------------------------

/// How a feature's hardware interacts with the execute critical path.
enum FeatureTiming {
    /// Off the critical path (control-side logic).
    Off,
    /// Inserted in series: adds this many delay units.
    Serial(f64),
    /// A parallel functional unit: only its own end-to-end path matters.
    Parallel,
}

fn feature_component(feature: Feature) -> (Netlist, FeatureTiming) {
    match feature {
        // operand-inversion mux ahead of the adder
        Feature::AddWithCarry => (carry_unit(), FeatureTiming::Serial(2.4)),
        // one extra writeback-mux level; the shifter itself is parallel
        // to the (longer) adder
        Feature::BarrelShifter => (barrel_shifter(), FeatureTiming::Serial(1.8)),
        Feature::BranchFlags => (branch_flags(), FeatureTiming::Off),
        Feature::Multiplier => (multiplier4x4(), FeatureTiming::Parallel),
        Feature::AccExchange => (xch_path(), FeatureTiming::Off),
        Feature::Subroutines => (return_address_register(), FeatureTiming::Off),
        Feature::DoubleRegfile => (extra_regfile_bank(), FeatureTiming::Off),
    }
}

/// Carry flop, operand inverters for subtract, carry-in mux.
fn carry_unit() -> Netlist {
    let mut n = Netlist::new();
    let operand = n.inputs("operand", 4);
    let sub = n.input("sub");
    let carry_out = n.input("carry_out");
    let we = n.input("we");
    let q = n.register(&[carry_out], we);
    let inv: Vec<_> = operand.iter().map(|&b| n.not(b)).collect();
    let muxed: Vec<_> = (0..4).map(|i| n.mux(sub, inv[i], operand[i])).collect();
    let cin = n.mux(sub, q[0], q[0]); // carry-in select
    n.outputs("b", &muxed);
    n.output("cin", cin);
    n
}

/// Two mux stages for right shifts by 0..=3 with an arithmetic fill.
fn barrel_shifter() -> Netlist {
    let mut n = Netlist::new();
    let a = n.inputs("a", 4);
    let amt = n.inputs("amt", 2);
    let arith = n.input("arith");
    let fill = n.and(arith, a[3]);
    let s1: Vec<_> = (0..4)
        .map(|i| {
            let from = if i + 1 < 4 { a[i + 1] } else { fill };
            n.mux(amt[0], from, a[i])
        })
        .collect();
    let out: Vec<_> = (0..4)
        .map(|i| {
            let from = if i + 2 < 4 { s1[i + 2] } else { fill };
            n.mux(amt[1], from, s1[i])
        })
        .collect();
    n.outputs("y", &out);
    n
}

/// Zero/positive detection and the three mask AND gates.
fn branch_flags() -> Netlist {
    let mut n = Netlist::new();
    let acc = n.inputs("acc", 4);
    let mask = n.inputs("mask", 3);
    let z01 = n.cell(flexgate::CellKind::Nor2, &[acc[0], acc[1]]);
    let z23 = n.cell(flexgate::CellKind::Nor2, &[acc[2], acc[3]]);
    let z = n.and(z01, z23);
    let nz = n.or(acc[3], z);
    let p = n.not(nz);
    let tn = n.and(mask[2], acc[3]);
    let tz = n.and(mask[1], z);
    let tp = n.and(mask[0], p);
    let t1 = n.or(tn, tz);
    let taken = n.or(t1, tp);
    n.output("taken", taken);
    n
}

/// 4×4 array multiplier with a high/low output select.
fn multiplier4x4() -> Netlist {
    let mut n = Netlist::new();
    let a = n.inputs("a", 4);
    let b = n.inputs("b", 4);
    let hi = n.input("hi");
    let zero = n.const0();
    // partial products
    let rows: Vec<Vec<_>> = (0..4)
        .map(|j| (0..4).map(|i| n.and(a[i], b[j])).collect())
        .collect();
    // accumulate rows with ripple adders (shift-and-add array)
    let mut acc: Vec<_> = rows[0].clone();
    acc.push(zero);
    acc.push(zero);
    acc.push(zero);
    acc.push(zero); // 8-bit product accumulator
    for (j, row) in rows.iter().enumerate().skip(1) {
        let mut addend = vec![zero; j];
        addend.extend_from_slice(row);
        while addend.len() < 8 {
            addend.push(zero);
        }
        let (sum, _c) = n.ripple_adder(&acc, &addend, zero);
        acc = sum;
    }
    let out: Vec<_> = (0..4).map(|i| n.mux(hi, acc[i + 4], acc[i])).collect();
    n.outputs("p", &out);
    n
}

/// The exchange path: simultaneous read/write control gating.
fn xch_path() -> Netlist {
    let mut n = Netlist::new();
    let is_xch = n.input("is_xch");
    let we = n.input("we");
    let mem = n.inputs("mem", 4);
    let w = n.or(is_xch, we);
    let gated: Vec<_> = mem.iter().map(|&b| n.and(b, is_xch)).collect();
    n.output("we", w);
    n.outputs("rd", &gated);
    n
}

/// The §6.1 return-address register: "at the cost of 8 flip-flops", plus
/// the PC mux to consume it.
fn return_address_register() -> Netlist {
    let mut n = Netlist::new();
    let pc = n.inputs("pc", 8);
    let call = n.input("call");
    let ret = n.input("ret");
    let q = n.register(&pc, call);
    let muxed: Vec<_> = (0..7).map(|i| n.mux(ret, q[i], pc[i])).collect();
    n.outputs("next", &muxed);
    n
}

/// Eight more 4-bit words plus the wider read tree (the >70 %-area
/// rejected option of §6.1).
fn extra_regfile_bank() -> Netlist {
    let mut n = Netlist::new();
    let d = n.inputs("d", 4);
    let we = n.inputs("we", 8);
    let sel = n.inputs("sel", 3);
    let mut words = Vec::new();
    for &wk in we.iter().take(8).copied().collect::<Vec<_>>().iter() {
        words.push(n.register(&d, wk));
    }
    let read = n.mux_tree(&sel, &words);
    // merging mux layer into the existing read port
    let bank = n.input("bank");
    let merged: Vec<_> = (0..4).map(|i| n.mux(bank, read[i], d[i])).collect();
    n.outputs("q", &merged);
    n
}

/// One extra register-file read port: an 8:1×4 mux tree plus address
/// buffers (the §3.5 "second port would have increased the data memory
/// area by 39 %" structure).
fn regfile_read_port() -> Netlist {
    let mut n = Netlist::new();
    let sel = n.inputs("sel", 3);
    let words: Vec<Vec<_>> = (0..8).map(|k| n.inputs(&format!("w{k}"), 4)).collect();
    let q = n.mux_tree(&sel, &words);
    n.outputs("q", &q);
    n
}

/// Decode for 16-bit instructions (roughly 3× the wired FlexiCore4
/// decode: opcode split, operand extraction, write-enable decode).
fn wide_decode() -> Netlist {
    let mut n = Netlist::new();
    let instr = n.inputs("instr", 16);
    // 5-bit opcode -> a handful of strobes
    let op = &instr[11..16];
    let strobes = n.decoder(&[op[0], op[1], op[2]]);
    let q1 = n.and(op[3], op[4]);
    let gated: Vec<_> = strobes.iter().map(|&s| n.and(s, q1)).collect();
    // rd write decode
    let rd = [instr[8], instr[9], instr[10]];
    let wd = n.decoder(&rd);
    let all: Vec<_> = gated.iter().chain(&wd).copied().collect();
    n.outputs("strobes", &all);
    n
}

/// The nzp + carry flags register.
fn flags_register() -> Netlist {
    let mut n = Netlist::new();
    let d = n.inputs("d", 4);
    let we = n.input("we");
    let q = n.register(&d, we);
    n.outputs("q", &q);
    n
}

/// Pipeline registers for the two-stage machine: the instruction register
/// plus staged control bits. Always-enabled flops (no recirculation mux).
fn pipeline_registers(operand: OperandModel) -> Netlist {
    let width = match operand {
        OperandModel::Accumulator => 8 + 4, // IR + staged control
        OperandModel::LoadStore => 16 + 4,
    };
    let mut n = Netlist::new();
    let d = n.inputs("d", width);
    let q: Vec<_> = d.iter().map(|&b| n.dff_r(b)).collect();
    n.outputs("q", &q);
    n
}

/// Multicycle controller: phase flop plus a second set of control words
/// (§3.4: "additional flip-flop, multiplexer, and control word
/// generation").
fn multicycle_controller(operand: OperandModel) -> Netlist {
    let mut n = Netlist::new();
    let phase_d = n.input("phase_d");
    let en = n.const1();
    let phase = n.register(&[phase_d], en);
    let controls = match operand {
        OperandModel::Accumulator => 6,
        OperandModel::LoadStore => 9,
    };
    let base: Vec<_> = (0..controls).map(|i| n.input(&format!("c{i}"))).collect();
    let alt: Vec<_> = (0..controls).map(|i| n.input(&format!("a{i}"))).collect();
    let muxed: Vec<_> = (0..controls)
        .map(|i| n.mux(phase[0], alt[i], base[i]))
        .collect();
    n.outputs("ctl", &muxed);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexicore::isa::features::FeatureSet;

    fn cfg(operand: OperandModel, uarch: Microarch, features: FeatureSet) -> CoreConfig {
        CoreConfig {
            operand,
            uarch,
            features,
        }
    }

    #[test]
    fn base_acc_sc_is_flexicore4() {
        let cost = estimate(&CoreConfig::flexicore4());
        let fc4 = Report::of(&flexrtl::build_fc4()).total;
        assert!((cost.area_nand2 - fc4.area()).abs() < 1e-9);
        assert_eq!(cost.devices, fc4.devices);
    }

    #[test]
    fn single_feature_area_overheads_match_figure9_bands() {
        let base = estimate(&CoreConfig::flexicore4()).area_nand2;
        let overhead = |f: Feature| {
            let c = cfg(
                OperandModel::Accumulator,
                Microarch::SingleCycle,
                FeatureSet::only(f),
            );
            estimate(&c).area_nand2 / base
        };
        // "modest (<10%) increase" for coalescing, shifter, condition codes
        assert!(overhead(Feature::AddWithCarry) < 1.10);
        assert!(overhead(Feature::BarrelShifter) < 1.10);
        assert!(overhead(Feature::BranchFlags) < 1.10);
        assert!(overhead(Feature::AccExchange) < 1.10);
        assert!(overhead(Feature::Subroutines) < 1.15);
        // the multiplier is the big combinational add
        assert!(overhead(Feature::Multiplier) > 1.10);
        // the doubled register file costs the most (paper: >70 %... our
        // memory is a smaller share of a smaller core, so the band is wide)
        assert!(overhead(Feature::DoubleRegfile) > 1.35);
        assert!(overhead(Feature::DoubleRegfile) > overhead(Feature::Multiplier));
    }

    #[test]
    fn revised_core_area_overhead_is_9_to_37_percent() {
        let base = estimate(&CoreConfig::flexicore4()).area_nand2;
        for c in CoreConfig::dse_cores() {
            let a = estimate(&c).area_nand2 / base;
            assert!(
                (1.05..1.75).contains(&a),
                "{}: relative area {a:.2}",
                c.label()
            );
        }
    }

    #[test]
    fn accumulator_cores_are_smaller_than_load_store() {
        // Figure 12's key ordering
        for uarch in [Microarch::SingleCycle, Microarch::TwoStage] {
            let acc = estimate(&cfg(
                OperandModel::Accumulator,
                uarch,
                FeatureSet::revised(),
            ));
            let ls = estimate(&cfg(OperandModel::LoadStore, uarch, FeatureSet::revised()));
            assert!(
                acc.area_nand2 < ls.area_nand2,
                "{uarch}: acc {} vs ls {}",
                acc.area_nand2,
                ls.area_nand2
            );
        }
    }

    #[test]
    fn multicycle_load_store_sheds_the_second_port() {
        let sc = estimate(&cfg(
            OperandModel::LoadStore,
            Microarch::SingleCycle,
            FeatureSet::revised(),
        ));
        let mc = estimate(&cfg(
            OperandModel::LoadStore,
            Microarch::MultiCycle,
            FeatureSet::revised(),
        ));
        // §6.2: for load-store, multicycle "leads to an area savings
        // substantial enough to offset the additional control complexity"
        assert!(
            mc.area_nand2 < sc.area_nand2 * 1.02,
            "mc {} sc {}",
            mc.area_nand2,
            sc.area_nand2
        );
    }

    #[test]
    fn pipelined_cores_clock_faster() {
        let sc = estimate(&cfg(
            OperandModel::Accumulator,
            Microarch::SingleCycle,
            FeatureSet::revised(),
        ));
        let p = estimate(&cfg(
            OperandModel::Accumulator,
            Microarch::TwoStage,
            FeatureSet::revised(),
        ));
        assert!(p.fmax_hz(4.5) > sc.fmax_hz(4.5) * 1.1);
    }

    #[test]
    fn acc_sc_is_the_smallest_dse_point() {
        // §6.2: "The single-cycle accumulator machine is the smallest design"
        let cores = CoreConfig::dse_cores();
        let areas: Vec<(String, f64)> = cores
            .iter()
            .map(|c| (c.label(), estimate(c).area_nand2))
            .collect();
        let min = areas.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        assert_eq!(min.0, "Acc SC", "{areas:?}");
    }
}
