//! Kernel performance and energy per design point (Figures 11 and 13).
//!
//! For each configuration, kernels run on the matching functional
//! simulator (so dynamic instruction counts are measured, not modelled —
//! [`measure`] batches every input case of a kernel through the
//! multi-core driver), the
//! [`TimingModel`] turns architectural counts into clock cycles, the
//! composed [`CoreCost`] supplies fmax and static
//! power, and energy is static power × runtime — the only kind of energy
//! 0.8 µm IGZO has (§3.1).
//!
//! [`CoreCost`]: crate::area::CoreCost

use crate::area::{estimate, CoreCost};
use crate::config::CoreConfig;
use flexicore::uarch::{BusWidth, TimingModel};
use flexkernels::harness::measure;
use flexkernels::inputs::Sampler;
use flexkernels::{Kernel, RunError};

/// Supply voltage for the DSE energy studies.
pub const DSE_VOLTAGE: f64 = 4.5;
/// Input cases sampled per kernel.
pub const CASES_PER_KERNEL: usize = 12;
/// Sampling seed (shared by every configuration so all cores see the
/// same inputs).
pub const INPUT_SEED: u64 = 0x0D5E;

/// Performance/energy of one kernel on one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelPoint {
    /// The kernel.
    pub kernel: Kernel,
    /// Mean clock cycles per execution.
    pub cycles: f64,
    /// Mean execution time in milliseconds.
    pub time_ms: f64,
    /// Mean energy per execution in microjoules.
    pub energy_uj: f64,
}

/// A configuration with its cost and per-kernel results.
#[derive(Debug, Clone)]
pub struct ConfigResult {
    /// The design point.
    pub config: CoreConfig,
    /// Its composed hardware cost.
    pub cost: CoreCost,
    /// Whether the (uarch, bus) combination can sustain its CPI.
    pub feasible: bool,
    /// Per-kernel measurements.
    pub kernels: Vec<KernelPoint>,
}

impl ConfigResult {
    /// Geometric-mean time across kernels (ms).
    #[must_use]
    pub fn geomean_time_ms(&self) -> f64 {
        geomean(self.kernels.iter().map(|k| k.time_ms))
    }

    /// Geometric-mean energy across kernels (µJ).
    #[must_use]
    pub fn geomean_energy_uj(&self) -> f64 {
        geomean(self.kernels.iter().map(|k| k.energy_uj))
    }
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Measure `config` over the benchmark suite with the given program bus.
///
/// # Errors
///
/// Propagates kernel assembly/simulation errors.
pub fn evaluate(config: &CoreConfig, bus: BusWidth) -> Result<ConfigResult, RunError> {
    let cost = estimate(config);
    let timing = TimingModel {
        microarch: config.uarch,
        bus,
        common_insn_bits: config.common_insn_bits(),
    };
    let fmax = cost.fmax_hz(DSE_VOLTAGE);
    let power_mw = cost.static_power_mw(DSE_VOLTAGE);
    let target = config.target();

    let mut kernels = Vec::with_capacity(Kernel::ALL.len());
    for kernel in Kernel::ALL {
        let cases = Sampler::new(kernel, INPUT_SEED).draw_many(CASES_PER_KERNEL);
        let stats = measure(kernel, target, &cases)?;
        // reconstruct a mean RunResult for the timing model
        let run = flexicore::sim::RunResult {
            cycles: stats.mean_cycles.round() as u64,
            instructions: stats.mean_instructions.round() as u64,
            taken_branches: stats.mean_taken_branches.round() as u64,
            fetched_bytes: stats.mean_fetched_bytes.round() as u64,
            stop: flexicore::sim::StopReason::Halted,
        };
        let cycles = timing.cycles(&run) as f64;
        let time_ms = cycles / fmax * 1_000.0;
        let energy_uj = power_mw * time_ms; // mW × ms = µJ
        kernels.push(KernelPoint {
            kernel,
            cycles,
            time_ms,
            energy_uj,
        });
    }
    Ok(ConfigResult {
        config: *config,
        cost,
        feasible: timing.is_feasible(),
        kernels,
    })
}

/// Evaluate the FlexiCore4 baseline and all six DSE cores (Figure 11's
/// population) with an integrated-memory-width bus.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn figure11_population() -> Result<Vec<ConfigResult>, RunError> {
    let mut out = vec![evaluate(&CoreConfig::flexicore4(), BusWidth::WIDE)?];
    for c in CoreConfig::dse_cores() {
        out.push(evaluate(&c, BusWidth::WIDE)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OperandModel;
    use flexicore::isa::features::FeatureSet;
    use flexicore::uarch::Microarch;

    #[test]
    fn baseline_energy_matches_fabricated_scale() {
        // the FlexiCore4 baseline should land in Figure 8's energy range
        // (tens of µJ per kernel execution)
        let r = evaluate(&CoreConfig::flexicore4(), BusWidth::WIDE).unwrap();
        for k in &r.kernels {
            assert!(
                (0.5..2_000.0).contains(&k.energy_uj),
                "{}: {} µJ",
                k.kernel,
                k.energy_uj
            );
        }
    }

    #[test]
    fn dse_cores_beat_the_baseline_on_energy() {
        // §6.3's direction: the DSE cores consume less energy than the
        // base design, with the load-store machines leading when a wide
        // program bus is available. Our magnitudes are smaller than the
        // paper's 45-56 % because our base-ISA kernels are denser than the
        // authors' (see EXPERIMENTS.md), but the ordering must hold.
        let pop = figure11_population().unwrap();
        let base = pop[0].geomean_energy_uj();
        let rel = |label: &str| {
            pop.iter()
                .find(|r| r.config.label() == label)
                .map(|r| r.geomean_energy_uj() / base)
                .unwrap()
        };
        // load-store cores clearly beat the baseline
        assert!(rel("LS SC") < 0.9, "LS SC {:.2}", rel("LS SC"));
        assert!(rel("LS P") < 0.95, "LS P {:.2}", rel("LS P"));
        // the best point is well under the baseline
        let best = pop[1..]
            .iter()
            .map(|r| r.geomean_energy_uj() / base)
            .fold(f64::INFINITY, f64::min);
        assert!(best < 0.82, "best relative energy {best:.2}");
        // multicycle machines are the worst of each family (Figure 11b)
        assert!(rel("Acc MC") > rel("Acc P"));
        assert!(rel("LS MC") > rel("LS P"));
        // accumulator machines stay in the baseline's neighbourhood
        assert!(rel("Acc SC") < 1.05, "Acc SC {:.2}", rel("Acc SC"));
    }

    #[test]
    fn narrow_bus_rules_out_ls_cpi1() {
        let ls_sc = CoreConfig {
            operand: OperandModel::LoadStore,
            uarch: Microarch::SingleCycle,
            features: FeatureSet::revised(),
        };
        let wide = evaluate(&ls_sc, BusWidth::WIDE).unwrap();
        assert!(wide.feasible);
        let narrow = evaluate(&ls_sc, BusWidth::BYTE).unwrap();
        assert!(!narrow.feasible, "16-bit instructions over an 8-bit bus");
        let ls_mc = CoreConfig {
            uarch: Microarch::MultiCycle,
            ..ls_sc
        };
        assert!(evaluate(&ls_mc, BusWidth::BYTE).unwrap().feasible);
    }

    #[test]
    fn shift_heavy_kernels_speed_up_most() {
        // Figure 11 commentary: XorShift8 and IntAVG gain from the shifter
        let base = evaluate(&CoreConfig::flexicore4(), BusWidth::WIDE).unwrap();
        let acc_p = evaluate(
            &CoreConfig {
                operand: OperandModel::Accumulator,
                uarch: Microarch::TwoStage,
                features: FeatureSet::revised(),
            },
            BusWidth::WIDE,
        )
        .unwrap();
        let speedup = |k: Kernel| {
            let b = base.kernels.iter().find(|x| x.kernel == k).unwrap().time_ms;
            let p = acc_p
                .kernels
                .iter()
                .find(|x| x.kernel == k)
                .unwrap()
                .time_ms;
            b / p
        };
        assert!(speedup(Kernel::IntAvg) > 2.0, "{}", speedup(Kernel::IntAvg));
        assert!(
            speedup(Kernel::IntAvg) > speedup(Kernel::Calculator),
            "calculator is IO-bound and should gain least"
        );
    }
}
