//! Area/code-size trade-off views (Figure 12) and the §6.3 headline
//! summary.

use crate::area::estimate;
use crate::codesize::suite_total_bits;
use crate::config::CoreConfig;
use crate::perf::{figure11_population, ConfigResult};
use flexasm::AsmError;
use flexkernels::RunError;

/// One point of Figure 12: normalized area vs normalized suite code size.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffPoint {
    /// The design point.
    pub config: CoreConfig,
    /// Area relative to the FlexiCore4 baseline.
    pub rel_area: f64,
    /// Benchmark-suite code bits relative to the baseline.
    pub rel_code: f64,
}

/// Compute Figure 12's six points (plus the baseline at (1, 1)).
///
/// # Errors
///
/// Propagates assembler errors.
pub fn figure12_points() -> Result<Vec<TradeoffPoint>, AsmError> {
    let base_cfg = CoreConfig::flexicore4();
    let base_area = estimate(&base_cfg).area_nand2;
    let base_code = suite_total_bits(&base_cfg)? as f64;
    let mut out = vec![TradeoffPoint {
        config: base_cfg,
        rel_area: 1.0,
        rel_code: 1.0,
    }];
    for config in CoreConfig::dse_cores() {
        out.push(TradeoffPoint {
            config,
            rel_area: estimate(&config).area_nand2 / base_area,
            rel_code: suite_total_bits(&config)? as f64 / base_code,
        });
    }
    Ok(out)
}

/// Points not dominated on (area, code size) — smaller is better on both.
#[must_use]
pub fn pareto_frontier(points: &[TradeoffPoint]) -> Vec<TradeoffPoint> {
    points
        .iter()
        .filter(|p| {
            !points.iter().any(|q| {
                (q.rel_area < p.rel_area && q.rel_code <= p.rel_code)
                    || (q.rel_area <= p.rel_area && q.rel_code < p.rel_code)
            })
        })
        .cloned()
        .collect()
}

/// The §6.3 headline numbers across the DSE cores, all relative to the
/// FlexiCore4 baseline.
#[derive(Debug, Clone)]
pub struct DseSummary {
    /// Min/max relative energy (paper: 0.45–0.56 for the CPI-1 cores).
    pub energy_range: (f64, f64),
    /// Min/max relative area (paper: 1.09–1.37).
    pub area_range: (f64, f64),
    /// Best relative suite code size (paper: < 0.30 for the best points).
    pub best_code: f64,
    /// Min/max speedup of the single-cycle and pipelined cores (paper:
    /// 1.53–2.15).
    pub speedup_range: (f64, f64),
    /// The full population backing the summary.
    pub population: Vec<ConfigResult>,
}

/// Compute the summary.
///
/// # Errors
///
/// Propagates kernel errors; assembler errors are reported through the
/// same type.
pub fn summarize() -> Result<DseSummary, RunError> {
    let population = figure11_population()?;
    let base = &population[0];
    let base_energy = base.geomean_energy_uj();
    let base_time = base.geomean_time_ms();
    let base_area = base.cost.area_nand2;
    let base_code = suite_total_bits(&base.config).map_err(RunError::Asm)? as f64;

    let mut energy = (f64::INFINITY, f64::NEG_INFINITY);
    let mut area = (f64::INFINITY, f64::NEG_INFINITY);
    let mut speedup = (f64::INFINITY, f64::NEG_INFINITY);
    let mut best_code = f64::INFINITY;
    for r in &population[1..] {
        let e = r.geomean_energy_uj() / base_energy;
        energy = (energy.0.min(e), energy.1.max(e));
        let a = r.cost.area_nand2 / base_area;
        area = (area.0.min(a), area.1.max(a));
        let code = suite_total_bits(&r.config).map_err(RunError::Asm)? as f64 / base_code;
        best_code = best_code.min(code);
        if r.config.uarch != flexicore::uarch::Microarch::MultiCycle {
            let s = base_time / r.geomean_time_ms();
            speedup = (speedup.0.min(s), speedup.1.max(s));
        }
    }
    Ok(DseSummary {
        energy_range: energy,
        area_range: area,
        best_code,
        speedup_range: speedup,
        population,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure12_shape() {
        let pts = figure12_points().unwrap();
        assert_eq!(pts.len(), 7);
        // every DSE core has denser code than the base ISA
        for p in &pts[1..] {
            assert!(
                p.rel_code < 1.0,
                "{}: rel code {}",
                p.config.label(),
                p.rel_code
            );
            assert!(
                p.rel_area > 1.0,
                "{}: rel area {}",
                p.config.label(),
                p.rel_area
            );
        }
        // load-store achieves the densest code (Figure 12: "slightly
        // higher code density due to the extra expressivity")
        let best = pts[1..]
            .iter()
            .min_by(|a, b| a.rel_code.total_cmp(&b.rel_code))
            .unwrap();
        assert_eq!(best.config.operand, crate::config::OperandModel::LoadStore);
    }

    #[test]
    fn frontier_is_nonempty_and_undominated() {
        let pts = figure12_points().unwrap();
        let front = pareto_frontier(&pts);
        assert!(!front.is_empty());
        for p in &front {
            for q in &pts {
                assert!(
                    !(q.rel_area < p.rel_area && q.rel_code < p.rel_code),
                    "{} dominated by {}",
                    p.config.label(),
                    q.config.label()
                );
            }
        }
    }

    #[test]
    fn headline_summary_bands() {
        // paper: energy 45-56 %, area +9-37 %, code < 30 %, speedup
        // 53-115 %. Our baseline kernels are denser than the authors', so
        // the energy/code magnitudes are attenuated (see EXPERIMENTS.md);
        // the directions and the area band must still hold.
        let s = summarize().unwrap();
        assert!(s.energy_range.0 < 0.82, "best energy {:?}", s.energy_range);
        assert!(s.energy_range.1 < 1.25, "worst energy {:?}", s.energy_range);
        assert!(
            s.area_range.0 > 1.05 && s.area_range.1 < 1.8,
            "{:?}",
            s.area_range
        );
        assert!(s.best_code < 0.60, "best code {}", s.best_code);
        assert!(s.speedup_range.1 > 1.5, "{:?}", s.speedup_range);
    }
}
