//! The explored design space (§6.2): operand model × microarchitecture ×
//! feature set.

use flexicore::isa::features::FeatureSet;
use flexicore::isa::Dialect;
use flexicore::uarch::Microarch;

/// How many operands an instruction names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandModel {
    /// One operand; the accumulator is implicit (8-bit instructions).
    Accumulator,
    /// Two operands over a register file (16-bit instructions).
    LoadStore,
}

impl OperandModel {
    /// The ISA dialect implementing this operand model.
    #[must_use]
    pub fn dialect(self) -> Dialect {
        match self {
            OperandModel::Accumulator => Dialect::ExtendedAcc,
            OperandModel::LoadStore => Dialect::LoadStore,
        }
    }

    /// Short label (`Acc` / `LS`) used in figure output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OperandModel::Accumulator => "Acc",
            OperandModel::LoadStore => "LS",
        }
    }

    /// Width in bits of the *common* instruction encoding (the
    /// accumulator dialects' two-byte branches stall a beat rather than
    /// changing the common width).
    #[must_use]
    pub fn common_insn_bits(self) -> u32 {
        match self {
            OperandModel::Accumulator => 8,
            OperandModel::LoadStore => 16,
        }
    }
}

/// One point of the design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreConfig {
    /// Operand model.
    pub operand: OperandModel,
    /// Microarchitecture.
    pub uarch: Microarch,
    /// Enabled ISA extensions.
    pub features: FeatureSet,
}

impl CoreConfig {
    /// The fabricated FlexiCore4 expressed as a design point (accumulator,
    /// single cycle, no extensions).
    #[must_use]
    pub fn flexicore4() -> CoreConfig {
        CoreConfig {
            operand: OperandModel::Accumulator,
            uarch: Microarch::SingleCycle,
            features: FeatureSet::BASE,
        }
    }

    /// The six DSE cores of §6.2/Figure 11: both operand models × all
    /// three microarchitectures, all with the revised operation set.
    #[must_use]
    pub fn dse_cores() -> Vec<CoreConfig> {
        let mut v = Vec::with_capacity(6);
        for operand in [OperandModel::Accumulator, OperandModel::LoadStore] {
            for uarch in Microarch::ALL {
                v.push(CoreConfig {
                    operand,
                    uarch,
                    features: FeatureSet::revised(),
                });
            }
        }
        v
    }

    /// Figure-style label (`Acc SC`, `LS P`, …).
    #[must_use]
    pub fn label(&self) -> String {
        format!("{} {}", self.operand.label(), self.uarch.label())
    }

    /// The assembler target for this configuration. The base accumulator
    /// point is the *actual* FlexiCore4 dialect (one-byte branches); every
    /// extended point uses the DSE encodings.
    #[must_use]
    pub fn target(&self) -> flexasm::Target {
        if self.operand == OperandModel::Accumulator && self.uses_base_encoding() {
            return flexasm::Target::fc4();
        }
        flexasm::Target {
            dialect: self.operand.dialect(),
            features: self.features,
        }
    }

    /// Whether the configuration adds no *instructions* over FlexiCore4
    /// (the doubled register file changes only the data memory, §6.1, so
    /// it keeps the base encoding).
    fn uses_base_encoding(&self) -> bool {
        use flexicore::isa::features::Feature;
        self.features.without(Feature::DoubleRegfile).is_base()
    }

    /// Width in bits of this configuration's common instruction encoding.
    #[must_use]
    pub fn common_insn_bits(&self) -> u32 {
        self.operand.common_insn_bits()
    }
}

impl core::fmt::Display for CoreConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} [{}]", self.label(), self.features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_dse_cores() {
        let cores = CoreConfig::dse_cores();
        assert_eq!(cores.len(), 6);
        let labels: Vec<String> = cores.iter().map(CoreConfig::label).collect();
        assert_eq!(
            labels,
            ["Acc SC", "Acc P", "Acc MC", "LS SC", "LS P", "LS MC"]
        );
        assert!(cores.iter().all(|c| !c.features.is_base()));
    }

    #[test]
    fn flexicore4_point() {
        let f = CoreConfig::flexicore4();
        assert_eq!(f.label(), "Acc SC");
        assert!(f.features.is_base());
        assert_eq!(f.target().dialect, Dialect::Fc4);
        assert_eq!(f.common_insn_bits(), 8);
    }

    #[test]
    fn common_instruction_widths() {
        assert_eq!(OperandModel::Accumulator.common_insn_bits(), 8);
        assert_eq!(OperandModel::LoadStore.common_insn_bits(), 16);
    }
}
