//! # flexdse
//!
//! The paper's design-space exploration (§6): ISA extensions, operand
//! models and microarchitectures for flexible microprocessors.
//!
//! * [`config`] — the explored axes: accumulator vs load-store, single
//!   cycle / two-stage pipeline / multicycle, and the seven candidate ISA
//!   [`Feature`](flexicore::isa::features::Feature)s.
//! * [`area`] — gate-derived cost models: every configuration's area,
//!   device count, static power and critical path are composed from real
//!   `flexgate` component netlists (register files, adders, shifters,
//!   multipliers, pipeline registers).
//! * [`codesize`] — benchmark-suite code size per configuration, via the
//!   feature-conditional assembler (Figures 9 and 10).
//! * [`perf`] — kernel performance and energy for every DSE core relative
//!   to the fabricated FlexiCore4, including the program-bus-width
//!   constraint (Figures 11 and 13).
//! * [`pareto`] — the area/code-size trade-off view (Figure 12) and the
//!   §6.3 headline summary.
//! * [`sweep`] — beyond the paper: an exhaustive sweep over all 2⁷
//!   feature combinations with its Pareto frontier.
//!
//! ```
//! use flexdse::area::estimate;
//! use flexdse::config::CoreConfig;
//!
//! // the baseline design point is exactly the fabricated FlexiCore4
//! let base = estimate(&CoreConfig::flexicore4());
//! assert!((550.0..700.0).contains(&base.area_nand2));
//! // and the revised cores pay the paper's modest area premium
//! for core in CoreConfig::dse_cores() {
//!     assert!(estimate(&core).area_nand2 > base.area_nand2);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod codesize;
pub mod config;
pub mod pareto;
pub mod perf;
pub mod sweep;

pub use config::{CoreConfig, OperandModel};
