//! Exhaustive sweep over all 2⁷ feature combinations.
//!
//! The paper evaluates seven single-extension points and one revised
//! bundle (§6.1). With everything mechanized, nothing stops us from
//! sweeping the entire power set: each combination gets a gate-derived
//! area and the benchmark suite's code size, and the Pareto frontier
//! over (area, code) shows which extensions *earn* their gates — an
//! extension of the paper's methodology rather than a reproduction of a
//! figure.

use crate::area::estimate;
use crate::codesize::suite_code_sizes;
use crate::config::{CoreConfig, OperandModel};
use flexasm::AsmError;
use flexicore::isa::features::FeatureSet;
use flexicore::uarch::Microarch;

/// One swept combination.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The feature combination.
    pub features: FeatureSet,
    /// Core area, NAND2 equivalents (single-cycle accumulator).
    pub area_nand2: f64,
    /// Benchmark-suite size in machine instructions.
    pub suite_instructions: usize,
    /// Benchmark-suite size in bits.
    pub suite_bits: usize,
}

/// Evaluate every feature combination on the single-cycle accumulator
/// machine.
///
/// # Errors
///
/// Propagates assembler errors (none are expected: every combination can
/// assemble the suite through software fallbacks).
pub fn sweep_all_combinations() -> Result<Vec<SweepPoint>, AsmError> {
    FeatureSet::all_combinations()
        .map(|features| {
            let config = CoreConfig {
                operand: OperandModel::Accumulator,
                uarch: Microarch::SingleCycle,
                features,
            };
            let sizes = suite_code_sizes(&config)?;
            Ok(SweepPoint {
                features,
                area_nand2: estimate(&config).area_nand2,
                suite_instructions: sizes.iter().map(|k| k.static_instructions).sum(),
                suite_bits: sizes.iter().map(|k| k.bits).sum(),
            })
        })
        .collect()
}

/// The subset of `points` not dominated on (area, suite instructions) —
/// smaller is better on both.
#[must_use]
pub fn code_area_frontier(points: &[SweepPoint]) -> Vec<SweepPoint> {
    let mut frontier: Vec<SweepPoint> = points
        .iter()
        .filter(|p| {
            !points.iter().any(|q| {
                (q.area_nand2 < p.area_nand2 && q.suite_instructions <= p.suite_instructions)
                    || (q.area_nand2 <= p.area_nand2 && q.suite_instructions < p.suite_instructions)
            })
        })
        .cloned()
        .collect();
    frontier.sort_by(|a, b| a.area_nand2.total_cmp(&b.area_nand2));
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexicore::isa::features::Feature;

    #[test]
    fn sweeps_all_128_combinations() {
        let points = sweep_all_combinations().unwrap();
        assert_eq!(points.len(), 128);
        // every point assembles the whole suite
        assert!(points.iter().all(|p| p.suite_instructions > 100));
    }

    #[test]
    fn more_features_never_grow_the_suite() {
        // adding hardware can only shrink (or keep) instruction counts
        let points = sweep_all_combinations().unwrap();
        let by_set = |set: FeatureSet| {
            points
                .iter()
                .find(|p| p.features == set)
                .unwrap()
                .suite_instructions
        };
        let base = by_set(FeatureSet::BASE);
        for f in Feature::ALL {
            assert!(
                by_set(FeatureSet::only(f)) <= base,
                "{f} must not inflate instruction counts"
            );
        }
        let revised = by_set(FeatureSet::revised());
        assert!(revised < base);
        // the revised set is at least as dense as each of its members
        for f in FeatureSet::revised().iter() {
            assert!(revised <= by_set(FeatureSet::only(f)), "{f}");
        }
    }

    #[test]
    fn frontier_ends_points_are_sane() {
        let points = sweep_all_combinations().unwrap();
        let frontier = code_area_frontier(&points);
        assert!(!frontier.is_empty());
        // the cheapest frontier point is the base machine
        assert!(frontier[0].features.is_base(), "{:?}", frontier[0].features);
        // the frontier is monotone: area up, instructions down
        for w in frontier.windows(2) {
            assert!(w[1].area_nand2 > w[0].area_nand2);
            assert!(w[1].suite_instructions < w[0].suite_instructions);
        }
        // the multiplier-only point buys no code and real area: dominated
        let mul_only = points
            .iter()
            .find(|p| p.features == FeatureSet::only(Feature::Multiplier))
            .unwrap();
        assert!(
            !frontier.iter().any(|p| p.features == mul_only.features),
            "multiplier-only must not be on the frontier"
        );
    }
}
