//! DSE debugging helper: dumps every design point's cost and geomean
//! kernel results plus a base-vs-pipelined cycle comparison per kernel.

use flexdse::codesize::suite_total_bits;
use flexdse::perf::figure11_population;

fn main() {
    let pop = figure11_population().unwrap();
    println!(
        "{:<8} {:>8} {:>8} {:>9} {:>8} {:>8} {:>8}",
        "cfg", "area", "fmax", "power_mW", "gm_t_ms", "gm_E_uJ", "code"
    );
    let bc = suite_total_bits(&pop[0].config).unwrap() as f64;
    for r in &pop {
        println!(
            "{:<8} {:>8.0} {:>8.0} {:>9.2} {:>8.2} {:>8.2} {:>8.2}",
            r.config.label(),
            r.cost.area_nand2,
            r.cost.fmax_hz(4.5),
            r.cost.static_power_mw(4.5),
            r.geomean_time_ms(),
            r.geomean_energy_uj(),
            suite_total_bits(&r.config).unwrap() as f64 / bc,
        );
    }
    println!("\nper-kernel cycles (base vs Acc P):");
    for (b, p) in pop[0].kernels.iter().zip(&pop[2].kernels) {
        println!(
            "  {:<14} {:>8.0} {:>8.0}",
            b.kernel.name(),
            b.cycles,
            p.cycles
        );
    }
}
