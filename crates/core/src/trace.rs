//! Execution tracing.
//!
//! Simulators report one [`StepEvent`] per architectural step; a [`Trace`]
//! is an optional collector used by tests, the RTL co-simulation harness and
//! the examples' `--trace` modes.

/// What happened during one architectural step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepEvent {
    /// Cycle count *before* this step executed.
    pub cycle: u64,
    /// Full (page-extended) fetch address of the instruction.
    pub address: u32,
    /// Program counter value after the step.
    pub next_pc: u8,
    /// Accumulator value after the step (for the load-store dialect, the
    /// value written to `rd`, or the old flags for pure control flow).
    pub acc: u8,
    /// Number of clock cycles the step consumed (1, or 2 for two-byte
    /// fetches such as FlexiCore8 `LOAD BYTE`).
    pub cycles: u64,
    /// Whether this step was a taken control transfer.
    pub taken_branch: bool,
    /// Whether the step hit the halt idiom (taken branch to itself).
    pub halted: bool,
}

/// A bounded in-memory trace of [`StepEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<StepEvent>,
    capacity: Option<usize>,
}

impl Trace {
    /// An unbounded trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// A trace that keeps only the most recent `capacity` events.
    #[must_use]
    pub fn with_capacity_limit(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity: Some(capacity),
        }
    }

    /// Record an event (dropping the oldest if at capacity).
    pub fn record(&mut self, event: StepEvent) {
        if let Some(cap) = self.capacity {
            if self.events.len() == cap && cap > 0 {
                self.events.remove(0);
            }
            if cap == 0 {
                return;
            }
        }
        self.events.push(event);
    }

    /// The recorded events, oldest first.
    #[must_use]
    pub fn events(&self) -> &[StepEvent] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> StepEvent {
        StepEvent {
            cycle,
            address: 0,
            next_pc: 0,
            acc: 0,
            cycles: 1,
            taken_branch: false,
            halted: false,
        }
    }

    #[test]
    fn unbounded_trace_keeps_all() {
        let mut t = Trace::new();
        for i in 0..10 {
            t.record(ev(i));
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.events()[0].cycle, 0);
    }

    #[test]
    fn bounded_trace_keeps_most_recent() {
        let mut t = Trace::with_capacity_limit(3);
        for i in 0..10 {
            t.record(ev(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[0].cycle, 7);
        assert_eq!(t.events()[2].cycle, 9);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut t = Trace::with_capacity_limit(0);
        t.record(ev(1));
        assert!(t.is_empty());
    }
}
