//! Input/output bus peripherals.
//!
//! FlexiCore4 has two four-bit IO buses (one input, one output) that are
//! memory-mapped to data-memory addresses 0 and 1 (§3.3); FlexiCore8's buses
//! are eight bits wide. The simulator models peripherals through the
//! [`InputPort`] and [`OutputPort`] traits. Values are carried in `u8` and
//! masked by the core to its datapath width.

/// A device driving the core's input bus.
///
/// `read` is called once per architectural read of the IPORT address with
/// the current cycle number, letting time-varying peripherals (sensors,
/// user input) present fresh data.
pub trait InputPort {
    /// Sample the bus. The core masks the returned value to its width.
    fn read(&mut self, cycle: u64) -> u8;
}

/// A device observing the core's output bus.
pub trait OutputPort {
    /// Observe a value driven on the bus at the given cycle.
    fn write(&mut self, cycle: u64, value: u8);
}

impl<T: InputPort + ?Sized> InputPort for &mut T {
    fn read(&mut self, cycle: u64) -> u8 {
        (**self).read(cycle)
    }
}

impl<T: OutputPort + ?Sized> OutputPort for &mut T {
    fn write(&mut self, cycle: u64, value: u8) {
        (**self).write(cycle, value);
    }
}

/// An input bus held at a constant value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConstInput {
    value: u8,
}

impl ConstInput {
    /// Hold the bus at `value`.
    #[must_use]
    pub fn new(value: u8) -> Self {
        ConstInput { value }
    }
}

impl InputPort for ConstInput {
    fn read(&mut self, _cycle: u64) -> u8 {
        self.value
    }
}

/// An input bus that presents a scripted sequence of values, one per read.
///
/// After the sequence is exhausted the bus holds the final value (or 0 for
/// an empty script). This models a peripheral that the program polls at its
/// own pace — e.g. the Calculator kernel reading operands and an operation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScriptedInput {
    values: Vec<u8>,
    next: usize,
}

impl ScriptedInput {
    /// Present `values` in order, one per IPORT read.
    #[must_use]
    pub fn new(values: Vec<u8>) -> Self {
        ScriptedInput { values, next: 0 }
    }

    /// Number of reads already served.
    #[must_use]
    pub fn reads(&self) -> usize {
        self.next
    }
}

impl InputPort for ScriptedInput {
    fn read(&mut self, _cycle: u64) -> u8 {
        let v = self
            .values
            .get(self.next)
            .or(self.values.last())
            .copied()
            .unwrap_or(0);
        if self.next < self.values.len() {
            self.next += 1;
        }
        v
    }
}

/// An input bus that *holds* each scripted value for a fixed number of
/// reads before advancing — a simple model of a sampled sensor stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamInput {
    values: Vec<u8>,
    holds: usize,
    served: usize,
}

impl StreamInput {
    /// Present each of `values` for `holds` consecutive reads.
    ///
    /// # Panics
    ///
    /// Panics if `holds` is zero.
    #[must_use]
    pub fn new(values: Vec<u8>, holds: usize) -> Self {
        assert!(holds > 0, "holds must be positive");
        StreamInput {
            values,
            holds,
            served: 0,
        }
    }
}

impl InputPort for StreamInput {
    fn read(&mut self, _cycle: u64) -> u8 {
        let idx = self.served / self.holds;
        let v = self
            .values
            .get(idx)
            .or(self.values.last())
            .copied()
            .unwrap_or(0);
        self.served += 1;
        v
    }
}

/// An output bus that records every value written, with its cycle stamp.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecordingOutput {
    writes: Vec<(u64, u8)>,
}

impl RecordingOutput {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        RecordingOutput::default()
    }

    /// All `(cycle, value)` writes observed so far.
    #[must_use]
    pub fn writes(&self) -> &[(u64, u8)] {
        &self.writes
    }

    /// Just the written values, in order.
    #[must_use]
    pub fn values(&self) -> Vec<u8> {
        self.writes.iter().map(|&(_, v)| v).collect()
    }

    /// The most recent value, if any.
    #[must_use]
    pub fn last(&self) -> Option<u8> {
        self.writes.last().map(|&(_, v)| v)
    }

    /// Number of writes observed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }
}

impl OutputPort for RecordingOutput {
    fn write(&mut self, cycle: u64, value: u8) {
        self.writes.push((cycle, value));
    }
}

/// An output bus that discards everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NullOutput;

impl NullOutput {
    /// A sink.
    #[must_use]
    pub fn new() -> Self {
        NullOutput
    }
}

impl OutputPort for NullOutput {
    fn write(&mut self, _cycle: u64, _value: u8) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_input_is_constant() {
        let mut p = ConstInput::new(9);
        assert_eq!(p.read(0), 9);
        assert_eq!(p.read(100), 9);
    }

    #[test]
    fn scripted_input_advances_per_read_and_latches_last() {
        let mut p = ScriptedInput::new(vec![1, 2, 3]);
        assert_eq!(p.read(0), 1);
        assert_eq!(p.read(0), 2);
        assert_eq!(p.read(0), 3);
        assert_eq!(p.read(0), 3);
        assert_eq!(p.reads(), 3);
    }

    #[test]
    fn empty_script_reads_zero() {
        let mut p = ScriptedInput::new(vec![]);
        assert_eq!(p.read(0), 0);
    }

    #[test]
    fn stream_input_holds_values() {
        let mut p = StreamInput::new(vec![7, 8], 2);
        assert_eq!([p.read(0), p.read(0), p.read(0), p.read(0)], [7, 7, 8, 8]);
        assert_eq!(p.read(0), 8); // latches last
    }

    #[test]
    fn recording_output_collects() {
        let mut o = RecordingOutput::new();
        o.write(5, 0xA);
        o.write(9, 0xB);
        assert_eq!(o.values(), vec![0xA, 0xB]);
        assert_eq!(o.last(), Some(0xB));
        assert_eq!(o.writes(), &[(5, 0xA), (9, 0xB)]);
        assert_eq!(o.len(), 2);
    }

    #[test]
    fn trait_objects_usable() {
        let mut rec = RecordingOutput::new();
        {
            let out: &mut dyn OutputPort = &mut rec;
            let borrowed = &mut *out;
            borrowed.write(0, 1);
        }
        assert_eq!(rec.last(), Some(1));
    }
}
