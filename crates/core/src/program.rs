//! Program images for the off-chip program memory.
//!
//! FlexiCores are *field reprogrammable*: the program lives in an external
//! memory and is fetched byte-by-byte over a dedicated instruction bus
//! (§3.3). A [`Program`] is that external memory's contents. Programs larger
//! than one 128-byte page rely on the off-chip [`Mmu`](crate::mmu::Mmu) to
//! switch pages.

use crate::mmu::PAGE_COUNT;

/// Bytes per program page (the reach of the 7-bit program counter).
pub const PAGE_BYTES: usize = 128;

/// An immutable program image held in the external program memory.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Program {
    bytes: Vec<u8>,
}

impl Program {
    /// An empty program.
    #[must_use]
    pub fn new() -> Self {
        Program::default()
    }

    /// Build from raw machine-code bytes.
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds the 16-page (2048-byte) address space
    /// reachable through the MMU.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        assert!(
            bytes.len() <= PAGE_BYTES * PAGE_COUNT,
            "program of {} bytes exceeds the {}-byte MMU-extended address space",
            bytes.len(),
            PAGE_BYTES * PAGE_COUNT
        );
        Program { bytes }
    }

    /// Build from single-byte instruction words (convenient for FlexiCore4).
    #[must_use]
    pub fn from_words(words: &[u8]) -> Self {
        Program::from_bytes(words.to_vec())
    }

    /// The byte at `address`, if within the image.
    #[must_use]
    pub fn fetch(&self, address: u32) -> Option<u8> {
        self.bytes.get(address as usize).copied()
    }

    /// A slice starting at `address` (empty if out of range); used by
    /// multi-byte instruction decoders.
    #[must_use]
    pub fn window(&self, address: u32) -> &[u8] {
        self.bytes.get(address as usize..).unwrap_or(&[])
    }

    /// Total image size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` if the image holds no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Number of 128-byte pages the image occupies (rounded up).
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.bytes.len().div_ceil(PAGE_BYTES)
    }

    /// `true` if the program fits in a single page and therefore does not
    /// need the off-chip MMU.
    #[must_use]
    pub fn fits_one_page(&self) -> bool {
        self.bytes.len() <= PAGE_BYTES
    }

    /// The raw bytes of the image.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl From<Vec<u8>> for Program {
    fn from(bytes: Vec<u8>) -> Self {
        Program::from_bytes(bytes)
    }
}

impl AsRef<[u8]> for Program {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl FromIterator<u8> for Program {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Program::from_bytes(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_and_window() {
        let p = Program::from_words(&[1, 2, 3]);
        assert_eq!(p.fetch(0), Some(1));
        assert_eq!(p.fetch(2), Some(3));
        assert_eq!(p.fetch(3), None);
        assert_eq!(p.window(1), &[2, 3]);
        assert_eq!(p.window(99), &[] as &[u8]);
    }

    #[test]
    fn page_accounting() {
        assert_eq!(Program::new().page_count(), 0);
        assert!(Program::from_bytes(vec![0; 128]).fits_one_page());
        let two = Program::from_bytes(vec![0; 129]);
        assert!(!two.fits_one_page());
        assert_eq!(two.page_count(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_program_rejected() {
        let _ = Program::from_bytes(vec![0; 128 * 16 + 1]);
    }

    #[test]
    fn collect_from_iterator() {
        let p: Program = (0u8..4).collect();
        assert_eq!(p.as_bytes(), &[0, 1, 2, 3]);
    }
}
