//! The dialect-generic execution engine.
//!
//! Every FlexiCore dialect simulator used to carry its own copy of the
//! step/run loop: fetch, fault-hook threading, decode, halt-idiom
//! detection, cycle accounting and the watchdog budget. This module
//! implements that loop **exactly once**. A dialect plugs in by
//! implementing [`Core`] — decode and execute semantics plus a handful
//! of per-dialect accounting knobs — and [`Engine`] drives it.
//!
//! The layer has three public pieces:
//!
//! * [`Core`] + [`Engine`] — the compile-time-generic path. Each
//!   simulator (`Fc4Core`, `Fc8Core`, `XaccCore`, `XlsCore`) implements
//!   [`Core`] and forwards its public `step`/`run` API to an [`Engine`],
//!   so the fault-free path monomorphizes to the same code the
//!   hand-rolled loops compiled to.
//! * [`AnyCore`] — runtime dialect dispatch. Consumers that used to
//!   `match` on [`Dialect`](crate::isa::Dialect) at every call site
//!   (kernel harness, CLI, fault campaigns) construct one `AnyCore` and
//!   use it uniformly.
//! * [`MultiCoreDriver`] — a batched driver stepping N independent
//!   cores (one per simulated die) round-robin in a cache-friendly
//!   loop; wafer screens and fault campaigns run whole batches through
//!   it.

use crate::error::SimError;
use crate::io::{InputPort, OutputPort};
use crate::mmu::Mmu;
use crate::program::Program;
use crate::sim::fault::{ArchState, FaultHook, NoFaults};
use crate::sim::{RunResult, StopReason};
use crate::trace::StepEvent;

mod any;
mod driver;
mod packed;

pub use any::AnyCore;
pub use driver::{Lane, LaneStatus, MultiCoreDriver};
pub use packed::{run_packed_lanes, PackedDriver, PackedLane};

/// In-page program-counter mask shared by every dialect (the PC is 7
/// bits on all FlexiCores).
pub const PC_MASK: u8 = 0x7F;

/// The dialect-independent execution state every [`Core`] embeds: the
/// program image, the off-chip MMU, the program counter, and the run
/// accounting the engine commits after each step.
#[derive(Debug, Clone)]
pub struct ExecState {
    pub(crate) program: Program,
    pub(crate) mmu: Mmu,
    pub(crate) pc: u8,
    pub(crate) cycle: u64,
    pub(crate) instructions: u64,
    pub(crate) taken_branches: u64,
    pub(crate) fetched_bytes: u64,
    pub(crate) halted: bool,
}

impl ExecState {
    /// Power-on state with `program` loaded.
    #[must_use]
    pub fn new(program: Program) -> Self {
        ExecState {
            program,
            mmu: Mmu::new(),
            pc: 0,
            cycle: 0,
            instructions: 0,
            taken_branches: 0,
            fetched_bytes: 0,
            halted: false,
        }
    }

    /// Current program counter (7 bits, in-page).
    #[must_use]
    pub fn pc(&self) -> u8 {
        self.pc
    }

    /// Elapsed clock cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Retired instruction count.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Taken control transfers retired.
    #[must_use]
    pub fn taken_branches(&self) -> u64 {
        self.taken_branches
    }

    /// Program-memory bytes fetched.
    #[must_use]
    pub fn fetched_bytes(&self) -> u64 {
        self.fetched_bytes
    }

    /// Whether the halt idiom has been reached.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The currently selected MMU page.
    #[must_use]
    pub fn page(&self) -> u8 {
        self.mmu.page()
    }

    /// The loaded program image.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Snapshot the accounting as a [`RunResult`].
    #[must_use]
    pub fn run_result(&self) -> RunResult {
        RunResult {
            cycles: self.cycle,
            instructions: self.instructions,
            taken_branches: self.taken_branches,
            fetched_bytes: self.fetched_bytes,
            stop: if self.halted {
                StopReason::Halted
            } else {
                StopReason::CycleLimit
            },
        }
    }
}

/// A checkpoint of one core's full architectural state, excluding the
/// (immutable) program image: the shared [`ExecState`] accounting, the
/// off-chip MMU, and the dialect-private registers flattened into a
/// common layout. Cores are tiny — a snapshot is a few dozen bytes —
/// so checkpointing every K instructions is cheap enough for
/// rollback-recovery executors to take for granted.
///
/// Produced by [`Core::snapshot`]; consumed by [`Core::restore`]. A
/// snapshot only round-trips through a core of the same dialect running
/// the same program (restore does not touch the program image).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Snapshot {
    /// The off-chip MMU (page register, transducer state, delay line).
    pub mmu: Mmu,
    /// Program counter (7 bits, in-page).
    pub pc: u8,
    /// Elapsed clock cycles.
    pub cycle: u64,
    /// Retired instruction count.
    pub instructions: u64,
    /// Taken control transfers retired.
    pub taken_branches: u64,
    /// Program-memory bytes fetched.
    pub fetched_bytes: u64,
    /// Whether the halt idiom had been reached.
    pub halted: bool,
    /// Accumulator (0 on the accumulator-less load-store dialect).
    pub acc: u8,
    /// Link register (0 on dialects without subroutine support).
    pub ra: u8,
    /// Dialect-private flags packed into one byte (carry on the
    /// extended-accumulator dialect; N/Z/P/C on load-store; 0 on the
    /// fabricated dialects, which have no flags).
    pub flags: u8,
    /// Data memory words, or the register file on load-store.
    pub mem: Vec<u8>,
}

impl Snapshot {
    fn empty() -> Self {
        Snapshot {
            mmu: Mmu::new(),
            pc: 0,
            cycle: 0,
            instructions: 0,
            taken_branches: 0,
            fetched_bytes: 0,
            halted: false,
            acc: 0,
            ra: 0,
            flags: 0,
            mem: Vec::new(),
        }
    }

    /// `true` when two snapshots agree on everything a program can
    /// observe — PC, MMU, halt flag, and the dialect registers — while
    /// ignoring the run accounting (cycles, retired instructions, …).
    /// Redundant lanes that diverged and reconverged may legitimately
    /// differ in accounting; a voter comparing architectural agreement
    /// must not flag that as divergence.
    #[must_use]
    pub fn same_arch(&self, other: &Snapshot) -> bool {
        self.mmu == other.mmu
            && self.pc == other.pc
            && self.halted == other.halted
            && self.acc == other.acc
            && self.ra == other.ra
            && self.flags == other.flags
            && self.mem == other.mem
    }
}

/// What an executed instruction did to control flow. The engine owns
/// the PC commit and the halt-idiom check; execute bodies only report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Fall through to the next instruction.
    Sequential,
    /// A taken control transfer.
    Jump {
        /// In-page target address (masked to [`PC_MASK`] by the engine).
        target: u8,
    },
}

/// One dialect's contribution to the execution engine: decode and
/// execute semantics, plus the per-dialect accounting conventions the
/// engine needs to reproduce each simulator's historical numbers.
pub trait Core {
    /// The decoded instruction type.
    type Insn;

    /// How many bytes of the fetch window cross the fetch bus per step
    /// (1 for single-byte dialects, 2 for the two-byte ones). Governs
    /// how many [`FaultHook::on_fetch`] calls a step makes, so fault
    /// campaigns stay bit-for-bit reproducible across the migration.
    const FETCH_WINDOW: usize;

    /// The shared execution state.
    fn state(&self) -> &ExecState;

    /// The shared execution state, mutably.
    fn state_mut(&mut self) -> &mut ExecState;

    /// Translate the page-extended program counter into a byte fetch
    /// address. Identity except for instruction-indexed PCs (the
    /// load-store dialect fetches at `2 * pc`).
    fn fetch_address(&self, page_pc: u32) -> u32 {
        page_pc
    }

    /// Decode the fetch window into an instruction and its encoded
    /// length in bytes. Includes feature-legality checks, so an
    /// un-synthesized instruction fails exactly here.
    ///
    /// # Errors
    ///
    /// [`SimError::IllegalInstruction`] / [`SimError::TruncatedInstruction`]
    /// per the dialect's decode rules.
    fn decode(&self, window: &[u8], address: u32) -> Result<(Self::Insn, u8), SimError>;

    /// Execute one decoded instruction: dialect semantics only. State
    /// commit (PC, counters, halt detection) belongs to the engine.
    fn execute<I: InputPort, O: OutputPort, F: FaultHook>(
        &mut self,
        insn: Self::Insn,
        input: &mut I,
        output: &mut O,
        faults: &mut F,
    ) -> Flow;

    /// Clock cycles one instruction of encoded length `len` costs
    /// (FlexiCore8's two-byte `LOAD BYTE` pays one cycle per fetch
    /// beat; everything else is single-cycle at the ISA level).
    fn insn_cycles(len: u8) -> u64 {
        let _ = len;
        1
    }

    /// Sequential PC increment for an instruction of encoded length
    /// `len` (byte-indexed PCs advance by `len`; the instruction-indexed
    /// load-store PC advances by 1).
    fn pc_increment(len: u8) -> u8 {
        len
    }

    /// The quantity the watchdog budget is measured in: elapsed cycles
    /// on FlexiCore4/8, retired instructions on the extended dialects.
    fn budget_spent(state: &ExecState) -> u64 {
        state.cycle
    }

    /// The dialect's architectural state view for
    /// [`FaultHook::on_state`].
    fn arch_state(&mut self) -> ArchState<'_>;

    /// The accumulator value reported in [`StepEvent::acc`] (0 for
    /// accumulator-less dialects).
    fn event_acc(&self) -> u8 {
        0
    }

    /// Copy the dialect-private architectural state (accumulator,
    /// flags, link register, data memory / register file) into `snap`.
    /// The engine-owned fields of `snap` are already filled by
    /// [`Core::snapshot`].
    fn save_arch(&self, snap: &mut Snapshot);

    /// Restore the dialect-private architectural state from `snap`,
    /// mirroring [`Core::save_arch`].
    fn load_arch(&mut self, snap: &Snapshot);

    /// Checkpoint the full architectural state (shared execution state,
    /// MMU, and dialect registers). The program image is *not* captured
    /// — it is immutable, and snapshots stay a few dozen bytes.
    #[must_use]
    fn snapshot(&self) -> Snapshot {
        let state = self.state();
        let mut snap = Snapshot::empty();
        snap.mmu = state.mmu;
        snap.pc = state.pc;
        snap.cycle = state.cycle;
        snap.instructions = state.instructions;
        snap.taken_branches = state.taken_branches;
        snap.fetched_bytes = state.fetched_bytes;
        snap.halted = state.halted;
        self.save_arch(&mut snap);
        snap
    }

    /// Roll the core back to a previously taken [`Core::snapshot`]. The
    /// program image is untouched; `snap` must come from a core of the
    /// same dialect (same memory geometry) running the same program.
    fn restore(&mut self, snap: &Snapshot) {
        let state = self.state_mut();
        state.mmu = snap.mmu;
        state.pc = snap.pc;
        state.cycle = snap.cycle;
        state.instructions = snap.instructions;
        state.taken_branches = snap.taken_branches;
        state.fetched_bytes = snap.fetched_bytes;
        state.halted = snap.halted;
        self.load_arch(snap);
    }
}

impl<C: Core> Core for &mut C {
    type Insn = C::Insn;
    const FETCH_WINDOW: usize = C::FETCH_WINDOW;

    #[inline]
    fn state(&self) -> &ExecState {
        (**self).state()
    }

    #[inline]
    fn state_mut(&mut self) -> &mut ExecState {
        (**self).state_mut()
    }

    #[inline]
    fn fetch_address(&self, page_pc: u32) -> u32 {
        (**self).fetch_address(page_pc)
    }

    #[inline]
    fn decode(&self, window: &[u8], address: u32) -> Result<(Self::Insn, u8), SimError> {
        (**self).decode(window, address)
    }

    #[inline]
    fn execute<I: InputPort, O: OutputPort, F: FaultHook>(
        &mut self,
        insn: Self::Insn,
        input: &mut I,
        output: &mut O,
        faults: &mut F,
    ) -> Flow {
        (**self).execute(insn, input, output, faults)
    }

    #[inline]
    fn insn_cycles(len: u8) -> u64 {
        C::insn_cycles(len)
    }

    #[inline]
    fn pc_increment(len: u8) -> u8 {
        C::pc_increment(len)
    }

    #[inline]
    fn budget_spent(state: &ExecState) -> u64 {
        C::budget_spent(state)
    }

    #[inline]
    fn arch_state(&mut self) -> ArchState<'_> {
        (**self).arch_state()
    }

    #[inline]
    fn event_acc(&self) -> u8 {
        (**self).event_acc()
    }

    #[inline]
    fn save_arch(&self, snap: &mut Snapshot) {
        (**self).save_arch(snap);
    }

    #[inline]
    fn load_arch(&mut self, snap: &Snapshot) {
        (**self).load_arch(snap);
    }
}

/// The one step/run loop shared by every dialect: fetch (with fault
/// corruption), decode, execute, commit, watchdog.
#[derive(Debug)]
pub struct Engine<C, F = NoFaults> {
    core: C,
    faults: F,
}

impl<C: Core> Engine<C, NoFaults> {
    /// An engine with the fault-free hook (compile-time fast path).
    pub fn new(core: C) -> Self {
        Engine {
            core,
            faults: NoFaults,
        }
    }
}

impl<C: Core, F: FaultHook> Engine<C, F> {
    /// An engine threading `faults` through every step.
    pub fn with_faults(core: C, faults: F) -> Self {
        Engine { core, faults }
    }

    /// The driven core.
    pub fn core(&self) -> &C {
        &self.core
    }

    /// The driven core, mutably.
    pub fn core_mut(&mut self) -> &mut C {
        &mut self.core
    }

    /// Consume the engine, returning the core.
    pub fn into_core(self) -> C {
        self.core
    }

    /// Apply state faults once at the current cycle — the "stuck
    /// power-on bit" hook `run` fires before the first fetch.
    pub fn apply_power_on_faults(&mut self) {
        if F::ACTIVE {
            let cycle = self.core.state().cycle;
            self.faults.on_state(cycle, &mut self.core.arch_state());
        }
    }

    /// Execute one instruction.
    ///
    /// # Errors
    ///
    /// * [`SimError::PageOutOfRange`] if a (corrupted) nonzero page
    ///   register selects a page beyond the program image,
    /// * [`SimError::FetchOutOfBounds`] if the fetch address is outside
    ///   the program image,
    /// * [`SimError::IllegalInstruction`] /
    ///   [`SimError::TruncatedInstruction`] from the dialect's decode.
    #[inline]
    pub fn step<I, O>(&mut self, input: &mut I, output: &mut O) -> Result<StepEvent, SimError>
    where
        I: InputPort,
        O: OutputPort,
    {
        let state = self.core.state_mut();
        state.mmu.tick();
        let page = state.mmu.page();
        let page_pc = state.mmu.extend(state.pc);
        let start_cycle = state.cycle;
        let address = self.core.fetch_address(page_pc);

        // Corrupt-page guard: a page whose first byte lies beyond the
        // image can only come from a corrupted page register or
        // pending-commit latch (software cannot branch to code that was
        // never programmed), so it surfaces as its own recoverable
        // fault rather than a generic out-of-bounds fetch. Page 0 is
        // exempt — running off the end of an unpaged program keeps its
        // historical `FetchOutOfBounds` classification.
        if page != 0 {
            let base = self.core.fetch_address(u32::from(page) << 7) as usize;
            if base >= self.core.state().program.len() {
                return Err(SimError::PageOutOfRange {
                    page,
                    program_len: self.core.state().program.len(),
                });
            }
        }

        let window = self.core.state().program.window(address);
        if window.is_empty() {
            return Err(SimError::FetchOutOfBounds {
                address,
                program_len: self.core.state().program.len(),
            });
        }
        let mut fetch_buf = [0u8; 2];
        let window: &[u8] = if F::ACTIVE {
            let n = window.len().min(C::FETCH_WINDOW);
            for (i, b) in window[..n].iter().enumerate() {
                fetch_buf[i] = self.faults.on_fetch(start_cycle + i as u64, *b);
            }
            &fetch_buf[..n]
        } else {
            window
        };
        let (insn, len) = self.core.decode(window, address)?;

        let flow = self.core.execute(insn, input, output, &mut self.faults);

        let state = self.core.state_mut();
        let mut taken = false;
        let mut next_pc = state.pc.wrapping_add(C::pc_increment(len)) & PC_MASK;
        if let Flow::Jump { target } = flow {
            taken = true;
            let target = target & PC_MASK;
            if target == state.pc {
                state.halted = true;
            }
            next_pc = target;
        }
        state.pc = next_pc;
        state.cycle += C::insn_cycles(len);
        state.instructions += 1;
        state.fetched_bytes += u64::from(len);
        if taken {
            state.taken_branches += 1;
        }
        if F::ACTIVE {
            let cycle = self.core.state().cycle;
            self.faults.on_state(cycle, &mut self.core.arch_state());
        }

        let state = self.core.state();
        Ok(StepEvent {
            cycle: start_cycle,
            address,
            next_pc: state.pc,
            acc: self.core.event_acc(),
            cycles: C::insn_cycles(len),
            taken_branch: taken,
            halted: state.halted,
        })
    }

    /// Run until the halt idiom or until the watchdog `budget` expires
    /// (cycles or retired instructions, per [`Core::budget_spent`]).
    /// State faults are applied once before the first fetch (a stuck
    /// power-on bit) and after every retired instruction.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Engine::step`].
    pub fn run<I, O>(
        &mut self,
        input: &mut I,
        output: &mut O,
        budget: u64,
    ) -> Result<RunResult, SimError>
    where
        I: InputPort,
        O: OutputPort,
    {
        self.apply_power_on_faults();
        self.resume(input, output, budget)
    }

    /// The run loop without the power-on state-fault visit: drive an
    /// already-powered-on core until the halt idiom or until `budget`
    /// expires. This is the drain primitive the batched drivers use —
    /// they apply power-on faults when a lane is admitted, so resuming
    /// must not apply them a second time.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Engine::step`].
    pub fn resume<I, O>(
        &mut self,
        input: &mut I,
        output: &mut O,
        budget: u64,
    ) -> Result<RunResult, SimError>
    where
        I: InputPort,
        O: OutputPort,
    {
        while !self.core.state().halted && C::budget_spent(self.core.state()) < budget {
            self.step(input, output)?;
        }
        Ok(self.core.state().run_result())
    }
}
