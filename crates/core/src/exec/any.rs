//! Runtime dialect dispatch over the four simulators.

use crate::error::SimError;
use crate::io::{InputPort, OutputPort};
use crate::isa::features::FeatureSet;
use crate::isa::Dialect;
use crate::program::Program;
use crate::sim::fault::FaultHook;
use crate::sim::fc4::Fc4Core;
use crate::sim::fc8::Fc8Core;
use crate::sim::xacc::XaccCore;
use crate::sim::xls::XlsCore;
use crate::sim::RunResult;
use crate::trace::StepEvent;

use super::{Core, Snapshot};

/// A core of any dialect behind one type, for consumers that pick the
/// dialect at runtime (CLI, kernel harness, fault campaigns). Replaces
/// the per-call-site `match target.dialect { ... }` blocks.
#[derive(Debug, Clone)]
pub enum AnyCore {
    /// A FlexiCore4 core.
    Fc4(Fc4Core),
    /// A FlexiCore8 core.
    Fc8(Fc8Core),
    /// An extended-accumulator core.
    Xacc(XaccCore),
    /// A load-store core.
    Xls(XlsCore),
}

macro_rules! each_core {
    ($self:expr, $c:ident => $body:expr) => {
        match $self {
            AnyCore::Fc4($c) => $body,
            AnyCore::Fc8($c) => $body,
            AnyCore::Xacc($c) => $body,
            AnyCore::Xls($c) => $body,
        }
    };
}

impl AnyCore {
    /// Construct the simulator matching `dialect` with `program`
    /// loaded. `features` gates decoding on the extended dialects and
    /// is ignored by the fabricated ones.
    #[must_use]
    pub fn for_dialect(dialect: Dialect, features: FeatureSet, program: Program) -> Self {
        match dialect {
            Dialect::Fc4 => AnyCore::Fc4(Fc4Core::new(program)),
            Dialect::Fc8 => AnyCore::Fc8(Fc8Core::new(program)),
            Dialect::ExtendedAcc => AnyCore::Xacc(XaccCore::new(features, program)),
            Dialect::LoadStore => AnyCore::Xls(XlsCore::new(features, program)),
        }
    }

    /// Which dialect this core simulates.
    #[must_use]
    pub fn dialect(&self) -> Dialect {
        match self {
            AnyCore::Fc4(_) => Dialect::Fc4,
            AnyCore::Fc8(_) => Dialect::Fc8,
            AnyCore::Xacc(_) => Dialect::ExtendedAcc,
            AnyCore::Xls(_) => Dialect::LoadStore,
        }
    }

    /// The decode feature set ([`FeatureSet::BASE`] on the fabricated
    /// dialects, whose decoders are feature-blind). Together with
    /// [`dialect`](AnyCore::dialect) and [`program`](AnyCore::program)
    /// this determines decode behaviour completely — the grouping key
    /// packed execution shares a decode cache under.
    #[must_use]
    pub fn features(&self) -> FeatureSet {
        match self {
            AnyCore::Fc4(_) | AnyCore::Fc8(_) => FeatureSet::BASE,
            AnyCore::Xacc(c) => c.features(),
            AnyCore::Xls(c) => c.features(),
        }
    }

    /// Execute one instruction.
    ///
    /// # Errors
    ///
    /// See [`Engine::step`](super::Engine::step).
    pub fn step<I: InputPort, O: OutputPort>(
        &mut self,
        input: &mut I,
        output: &mut O,
    ) -> Result<StepEvent, SimError> {
        each_core!(self, c => c.step(input, output))
    }

    /// [`step`](AnyCore::step) with a fault-injection hook.
    ///
    /// # Errors
    ///
    /// See [`Engine::step`](super::Engine::step).
    pub fn step_with<I: InputPort, O: OutputPort, F: FaultHook>(
        &mut self,
        input: &mut I,
        output: &mut O,
        faults: &mut F,
    ) -> Result<StepEvent, SimError> {
        each_core!(self, c => c.step_with(input, output, faults))
    }

    /// Run until the halt idiom or until the watchdog `budget` expires
    /// (cycles on FlexiCore4/8, retired instructions on the extended
    /// dialects).
    ///
    /// # Errors
    ///
    /// See [`Engine::run`](super::Engine::run).
    pub fn run<I: InputPort, O: OutputPort>(
        &mut self,
        input: &mut I,
        output: &mut O,
        budget: u64,
    ) -> Result<RunResult, SimError> {
        each_core!(self, c => c.run(input, output, budget))
    }

    /// [`run`](AnyCore::run) with a fault-injection hook.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`](super::Engine::run).
    pub fn run_with<I: InputPort, O: OutputPort, F: FaultHook>(
        &mut self,
        input: &mut I,
        output: &mut O,
        budget: u64,
        faults: &mut F,
    ) -> Result<RunResult, SimError> {
        each_core!(self, c => c.run_with(input, output, budget, faults))
    }

    /// [`run_with`](AnyCore::run_with) minus the power-on state-fault
    /// visit: drive an already-powered-on core until the halt idiom or
    /// until `budget` expires, in the dialect's own tight run loop. One
    /// dialect dispatch covers the whole drain, so batched drivers
    /// retire a lane at serial-run speed instead of paying three
    /// dispatches per instruction.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`](super::Engine::run).
    pub fn resume_with<I: InputPort, O: OutputPort, F: FaultHook>(
        &mut self,
        input: &mut I,
        output: &mut O,
        budget: u64,
        faults: &mut F,
    ) -> Result<RunResult, SimError> {
        each_core!(self, c => super::Engine::with_faults(&mut *c, faults).resume(input, output, budget))
    }

    /// Reset architectural state, keeping program (and features).
    pub fn reset(&mut self) {
        each_core!(self, c => c.reset());
    }

    /// Whether the halt idiom has been reached.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        each_core!(self, c => c.is_halted())
    }

    /// Current program counter (7 bits, in-page).
    #[must_use]
    pub fn pc(&self) -> u8 {
        each_core!(self, c => c.pc())
    }

    /// Elapsed clock cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        each_core!(self, c => c.cycles())
    }

    /// Retired instruction count.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        each_core!(self, c => c.instructions())
    }

    /// The currently selected MMU page.
    #[must_use]
    pub fn page(&self) -> u8 {
        each_core!(self, c => c.page())
    }

    /// The loaded program image.
    #[must_use]
    pub fn program(&self) -> &Program {
        each_core!(self, c => c.program())
    }

    /// The data-memory word or register at `addr`, or `None` when out
    /// of range for the dialect.
    #[must_use]
    pub fn mem(&self, addr: u8) -> Option<u8> {
        match self {
            AnyCore::Fc4(c) => c.mem(addr),
            AnyCore::Fc8(c) => c.mem(addr),
            AnyCore::Xacc(c) => c.mem(addr),
            AnyCore::Xls(c) => c.reg(addr),
        }
    }

    /// The accumulator, or `None` on the accumulator-less load-store
    /// dialect.
    #[must_use]
    pub fn acc(&self) -> Option<u8> {
        match self {
            AnyCore::Fc4(c) => Some(c.acc()),
            AnyCore::Fc8(c) => Some(c.acc()),
            AnyCore::Xacc(c) => Some(c.acc()),
            AnyCore::Xls(_) => None,
        }
    }

    /// How much of a watchdog budget this core has consumed: elapsed
    /// cycles on FlexiCore4/8, retired instructions on the extended
    /// dialects (mirrors each dialect's `run` loop condition).
    #[must_use]
    pub fn budget_spent(&self) -> u64 {
        match self {
            AnyCore::Fc4(c) => Fc4Core::budget_spent(c.state()),
            AnyCore::Fc8(c) => Fc8Core::budget_spent(c.state()),
            AnyCore::Xacc(c) => XaccCore::budget_spent(c.state()),
            AnyCore::Xls(c) => XlsCore::budget_spent(c.state()),
        }
    }

    /// Apply state faults once at the current cycle — the "stuck
    /// power-on bit" hook `run_with` fires before the first fetch. The
    /// [`MultiCoreDriver`](super::MultiCoreDriver) calls this when a
    /// lane is admitted so batched runs match serial `run_with` exactly.
    pub fn power_on_faults<F: FaultHook>(&mut self, faults: &mut F) {
        if F::ACTIVE {
            each_core!(self, c => {
                let cycle = c.cycles();
                faults.on_state(cycle, &mut c.arch_state());
            });
        }
    }

    /// Snapshot the run accounting as a [`RunResult`].
    #[must_use]
    pub fn run_result(&self) -> RunResult {
        each_core!(self, c => c.state().run_result())
    }

    /// Checkpoint the full architectural state (see [`Core::snapshot`]).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        each_core!(self, c => c.snapshot())
    }

    /// Roll back to a previously taken [`AnyCore::snapshot`]. The
    /// snapshot must come from a core of the same dialect running the
    /// same program (see [`Core::restore`]) — restoring onto a freshly
    /// constructed clone of the snapshotted core is how a rollback
    /// executor migrates a checkpoint onto a spare die.
    pub fn restore(&mut self, snap: &Snapshot) {
        each_core!(self, c => c.restore(snap));
    }
}
