//! Batched multi-core driver: N independent dies stepped in one loop.
//!
//! Wafer-scale work — yield screens, salvage analysis, fault-injection
//! campaigns — runs the *same program* on many simulated dies that
//! differ only in inputs and defect faults. Instead of running each die
//! to completion serially, [`MultiCoreDriver`] admits one [`Lane`] per
//! die and sweeps all running lanes round-robin, one instruction each,
//! keeping the per-step state of the whole batch hot in cache. Lanes
//! are fully independent, so results are bit-for-bit identical to
//! serial `run_with` calls; the driver is the seam a future parallel
//! wafer Monte-Carlo plugs into.

use crate::error::SimError;
use crate::io::{InputPort, OutputPort};
use crate::sim::fault::{FaultHook, NoFaults};
use crate::sim::RunResult;

use super::AnyCore;

/// How one lane left the driver.
#[derive(Debug, Clone, PartialEq)]
pub enum LaneStatus {
    /// Still executing (not halted, fuel not exhausted).
    Running,
    /// Reached the halt idiom; accounting snapshot attached.
    Done(RunResult),
    /// Exhausted its fuel budget without halting — the lane is hung,
    /// but the rest of the batch keeps running to its own budgets.
    Hung(RunResult),
    /// The simulator faulted (illegal instruction, bad fetch, …).
    Faulted(SimError),
}

impl LaneStatus {
    /// `true` while the lane is still executing.
    #[must_use]
    pub fn is_running(&self) -> bool {
        matches!(self, LaneStatus::Running)
    }

    /// The accounting snapshot of a retired lane ([`Done`](LaneStatus::Done)
    /// or [`Hung`](LaneStatus::Hung)); `None` while running or faulted.
    #[must_use]
    pub fn result(&self) -> Option<&RunResult> {
        match self {
            LaneStatus::Done(r) | LaneStatus::Hung(r) => Some(r),
            LaneStatus::Running | LaneStatus::Faulted(_) => None,
        }
    }
}

/// One simulated die: a core plus its private IO ports and fault hook.
#[derive(Debug)]
pub struct Lane<I, O, F = NoFaults> {
    /// The die's core.
    pub core: AnyCore,
    /// The die's input port.
    pub input: I,
    /// The die's output port.
    pub output: O,
    /// The die's fault hook (defect faults, or a transparent plane).
    pub faults: F,
    /// This lane's private watchdog fuel (same units as the dialect's
    /// `run` budget). A hung lane burns only its own fuel; it cannot
    /// starve the rest of the batch.
    pub fuel: u64,
    /// Where the lane stands.
    pub status: LaneStatus,
}

/// Steps N independent cores in a cache-friendly round-robin loop.
#[derive(Debug)]
pub struct MultiCoreDriver<I, O, F = NoFaults> {
    lanes: Vec<Lane<I, O, F>>,
    /// Indices of lanes still [`Running`](LaneStatus::Running), in
    /// admission order. Retired lanes drop out here so `step_all` never
    /// rescans them — on long batches where a few lanes outlive the
    /// rest, the sweep cost tracks live lanes, not admitted lanes.
    active: Vec<usize>,
    budget: u64,
}

impl<I: InputPort, O: OutputPort, F: FaultHook> MultiCoreDriver<I, O, F> {
    /// An empty driver; every lane gets the same watchdog `budget`
    /// (cycles on FlexiCore4/8, retired instructions on the extended
    /// dialects — the same units as each dialect's `run`).
    #[must_use]
    pub fn new(budget: u64) -> Self {
        MultiCoreDriver {
            lanes: Vec::new(),
            active: Vec::new(),
            budget,
        }
    }

    /// The per-lane watchdog budget.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Number of admitted lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// `true` when no lane has been admitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Number of lanes still running.
    #[must_use]
    pub fn running(&self) -> usize {
        self.active.len()
    }

    /// Admit one die with the driver's default fuel budget. Power-on
    /// state faults are applied immediately (matching what serial
    /// `run_with` does before its first fetch).
    pub fn push(&mut self, core: AnyCore, input: I, output: O, faults: F) {
        let fuel = self.budget;
        self.push_with_fuel(core, input, output, faults, fuel);
    }

    /// [`push`](MultiCoreDriver::push) with a per-lane `fuel` override,
    /// for batches mixing short screens with long-running workloads.
    pub fn push_with_fuel(&mut self, core: AnyCore, input: I, output: O, faults: F, fuel: u64) {
        let mut lane = Lane {
            core,
            input,
            output,
            faults,
            fuel,
            status: LaneStatus::Running,
        };
        lane.core.power_on_faults(&mut lane.faults);
        self.active.push(self.lanes.len());
        self.lanes.push(lane);
    }

    /// Sweep every running lane once: retire lanes that have halted
    /// ([`Done`](LaneStatus::Done)) or burned through their own fuel
    /// ([`Hung`](LaneStatus::Hung)), step the rest by one instruction.
    /// Returns the number of lanes that actually stepped; when it
    /// reaches zero, no lane is [`Running`](LaneStatus::Running).
    pub fn step_all(&mut self) -> usize {
        let mut stepped = 0;
        let lanes = &mut self.lanes;
        self.active.retain(|&idx| {
            let lane = &mut lanes[idx];
            if lane.core.is_halted() {
                lane.status = LaneStatus::Done(lane.core.run_result());
                return false;
            }
            if lane.core.budget_spent() >= lane.fuel {
                lane.status = LaneStatus::Hung(lane.core.run_result());
                return false;
            }
            match lane
                .core
                .step_with(&mut lane.input, &mut lane.output, &mut lane.faults)
            {
                Ok(_) => {
                    stepped += 1;
                    true
                }
                Err(e) => {
                    lane.status = LaneStatus::Faulted(e);
                    false
                }
            }
        });
        stepped
    }

    /// Retire every lane. Lanes are fully independent, so completion
    /// order is unobservable: instead of sweeping one instruction at a
    /// time (three dialect dispatches per instruction, and a cache-cold
    /// visit to every lane's state each sweep), each lane is drained to
    /// completion through [`AnyCore::resume_with`] — the dialect's own
    /// tight run loop, one dispatch per lane. Results are bit-for-bit
    /// identical to the [`step_all`](MultiCoreDriver::step_all) sweep
    /// and to serial `run_with` calls.
    pub fn run_to_completion(&mut self) {
        let lanes = &mut self.lanes;
        for idx in self.active.drain(..) {
            let lane = &mut lanes[idx];
            lane.status = match lane.core.resume_with(
                &mut lane.input,
                &mut lane.output,
                lane.fuel,
                &mut lane.faults,
            ) {
                Ok(r) if r.halted() => LaneStatus::Done(r),
                Ok(r) => LaneStatus::Hung(r),
                Err(e) => LaneStatus::Faulted(e),
            };
        }
    }

    /// The lanes, in admission order.
    #[must_use]
    pub fn lanes(&self) -> &[Lane<I, O, F>] {
        &self.lanes
    }

    /// Consume the driver, yielding the lanes in admission order.
    #[must_use]
    pub fn into_lanes(self) -> Vec<Lane<I, O, F>> {
        self.lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{ConstInput, RecordingOutput, ScriptedInput};
    use crate::isa::fc4::Instruction as I4;
    use crate::isa::features::FeatureSet;
    use crate::isa::Dialect;
    use crate::program::Program;
    use crate::sim::fault::{ArchFault, FaultKind, FaultPlane, StateElement};

    fn fc4_program(insns: &[I4]) -> Program {
        Program::from_bytes(insns.iter().map(|i| i.encode()).collect())
    }

    /// Echo input + 1 to the output port, then halt.
    fn echo_plus_one() -> Program {
        fc4_program(&[
            I4::Load { addr: 0 },
            I4::AddImm { imm: 1 },
            I4::Store { addr: 1 },
            I4::NandImm { imm: 0 },
            I4::Branch { target: 4 },
        ])
    }

    #[test]
    fn batched_lanes_match_serial_runs() {
        let program = echo_plus_one();
        let mut driver = MultiCoreDriver::new(1_000);
        for v in 0..4u8 {
            driver.push(
                AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, program.clone()),
                ScriptedInput::new(vec![v]),
                RecordingOutput::new(),
                NoFaults,
            );
        }
        driver.run_to_completion();
        for (v, lane) in driver.into_lanes().into_iter().enumerate() {
            let mut core = AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, program.clone());
            let mut input = ScriptedInput::new(vec![v as u8]);
            let mut output = RecordingOutput::new();
            let serial = core.run(&mut input, &mut output, 1_000).unwrap();
            assert_eq!(lane.status, LaneStatus::Done(serial));
            assert_eq!(lane.output.values(), output.values());
        }
    }

    #[test]
    fn budget_exhaustion_hangs_a_lane() {
        // spin between two addresses: never the halt idiom
        let program = fc4_program(&[I4::NandImm { imm: 0 }, I4::Branch { target: 0 }]);
        let mut driver = MultiCoreDriver::new(50);
        driver.push(
            AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, program),
            ConstInput::new(0),
            RecordingOutput::new(),
            NoFaults,
        );
        driver.run_to_completion();
        match &driver.lanes()[0].status {
            LaneStatus::Hung(r) => {
                assert!(!r.halted());
                assert_eq!(r.cycles, 50);
            }
            other => panic!("expected Hung, got {other:?}"),
        }
    }

    #[test]
    fn per_lane_fuel_is_independent() {
        // one spinner on a short leash next to a spinner on a long one:
        // the short lane hangs at its own fuel, the long lane keeps
        // running, and a finite batch still completes
        let spin = fc4_program(&[I4::NandImm { imm: 0 }, I4::Branch { target: 0 }]);
        let mut driver = MultiCoreDriver::new(1_000);
        driver.push_with_fuel(
            AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, spin.clone()),
            ConstInput::new(0),
            RecordingOutput::new(),
            NoFaults,
            10,
        );
        driver.push(
            AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, spin),
            ConstInput::new(0),
            RecordingOutput::new(),
            NoFaults,
        );
        driver.run_to_completion();
        let lanes = driver.lanes();
        match (&lanes[0].status, &lanes[1].status) {
            (LaneStatus::Hung(short), LaneStatus::Hung(long)) => {
                assert_eq!(short.cycles, 10);
                assert_eq!(long.cycles, 1_000);
            }
            other => panic!("expected two hung lanes, got {other:?}"),
        }
    }

    #[test]
    fn faulted_lane_does_not_stall_the_batch() {
        let bad = fc4_program(&[I4::AddImm { imm: 1 }]); // falls off the end
        let good = echo_plus_one();
        let mut driver = MultiCoreDriver::new(1_000);
        driver.push(
            AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, bad),
            ConstInput::new(0),
            RecordingOutput::new(),
            FaultPlane::new(),
        );
        driver.push(
            AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, good),
            ConstInput::new(2),
            RecordingOutput::new(),
            FaultPlane::new(),
        );
        driver.run_to_completion();
        let lanes = driver.into_lanes();
        assert!(matches!(
            lanes[0].status,
            LaneStatus::Faulted(SimError::FetchOutOfBounds { .. })
        ));
        match &lanes[1].status {
            LaneStatus::Done(r) => assert!(r.halted()),
            other => panic!("expected Done, got {other:?}"),
        }
        assert_eq!(lanes[1].output.values(), vec![3]);
    }

    #[test]
    fn power_on_faults_apply_before_first_fetch() {
        // PC stuck-at bit 1 on power-on redirects execution to the halt
        // tail at address 2, skipping the store entirely.
        let program = fc4_program(&[
            I4::AddImm { imm: 5 },
            I4::Store { addr: 1 },
            I4::NandImm { imm: 0 },
            I4::Branch { target: 3 },
        ]);
        let plane = FaultPlane::with_faults(vec![ArchFault {
            element: StateElement::Pc,
            bit: 1,
            kind: FaultKind::StuckAt1,
        }]);
        let mut driver = MultiCoreDriver::new(1_000);
        driver.push(
            AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, program.clone()),
            ConstInput::new(0),
            RecordingOutput::new(),
            plane.clone(),
        );
        driver.run_to_completion();
        let lanes = driver.into_lanes();

        let mut core = AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, program);
        let mut input = ConstInput::new(0);
        let mut output = RecordingOutput::new();
        let mut serial_plane = plane;
        let serial = core
            .run_with(&mut input, &mut output, 1_000, &mut serial_plane)
            .unwrap();
        assert_eq!(lanes[0].status, LaneStatus::Done(serial));
        assert_eq!(lanes[0].output.values(), output.values());
    }
}
