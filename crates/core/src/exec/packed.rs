//! Packed 64-lane architectural evaluation.
//!
//! [`MultiCoreDriver`](super::MultiCoreDriver) steps N dies through the
//! generic [`AnyCore`] interface, paying a dialect dispatch and a full
//! fetch+decode per lane per step. [`PackedDriver`] is the bit-sliced
//! tier below it: up to 64 lanes of **one concrete dialect running one
//! program image**, stepped monomorphically with a shared decode cache —
//! the architectural analogue of `flexgate`'s 64-lane [`BatchSim`]
//! (one gate evaluation serves 64 dies; here one decode serves 64
//! lanes, and every later revisit of the same address, because the
//! program image is immutable).
//!
//! ## Divergence fallback
//!
//! Lanes whose fault hook answers
//! [`corrupts_fetch`](FaultHook::corrupts_fetch) cannot share the
//! cache: their fetch bytes are corrupted privately, so they fall back
//! to a per-lane fetch + decode — exactly the scalar
//! [`Engine`](super::Engine) path. Every other lane (clean lanes, and
//! fault planes whose faults avoid the fetch bus) takes the cached
//! path, which is bit-for-bit identical because a non-fetch-corrupting
//! hook's `on_fetch` is the identity with no side effects. The scalar
//! `Engine` stays the differential oracle: the lockstep tests in this
//! module and in `tests/packed_lockstep.rs` drive both and demand
//! equality.
//!
//! [`BatchSim`]: ../../flexgate/sim/struct.BatchSim.html

use crate::error::SimError;
use crate::io::{InputPort, OutputPort};
use crate::isa::Dialect;
use crate::sim::fault::{FaultHook, NoFaults};

use super::driver::LaneStatus;
use super::{AnyCore, Core, Flow, PC_MASK};

/// One packed lane: a concrete-dialect core plus its private IO ports
/// and fault hook (the monomorphic sibling of
/// [`Lane`](super::driver::Lane)).
#[derive(Debug)]
pub struct PackedLane<C, I, O, F = NoFaults> {
    /// The lane's core.
    pub core: C,
    /// The lane's input port.
    pub input: I,
    /// The lane's output port.
    pub output: O,
    /// The lane's fault hook.
    pub faults: F,
    /// The lane's private watchdog fuel (same units as the dialect's
    /// `run` budget).
    pub fuel: u64,
    /// Where the lane stands.
    pub status: LaneStatus,
}

/// One shared-decode-cache slot: `None` = never decoded;
/// `Some(result)` is what *every* cache-eligible lane's decode of that
/// address returns, errors included (decode is a pure function of the
/// immutable image).
type DecodeSlot<C> = Option<Result<(<C as Core>::Insn, u8), SimError>>;

/// Steps up to 64 same-dialect, same-program lanes with a shared decode
/// cache and lane-masked retirement.
pub struct PackedDriver<C: Core, I, O, F = NoFaults> {
    lanes: Vec<PackedLane<C, I, O, F>>,
    /// Indices of running lanes, in admission order (lane-masked
    /// stepping: retired lanes drop out and are never rescanned).
    active: Vec<usize>,
    /// One [`DecodeSlot`] per fetch address of the shared program image.
    decode_cache: Vec<DecodeSlot<C>>,
    budget: u64,
}

impl<C, I, O, F> core::fmt::Debug for PackedDriver<C, I, O, F>
where
    C: Core,
    PackedLane<C, I, O, F>: core::fmt::Debug,
{
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PackedDriver")
            .field("lanes", &self.lanes)
            .field("active", &self.active)
            .field(
                "decoded_slots",
                &self.decode_cache.iter().filter(|s| s.is_some()).count(),
            )
            .field("budget", &self.budget)
            .finish()
    }
}

impl<C, I, O, F> PackedDriver<C, I, O, F>
where
    C: Core,
    C::Insn: Clone,
    I: InputPort,
    O: OutputPort,
    F: FaultHook,
{
    /// Lanes one driver can hold (the bit-slice word width).
    pub const MAX_LANES: usize = 64;

    /// An empty driver; every lane gets the same watchdog `budget`.
    #[must_use]
    pub fn new(budget: u64) -> Self {
        PackedDriver {
            lanes: Vec::new(),
            active: Vec::new(),
            decode_cache: Vec::new(),
            budget,
        }
    }

    /// The per-lane watchdog budget.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Number of admitted lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// `true` when no lane has been admitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Number of lanes still running.
    #[must_use]
    pub fn running(&self) -> usize {
        self.active.len()
    }

    /// The running lanes as a 64-bit lane mask (bit `l` set while lane
    /// `l` runs) — the same encoding `flexgate`'s `BitSlice64` uses for
    /// gate-level lanes.
    #[must_use]
    pub fn active_mask(&self) -> u64 {
        self.active.iter().fold(0u64, |m, &i| m | (1u64 << i))
    }

    /// Admit one lane with the driver's default fuel. Power-on state
    /// faults are applied immediately (matching serial `run_with`).
    ///
    /// # Panics
    ///
    /// Panics if the driver already holds [`MAX_LANES`](Self::MAX_LANES)
    /// lanes. Debug builds also check that the lane runs the same
    /// program image as lane 0 — the decode cache is shared, so mixing
    /// images (or decode feature sets) is a caller error;
    /// [`run_packed_lanes`] groups lanes accordingly.
    pub fn push(&mut self, core: C, input: I, output: O, faults: F) {
        let fuel = self.budget;
        self.push_with_fuel(core, input, output, faults, fuel);
    }

    /// [`push`](PackedDriver::push) with a per-lane `fuel` override.
    ///
    /// # Panics
    ///
    /// As [`push`](PackedDriver::push).
    pub fn push_with_fuel(&mut self, core: C, input: I, output: O, faults: F, fuel: u64) {
        assert!(
            self.lanes.len() < Self::MAX_LANES,
            "PackedDriver holds at most {} lanes",
            Self::MAX_LANES
        );
        debug_assert!(
            self.lanes.is_empty() || self.lanes[0].core.state().program() == core.state().program(),
            "all packed lanes must share one program image"
        );
        if self.decode_cache.len() < core.state().program().len() {
            self.decode_cache.resize(core.state().program().len(), None);
        }
        let mut lane = PackedLane {
            core,
            input,
            output,
            faults,
            fuel,
            status: LaneStatus::Running,
        };
        if F::ACTIVE {
            let cycle = lane.core.state().cycles();
            lane.faults.on_state(cycle, &mut lane.core.arch_state());
        }
        self.active.push(self.lanes.len());
        self.lanes.push(lane);
    }

    /// Sweep every running lane once (the lane-masked analogue of
    /// [`MultiCoreDriver::step_all`](super::MultiCoreDriver::step_all)):
    /// retire halted lanes as [`Done`](LaneStatus::Done), fuel-exhausted
    /// lanes as [`Hung`](LaneStatus::Hung), simulator errors as
    /// [`Faulted`](LaneStatus::Faulted); step the rest by one
    /// instruction through the shared decode cache. Returns the number
    /// of lanes that stepped.
    pub fn step_all(&mut self) -> usize {
        let mut stepped = 0;
        let lanes = &mut self.lanes;
        let cache = &mut self.decode_cache;
        self.active.retain(|&idx| {
            let lane = &mut lanes[idx];
            if lane.core.state().is_halted() {
                lane.status = LaneStatus::Done(lane.core.state().run_result());
                return false;
            }
            if C::budget_spent(lane.core.state()) >= lane.fuel {
                lane.status = LaneStatus::Hung(lane.core.state().run_result());
                return false;
            }
            let diverges = F::ACTIVE && lane.faults.corrupts_fetch();
            match step_packed(lane, cache, diverges) {
                Ok(()) => {
                    stepped += 1;
                    true
                }
                Err(e) => {
                    lane.status = LaneStatus::Faulted(e);
                    false
                }
            }
        });
        stepped
    }

    /// Retire every lane. Lanes are fully independent, so completion
    /// order is unobservable: each lane is drained to completion in a
    /// tight loop (its state stays hot in cache, and its fetch-bus
    /// divergence eligibility is latched once instead of being re-asked
    /// every step) rather than swept one instruction at a time. The
    /// shared decode cache persists across lanes either way, and the
    /// results are bit-for-bit identical to the
    /// [`step_all`](PackedDriver::step_all) sweep.
    pub fn run_to_completion(&mut self) {
        let lanes = &mut self.lanes;
        let cache = &mut self.decode_cache;
        for idx in self.active.drain(..) {
            let lane = &mut lanes[idx];
            let diverges = F::ACTIVE && lane.faults.corrupts_fetch();
            lane.status = loop {
                if lane.core.state().is_halted() {
                    break LaneStatus::Done(lane.core.state().run_result());
                }
                if C::budget_spent(lane.core.state()) >= lane.fuel {
                    break LaneStatus::Hung(lane.core.state().run_result());
                }
                if let Err(e) = step_packed(lane, cache, diverges) {
                    break LaneStatus::Faulted(e);
                }
            };
        }
    }

    /// The lanes, in admission order.
    #[must_use]
    pub fn lanes(&self) -> &[PackedLane<C, I, O, F>] {
        &self.lanes
    }

    /// Consume the driver, yielding the lanes in admission order.
    #[must_use]
    pub fn into_lanes(self) -> Vec<PackedLane<C, I, O, F>> {
        self.lanes
    }
}

/// One packed step: [`Engine::step`](super::Engine::step) with the
/// decode replaced by a shared-cache lookup for cache-eligible lanes
/// (`diverges` is the caller's latched
/// [`corrupts_fetch`](FaultHook::corrupts_fetch) answer for this lane).
/// Every other observable effect — MMU tick, page guard, fetch-bounds
/// check, commit accounting, state-fault visit — replicates the scalar
/// engine statement for statement; the lockstep tests hold the two
/// paths equal.
fn step_packed<C, I, O, F>(
    lane: &mut PackedLane<C, I, O, F>,
    cache: &mut [DecodeSlot<C>],
    diverges: bool,
) -> Result<(), SimError>
where
    C: Core,
    C::Insn: Clone,
    I: InputPort,
    O: OutputPort,
    F: FaultHook,
{
    let core = &mut lane.core;
    let state = core.state_mut();
    state.mmu.tick();
    let page = state.mmu.page();
    let page_pc = state.mmu.extend(state.pc);
    let start_cycle = state.cycle;
    let address = core.fetch_address(page_pc);

    if page != 0 {
        let base = core.fetch_address(u32::from(page) << 7) as usize;
        if base >= core.state().program.len() {
            return Err(SimError::PageOutOfRange {
                page,
                program_len: core.state().program.len(),
            });
        }
    }

    let window = core.state().program.window(address);
    if window.is_empty() {
        return Err(SimError::FetchOutOfBounds {
            address,
            program_len: core.state().program.len(),
        });
    }

    let (insn, len) = if diverges {
        // divergence fallback: this lane's fetch bytes are privately
        // corrupted, so decode runs per-lane on the corrupted window
        let mut fetch_buf = [0u8; 2];
        let n = window.len().min(C::FETCH_WINDOW);
        for (i, b) in window[..n].iter().enumerate() {
            fetch_buf[i] = lane.faults.on_fetch(start_cycle + i as u64, *b);
        }
        core.decode(&fetch_buf[..n], address)?
    } else {
        let slot = &mut cache[address as usize];
        if slot.is_none() {
            *slot = Some(core.decode(window, address));
        }
        slot.as_ref().expect("just filled").clone()?
    };

    let flow = core.execute(insn, &mut lane.input, &mut lane.output, &mut lane.faults);

    let state = core.state_mut();
    let mut taken = false;
    let mut next_pc = state.pc.wrapping_add(C::pc_increment(len)) & PC_MASK;
    if let Flow::Jump { target } = flow {
        taken = true;
        let target = target & PC_MASK;
        if target == state.pc {
            state.halted = true;
        }
        next_pc = target;
    }
    state.pc = next_pc;
    state.cycle += C::insn_cycles(len);
    state.instructions += 1;
    state.fetched_bytes += u64::from(len);
    if taken {
        state.taken_branches += 1;
    }
    if F::ACTIVE {
        let cycle = core.state().cycle;
        lane.faults.on_state(cycle, &mut core.arch_state());
    }
    Ok(())
}

/// Run a heterogeneous batch of lanes through the packed tier and
/// return `(status, output)` per lane, in admission order.
///
/// Lanes are grouped by `(dialect, features, program)` — the exact
/// precondition of one [`PackedDriver`]'s shared decode cache — and
/// each group is chunked into ≤ 64-lane packed drivers. Results are
/// scattered back to input order, so callers see the same report a
/// serial [`MultiCoreDriver`](super::MultiCoreDriver) sweep produces,
/// bit for bit.
pub fn run_packed_lanes<I, O, F>(
    lanes: Vec<(AnyCore, I, O, F)>,
    budget: u64,
) -> Vec<(LaneStatus, O)>
where
    I: InputPort,
    O: OutputPort,
    F: FaultHook,
{
    // group indices by cache-compatibility key
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, (core, ..)) in lanes.iter().enumerate() {
        let found = groups.iter_mut().find(|g| {
            let (first, ..) = &lanes[g[0]];
            first.dialect() == core.dialect()
                && first.features() == core.features()
                && first.program() == core.program()
        });
        match found {
            Some(g) => g.push(i),
            None => groups.push(vec![i]),
        }
    }

    let mut slots: Vec<Option<(AnyCore, I, O, F)>> = lanes.into_iter().map(Some).collect();
    let mut results: Vec<Option<(LaneStatus, O)>> = (0..slots.len()).map(|_| None).collect();

    macro_rules! drive_chunk {
        ($variant:ident, $chunk:expr) => {{
            let mut driver = PackedDriver::new(budget);
            for &i in $chunk {
                let (core, input, output, faults) = slots[i].take().expect("taken once");
                let AnyCore::$variant(core) = core else {
                    unreachable!("grouped by dialect")
                };
                driver.push(core, input, output, faults);
            }
            driver.run_to_completion();
            for (&i, lane) in $chunk.iter().zip(driver.into_lanes()) {
                results[i] = Some((lane.status, lane.output));
            }
        }};
    }

    for group in &groups {
        let dialect = slots[group[0]].as_ref().expect("not yet taken").0.dialect();
        for chunk in group.chunks(64) {
            match dialect {
                Dialect::Fc4 => drive_chunk!(Fc4, chunk),
                Dialect::Fc8 => drive_chunk!(Fc8, chunk),
                Dialect::ExtendedAcc => drive_chunk!(Xacc, chunk),
                Dialect::LoadStore => drive_chunk!(Xls, chunk),
            }
        }
    }

    results
        .into_iter()
        .map(|r| r.expect("every lane driven exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::MultiCoreDriver;
    use super::*;
    use crate::io::{ConstInput, RecordingOutput, ScriptedInput};
    use crate::isa::fc4::Instruction as I4;
    use crate::isa::features::FeatureSet;
    use crate::program::Program;
    use crate::sim::fault::{ArchFault, FaultKind, FaultPlane, StateElement};
    use crate::sim::fc4::Fc4Core;

    fn fc4_program(insns: &[I4]) -> Program {
        Program::from_bytes(insns.iter().map(|i| i.encode()).collect())
    }

    fn echo_plus_one() -> Program {
        fc4_program(&[
            I4::Load { addr: 0 },
            I4::AddImm { imm: 1 },
            I4::Store { addr: 1 },
            I4::NandImm { imm: 0 },
            I4::Branch { target: 4 },
        ])
    }

    #[test]
    fn packed_lanes_match_serial_runs() {
        let program = echo_plus_one();
        let mut driver = PackedDriver::new(1_000);
        for v in 0..8u8 {
            driver.push(
                Fc4Core::new(program.clone()),
                ScriptedInput::new(vec![v]),
                RecordingOutput::new(),
                NoFaults,
            );
        }
        driver.run_to_completion();
        assert_eq!(driver.running(), 0);
        for (v, lane) in driver.into_lanes().into_iter().enumerate() {
            let mut core = AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, program.clone());
            let mut input = ScriptedInput::new(vec![v as u8]);
            let mut output = RecordingOutput::new();
            let serial = core.run(&mut input, &mut output, 1_000).unwrap();
            assert_eq!(lane.status, LaneStatus::Done(serial));
            assert_eq!(lane.output.values(), output.values());
        }
    }

    #[test]
    fn active_mask_tracks_lane_retirement() {
        let spin = fc4_program(&[I4::NandImm { imm: 0 }, I4::Branch { target: 0 }]);
        // lanes must share a program; per-lane fuel retires lane 1 early
        let mut driver = PackedDriver::new(1_000);
        driver.push(
            Fc4Core::new(spin.clone()),
            ConstInput::new(0),
            RecordingOutput::new(),
            NoFaults,
        );
        driver.push_with_fuel(
            Fc4Core::new(spin),
            ConstInput::new(0),
            RecordingOutput::new(),
            NoFaults,
            10,
        );
        assert_eq!(driver.active_mask(), 0b11);
        driver.run_to_completion();
        assert_eq!(driver.active_mask(), 0);
        let lanes = driver.lanes();
        assert!(matches!(&lanes[0].status, LaneStatus::Hung(r) if r.cycles == 1_000));
        assert!(matches!(&lanes[1].status, LaneStatus::Hung(r) if r.cycles == 10));
    }

    #[test]
    fn fetch_corrupting_lane_diverges_from_the_cache() {
        // a FetchBus stuck-at flips LOAD into something else on one lane
        // only; the clean lane must still see the cached clean decode
        let program = echo_plus_one();
        let plane = FaultPlane::with_faults(vec![ArchFault {
            element: StateElement::FetchBus,
            bit: 0,
            kind: FaultKind::StuckAt1,
        }]);
        let mut driver = PackedDriver::new(1_000);
        driver.push(
            Fc4Core::new(program.clone()),
            ScriptedInput::new(vec![3]),
            RecordingOutput::new(),
            FaultPlane::new(),
        );
        driver.push(
            Fc4Core::new(program.clone()),
            ScriptedInput::new(vec![3]),
            RecordingOutput::new(),
            plane.clone(),
        );
        driver.run_to_completion();
        let lanes = driver.into_lanes();

        // oracle: serial engine with the same hooks
        for (lane, mut hook) in lanes.into_iter().zip([FaultPlane::new(), plane]) {
            let mut core = AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, program.clone());
            let mut input = ScriptedInput::new(vec![3]);
            let mut output = RecordingOutput::new();
            let serial = core.run_with(&mut input, &mut output, 1_000, &mut hook);
            match serial {
                Ok(r) if r.halted() => assert_eq!(lane.status, LaneStatus::Done(r)),
                Ok(r) => assert_eq!(lane.status, LaneStatus::Hung(r)),
                Err(e) => assert_eq!(lane.status, LaneStatus::Faulted(e)),
            }
            assert_eq!(lane.output.values(), output.values());
        }
    }

    #[test]
    fn non_fetch_fault_lanes_share_the_cache_and_match_multicore() {
        // an ACC stuck-at is ACTIVE but not fetch-corrupting: the packed
        // path must take the cache and still equal the generic driver
        let program = echo_plus_one();
        let plane = FaultPlane::with_faults(vec![ArchFault {
            element: StateElement::Acc,
            bit: 1,
            kind: FaultKind::StuckAt1,
        }]);
        assert!(!plane.corrupts_fetch());

        let mut packed = PackedDriver::new(1_000);
        let mut multi = MultiCoreDriver::new(1_000);
        for v in 0..4u8 {
            packed.push(
                Fc4Core::new(program.clone()),
                ScriptedInput::new(vec![v]),
                RecordingOutput::new(),
                plane.clone(),
            );
            multi.push(
                AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, program.clone()),
                ScriptedInput::new(vec![v]),
                RecordingOutput::new(),
                plane.clone(),
            );
        }
        packed.run_to_completion();
        multi.run_to_completion();
        for (p, m) in packed.into_lanes().into_iter().zip(multi.into_lanes()) {
            assert_eq!(p.status, m.status);
            assert_eq!(p.output.values(), m.output.values());
        }
    }

    #[test]
    fn run_packed_lanes_scatters_mixed_dialects_in_order() {
        let fc4 = echo_plus_one();
        // FlexiCore8 uses a different encoding; just spin-halt it
        let fc8 = Program::from_bytes(vec![0x00]); // whatever decodes, budget-bounded
        let mut batch = Vec::new();
        for v in 0..3u8 {
            batch.push((
                AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, fc4.clone()),
                ScriptedInput::new(vec![v]),
                RecordingOutput::new(),
                FaultPlane::new(),
            ));
            batch.push((
                AnyCore::for_dialect(Dialect::Fc8, FeatureSet::BASE, fc8.clone()),
                ScriptedInput::new(vec![v]),
                RecordingOutput::new(),
                FaultPlane::new(),
            ));
        }
        let results = run_packed_lanes(batch, 100);
        assert_eq!(results.len(), 6);
        // oracle: serial runs in the same interleaved order
        for (i, (status, output)) in results.iter().enumerate() {
            let v = (i / 2) as u8;
            let (dialect, program) = if i % 2 == 0 {
                (Dialect::Fc4, fc4.clone())
            } else {
                (Dialect::Fc8, fc8.clone())
            };
            let mut core = AnyCore::for_dialect(dialect, FeatureSet::BASE, program);
            let mut input = ScriptedInput::new(vec![v]);
            let mut out = RecordingOutput::new();
            let mut hook = FaultPlane::new();
            match core.run_with(&mut input, &mut out, 100, &mut hook) {
                Ok(r) if r.halted() => assert_eq!(status, &LaneStatus::Done(r)),
                Ok(r) => assert_eq!(status, &LaneStatus::Hung(r)),
                Err(e) => assert_eq!(status, &LaneStatus::Faulted(e)),
            }
            assert_eq!(output.values(), out.values());
        }
    }

    #[test]
    fn chunking_past_64_lanes_preserves_order() {
        let program = echo_plus_one();
        let batch: Vec<_> = (0..150u8)
            .map(|v| {
                (
                    AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, program.clone()),
                    ScriptedInput::new(vec![v & 0xF]),
                    RecordingOutput::new(),
                    NoFaults,
                )
            })
            .collect();
        let results = run_packed_lanes(batch, 1_000);
        assert_eq!(results.len(), 150);
        for (v, (status, output)) in results.into_iter().enumerate() {
            assert!(matches!(status, LaneStatus::Done(_)));
            assert_eq!(output.values(), vec![((v as u8 & 0xF) + 1) & 0xF]);
        }
    }
}
