//! Microarchitecture timing models (§3.4, §6.2).
//!
//! The paper's DSE sweeps three implementations of each ISA:
//!
//! * **single-cycle** — every instruction completes in one clock; the clock
//!   period must cover fetch + decode + execute + writeback, so `fmax` is
//!   lowest. This is how the fabricated FlexiCores work.
//! * **two-stage pipeline** — fetch overlapped with execute; `fmax` rises,
//!   at the cost of one bubble per taken control transfer and a set of
//!   pipeline registers.
//! * **multicycle** — separate fetch and execute cycles (CPI = 2), with the
//!   area benefit (for load-store) of sharing one register-file port.
//!
//! Orthogonally, §6.2's Figure 13 varies the **program-bus width**: a core
//! whose instructions are wider than the bus needs one cycle per bus beat
//! just to fetch, which rules out CPI-1 operation ("the single cycle and
//! 2-stage versions of the load-store machine are not possible").
//!
//! [`TimingModel::cycles`] converts the architectural counts reported by a
//! functional simulator ([`RunResult`]) into clock cycles, and
//! [`TimingModel::is_feasible`] reports whether the combination can sustain
//! its nominal CPI at all.

use crate::sim::RunResult;

/// The three microarchitectures of the design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Microarch {
    /// One clock per instruction; lowest `fmax`, no pipeline state.
    SingleCycle,
    /// Two-stage fetch/execute pipeline; taken branches cost one bubble.
    TwoStage,
    /// Separate fetch and execute clocks (CPI = 2).
    MultiCycle,
}

impl Microarch {
    /// All variants, in the paper's presentation order.
    pub const ALL: [Microarch; 3] = [
        Microarch::SingleCycle,
        Microarch::TwoStage,
        Microarch::MultiCycle,
    ];

    /// Short label used in figure output (`SC`, `P`, `MC`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Microarch::SingleCycle => "SC",
            Microarch::TwoStage => "P",
            Microarch::MultiCycle => "MC",
        }
    }
}

impl core::fmt::Display for Microarch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Program-memory bus width in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusWidth {
    bits: u32,
}

impl BusWidth {
    /// The 8-bit instruction bus of the fabricated FlexiCores.
    pub const BYTE: BusWidth = BusWidth { bits: 8 };
    /// A bus wide enough to deliver any instruction in one beat (§6.2's
    /// first scenario, and the natural choice with an integrated program
    /// memory).
    pub const WIDE: BusWidth = BusWidth { bits: 32 };

    /// A bus of `bits` width (must be a positive multiple of 8).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or not byte-aligned.
    #[must_use]
    pub fn new(bits: u32) -> BusWidth {
        assert!(
            bits > 0 && bits.is_multiple_of(8),
            "bus width must be a positive multiple of 8 bits"
        );
        BusWidth { bits }
    }

    /// Width in bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Bus beats needed to move `bytes` program bytes.
    #[must_use]
    pub fn beats(self, bytes: u64) -> u64 {
        let per_beat = u64::from(self.bits / 8);
        bytes.div_ceil(per_beat)
    }
}

/// A concrete (microarchitecture, bus width) timing point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingModel {
    /// The pipeline organisation.
    pub microarch: Microarch,
    /// The program-memory bus width.
    pub bus: BusWidth,
    /// Width in bits of the *common* instruction encoding: 8 for the
    /// accumulator dialects (whose occasional two-byte branches simply
    /// stall one extra fetch beat, like FlexiCore8's `LOAD BYTE`), 16 for
    /// load-store (every instruction).
    pub common_insn_bits: u32,
}

impl TimingModel {
    /// A model for the fabricated FlexiCore4 (single cycle, byte bus,
    /// byte instructions).
    #[must_use]
    pub fn flexicore4() -> TimingModel {
        TimingModel {
            microarch: Microarch::SingleCycle,
            bus: BusWidth::BYTE,
            common_insn_bits: 8,
        }
    }

    /// Whether this design point can sustain its nominal CPI.
    ///
    /// Single-cycle and pipelined machines must fetch their common
    /// instruction in one beat; if the bus is narrower than that they are
    /// infeasible (§6.2: "the single cycle and 2-stage versions of the
    /// load-store machine are not possible" on the 8-bit bus). An
    /// occasional wider instruction (the accumulator dialects' two-byte
    /// branch) merely stalls an extra beat, exactly like FlexiCore8's
    /// `LOAD BYTE`. The multicycle machine is always feasible.
    #[must_use]
    pub fn is_feasible(self) -> bool {
        match self.microarch {
            Microarch::SingleCycle | Microarch::TwoStage => self.bus.bits >= self.common_insn_bits,
            Microarch::MultiCycle => true,
        }
    }

    /// Clock cycles needed to execute the run described by `r`.
    ///
    /// * single-cycle: one clock per instruction, but never fewer clocks
    ///   than fetch beats (a multi-byte instruction on a narrow bus stalls
    ///   until its last byte arrives);
    /// * two-stage: the same plus one bubble per taken control transfer;
    /// * multicycle: one execute clock per instruction plus one fetch clock
    ///   per bus beat.
    ///
    /// For an infeasible point this still returns the stalled count
    /// (useful for "what if" analyses); use [`TimingModel::is_feasible`]
    /// to filter.
    #[must_use]
    pub fn cycles(self, r: &RunResult) -> u64 {
        let fetch_beats = self.bus.beats(r.fetched_bytes);
        match self.microarch {
            Microarch::SingleCycle => r.instructions.max(fetch_beats),
            Microarch::TwoStage => r.instructions.max(fetch_beats) + r.taken_branches,
            Microarch::MultiCycle => fetch_beats + r.instructions,
        }
    }

    /// Execution time in seconds at clock frequency `f_hz`.
    #[must_use]
    pub fn seconds(self, r: &RunResult, f_hz: f64) -> f64 {
        self.cycles(r) as f64 / f_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::StopReason;

    fn run(instructions: u64, taken: u64, bytes: u64) -> RunResult {
        RunResult {
            cycles: instructions,
            instructions,
            taken_branches: taken,
            fetched_bytes: bytes,
            stop: StopReason::Halted,
        }
    }

    #[test]
    fn single_cycle_wide_bus_is_one_cpi() {
        let m = TimingModel {
            microarch: Microarch::SingleCycle,
            bus: BusWidth::WIDE,
            common_insn_bits: 16,
        };
        assert!(m.is_feasible());
        assert_eq!(m.cycles(&run(100, 10, 150)), 100);
    }

    #[test]
    fn pipeline_pays_for_taken_branches() {
        let m = TimingModel {
            microarch: Microarch::TwoStage,
            bus: BusWidth::WIDE,
            common_insn_bits: 16,
        };
        assert_eq!(m.cycles(&run(100, 10, 150)), 110);
    }

    #[test]
    fn occasional_wide_instructions_stall_one_beat() {
        // 100 instructions, 110 bytes over an 8-bit bus: ten two-byte
        // branches cost ten stall beats, not infeasibility
        let m = TimingModel {
            microarch: Microarch::SingleCycle,
            bus: BusWidth::BYTE,
            common_insn_bits: 8,
        };
        assert!(m.is_feasible());
        assert_eq!(m.cycles(&run(100, 10, 110)), 110);
    }

    #[test]
    fn multicycle_pays_fetch_beats() {
        let m = TimingModel {
            microarch: Microarch::MultiCycle,
            bus: BusWidth::BYTE,
            common_insn_bits: 16,
        };
        // 150 bytes over an 8-bit bus = 150 beats + 100 executes
        assert_eq!(m.cycles(&run(100, 10, 150)), 250);
        let wide = TimingModel {
            bus: BusWidth::WIDE,
            ..m
        };
        // 150 bytes over 32-bit bus: ceil(150/4) = 38 beats
        assert_eq!(wide.cycles(&run(100, 10, 150)), 138);
    }

    #[test]
    fn narrow_bus_rules_out_cpi1_for_wide_instructions() {
        let sc = TimingModel {
            microarch: Microarch::SingleCycle,
            bus: BusWidth::BYTE,
            common_insn_bits: 16,
        };
        assert!(!sc.is_feasible());
        let p = TimingModel {
            microarch: Microarch::TwoStage,
            ..sc
        };
        assert!(!p.is_feasible());
        let mc = TimingModel {
            microarch: Microarch::MultiCycle,
            ..sc
        };
        assert!(mc.is_feasible());
    }

    #[test]
    fn flexicore4_point_matches_fabricated_chip() {
        let m = TimingModel::flexicore4();
        assert!(m.is_feasible());
        // one instruction = one byte = one cycle
        assert_eq!(m.cycles(&run(500, 80, 500)), 500);
    }

    #[test]
    fn bus_beats_round_up() {
        assert_eq!(BusWidth::BYTE.beats(5), 5);
        assert_eq!(BusWidth::WIDE.beats(5), 2);
        assert_eq!(BusWidth::new(16).beats(5), 3);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn invalid_bus_width_panics() {
        let _ = BusWidth::new(12);
    }

    #[test]
    fn seconds_at_12_5_khz() {
        let m = TimingModel::flexicore4();
        let s = m.seconds(&run(12_500, 0, 12_500), 12_500.0);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
