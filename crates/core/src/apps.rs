//! The target-application catalog of Table 1 (§3.2).
//!
//! The paper justifies every FlexiCore design decision against a set of
//! flexible-electronics applications with lax sample rates, low precision
//! and low duty cycles. This module encodes Table 1 and answers the §3.2
//! question programmatically: *can a given core serve a given
//! application?* — a core is feasible when it can finish the per-sample
//! computation between samples and its datapath covers the precision
//! (multi-word arithmetic covers wider data at a cycle cost, as the
//! kernels demonstrate).

/// How often an application activates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Duty {
    /// Runs continuously or for hours at a time.
    ContinuousToHours,
    /// Activates for minutes at a time.
    Minutes,
    /// Activates for seconds at a time.
    Seconds,
    /// One-shot (e.g. point-of-sale computation).
    SingleUse,
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Application {
    /// Application name as printed in Table 1.
    pub name: &'static str,
    /// Worst-case sample rate in hertz.
    pub sample_rate_hz: f64,
    /// Required data precision in bits.
    pub precision_bits: u32,
    /// Duty cycle class.
    pub duty: Duty,
}

/// The twenty applications of Table 1.
pub const TABLE1: [Application; 20] = [
    Application {
        name: "Blood Pressure Sensor",
        sample_rate_hz: 100.0,
        precision_bits: 8,
        duty: Duty::ContinuousToHours,
    },
    Application {
        name: "Body Temperature Sensor",
        sample_rate_hz: 1.0,
        precision_bits: 8,
        duty: Duty::Minutes,
    },
    Application {
        name: "Odor Sensor",
        sample_rate_hz: 25.0,
        precision_bits: 8,
        duty: Duty::Minutes,
    },
    Application {
        name: "Smart Bandage",
        sample_rate_hz: 0.01,
        precision_bits: 8,
        duty: Duty::ContinuousToHours,
    },
    Application {
        name: "Heart Beat Sensor",
        sample_rate_hz: 4.0,
        precision_bits: 1,
        duty: Duty::Seconds,
    },
    Application {
        name: "Tremor Sensor",
        sample_rate_hz: 25.0,
        precision_bits: 16,
        duty: Duty::Seconds,
    },
    Application {
        name: "Pressure Sensor",
        sample_rate_hz: 5.5,
        precision_bits: 12,
        duty: Duty::ContinuousToHours,
    },
    Application {
        name: "Oral-Nasal Airflow",
        sample_rate_hz: 25.0,
        precision_bits: 8,
        duty: Duty::Seconds,
    },
    Application {
        name: "Light Level Sensor",
        sample_rate_hz: 1.0,
        precision_bits: 8,
        duty: Duty::ContinuousToHours,
    },
    Application {
        name: "Perspiration Sensor",
        sample_rate_hz: 25.0,
        precision_bits: 8,
        duty: Duty::Minutes,
    },
    Application {
        name: "Trace Metal Sensor",
        sample_rate_hz: 25.0,
        precision_bits: 16,
        duty: Duty::Minutes,
    },
    Application {
        name: "Pedometer",
        sample_rate_hz: 25.0,
        precision_bits: 1,
        duty: Duty::Seconds,
    },
    Application {
        name: "Food Temp. Sensor",
        sample_rate_hz: 1.0,
        precision_bits: 8,
        duty: Duty::Minutes,
    },
    Application {
        name: "Timer",
        sample_rate_hz: 1.0,
        precision_bits: 1,
        duty: Duty::SingleUse,
    },
    Application {
        name: "Alcohol Sensor",
        sample_rate_hz: 1.0,
        precision_bits: 8,
        duty: Duty::SingleUse,
    },
    Application {
        name: "POS Computation",
        sample_rate_hz: 100.0,
        precision_bits: 8,
        duty: Duty::SingleUse,
    },
    Application {
        name: "Humidity Sensor",
        sample_rate_hz: 10.0,
        precision_bits: 16,
        duty: Duty::ContinuousToHours,
    },
    Application {
        name: "Smart Labels",
        sample_rate_hz: 1.0,
        precision_bits: 8,
        duty: Duty::Seconds,
    },
    Application {
        name: "Pseudo-RNG",
        sample_rate_hz: 1.0,
        precision_bits: 8,
        duty: Duty::Seconds,
    },
    Application {
        name: "Error Detection Coding",
        sample_rate_hz: 100.0,
        precision_bits: 8,
        duty: Duty::ContinuousToHours,
    },
];

/// Feasibility verdict for one (core, application) pairing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Feasibility {
    /// The application considered.
    pub application: Application,
    /// Data-memory words needed per sample (multi-word arithmetic).
    pub words_per_sample: u32,
    /// Instructions available between samples at the core's clock.
    pub cycle_budget_per_sample: f64,
    /// Estimated instructions needed per sample (grows with word count,
    /// calibrated from the kernel measurements: tens of instructions per
    /// word of processed data, plus multi-word carry chains).
    pub estimated_instructions: f64,
    /// Whether the budget covers the estimate.
    pub feasible: bool,
}

/// Estimate whether a core with `datapath_bits` at `clock_hz` can serve
/// `app` (§3.2's analysis, mechanized).
#[must_use]
pub fn assess(app: Application, datapath_bits: u32, clock_hz: f64) -> Feasibility {
    let words_per_sample = app.precision_bits.div_ceil(datapath_bits);
    let cycle_budget = clock_hz / app.sample_rate_hz;
    // measured on the kernel suite: per-sample processing costs tens of
    // instructions per processed word on the base ISA (Thresholding:
    // 18 dynamic instructions per 8-bit sample; IntAvg: 51 per 4-bit
    // sample including its software shifts); multi-word work pays an
    // extra carry-emulation factor on top
    let per_word = 30.0;
    let carry_overhead = 1.0 + 0.5 * f64::from(words_per_sample - 1);
    let estimated = per_word * f64::from(words_per_sample) * carry_overhead;
    Feasibility {
        application: app,
        words_per_sample,
        cycle_budget_per_sample: cycle_budget,
        estimated_instructions: estimated,
        feasible: estimated <= cycle_budget,
    }
}

/// Assess all of Table 1 for one core.
#[must_use]
pub fn assess_all(datapath_bits: u32, clock_hz: f64) -> Vec<Feasibility> {
    TABLE1
        .into_iter()
        .map(|app| assess(app, datapath_bits, clock_hz))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::FLEXICORE_CLOCK_HZ;

    #[test]
    fn table1_has_twenty_rows_with_sane_values() {
        assert_eq!(TABLE1.len(), 20);
        for app in TABLE1 {
            assert!(app.sample_rate_hz > 0.0, "{}", app.name);
            assert!((1..=16).contains(&app.precision_bits), "{}", app.name);
        }
    }

    #[test]
    fn flexicore4_serves_the_vast_majority_of_table1() {
        // §3.2: "most architectures can satisfy the application
        // performance requirements, even 4-bit architectures"
        let results = assess_all(4, FLEXICORE_CLOCK_HZ);
        let feasible = results.iter().filter(|r| r.feasible).count();
        assert!(
            feasible >= 17,
            "only {feasible}/20 feasible: {:?}",
            results
                .iter()
                .filter(|r| !r.feasible)
                .map(|r| r.application.name)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn precision_maps_to_multiword_arithmetic() {
        let tremor = TABLE1.iter().find(|a| a.name == "Tremor Sensor").unwrap();
        let on_fc4 = assess(*tremor, 4, FLEXICORE_CLOCK_HZ);
        assert_eq!(on_fc4.words_per_sample, 4, "16-bit data on a 4-bit core");
        let on_fc8 = assess(*tremor, 8, FLEXICORE_CLOCK_HZ);
        assert_eq!(on_fc8.words_per_sample, 2);
        assert!(on_fc8.estimated_instructions < on_fc4.estimated_instructions);
    }

    #[test]
    fn fast_sampling_consumes_the_budget() {
        let fast = Application {
            name: "synthetic",
            sample_rate_hz: 10_000.0,
            precision_bits: 8,
            duty: Duty::ContinuousToHours,
        };
        let r = assess(fast, 4, FLEXICORE_CLOCK_HZ);
        assert!(!r.feasible, "a 10 kHz stream exceeds a 12.5 kHz core");
        assert!(r.cycle_budget_per_sample < 2.0);
    }

    #[test]
    fn budgets_scale_with_the_clock() {
        let app = TABLE1[0];
        let slow = assess(app, 4, FLEXICORE_CLOCK_HZ);
        let fast = assess(app, 4, FLEXICORE_CLOCK_HZ * 4.0);
        assert!((fast.cycle_budget_per_sample / slow.cycle_budget_per_sample - 4.0).abs() < 1e-9);
    }
}
