//! Architectural fault injection.
//!
//! The wafer model in `flexfab` injects stuck-at faults at the *gate*
//! level; this module lets the same class of defect be observed at the
//! *architecture* level — which faulty dies still run which programs —
//! by corrupting the architectural state the paper's §4.1 tester can
//! observe: program counter, accumulator, data memory / register file,
//! the instruction fetch bus, and the two IO ports.
//!
//! Every simulator exposes `step_with`/`run_with` variants taking a
//! [`FaultHook`]. The plain `step`/`run` entry points pass [`NoFaults`],
//! whose hooks are empty `#[inline]` bodies and whose
//! [`ACTIVE`](FaultHook::ACTIVE) constant is `false`, so after
//! monomorphization the fault-free path compiles to exactly the code it
//! was before the hook existed.
//!
//! [`FaultPlane`] is the standard implementation: a set of
//! [`ArchFault`]s, each a permanent stuck-at or a one-shot transient
//! bit flip on one bit of one state element.

use core::fmt;

/// One architectural state element a fault can land on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StateElement {
    /// The program counter (7 bits, in-page).
    Pc,
    /// The accumulator (absent on the load-store dialect).
    Acc,
    /// A data-memory word (accumulator dialects) or register
    /// (load-store dialect), by index.
    Mem(u8),
    /// The instruction fetch bus: every fetched byte passes through it,
    /// so a stuck bus bit corrupts every beat of every fetch.
    FetchBus,
    /// The input bus, as sampled by IPORT reads.
    InputPort,
    /// The output bus, as driven by OPORT writes (the MMU snoops the
    /// corrupted value, exactly as the external board would).
    OutputPort,
    /// The §5.1 MMU page register (4 bits, on the off-chip programming
    /// board): a corrupted page redirects *every* subsequent fetch.
    PageReg,
    /// The MMU pending-commit latch: the page value recognised by the
    /// escape-sequence transducer while it waits out the "short delay".
    /// Faults here land only while a page change is in flight.
    PagePending,
}

impl fmt::Display for StateElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateElement::Pc => write!(f, "pc"),
            StateElement::Acc => write!(f, "acc"),
            StateElement::Mem(i) => write!(f, "mem[{i}]"),
            StateElement::FetchBus => write!(f, "fetch"),
            StateElement::InputPort => write!(f, "iport"),
            StateElement::OutputPort => write!(f, "oport"),
            StateElement::PageReg => write!(f, "page"),
            StateElement::PagePending => write!(f, "page*"),
        }
    }
}

/// How a fault corrupts its bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Permanent stuck-at-0 (open defect).
    StuckAt0,
    /// Permanent stuck-at-1 (short defect).
    StuckAt1,
    /// Transient single-event upset: the bit is inverted once, at the
    /// first opportunity on or after the given cycle.
    FlipAtCycle(u64),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::StuckAt0 => write!(f, "sa0"),
            FaultKind::StuckAt1 => write!(f, "sa1"),
            FaultKind::FlipAtCycle(c) => write!(f, "flip@{c}"),
        }
    }
}

/// One architectural fault: a [`FaultKind`] on one bit of one
/// [`StateElement`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArchFault {
    /// Where the fault lands.
    pub element: StateElement,
    /// Which bit (must be inside the element's width for the dialect;
    /// site enumeration in `flexinject` guarantees this).
    pub bit: u8,
    /// Stuck-at or transient flip.
    pub kind: FaultKind,
}

impl fmt::Display for ArchFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{} {}", self.element, self.bit, self.kind)
    }
}

/// What one word write to a persistent store actually committed, once a
/// [`PowerCut`] fault site has had its say.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteEffect {
    /// Power held: the full new value landed.
    Committed(u16),
    /// The supply collapsed *during* this write: an arbitrary mix of
    /// old and new bits landed (a torn word).
    Torn(u16),
    /// Power was already out: the write never happened.
    Lost,
}

impl WriteEffect {
    /// The word value now stored, if the cell was touched at all.
    #[must_use]
    pub fn stored(self) -> Option<u16> {
        match self {
            WriteEffect::Committed(w) | WriteEffect::Torn(w) => Some(w),
            WriteEffect::Lost => None,
        }
    }
}

/// A power-cut fault site on a persistent store's write path.
///
/// The §5.1 reprogramming flow writes the new image into an external
/// store on the flexible programming board; that board is powered by
/// the same marginal supply as the core, so a brown-out can strike at
/// *any word write* of a reprogramming or commit sequence. This site
/// models the canonical NVM failure: the write in flight when power
/// collapses commits an arbitrary mix of old and new bits (a *torn
/// write*), and every later write is lost outright.
///
/// The cut index and the torn-bit pattern are both deterministic
/// functions of the plan, so campaigns replay bit-for-bit. Like
/// [`FaultPlane`], an unarmed plan ([`PowerCut::never`]) is fully
/// transparent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PowerCut {
    /// Word-write index at which the supply collapses, if armed.
    cut_at: Option<u64>,
    /// Seed for the torn-bit mix of the interrupted write.
    torn_seed: u64,
    /// Writes observed so far.
    writes: u64,
    /// Whether the cut has fired.
    fired: bool,
}

/// One round of SplitMix64 — the deterministic torn-bit draw (kept
/// local so the core crate stays free of the vendored `rand`).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl PowerCut {
    /// A plan with stable power: every write commits in full.
    #[must_use]
    pub fn never() -> Self {
        PowerCut {
            cut_at: None,
            torn_seed: 0,
            writes: 0,
            fired: false,
        }
    }

    /// A plan that tears the `cut_at`-th word write (0-based) and loses
    /// every write after it, with the torn bits drawn from `torn_seed`.
    #[must_use]
    pub fn at_write(cut_at: u64, torn_seed: u64) -> Self {
        PowerCut {
            cut_at: Some(cut_at),
            torn_seed,
            writes: 0,
            fired: false,
        }
    }

    /// Whether the plan schedules a cut at all.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.cut_at.is_some()
    }

    /// Whether the supply has already collapsed.
    #[must_use]
    pub fn has_fired(&self) -> bool {
        self.fired
    }

    /// The scheduled cut index, if armed.
    #[must_use]
    pub fn cut_index(&self) -> Option<u64> {
        self.cut_at
    }

    /// Word writes observed so far (committed, torn or lost).
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Pass one word write through the site: the store must commit
    /// exactly what this returns.
    pub fn on_write(&mut self, old: u16, new: u16) -> WriteEffect {
        let index = self.writes;
        self.writes += 1;
        if self.fired {
            return WriteEffect::Lost;
        }
        match self.cut_at {
            Some(at) if index >= at => {
                self.fired = true;
                let mut state = self.torn_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mask = splitmix64(&mut state) as u16;
                WriteEffect::Torn((old & !mask) | (new & mask))
            }
            _ => WriteEffect::Committed(new),
        }
    }
}

/// A mutable view of a core's architectural state, handed to
/// [`FaultHook::on_state`] after every retired instruction (and once
/// before the first, from `run_with`).
#[derive(Debug)]
pub struct ArchState<'a> {
    /// Program counter (7 bits; hooks must keep it within `0x7F`).
    pub pc: &'a mut u8,
    /// Accumulator, when the dialect has one.
    pub acc: Option<&'a mut u8>,
    /// Data-memory words or registers.
    pub mem: &'a mut [u8],
    /// The MMU page register (4 bits; hooks must keep it within `0xF`).
    pub page: &'a mut u8,
    /// The MMU pending-commit latch, while a page change is in flight.
    pub pending_page: Option<&'a mut u8>,
    /// The datapath width mask (`0xF` for 4-bit cores, `0xFF` for
    /// FlexiCore8); hooks must not set bits outside it.
    pub data_mask: u8,
}

/// The MMU page register and pending latch are four bits on every
/// dialect (§5.1: "a four-bit register").
pub const PAGE_MASK: u8 = 0xF;

/// Observation/corruption points threaded through every simulator step.
///
/// All hooks default to the identity, so an implementation only
/// overrides the points it cares about.
pub trait FaultHook {
    /// `false` promises the hook never changes anything, letting the
    /// simulators skip fault plumbing entirely at compile time.
    const ACTIVE: bool = true;

    /// Whether this hook may alter bytes on the fetch bus.
    ///
    /// Packed drivers use this to decide if a lane can share the common
    /// decode cache: a hook answering `false` promises
    /// [`on_fetch`](FaultHook::on_fetch) is the identity (and free of
    /// side effects), so the lane's decodes equal the clean program's.
    /// The default conservatively mirrors [`ACTIVE`](FaultHook::ACTIVE);
    /// [`FaultPlane`] refines it by checking for actual
    /// [`StateElement::FetchBus`] faults.
    #[inline]
    fn corrupts_fetch(&self) -> bool {
        Self::ACTIVE
    }

    /// Corrupt one byte crossing the instruction fetch bus.
    #[inline]
    fn on_fetch(&mut self, cycle: u64, byte: u8) -> u8 {
        let _ = cycle;
        byte
    }

    /// Corrupt a value sampled from the input bus (already masked to
    /// the datapath width).
    #[inline]
    fn on_input(&mut self, cycle: u64, value: u8) -> u8 {
        let _ = cycle;
        value
    }

    /// Corrupt a value driven on the output bus.
    #[inline]
    fn on_output(&mut self, cycle: u64, value: u8) -> u8 {
        let _ = cycle;
        value
    }

    /// Corrupt committed architectural state after an instruction
    /// retires.
    #[inline]
    fn on_state(&mut self, cycle: u64, state: &mut ArchState<'_>) {
        let _ = (cycle, state);
    }
}

impl<F: FaultHook> FaultHook for &mut F {
    const ACTIVE: bool = F::ACTIVE;

    #[inline]
    fn corrupts_fetch(&self) -> bool {
        (**self).corrupts_fetch()
    }

    #[inline]
    fn on_fetch(&mut self, cycle: u64, byte: u8) -> u8 {
        (**self).on_fetch(cycle, byte)
    }

    #[inline]
    fn on_input(&mut self, cycle: u64, value: u8) -> u8 {
        (**self).on_input(cycle, value)
    }

    #[inline]
    fn on_output(&mut self, cycle: u64, value: u8) -> u8 {
        (**self).on_output(cycle, value)
    }

    #[inline]
    fn on_state(&mut self, cycle: u64, state: &mut ArchState<'_>) {
        (**self).on_state(cycle, state);
    }
}

/// The fault-free hook: every point is the identity and
/// [`ACTIVE`](FaultHook::ACTIVE) is `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    const ACTIVE: bool = false;
}

/// A concrete set of [`ArchFault`]s implementing [`FaultHook`].
///
/// Stuck-at faults reassert on every hook visit; transient flips fire
/// exactly once per [`reset`](FaultPlane::reset). An empty plane is
/// behaviourally identical to [`NoFaults`] (enforced by the
/// `fault_free_plane_is_transparent` property test) but does not get
/// the compile-time fast path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlane {
    faults: Vec<ArchFault>,
    fired: Vec<bool>,
}

impl FaultPlane {
    /// A plane with no faults (transparent).
    #[must_use]
    pub fn new() -> Self {
        FaultPlane::default()
    }

    /// A plane carrying `faults`.
    #[must_use]
    pub fn with_faults(faults: Vec<ArchFault>) -> Self {
        let fired = vec![false; faults.len()];
        FaultPlane { faults, fired }
    }

    /// Add one fault.
    pub fn add(&mut self, fault: ArchFault) {
        self.faults.push(fault);
        self.fired.push(false);
    }

    /// The faults carried.
    #[must_use]
    pub fn faults(&self) -> &[ArchFault] {
        &self.faults
    }

    /// `true` if the plane carries no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Re-arm transient flips (for re-running the same plane).
    pub fn reset(&mut self) {
        for f in &mut self.fired {
            *f = false;
        }
    }

    /// Apply every fault targeting `element` to `value` at `cycle`.
    #[inline]
    fn corrupt(&mut self, element: StateElement, cycle: u64, mut value: u8) -> u8 {
        for (fault, fired) in self.faults.iter().zip(&mut self.fired) {
            if fault.element != element {
                continue;
            }
            let mask = 1u8 << fault.bit;
            match fault.kind {
                FaultKind::StuckAt0 => value &= !mask,
                FaultKind::StuckAt1 => value |= mask,
                FaultKind::FlipAtCycle(at) => {
                    if cycle >= at && !*fired {
                        value ^= mask;
                        *fired = true;
                    }
                }
            }
        }
        value
    }
}

impl FaultHook for FaultPlane {
    #[inline]
    fn corrupts_fetch(&self) -> bool {
        self.faults
            .iter()
            .any(|f| f.element == StateElement::FetchBus)
    }

    #[inline]
    fn on_fetch(&mut self, cycle: u64, byte: u8) -> u8 {
        self.corrupt(StateElement::FetchBus, cycle, byte)
    }

    #[inline]
    fn on_input(&mut self, cycle: u64, value: u8) -> u8 {
        self.corrupt(StateElement::InputPort, cycle, value)
    }

    #[inline]
    fn on_output(&mut self, cycle: u64, value: u8) -> u8 {
        self.corrupt(StateElement::OutputPort, cycle, value)
    }

    fn on_state(&mut self, cycle: u64, state: &mut ArchState<'_>) {
        for (fault, fired) in self.faults.iter().zip(&mut self.fired) {
            let mask = 1u8 << fault.bit;
            let (slot, width_mask) = match fault.element {
                StateElement::Pc => (Some(&mut *state.pc), 0x7Fu8),
                StateElement::Acc => match state.acc.as_deref_mut() {
                    Some(acc) => (Some(acc), state.data_mask),
                    None => (None, 0),
                },
                StateElement::Mem(i) => (state.mem.get_mut(usize::from(i)), state.data_mask),
                StateElement::PageReg => (Some(&mut *state.page), PAGE_MASK),
                StateElement::PagePending => (state.pending_page.as_deref_mut(), PAGE_MASK),
                _ => (None, 0),
            };
            let Some(slot) = slot else { continue };
            match fault.kind {
                FaultKind::StuckAt0 => *slot &= !mask,
                FaultKind::StuckAt1 => *slot |= mask & width_mask,
                FaultKind::FlipAtCycle(at) => {
                    if cycle >= at && !*fired {
                        *slot ^= mask & width_mask;
                        *fired = true;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that do not target the MMU registers park the page register
    /// in a caller-provided scratch byte and leave no pending latch.
    fn state_of<'a>(
        pc: &'a mut u8,
        acc: &'a mut u8,
        mem: &'a mut [u8],
        page: &'a mut u8,
    ) -> ArchState<'a> {
        ArchState {
            pc,
            acc: Some(acc),
            mem,
            page,
            pending_page: None,
            data_mask: 0xF,
        }
    }

    #[test]
    fn empty_plane_is_identity() {
        let mut p = FaultPlane::new();
        assert!(p.is_empty());
        assert_eq!(p.on_fetch(3, 0xAB), 0xAB);
        assert_eq!(p.on_input(3, 0x5), 0x5);
        assert_eq!(p.on_output(3, 0x5), 0x5);
        let (mut pc, mut acc, mut mem, mut page) = (5u8, 9u8, [1u8, 2, 3], 0u8);
        p.on_state(3, &mut state_of(&mut pc, &mut acc, &mut mem, &mut page));
        assert_eq!((pc, acc, mem), (5, 9, [1, 2, 3]));
    }

    #[test]
    fn stuck_bits_reassert_every_visit() {
        let mut p = FaultPlane::with_faults(vec![ArchFault {
            element: StateElement::Acc,
            bit: 3,
            kind: FaultKind::StuckAt1,
        }]);
        let (mut pc, mut acc, mut mem, mut page) = (0u8, 0u8, [0u8; 4], 0u8);
        p.on_state(0, &mut state_of(&mut pc, &mut acc, &mut mem, &mut page));
        assert_eq!(acc, 0x8);
        acc = 0x2;
        p.on_state(1, &mut state_of(&mut pc, &mut acc, &mut mem, &mut page));
        assert_eq!(acc, 0xA);
    }

    #[test]
    fn flip_fires_once_on_or_after_cycle() {
        let mut p = FaultPlane::with_faults(vec![ArchFault {
            element: StateElement::FetchBus,
            bit: 0,
            kind: FaultKind::FlipAtCycle(5),
        }]);
        assert_eq!(p.on_fetch(4, 0x10), 0x10, "before the trigger cycle");
        assert_eq!(p.on_fetch(7, 0x10), 0x11, "first visit at/after fires");
        assert_eq!(p.on_fetch(8, 0x10), 0x10, "one-shot");
        p.reset();
        assert_eq!(p.on_fetch(9, 0x10), 0x11, "re-armed by reset");
    }

    #[test]
    fn stuck_mem_word_masks_only_its_index() {
        let mut p = FaultPlane::with_faults(vec![ArchFault {
            element: StateElement::Mem(2),
            bit: 1,
            kind: FaultKind::StuckAt0,
        }]);
        let (mut pc, mut acc, mut page) = (0u8, 0u8, 0u8);
        let mut mem = [0xFu8; 4];
        p.on_state(0, &mut state_of(&mut pc, &mut acc, &mut mem, &mut page));
        assert_eq!(mem, [0xF, 0xF, 0xD, 0xF]);
    }

    #[test]
    fn acc_fault_is_inert_on_accumulatorless_state() {
        let mut p = FaultPlane::with_faults(vec![ArchFault {
            element: StateElement::Acc,
            bit: 0,
            kind: FaultKind::StuckAt1,
        }]);
        let mut pc = 0u8;
        let mut regs = [0u8; 8];
        let mut page = 0u8;
        let mut state = ArchState {
            pc: &mut pc,
            acc: None,
            mem: &mut regs,
            page: &mut page,
            pending_page: None,
            data_mask: 0xF,
        };
        p.on_state(0, &mut state);
        assert_eq!(regs, [0u8; 8]);
        assert_eq!(pc, 0);
    }

    #[test]
    fn out_of_range_mem_index_is_ignored() {
        let mut p = FaultPlane::with_faults(vec![ArchFault {
            element: StateElement::Mem(7),
            bit: 0,
            kind: FaultKind::StuckAt1,
        }]);
        let (mut pc, mut acc, mut page) = (0u8, 0u8, 0u8);
        let mut mem = [0u8; 4]; // fc8 has only four words
        p.on_state(0, &mut state_of(&mut pc, &mut acc, &mut mem, &mut page));
        assert_eq!(mem, [0u8; 4]);
    }

    #[test]
    fn stuck_page_register_reasserts_and_masks_to_four_bits() {
        let mut p = FaultPlane::with_faults(vec![ArchFault {
            element: StateElement::PageReg,
            bit: 3,
            kind: FaultKind::StuckAt1,
        }]);
        let (mut pc, mut acc, mut mem, mut page) = (0u8, 0u8, [0u8; 4], 0u8);
        p.on_state(0, &mut state_of(&mut pc, &mut acc, &mut mem, &mut page));
        assert_eq!(page, 0x8, "bit 3 stuck high in the page register");
        page = 0x2;
        p.on_state(1, &mut state_of(&mut pc, &mut acc, &mut mem, &mut page));
        assert_eq!(page, 0xA, "reasserted on every visit");
        assert_eq!((pc, acc, mem), (0, 0, [0u8; 4]), "core state untouched");
    }

    #[test]
    fn pending_latch_fault_is_inert_without_a_pending_commit() {
        let mut p = FaultPlane::with_faults(vec![ArchFault {
            element: StateElement::PagePending,
            bit: 0,
            kind: FaultKind::StuckAt1,
        }]);
        let (mut pc, mut acc, mut mem, mut page) = (0u8, 0u8, [0u8; 4], 0u8);
        // state_of models the idle MMU: no pending-commit latch exists.
        p.on_state(0, &mut state_of(&mut pc, &mut acc, &mut mem, &mut page));
        assert_eq!(page, 0);

        let mut pending = 0x4u8;
        let mut state = ArchState {
            pc: &mut pc,
            acc: Some(&mut acc),
            mem: &mut mem,
            page: &mut page,
            pending_page: Some(&mut pending),
            data_mask: 0xF,
        };
        p.on_state(1, &mut state);
        assert_eq!(pending, 0x5, "latch corrupted while a commit is in flight");
        assert_eq!(page, 0, "committed page register untouched");
    }

    #[test]
    fn unarmed_power_is_transparent() {
        let mut power = PowerCut::never();
        assert!(!power.is_armed());
        for i in 0..32u16 {
            assert_eq!(power.on_write(0, i), WriteEffect::Committed(i));
        }
        assert!(!power.has_fired());
        assert_eq!(power.writes(), 32);
    }

    #[test]
    fn cut_tears_one_write_and_loses_the_rest() {
        let mut power = PowerCut::at_write(2, 7);
        assert_eq!(power.on_write(0, 0xFFFF), WriteEffect::Committed(0xFFFF));
        assert_eq!(power.on_write(0, 0xFFFF), WriteEffect::Committed(0xFFFF));
        let torn = power.on_write(0x0000, 0xFFFF);
        let WriteEffect::Torn(word) = torn else {
            panic!("write at the cut index must tear, got {torn:?}");
        };
        // the torn word mixes old (0) and new (all-ones) bits; with the
        // operands fully disagreeing any value is admissible, so only
        // the state machine is checked here (torn_bits_mix_only_old_and_new
        // covers the mixing law)
        let _ = word;
        assert!(power.has_fired());
        assert_eq!(power.on_write(0, 0xFFFF), WriteEffect::Lost);
        assert_eq!(power.on_write(0, 0xFFFF), WriteEffect::Lost);
    }

    #[test]
    fn torn_bits_mix_only_old_and_new() {
        // every torn bit must come from either the old or the new word:
        // positions where both agree must survive unchanged
        for seed in 0..64u64 {
            let mut power = PowerCut::at_write(0, seed);
            let (old, new) = (0b1010_1010_1010_1010u16, 0b1010_0101_0101_1010);
            let WriteEffect::Torn(word) = power.on_write(old, new) else {
                panic!("cut at write 0 must tear immediately");
            };
            let agree = !(old ^ new);
            assert_eq!(
                word & agree,
                old & agree,
                "seed {seed}: agreed bits flipped"
            );
        }
    }

    #[test]
    fn power_cut_replays_bit_for_bit() {
        let run = |seed| {
            let mut power = PowerCut::at_write(3, seed);
            (0..8u16).map(|i| power.on_write(i, !i)).collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11)[3], run(12)[3], "different seeds tear differently");
    }

    #[test]
    fn corrupts_fetch_tracks_fetch_bus_faults_precisely() {
        assert!(!NoFaults.corrupts_fetch());
        assert!(!FaultPlane::new().corrupts_fetch());
        let acc_only = FaultPlane::with_faults(vec![ArchFault {
            element: StateElement::Acc,
            bit: 0,
            kind: FaultKind::StuckAt1,
        }]);
        assert!(!acc_only.corrupts_fetch(), "no FetchBus fault present");
        let fetch = FaultPlane::with_faults(vec![ArchFault {
            element: StateElement::FetchBus,
            bit: 2,
            kind: FaultKind::FlipAtCycle(9),
        }]);
        assert!(fetch.corrupts_fetch(), "transients on the bus count too");
        let mut via_mut = fetch;
        let forwarded: &mut FaultPlane = &mut via_mut;
        assert!(
            <&mut FaultPlane as FaultHook>::corrupts_fetch(&forwarded),
            "forwarded via &mut"
        );
    }

    #[test]
    fn display_is_compact() {
        let f = ArchFault {
            element: StateElement::Mem(3),
            bit: 2,
            kind: FaultKind::StuckAt1,
        };
        assert_eq!(f.to_string(), "mem[3].2 sa1");
        let f = ArchFault {
            element: StateElement::Pc,
            bit: 6,
            kind: FaultKind::FlipAtCycle(42),
        };
        assert_eq!(f.to_string(), "pc.6 flip@42");
    }
}
