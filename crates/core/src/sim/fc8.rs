//! Functional simulator for FlexiCore8.
//!
//! Identical in shape to [`Fc4Core`](crate::sim::fc4::Fc4Core) with the
//! §3.3 differences: an 8-bit datapath, four octet data-memory words, 4-bit
//! immediates sign-extended to the datapath, and the two-byte `LOAD BYTE`
//! instruction, whose second fetch costs an extra clock cycle (the single
//! stateful bit in FlexiCore8's controller, §3.4).
//!
//! The step/run loop lives in [`crate::exec::Engine`]; this module
//! contributes only the FlexiCore8 decode/execute semantics via the
//! [`Core`] trait.

use crate::error::SimError;
use crate::exec::{Core, Engine, ExecState, Flow, Snapshot};
use crate::io::{InputPort, OutputPort};
use crate::isa::fc8::{Instruction, IPORT_ADDR, MEM_WORDS, OPORT_ADDR};
use crate::isa::sign_extend;
use crate::program::Program;
use crate::sim::fault::{ArchState, FaultHook, NoFaults};
use crate::sim::RunResult;
use crate::trace::StepEvent;

const SIGN_BIT: u8 = 0x80;

/// A FlexiCore8 core plus its off-chip program memory and MMU.
#[derive(Debug, Clone)]
pub struct Fc8Core {
    exec: ExecState,
    acc: u8,
    mem: [u8; MEM_WORDS],
}

impl Fc8Core {
    /// A core reset to power-on state with `program` loaded.
    #[must_use]
    pub fn new(program: Program) -> Self {
        Fc8Core {
            exec: ExecState::new(program),
            acc: 0,
            mem: [0; MEM_WORDS],
        }
    }

    /// Reset architectural state, keeping the program image.
    pub fn reset(&mut self) {
        let program = core::mem::take(&mut self.exec.program);
        *self = Fc8Core::new(program);
    }

    /// Replace the external program memory and reset.
    pub fn reprogram(&mut self, program: Program) {
        *self = Fc8Core::new(program);
    }

    /// Current program counter (7 bits, in-page).
    #[must_use]
    pub fn pc(&self) -> u8 {
        self.exec.pc
    }

    /// Current accumulator value.
    #[must_use]
    pub fn acc(&self) -> u8 {
        self.acc
    }

    /// The data-memory word at `addr`, or `None` when `addr >= 4`.
    #[must_use]
    pub fn mem(&self, addr: u8) -> Option<u8> {
        self.mem.get(usize::from(addr)).copied()
    }

    /// Elapsed clock cycles (LOAD BYTE counts two).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.exec.cycle
    }

    /// Retired instruction count.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.exec.instructions
    }

    /// Whether the halt idiom has been reached.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.exec.halted
    }

    /// The currently selected MMU page.
    #[must_use]
    pub fn page(&self) -> u8 {
        self.exec.mmu.page()
    }

    /// The loaded program image.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.exec.program
    }

    fn read_operand<I: InputPort, F: FaultHook>(
        &mut self,
        addr: u8,
        input: &mut I,
        faults: &mut F,
    ) -> u8 {
        if addr == IPORT_ADDR {
            let v = input.read(self.exec.cycle);
            if F::ACTIVE {
                faults.on_input(self.exec.cycle, v)
            } else {
                v
            }
        } else {
            self.mem[usize::from(addr & 0x3)]
        }
    }

    /// Execute one instruction.
    ///
    /// # Errors
    ///
    /// * [`SimError::FetchOutOfBounds`] — fetch address outside the image,
    /// * [`SimError::IllegalInstruction`] — reserved encoding,
    /// * [`SimError::TruncatedInstruction`] — `LOAD BYTE` at the last byte
    ///   of the image.
    pub fn step<I, O>(&mut self, input: &mut I, output: &mut O) -> Result<StepEvent, SimError>
    where
        I: InputPort,
        O: OutputPort,
    {
        self.step_with(input, output, &mut NoFaults)
    }

    /// [`step`](Fc8Core::step) with a fault-injection hook.
    ///
    /// # Errors
    ///
    /// Same as [`Fc8Core::step`].
    pub fn step_with<I, O, F>(
        &mut self,
        input: &mut I,
        output: &mut O,
        faults: &mut F,
    ) -> Result<StepEvent, SimError>
    where
        I: InputPort,
        O: OutputPort,
        F: FaultHook,
    {
        Engine::with_faults(&mut *self, faults).step(input, output)
    }

    /// Run until the halt idiom or until `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Fc8Core::step`].
    pub fn run<I, O>(
        &mut self,
        input: &mut I,
        output: &mut O,
        max_cycles: u64,
    ) -> Result<RunResult, SimError>
    where
        I: InputPort,
        O: OutputPort,
    {
        self.run_with(input, output, max_cycles, &mut NoFaults)
    }

    /// [`run`](Fc8Core::run) with a fault-injection hook. State faults
    /// are applied once before the first fetch (a stuck power-on bit)
    /// and after every retired instruction.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Fc8Core::step_with`].
    pub fn run_with<I, O, F>(
        &mut self,
        input: &mut I,
        output: &mut O,
        max_cycles: u64,
        faults: &mut F,
    ) -> Result<RunResult, SimError>
    where
        I: InputPort,
        O: OutputPort,
        F: FaultHook,
    {
        Engine::with_faults(&mut *self, faults).run(input, output, max_cycles)
    }
}

impl Core for Fc8Core {
    type Insn = Instruction;
    const FETCH_WINDOW: usize = 2;

    #[inline]
    fn state(&self) -> &ExecState {
        &self.exec
    }

    #[inline]
    fn state_mut(&mut self) -> &mut ExecState {
        &mut self.exec
    }

    #[inline]
    fn decode(&self, window: &[u8], address: u32) -> Result<(Instruction, u8), SimError> {
        let (insn, len) = Instruction::decode(window).map_err(|e| match e {
            crate::error::DecodeError::NeedsSecondByte { .. } => {
                SimError::TruncatedInstruction { address }
            }
            crate::error::DecodeError::Illegal { raw } => {
                SimError::IllegalInstruction { raw, address }
            }
        })?;
        Ok((insn, len as u8))
    }

    #[inline]
    fn execute<I: InputPort, O: OutputPort, F: FaultHook>(
        &mut self,
        insn: Instruction,
        input: &mut I,
        output: &mut O,
        faults: &mut F,
    ) -> Flow {
        match insn {
            Instruction::AddImm { imm } => {
                self.acc = self.acc.wrapping_add(sign_extend(imm, 4) as u8);
            }
            Instruction::NandImm { imm } => {
                self.acc = !(self.acc & (sign_extend(imm, 4) as u8));
            }
            Instruction::XorImm { imm } => {
                self.acc ^= sign_extend(imm, 4) as u8;
            }
            Instruction::AddMem { src } => {
                let v = self.read_operand(src, input, faults);
                self.acc = self.acc.wrapping_add(v);
            }
            Instruction::NandMem { src } => {
                let v = self.read_operand(src, input, faults);
                self.acc = !(self.acc & v);
            }
            Instruction::XorMem { src } => {
                let v = self.read_operand(src, input, faults);
                self.acc ^= v;
            }
            Instruction::Load { addr } => {
                self.acc = self.read_operand(addr, input, faults);
            }
            Instruction::Store { addr } => {
                if addr != IPORT_ADDR {
                    self.mem[usize::from(addr & 0x3)] = self.acc;
                }
                if addr == OPORT_ADDR {
                    let driven = if F::ACTIVE {
                        faults.on_output(self.exec.cycle, self.acc)
                    } else {
                        self.acc
                    };
                    output.write(self.exec.cycle, driven);
                    self.exec.mmu.observe(driven);
                }
            }
            Instruction::LoadByte { imm } => {
                self.acc = imm;
            }
            Instruction::Branch { target } => {
                if self.acc & SIGN_BIT != 0 {
                    return Flow::Jump { target };
                }
            }
        }
        Flow::Sequential
    }

    #[inline]
    fn insn_cycles(len: u8) -> u64 {
        u64::from(len)
    }

    fn arch_state(&mut self) -> ArchState<'_> {
        let (page, pending_page) = self.exec.mmu.fault_view();
        ArchState {
            pc: &mut self.exec.pc,
            acc: Some(&mut self.acc),
            mem: &mut self.mem,
            page,
            pending_page,
            data_mask: 0xFF,
        }
    }

    #[inline]
    fn event_acc(&self) -> u8 {
        self.acc
    }

    fn save_arch(&self, snap: &mut Snapshot) {
        snap.acc = self.acc;
        snap.mem = self.mem.to_vec();
    }

    fn load_arch(&mut self, snap: &Snapshot) {
        self.acc = snap.acc;
        self.mem.copy_from_slice(&snap.mem);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{ConstInput, NullOutput, RecordingOutput};
    use crate::isa::fc8::Instruction as I;

    fn assemble(insns: &[I]) -> Program {
        let mut bytes = Vec::new();
        for i in insns {
            i.encode_into(&mut bytes);
        }
        Program::from_bytes(bytes)
    }

    #[test]
    fn load_byte_loads_full_octet_and_costs_two_cycles() {
        let prog = assemble(&[
            I::LoadByte { imm: 0xAB },
            I::Store { addr: 2 },
            I::LoadByte { imm: 0x80 },
            I::Branch { target: 5 }, // byte address 5 is this branch itself
        ]);
        let mut core = Fc8Core::new(prog);
        let r = core
            .run(&mut ConstInput::new(0), &mut NullOutput::new(), 100)
            .unwrap();
        assert!(r.halted());
        assert_eq!(core.mem(2), Some(0xAB));
        // 2 + 1 + 2 + 1 cycles
        assert_eq!(r.cycles, 6);
        assert_eq!(r.instructions, 4);
    }

    #[test]
    fn immediates_are_sign_extended() {
        let prog = assemble(&[
            I::LoadByte { imm: 0x10 },
            I::AddImm { imm: 0xD }, // -3
            I::Store { addr: 2 },
            I::LoadByte { imm: 0x80 },
            I::Branch { target: 6 },
        ]);
        let mut core = Fc8Core::new(prog);
        core.run(&mut ConstInput::new(0), &mut NullOutput::new(), 100)
            .unwrap();
        assert_eq!(core.mem(2), Some(0x0D));
    }

    #[test]
    fn branch_tests_bit_seven() {
        // byte layout: 0-1 LOAD BYTE, 2 branch (self), 3-4 LOAD BYTE,
        // 5 branch (self)
        let prog = assemble(&[
            I::LoadByte { imm: 0x7F }, // bytes 0-1
            I::Branch { target: 2 },   // byte 2: self-target, not taken
            I::LoadByte { imm: 0xFF }, // bytes 3-4
            I::Branch { target: 5 },   // byte 5: self-target, taken: halt
        ]);
        let mut core = Fc8Core::new(prog);
        let r = core
            .run(&mut ConstInput::new(0), &mut NullOutput::new(), 100)
            .unwrap();
        assert!(r.halted());
        assert_eq!(r.taken_branches, 1);
    }

    #[test]
    fn eight_bit_io_roundtrip() {
        let prog = assemble(&[
            I::Load { addr: 0 },
            I::AddMem { src: 0 }, // doubles the input
            I::Store { addr: 1 },
            I::LoadByte { imm: 0x80 },
            I::Branch { target: 5 },
        ]);
        let mut core = Fc8Core::new(prog);
        let mut out = RecordingOutput::new();
        core.run(&mut ConstInput::new(0x55), &mut out, 100).unwrap();
        assert_eq!(out.values(), vec![0xAA]);
    }

    #[test]
    fn truncated_load_byte_is_error() {
        let prog = Program::from_bytes(vec![0x08]);
        let mut core = Fc8Core::new(prog);
        let err = core
            .step(&mut ConstInput::new(0), &mut NullOutput::new())
            .unwrap_err();
        assert!(matches!(err, SimError::TruncatedInstruction { address: 0 }));
    }

    #[test]
    fn only_four_memory_words() {
        let prog = assemble(&[
            I::LoadByte { imm: 0x42 },
            I::Store { addr: 3 },
            I::LoadByte { imm: 0x80 },
            I::Branch { target: 5 },
        ]);
        let mut core = Fc8Core::new(prog);
        core.run(&mut ConstInput::new(0), &mut NullOutput::new(), 100)
            .unwrap();
        assert_eq!(core.mem(3), Some(0x42));
        assert_eq!(core.mem(2), Some(0));
        assert_eq!(core.mem(4), None);
    }
}
