//! Functional simulator for FlexiCore8.
//!
//! Identical in shape to [`Fc4Core`](crate::sim::fc4::Fc4Core) with the
//! §3.3 differences: an 8-bit datapath, four octet data-memory words, 4-bit
//! immediates sign-extended to the datapath, and the two-byte `LOAD BYTE`
//! instruction, whose second fetch costs an extra clock cycle (the single
//! stateful bit in FlexiCore8's controller, §3.4).

use crate::error::SimError;
use crate::io::{InputPort, OutputPort};
use crate::isa::fc8::{Instruction, IPORT_ADDR, MEM_WORDS, OPORT_ADDR};
use crate::isa::sign_extend;
use crate::mmu::Mmu;
use crate::program::Program;
use crate::sim::fault::{ArchState, FaultHook, NoFaults};
use crate::sim::{RunResult, StopReason};
use crate::trace::StepEvent;

const PC_MASK: u8 = 0x7F;
const SIGN_BIT: u8 = 0x80;

/// A FlexiCore8 core plus its off-chip program memory and MMU.
#[derive(Debug, Clone)]
pub struct Fc8Core {
    program: Program,
    mmu: Mmu,
    pc: u8,
    acc: u8,
    mem: [u8; MEM_WORDS],
    cycle: u64,
    instructions: u64,
    taken_branches: u64,
    halted: bool,
}

impl Fc8Core {
    /// A core reset to power-on state with `program` loaded.
    #[must_use]
    pub fn new(program: Program) -> Self {
        Fc8Core {
            program,
            mmu: Mmu::new(),
            pc: 0,
            acc: 0,
            mem: [0; MEM_WORDS],
            cycle: 0,
            instructions: 0,
            taken_branches: 0,
            halted: false,
        }
    }

    /// Reset architectural state, keeping the program image.
    pub fn reset(&mut self) {
        let program = core::mem::take(&mut self.program);
        *self = Fc8Core::new(program);
    }

    /// Replace the external program memory and reset.
    pub fn reprogram(&mut self, program: Program) {
        *self = Fc8Core::new(program);
    }

    /// Current program counter (7 bits, in-page).
    #[must_use]
    pub fn pc(&self) -> u8 {
        self.pc
    }

    /// Current accumulator value.
    #[must_use]
    pub fn acc(&self) -> u8 {
        self.acc
    }

    /// The data-memory word at `addr` (0..4).
    ///
    /// # Panics
    ///
    /// Panics if `addr >= 4`.
    #[must_use]
    pub fn mem(&self, addr: u8) -> u8 {
        self.mem[usize::from(addr)]
    }

    /// Elapsed clock cycles (LOAD BYTE counts two).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Retired instruction count.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Whether the halt idiom has been reached.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The currently selected MMU page.
    #[must_use]
    pub fn page(&self) -> u8 {
        self.mmu.page()
    }

    /// The loaded program image.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    fn read_operand<I: InputPort, F: FaultHook>(
        &mut self,
        addr: u8,
        input: &mut I,
        faults: &mut F,
    ) -> u8 {
        if addr == IPORT_ADDR {
            let v = input.read(self.cycle);
            if F::ACTIVE {
                faults.on_input(self.cycle, v)
            } else {
                v
            }
        } else {
            self.mem[usize::from(addr & 0x3)]
        }
    }

    /// Execute one instruction.
    ///
    /// # Errors
    ///
    /// * [`SimError::FetchOutOfBounds`] — fetch address outside the image,
    /// * [`SimError::IllegalInstruction`] — reserved encoding,
    /// * [`SimError::TruncatedInstruction`] — `LOAD BYTE` at the last byte
    ///   of the image.
    pub fn step<I, O>(&mut self, input: &mut I, output: &mut O) -> Result<StepEvent, SimError>
    where
        I: InputPort,
        O: OutputPort,
    {
        self.step_with(input, output, &mut NoFaults)
    }

    /// [`step`](Fc8Core::step) with a fault-injection hook.
    ///
    /// # Errors
    ///
    /// Same as [`Fc8Core::step`].
    pub fn step_with<I, O, F>(
        &mut self,
        input: &mut I,
        output: &mut O,
        faults: &mut F,
    ) -> Result<StepEvent, SimError>
    where
        I: InputPort,
        O: OutputPort,
        F: FaultHook,
    {
        self.mmu.tick();
        let address = self.mmu.extend(self.pc);
        let window = self.program.window(address);
        if window.is_empty() {
            return Err(SimError::FetchOutOfBounds {
                address,
                program_len: self.program.len(),
            });
        }
        let mut fetch_buf = [0u8; 2];
        let window: &[u8] = if F::ACTIVE {
            let n = window.len().min(2);
            for (i, b) in window[..n].iter().enumerate() {
                fetch_buf[i] = faults.on_fetch(self.cycle + i as u64, *b);
            }
            &fetch_buf[..n]
        } else {
            window
        };
        let (insn, len) = Instruction::decode(window).map_err(|e| match e {
            crate::error::DecodeError::NeedsSecondByte { .. } => {
                SimError::TruncatedInstruction { address }
            }
            crate::error::DecodeError::Illegal { raw } => {
                SimError::IllegalInstruction { raw, address }
            }
        })?;

        let start_cycle = self.cycle;
        let mut taken = false;
        let mut next_pc = (self.pc + len as u8) & PC_MASK;

        match insn {
            Instruction::AddImm { imm } => {
                self.acc = self.acc.wrapping_add(sign_extend(imm, 4) as u8);
            }
            Instruction::NandImm { imm } => {
                self.acc = !(self.acc & (sign_extend(imm, 4) as u8));
            }
            Instruction::XorImm { imm } => {
                self.acc ^= sign_extend(imm, 4) as u8;
            }
            Instruction::AddMem { src } => {
                let v = self.read_operand(src, input, faults);
                self.acc = self.acc.wrapping_add(v);
            }
            Instruction::NandMem { src } => {
                let v = self.read_operand(src, input, faults);
                self.acc = !(self.acc & v);
            }
            Instruction::XorMem { src } => {
                let v = self.read_operand(src, input, faults);
                self.acc ^= v;
            }
            Instruction::Load { addr } => {
                self.acc = self.read_operand(addr, input, faults);
            }
            Instruction::Store { addr } => {
                if addr != IPORT_ADDR {
                    self.mem[usize::from(addr & 0x3)] = self.acc;
                }
                if addr == OPORT_ADDR {
                    let driven = if F::ACTIVE {
                        faults.on_output(self.cycle, self.acc)
                    } else {
                        self.acc
                    };
                    output.write(self.cycle, driven);
                    self.mmu.observe(driven);
                }
            }
            Instruction::LoadByte { imm } => {
                self.acc = imm;
            }
            Instruction::Branch { target } => {
                if self.acc & SIGN_BIT != 0 {
                    taken = true;
                    if target == self.pc {
                        self.halted = true;
                    }
                    next_pc = target;
                }
            }
        }

        self.pc = next_pc;
        self.cycle += len as u64;
        self.instructions += 1;
        if taken {
            self.taken_branches += 1;
        }
        if F::ACTIVE {
            faults.on_state(
                self.cycle,
                &mut ArchState {
                    pc: &mut self.pc,
                    acc: Some(&mut self.acc),
                    mem: &mut self.mem,
                    data_mask: 0xFF,
                },
            );
        }

        Ok(StepEvent {
            cycle: start_cycle,
            address,
            next_pc: self.pc,
            acc: self.acc,
            cycles: len as u64,
            taken_branch: taken,
            halted: self.halted,
        })
    }

    /// Run until the halt idiom or until `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Fc8Core::step`].
    pub fn run<I, O>(
        &mut self,
        input: &mut I,
        output: &mut O,
        max_cycles: u64,
    ) -> Result<RunResult, SimError>
    where
        I: InputPort,
        O: OutputPort,
    {
        self.run_with(input, output, max_cycles, &mut NoFaults)
    }

    /// [`run`](Fc8Core::run) with a fault-injection hook. State faults
    /// are applied once before the first fetch (a stuck power-on bit)
    /// and after every retired instruction.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Fc8Core::step_with`].
    pub fn run_with<I, O, F>(
        &mut self,
        input: &mut I,
        output: &mut O,
        max_cycles: u64,
        faults: &mut F,
    ) -> Result<RunResult, SimError>
    where
        I: InputPort,
        O: OutputPort,
        F: FaultHook,
    {
        if F::ACTIVE {
            faults.on_state(
                self.cycle,
                &mut ArchState {
                    pc: &mut self.pc,
                    acc: Some(&mut self.acc),
                    mem: &mut self.mem,
                    data_mask: 0xFF,
                },
            );
        }
        while !self.halted && self.cycle < max_cycles {
            self.step_with(input, output, faults)?;
        }
        Ok(RunResult {
            cycles: self.cycle,
            instructions: self.instructions,
            taken_branches: self.taken_branches,
            fetched_bytes: self.cycle,
            stop: if self.halted {
                StopReason::Halted
            } else {
                StopReason::CycleLimit
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{ConstInput, NullOutput, RecordingOutput};
    use crate::isa::fc8::Instruction as I;

    fn assemble(insns: &[I]) -> Program {
        let mut bytes = Vec::new();
        for i in insns {
            i.encode_into(&mut bytes);
        }
        Program::from_bytes(bytes)
    }

    #[test]
    fn load_byte_loads_full_octet_and_costs_two_cycles() {
        let prog = assemble(&[
            I::LoadByte { imm: 0xAB },
            I::Store { addr: 2 },
            I::LoadByte { imm: 0x80 },
            I::Branch { target: 5 }, // byte address 5 is this branch itself
        ]);
        let mut core = Fc8Core::new(prog);
        let r = core
            .run(&mut ConstInput::new(0), &mut NullOutput::new(), 100)
            .unwrap();
        assert!(r.halted());
        assert_eq!(core.mem(2), 0xAB);
        // 2 + 1 + 2 + 1 cycles
        assert_eq!(r.cycles, 6);
        assert_eq!(r.instructions, 4);
    }

    #[test]
    fn immediates_are_sign_extended() {
        let prog = assemble(&[
            I::LoadByte { imm: 0x10 },
            I::AddImm { imm: 0xD }, // -3
            I::Store { addr: 2 },
            I::LoadByte { imm: 0x80 },
            I::Branch { target: 6 },
        ]);
        let mut core = Fc8Core::new(prog);
        core.run(&mut ConstInput::new(0), &mut NullOutput::new(), 100)
            .unwrap();
        assert_eq!(core.mem(2), 0x0D);
    }

    #[test]
    fn branch_tests_bit_seven() {
        // byte layout: 0-1 LOAD BYTE, 2 branch (self), 3-4 LOAD BYTE,
        // 5 branch (self)
        let prog = assemble(&[
            I::LoadByte { imm: 0x7F }, // bytes 0-1
            I::Branch { target: 2 },   // byte 2: self-target, not taken
            I::LoadByte { imm: 0xFF }, // bytes 3-4
            I::Branch { target: 5 },   // byte 5: self-target, taken: halt
        ]);
        let mut core = Fc8Core::new(prog);
        let r = core
            .run(&mut ConstInput::new(0), &mut NullOutput::new(), 100)
            .unwrap();
        assert!(r.halted());
        assert_eq!(r.taken_branches, 1);
    }

    #[test]
    fn eight_bit_io_roundtrip() {
        let prog = assemble(&[
            I::Load { addr: 0 },
            I::AddMem { src: 0 }, // doubles the input
            I::Store { addr: 1 },
            I::LoadByte { imm: 0x80 },
            I::Branch { target: 5 },
        ]);
        let mut core = Fc8Core::new(prog);
        let mut out = RecordingOutput::new();
        core.run(&mut ConstInput::new(0x55), &mut out, 100).unwrap();
        assert_eq!(out.values(), vec![0xAA]);
    }

    #[test]
    fn truncated_load_byte_is_error() {
        let prog = Program::from_bytes(vec![0x08]);
        let mut core = Fc8Core::new(prog);
        let err = core
            .step(&mut ConstInput::new(0), &mut NullOutput::new())
            .unwrap_err();
        assert!(matches!(err, SimError::TruncatedInstruction { address: 0 }));
    }

    #[test]
    fn only_four_memory_words() {
        let prog = assemble(&[
            I::LoadByte { imm: 0x42 },
            I::Store { addr: 3 },
            I::LoadByte { imm: 0x80 },
            I::Branch { target: 5 },
        ]);
        let mut core = Fc8Core::new(prog);
        core.run(&mut ConstInput::new(0), &mut NullOutput::new(), 100)
            .unwrap();
        assert_eq!(core.mem(3), 0x42);
        assert_eq!(core.mem(2), 0);
    }
}
