//! Functional simulator for the load-store ISA of the DSE (§6.2).
//!
//! The machine has eight 4-bit registers (`r0`/`r1` memory-mapped to the IO
//! buses), an `nzp` + carry flags register updated by every ALU/`MOV`
//! instruction, and — with
//! [`Feature::Subroutines`](crate::isa::features::Feature::Subroutines) — a
//! return-address
//! register. Instructions are sixteen bits; the program counter indexes
//! *instructions*, with the byte fetch address being `2 * pc`.
//!
//! Feature gating mirrors [`XaccCore`](crate::sim::xacc::XaccCore):
//! executing an instruction whose feature is disabled raises
//! [`SimError::IllegalInstruction`].
//!
//! The step/run loop lives in [`crate::exec::Engine`]; this module
//! contributes only the load-store decode/execute semantics via the
//! [`Core`] trait.

use crate::error::SimError;
use crate::exec::{Core, Engine, ExecState, Flow, Snapshot, PC_MASK};
use crate::io::{InputPort, OutputPort};
use crate::isa::features::FeatureSet;
use crate::isa::sign_extend;
use crate::isa::xls::{Instruction, Op, Operand, IPORT_REG, NUM_REGS, OPORT_REG};
use crate::program::Program;
use crate::sim::fault::{ArchState, FaultHook, NoFaults};
use crate::sim::RunResult;
use crate::trace::StepEvent;

const WIDTH: u32 = 4;
const WIDTH_MASK: u8 = 0xF;

/// Condition flags produced by the last value-writing instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Result was negative (sign bit set).
    pub n: bool,
    /// Result was zero.
    pub z: bool,
    /// Result was positive (neither negative nor zero).
    pub p: bool,
    /// Carry / borrow-free flag from arithmetic and shifts.
    pub c: bool,
}

impl Flags {
    fn set_nzp(&mut self, value: u8) {
        let v = value & WIDTH_MASK;
        self.n = v & 0x8 != 0;
        self.z = v == 0;
        self.p = !self.n && !self.z;
    }
}

/// A load-store core with a given feature configuration.
#[derive(Debug, Clone)]
pub struct XlsCore {
    features: FeatureSet,
    exec: ExecState,
    regs: [u8; NUM_REGS],
    flags: Flags,
    ra: u8,
}

impl XlsCore {
    /// A core with `features` enabled and `program` loaded.
    #[must_use]
    pub fn new(features: FeatureSet, program: Program) -> Self {
        XlsCore {
            features,
            exec: ExecState::new(program),
            regs: [0; NUM_REGS],
            flags: Flags::default(),
            ra: 0,
        }
    }

    /// Reset architectural state, keeping program and features.
    pub fn reset(&mut self) {
        let features = self.features;
        let program = core::mem::take(&mut self.exec.program);
        *self = XlsCore::new(features, program);
    }

    /// The enabled feature set.
    #[must_use]
    pub fn features(&self) -> FeatureSet {
        self.features
    }

    /// Current program counter (instruction index).
    #[must_use]
    pub fn pc(&self) -> u8 {
        self.exec.pc
    }

    /// The register `r`, or `None` when `r >= 8`.
    #[must_use]
    pub fn reg(&self, r: u8) -> Option<u8> {
        self.regs.get(usize::from(r)).copied()
    }

    /// Current condition flags.
    #[must_use]
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Whether the halt idiom has been reached.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.exec.halted
    }

    /// Retired instruction count.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.exec.instructions
    }

    /// Elapsed ISA-level cycles (one per retired instruction).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.exec.cycle
    }

    /// The currently selected MMU page.
    #[must_use]
    pub fn page(&self) -> u8 {
        self.exec.mmu.page()
    }

    /// The loaded program image.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.exec.program
    }

    fn read_reg<I: InputPort, F: FaultHook>(&mut self, r: u8, input: &mut I, faults: &mut F) -> u8 {
        if r == IPORT_REG {
            let v = input.read(self.exec.cycle) & WIDTH_MASK;
            if F::ACTIVE {
                faults.on_input(self.exec.cycle, v) & WIDTH_MASK
            } else {
                v
            }
        } else {
            self.regs[usize::from(r & 7)]
        }
    }

    fn write_reg<O: OutputPort, F: FaultHook>(
        &mut self,
        r: u8,
        value: u8,
        output: &mut O,
        faults: &mut F,
    ) {
        let v = value & WIDTH_MASK;
        if r != IPORT_REG {
            self.regs[usize::from(r & 7)] = v;
        }
        if r == OPORT_REG {
            let driven = if F::ACTIVE {
                faults.on_output(self.exec.cycle, v) & WIDTH_MASK
            } else {
                v
            };
            output.write(self.exec.cycle, driven);
            self.exec.mmu.observe(driven);
        }
    }

    /// Execute one instruction.
    ///
    /// # Errors
    ///
    /// Same contract as [`XaccCore::step`](crate::sim::xacc::XaccCore::step).
    pub fn step<I, O>(&mut self, input: &mut I, output: &mut O) -> Result<StepEvent, SimError>
    where
        I: InputPort,
        O: OutputPort,
    {
        self.step_with(input, output, &mut NoFaults)
    }

    /// [`step`](XlsCore::step) with a fault-injection hook.
    ///
    /// # Errors
    ///
    /// Same as [`XlsCore::step`].
    pub fn step_with<I, O, F>(
        &mut self,
        input: &mut I,
        output: &mut O,
        faults: &mut F,
    ) -> Result<StepEvent, SimError>
    where
        I: InputPort,
        O: OutputPort,
        F: FaultHook,
    {
        Engine::with_faults(&mut *self, faults).step(input, output)
    }

    fn alu(&mut self, op: Op, a: u8, b: u8) -> u8 {
        let mask = WIDTH_MASK;
        match op {
            Op::Add => {
                let s = u16::from(a) + u16::from(b);
                self.flags.c = s > u16::from(mask);
                (s as u8) & mask
            }
            Op::Adc => {
                let s = u16::from(a) + u16::from(b) + u16::from(self.flags.c);
                self.flags.c = s > u16::from(mask);
                (s as u8) & mask
            }
            Op::Sub => {
                let (r, borrow) = sub4(a, b, 0);
                self.flags.c = !borrow;
                r
            }
            Op::Swb => {
                let (r, borrow) = sub4(a, b, u8::from(!self.flags.c));
                self.flags.c = !borrow;
                r
            }
            Op::And => a & b & mask,
            Op::Or => (a | b) & mask,
            Op::Xor => (a ^ b) & mask,
            Op::Nand => !(a & b) & mask,
            Op::Mov => b & mask,
            Op::Neg => {
                let (r, borrow) = sub4(0, a, 0);
                self.flags.c = !borrow;
                r
            }
            Op::Asr => {
                let amount = u32::from(b & 7);
                let sign = a & 0x8 != 0;
                if amount == 0 {
                    a
                } else if amount >= WIDTH {
                    self.flags.c = false;
                    if sign {
                        mask
                    } else {
                        0
                    }
                } else {
                    self.flags.c = (a >> (amount - 1)) & 1 != 0;
                    let mut v = a >> amount;
                    if sign {
                        v |= (mask << (WIDTH - amount)) & mask;
                    }
                    v & mask
                }
            }
            Op::Lsr => {
                let amount = u32::from(b & 7);
                if amount == 0 {
                    a
                } else if amount >= WIDTH {
                    self.flags.c = false;
                    0
                } else {
                    self.flags.c = (a >> (amount - 1)) & 1 != 0;
                    (a >> amount) & mask
                }
            }
            Op::MulL => a.wrapping_mul(b) & mask,
            Op::MulH => ((u16::from(a) * u16::from(b)) >> WIDTH) as u8 & mask,
        }
    }

    /// Run until the halt idiom or until `max_steps` instructions retire.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`XlsCore::step`].
    pub fn run<I, O>(
        &mut self,
        input: &mut I,
        output: &mut O,
        max_steps: u64,
    ) -> Result<RunResult, SimError>
    where
        I: InputPort,
        O: OutputPort,
    {
        self.run_with(input, output, max_steps, &mut NoFaults)
    }

    /// [`run`](XlsCore::run) with a fault-injection hook. State faults
    /// are applied once before the first fetch (a stuck power-on bit)
    /// and after every retired instruction.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`XlsCore::step_with`].
    pub fn run_with<I, O, F>(
        &mut self,
        input: &mut I,
        output: &mut O,
        max_steps: u64,
        faults: &mut F,
    ) -> Result<RunResult, SimError>
    where
        I: InputPort,
        O: OutputPort,
        F: FaultHook,
    {
        Engine::with_faults(&mut *self, faults).run(input, output, max_steps)
    }
}

impl Core for XlsCore {
    type Insn = Instruction;
    const FETCH_WINDOW: usize = 2;

    #[inline]
    fn state(&self) -> &ExecState {
        &self.exec
    }

    #[inline]
    fn state_mut(&mut self) -> &mut ExecState {
        &mut self.exec
    }

    #[inline]
    fn fetch_address(&self, page_pc: u32) -> u32 {
        page_pc * 2
    }

    #[inline]
    fn decode(&self, window: &[u8], address: u32) -> Result<(Instruction, u8), SimError> {
        let (insn, len) = Instruction::decode_bytes(window).map_err(|e| match e {
            crate::error::DecodeError::NeedsSecondByte { .. } => {
                SimError::TruncatedInstruction { address }
            }
            crate::error::DecodeError::Illegal { raw } => {
                SimError::IllegalInstruction { raw, address }
            }
        })?;
        if !insn.is_legal(self.features) {
            return Err(SimError::IllegalInstruction {
                raw: insn.encode(),
                address,
            });
        }
        Ok((insn, len as u8))
    }

    #[inline]
    fn execute<I: InputPort, O: OutputPort, F: FaultHook>(
        &mut self,
        insn: Instruction,
        input: &mut I,
        output: &mut O,
        faults: &mut F,
    ) -> Flow {
        match insn {
            Instruction::Alu { op, rd, operand } => {
                let b = match operand {
                    Operand::Reg(rs) => self.read_reg(rs, input, faults),
                    Operand::Imm(v) => (sign_extend(v, 4) as u8) & WIDTH_MASK,
                };
                let a = self.read_reg(rd, input, faults);
                let result = self.alu(op, a, b);
                self.flags.set_nzp(result);
                self.write_reg(rd, result, output, faults);
            }
            Instruction::Br { cond, target } => {
                let f = self.flags;
                let bits = cond.bits();
                let go = (bits & 0b100 != 0 && f.n)
                    || (bits & 0b010 != 0 && f.z)
                    || (bits & 0b001 != 0 && f.p);
                if go {
                    return Flow::Jump { target };
                }
            }
            Instruction::Call { target } => {
                self.ra = (self.exec.pc + 1) & PC_MASK;
                return Flow::Jump { target };
            }
            Instruction::Ret => {
                return Flow::Jump { target: self.ra };
            }
        }
        Flow::Sequential
    }

    #[inline]
    fn pc_increment(_len: u8) -> u8 {
        1
    }

    #[inline]
    fn budget_spent(state: &ExecState) -> u64 {
        state.instructions
    }

    fn arch_state(&mut self) -> ArchState<'_> {
        let (page, pending_page) = self.exec.mmu.fault_view();
        ArchState {
            pc: &mut self.exec.pc,
            acc: None,
            mem: &mut self.regs,
            page,
            pending_page,
            data_mask: WIDTH_MASK,
        }
    }

    fn save_arch(&self, snap: &mut Snapshot) {
        snap.ra = self.ra;
        snap.flags = u8::from(self.flags.n)
            | u8::from(self.flags.z) << 1
            | u8::from(self.flags.p) << 2
            | u8::from(self.flags.c) << 3;
        snap.mem = self.regs.to_vec();
    }

    fn load_arch(&mut self, snap: &Snapshot) {
        self.ra = snap.ra;
        self.flags = Flags {
            n: snap.flags & 1 != 0,
            z: snap.flags & 2 != 0,
            p: snap.flags & 4 != 0,
            c: snap.flags & 8 != 0,
        };
        self.regs.copy_from_slice(&snap.mem);
    }
}

fn sub4(a: u8, b: u8, borrow_in: u8) -> (u8, bool) {
    let lhs = i16::from(a & 0xF);
    let rhs = i16::from(b & 0xF) + i16::from(borrow_in);
    ((lhs - rhs) as u8 & 0xF, lhs < rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{ConstInput, NullOutput, RecordingOutput};
    use crate::isa::xacc::Cond;
    use crate::isa::xls::Instruction as I;

    fn assemble(insns: &[I]) -> Program {
        let mut bytes = Vec::new();
        for i in insns {
            i.encode_into(&mut bytes);
        }
        Program::from_bytes(bytes)
    }

    fn alu(op: Op, rd: u8, operand: Operand) -> I {
        I::Alu { op, rd, operand }
    }

    fn movi(rd: u8, v: u8) -> I {
        alu(Op::Mov, rd, Operand::Imm(v))
    }

    fn halt(at: u8) -> I {
        // MOV writes flags; an unconditional branch needs BranchFlags, so
        // tests run with the revised feature set.
        I::Br {
            cond: Cond::ALWAYS,
            target: at,
        }
    }

    fn run_prog(features: FeatureSet, insns: &[I], input: u8) -> (XlsCore, RecordingOutput) {
        let mut core = XlsCore::new(features, assemble(insns));
        let mut inp = ConstInput::new(input);
        let mut out = RecordingOutput::new();
        core.run(&mut inp, &mut out, 10_000).expect("run");
        (core, out)
    }

    #[test]
    fn two_operand_add() {
        let prog = [
            movi(2, 5),
            movi(3, 4),
            alu(Op::Add, 2, Operand::Reg(3)), // r2 = 9
            halt(3),
        ];
        let (core, _) = run_prog(FeatureSet::revised(), &prog, 0);
        assert_eq!(core.reg(2), Some(9));
        assert!(core.is_halted());
    }

    #[test]
    fn io_through_registers() {
        let prog = [
            alu(Op::Mov, 2, Operand::Reg(0)), // r2 = input
            alu(Op::Add, 2, Operand::Reg(2)), // double it
            alu(Op::Mov, 1, Operand::Reg(2)), // drive output
            halt(3),
        ];
        let (_, out) = run_prog(FeatureSet::revised(), &prog, 0x3);
        assert_eq!(out.values(), vec![0x6]);
    }

    #[test]
    fn flags_drive_branches() {
        // r2 = 0 -> MOV sets Z; br.z skips the increment
        let prog = [
            movi(2, 0),
            I::Br {
                cond: Cond::Z,
                target: 3,
            },
            alu(Op::Add, 2, Operand::Imm(1)), // skipped
            alu(Op::Mov, 3, Operand::Reg(2)), // r3 = 0
            halt(4),
        ];
        let (core, _) = run_prog(FeatureSet::revised(), &prog, 0);
        assert_eq!(core.reg(3), Some(0));
    }

    #[test]
    fn sub_and_carry_flags() {
        let prog = [
            movi(2, 3),
            alu(Op::Sub, 2, Operand::Imm(5)), // 3-5 = 0xE, borrow
            halt(2),
        ];
        let (core, _) = run_prog(FeatureSet::revised(), &prog, 0);
        assert_eq!(core.reg(2), Some(0xE));
        assert!(!core.flags().c);
        assert!(core.flags().n);
    }

    #[test]
    fn call_ret_roundtrip() {
        let prog = [
            I::Call { target: 3 },            // 0
            alu(Op::Mov, 3, Operand::Reg(2)), // 1: after return, r3 = r2
            halt(2),                          // 2
            movi(2, 7),                       // 3: subroutine
            I::Ret,                           // 4
        ];
        let (core, _) = run_prog(FeatureSet::revised(), &prog, 0);
        assert_eq!(core.reg(3), Some(7));
    }

    #[test]
    fn shifts() {
        let prog = [
            movi(2, 0xD),                     // negative
            alu(Op::Asr, 2, Operand::Imm(1)), // 0xE
            movi(3, 0xD),
            alu(Op::Lsr, 3, Operand::Imm(1)), // 0x6
            halt(4),
        ];
        let (core, _) = run_prog(FeatureSet::revised(), &prog, 0);
        assert_eq!(core.reg(2), Some(0xE));
        assert_eq!(core.reg(3), Some(0x6));
    }

    #[test]
    fn feature_gating_enforced() {
        let prog = assemble(&[alu(Op::Adc, 2, Operand::Reg(3))]);
        let mut core = XlsCore::new(FeatureSet::BASE, prog);
        let err = core
            .step(&mut ConstInput::new(0), &mut NullOutput::new())
            .unwrap_err();
        assert!(matches!(err, SimError::IllegalInstruction { .. }));
    }

    #[test]
    fn mov_to_iport_register_is_discarded() {
        let prog = [
            movi(0, 5),                       // write to input register: ignored
            alu(Op::Mov, 2, Operand::Reg(0)), // reads the live bus
            halt(2),
        ];
        let (core, _) = run_prog(FeatureSet::revised(), &prog, 0x9);
        assert_eq!(core.reg(2), Some(0x9));
    }

    #[test]
    fn fetched_bytes_are_two_per_instruction() {
        let prog = [movi(2, 1), halt(1)];
        let mut core = XlsCore::new(FeatureSet::revised(), assemble(&prog));
        let r = core
            .run(&mut ConstInput::new(0), &mut NullOutput::new(), 100)
            .unwrap();
        assert_eq!(r.instructions, 2);
        assert_eq!(r.fetched_bytes, 4);
        assert_eq!(core.reg(8), None);
    }
}
