//! Functional simulator for FlexiCore4.
//!
//! Models the architectural state of Figure 3: a 7-bit program counter, a
//! 4-bit accumulator, and eight 4-bit data-memory words of which addresses 0
//! and 1 are the input and output buses. The off-chip
//! `Mmu` (see [`crate::mmu`]) is simulated alongside, snooping the output
//! port exactly as the external board does (§5.1).
//!
//! The step/run loop lives in [`crate::exec::Engine`]; this module
//! contributes only the FlexiCore4 decode/execute semantics via the
//! [`Core`] trait.

use crate::error::SimError;
use crate::exec::{Core, Engine, ExecState, Flow, Snapshot};
use crate::io::{InputPort, OutputPort};
use crate::isa::fc4::{Instruction, IPORT_ADDR, MEM_WORDS, OPORT_ADDR};
use crate::program::Program;
use crate::sim::fault::{ArchState, FaultHook, NoFaults};
use crate::sim::RunResult;
use crate::trace::StepEvent;

const WIDTH_MASK: u8 = 0xF;
const SIGN_BIT: u8 = 0x8;

/// A FlexiCore4 core plus its off-chip program memory and MMU.
#[derive(Debug, Clone)]
pub struct Fc4Core {
    exec: ExecState,
    acc: u8,
    mem: [u8; MEM_WORDS],
}

impl Fc4Core {
    /// A core reset to power-on state with `program` in its external memory.
    #[must_use]
    pub fn new(program: Program) -> Self {
        Fc4Core {
            exec: ExecState::new(program),
            acc: 0,
            mem: [0; MEM_WORDS],
        }
    }

    /// Reset architectural state (keeps the program image — this is what
    /// power-cycling a field-programmed chip does).
    pub fn reset(&mut self) {
        let program = core::mem::take(&mut self.exec.program);
        *self = Fc4Core::new(program);
    }

    /// Replace the external program memory and reset — *field
    /// reprogramming*.
    pub fn reprogram(&mut self, program: Program) {
        *self = Fc4Core::new(program);
    }

    /// Current program counter (7 bits, in-page).
    #[must_use]
    pub fn pc(&self) -> u8 {
        self.exec.pc
    }

    /// Current accumulator value.
    #[must_use]
    pub fn acc(&self) -> u8 {
        self.acc
    }

    /// The data-memory word at `addr`, or `None` when `addr >= 8`.
    /// Addresses 0/1 return the backing latches, not live bus values.
    #[must_use]
    pub fn mem(&self, addr: u8) -> Option<u8> {
        self.mem.get(usize::from(addr)).copied()
    }

    /// Elapsed clock cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.exec.cycle
    }

    /// Retired instruction count.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.exec.instructions
    }

    /// Whether the halt idiom has been reached.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.exec.halted
    }

    /// The currently selected MMU page.
    #[must_use]
    pub fn page(&self) -> u8 {
        self.exec.mmu.page()
    }

    /// The loaded program image.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.exec.program
    }

    fn read_operand<I: InputPort, F: FaultHook>(
        &mut self,
        addr: u8,
        input: &mut I,
        faults: &mut F,
    ) -> u8 {
        if addr == IPORT_ADDR {
            let v = input.read(self.exec.cycle) & WIDTH_MASK;
            if F::ACTIVE {
                faults.on_input(self.exec.cycle, v) & WIDTH_MASK
            } else {
                v
            }
        } else {
            self.mem[usize::from(addr & 0x7)]
        }
    }

    /// Execute one instruction.
    ///
    /// # Errors
    ///
    /// * [`SimError::FetchOutOfBounds`] if the fetch address is outside the
    ///   program image,
    /// * [`SimError::IllegalInstruction`] for reserved encodings.
    pub fn step<I, O>(&mut self, input: &mut I, output: &mut O) -> Result<StepEvent, SimError>
    where
        I: InputPort,
        O: OutputPort,
    {
        self.step_with(input, output, &mut NoFaults)
    }

    /// [`step`](Fc4Core::step) with a fault-injection hook.
    ///
    /// # Errors
    ///
    /// Same contract as [`Fc4Core::step`]; a corrupted fetch may surface
    /// as [`SimError::IllegalInstruction`].
    pub fn step_with<I, O, F>(
        &mut self,
        input: &mut I,
        output: &mut O,
        faults: &mut F,
    ) -> Result<StepEvent, SimError>
    where
        I: InputPort,
        O: OutputPort,
        F: FaultHook,
    {
        Engine::with_faults(&mut *self, faults).step(input, output)
    }

    /// Run until the halt idiom or until `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Fc4Core::step`].
    pub fn run<I, O>(
        &mut self,
        input: &mut I,
        output: &mut O,
        max_cycles: u64,
    ) -> Result<RunResult, SimError>
    where
        I: InputPort,
        O: OutputPort,
    {
        self.run_with(input, output, max_cycles, &mut NoFaults)
    }

    /// [`run`](Fc4Core::run) with a fault-injection hook. State faults
    /// are applied once before the first fetch (a stuck power-on bit)
    /// and after every retired instruction.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`Fc4Core::step_with`].
    pub fn run_with<I, O, F>(
        &mut self,
        input: &mut I,
        output: &mut O,
        max_cycles: u64,
        faults: &mut F,
    ) -> Result<RunResult, SimError>
    where
        I: InputPort,
        O: OutputPort,
        F: FaultHook,
    {
        Engine::with_faults(&mut *self, faults).run(input, output, max_cycles)
    }
}

impl Core for Fc4Core {
    type Insn = Instruction;
    const FETCH_WINDOW: usize = 1;

    #[inline]
    fn state(&self) -> &ExecState {
        &self.exec
    }

    #[inline]
    fn state_mut(&mut self) -> &mut ExecState {
        &mut self.exec
    }

    #[inline]
    fn decode(&self, window: &[u8], address: u32) -> Result<(Instruction, u8), SimError> {
        let byte = window[0];
        let insn = Instruction::decode(byte).map_err(|_| SimError::IllegalInstruction {
            raw: byte.into(),
            address,
        })?;
        Ok((insn, 1))
    }

    #[inline]
    fn execute<I: InputPort, O: OutputPort, F: FaultHook>(
        &mut self,
        insn: Instruction,
        input: &mut I,
        output: &mut O,
        faults: &mut F,
    ) -> Flow {
        match insn {
            Instruction::AddImm { imm } => {
                self.acc = self.acc.wrapping_add(imm) & WIDTH_MASK;
            }
            Instruction::NandImm { imm } => {
                self.acc = !(self.acc & imm) & WIDTH_MASK;
            }
            Instruction::XorImm { imm } => {
                self.acc = (self.acc ^ imm) & WIDTH_MASK;
            }
            Instruction::AddMem { src } => {
                let v = self.read_operand(src, input, faults);
                self.acc = self.acc.wrapping_add(v) & WIDTH_MASK;
            }
            Instruction::NandMem { src } => {
                let v = self.read_operand(src, input, faults);
                self.acc = !(self.acc & v) & WIDTH_MASK;
            }
            Instruction::XorMem { src } => {
                let v = self.read_operand(src, input, faults);
                self.acc = (self.acc ^ v) & WIDTH_MASK;
            }
            Instruction::Load { addr } => {
                self.acc = self.read_operand(addr, input, faults);
            }
            Instruction::Store { addr } => {
                if addr != IPORT_ADDR {
                    self.mem[usize::from(addr & 0x7)] = self.acc;
                }
                if addr == OPORT_ADDR {
                    let driven = if F::ACTIVE {
                        faults.on_output(self.exec.cycle, self.acc) & WIDTH_MASK
                    } else {
                        self.acc
                    };
                    output.write(self.exec.cycle, driven);
                    self.exec.mmu.observe(driven);
                }
            }
            Instruction::Branch { target } => {
                if self.acc & SIGN_BIT != 0 {
                    return Flow::Jump { target };
                }
            }
        }
        Flow::Sequential
    }

    fn arch_state(&mut self) -> ArchState<'_> {
        let (page, pending_page) = self.exec.mmu.fault_view();
        ArchState {
            pc: &mut self.exec.pc,
            acc: Some(&mut self.acc),
            mem: &mut self.mem,
            page,
            pending_page,
            data_mask: WIDTH_MASK,
        }
    }

    #[inline]
    fn event_acc(&self) -> u8 {
        self.acc
    }

    fn save_arch(&self, snap: &mut Snapshot) {
        snap.acc = self.acc;
        snap.mem = self.mem.to_vec();
    }

    fn load_arch(&mut self, snap: &Snapshot) {
        self.acc = snap.acc;
        self.mem.copy_from_slice(&snap.mem);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{ConstInput, NullOutput, RecordingOutput, ScriptedInput};
    use crate::isa::fc4::Instruction as I;
    use crate::sim::StopReason;

    fn assemble(insns: &[I]) -> Program {
        Program::from_bytes(insns.iter().map(|i| i.encode()).collect())
    }

    /// A spin-forever tail: set ACC negative, branch to self.
    fn halt_tail(at: u8) -> [I; 2] {
        [
            I::NandImm { imm: 0 }, // ACC = 0xF, negative
            I::Branch { target: at + 1 },
        ]
    }

    #[test]
    fn add_immediate_wraps_mod_16() {
        let mut prog = vec![
            I::AddImm { imm: 9 },
            I::AddImm { imm: 9 },
            I::Store { addr: 2 },
        ];
        prog.extend(halt_tail(3));
        let mut core = Fc4Core::new(assemble(&prog));
        let r = core
            .run(&mut ConstInput::new(0), &mut NullOutput::new(), 100)
            .unwrap();
        assert!(r.halted());
        assert_eq!(core.mem(2), Some(2)); // 18 mod 16
    }

    #[test]
    fn load_from_iport_and_store_to_oport() {
        let mut prog = vec![
            I::Load { addr: 0 },
            I::AddImm { imm: 1 },
            I::Store { addr: 1 },
        ];
        prog.extend(halt_tail(3));
        let mut core = Fc4Core::new(assemble(&prog));
        let mut out = RecordingOutput::new();
        core.run(&mut ConstInput::new(0x7), &mut out, 100).unwrap();
        assert_eq!(out.values(), vec![0x8]);
    }

    #[test]
    fn branch_taken_only_when_negative() {
        // ACC = 3 (positive): branch must fall through, then ACC = 0xF and
        // the next branch is taken.
        let prog = assemble(&[
            I::AddImm { imm: 3 },
            I::Branch { target: 1 }, // not taken (would spin)
            I::NandImm { imm: 0 },
            I::Branch { target: 3 }, // taken: halt
        ]);
        let mut core = Fc4Core::new(prog);
        let r = core
            .run(&mut ConstInput::new(0), &mut NullOutput::new(), 100)
            .unwrap();
        assert!(r.halted());
        assert_eq!(r.instructions, 4);
        assert_eq!(r.taken_branches, 1);
    }

    #[test]
    fn store_then_load_roundtrips_memory() {
        let mut prog = vec![
            I::AddImm { imm: 5 },
            I::Store { addr: 3 },
            I::XorImm { imm: 0xF },
            I::Load { addr: 3 },
        ];
        prog.extend(halt_tail(4));
        let mut core = Fc4Core::new(assemble(&prog));
        core.run(&mut ConstInput::new(0), &mut NullOutput::new(), 100)
            .unwrap();
        assert_eq!(core.mem(3), Some(5));
        assert_eq!(core.acc(), 0xF, "final NAND result, after reload was 5");
    }

    #[test]
    fn store_to_iport_is_ignored() {
        let mut prog = vec![
            I::AddImm { imm: 7 },
            I::Store { addr: 0 },
            I::Load { addr: 0 },
            I::Store { addr: 3 },
        ];
        prog.extend(halt_tail(4));
        let mut core = Fc4Core::new(assemble(&prog));
        // input reads 2; the store to address 0 must not shadow the bus
        core.run(&mut ConstInput::new(2), &mut NullOutput::new(), 100)
            .unwrap();
        assert_eq!(core.mem(3), Some(2));
    }

    #[test]
    fn oport_reads_back_last_written_value() {
        let mut prog = vec![
            I::AddImm { imm: 6 },
            I::Store { addr: 1 },
            I::AddImm { imm: 1 },
            I::Load { addr: 1 },
            I::Store { addr: 2 },
        ];
        prog.extend(halt_tail(5));
        let mut core = Fc4Core::new(assemble(&prog));
        core.run(&mut ConstInput::new(0), &mut NullOutput::new(), 100)
            .unwrap();
        assert_eq!(core.mem(2), Some(6));
    }

    #[test]
    fn fetch_past_end_is_error() {
        let prog = assemble(&[I::AddImm { imm: 1 }]);
        let mut core = Fc4Core::new(prog);
        core.step(&mut ConstInput::new(0), &mut NullOutput::new())
            .unwrap();
        let err = core
            .step(&mut ConstInput::new(0), &mut NullOutput::new())
            .unwrap_err();
        assert!(matches!(err, SimError::FetchOutOfBounds { address: 1, .. }));
    }

    #[test]
    fn cycle_limit_stops_nonhalting_program() {
        // infinite loop that is not the halt idiom (two-instruction cycle)
        let prog = assemble(&[
            I::NandImm { imm: 0 },
            I::Branch { target: 0 }, // jumps back to 0, never to itself
        ]);
        let mut core = Fc4Core::new(prog);
        let r = core
            .run(&mut ConstInput::new(0), &mut NullOutput::new(), 50)
            .unwrap();
        assert_eq!(r.stop, StopReason::CycleLimit);
        assert_eq!(r.cycles, 50);
    }

    #[test]
    fn mmu_page_switch_via_oport() {
        // page 0: write 0xE, 0xD, 1 to OPORT, then branch to 0 — which is
        // now page 1 offset 0. Page 1 holds the halt tail.
        let mut image = Vec::new();
        let page0 = [
            I::NandImm { imm: 0 },   // acc = 0xF
            I::AddImm { imm: 0xF },  // acc = 0xE
            I::Store { addr: 1 },    // escape 1
            I::XorImm { imm: 0x3 },  // 0xE ^ 3 = 0xD
            I::Store { addr: 1 },    // escape 2
            I::AddImm { imm: 4 },    // 0xD + 4 = 0x11 & 0xF = 1
            I::Store { addr: 1 },    // page = 1
            I::NandImm { imm: 0 },   // acc negative for the jump
            I::Branch { target: 0 }, // lands at page 1, offset 0
        ];
        for i in page0 {
            image.push(i.encode());
        }
        image.resize(128, 0); // pad page 0
        let page1 = [I::NandImm { imm: 0 }, I::Branch { target: 1 }];
        for i in page1 {
            image.push(i.encode());
        }
        let mut core = Fc4Core::new(Program::from_bytes(image));
        let mut out = RecordingOutput::new();
        let r = core.run(&mut ConstInput::new(0), &mut out, 1000).unwrap();
        assert!(r.halted());
        assert_eq!(core.page(), 1);
        assert_eq!(out.values(), vec![0xE, 0xD, 0x1]);
    }

    #[test]
    fn scripted_input_consumed_in_order() {
        let mut prog = vec![
            I::Load { addr: 0 },
            I::Store { addr: 2 },
            I::Load { addr: 0 },
            I::AddMem { src: 2 },
            I::Store { addr: 1 },
        ];
        prog.extend(halt_tail(5));
        let mut core = Fc4Core::new(assemble(&prog));
        let mut input = ScriptedInput::new(vec![3, 4]);
        let mut out = RecordingOutput::new();
        core.run(&mut input, &mut out, 100).unwrap();
        assert_eq!(out.values(), vec![7]);
    }

    #[test]
    fn reset_and_reprogram() {
        let mut prog = vec![I::AddImm { imm: 5 }];
        prog.extend(halt_tail(1));
        let mut core = Fc4Core::new(assemble(&prog));
        core.run(&mut ConstInput::new(0), &mut NullOutput::new(), 100)
            .unwrap();
        assert!(core.is_halted());
        core.reset();
        assert!(!core.is_halted());
        assert_eq!(core.pc(), 0);
        assert_eq!(core.acc(), 0);

        let mut prog2 = vec![I::AddImm { imm: 2 }];
        prog2.extend(halt_tail(1));
        core.reprogram(assemble(&prog2));
        core.run(&mut ConstInput::new(0), &mut NullOutput::new(), 100)
            .unwrap();
        assert_eq!(core.acc(), 0xF, "halt tail NANDs to 0xF");
        assert_eq!(core.mem(2), Some(0));
    }

    #[test]
    fn out_of_range_mem_access_is_none() {
        let core = Fc4Core::new(assemble(&[I::AddImm { imm: 1 }]));
        assert_eq!(core.mem(7), Some(0));
        assert_eq!(core.mem(8), None);
    }
}
