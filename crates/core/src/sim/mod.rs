//! Functional (ISA-level) simulators for every FlexiCore dialect.
//!
//! All simulators share the same shape: a core owns a [`Program`] image and
//! its architectural state; [`step`](fc4::Fc4Core::step) executes one
//! instruction against a pair of IO ports, and `run` iterates until the
//! *halt idiom* — a taken control transfer to its own address — or a cycle
//! budget expires. The loop itself lives in exactly one place,
//! [`crate::exec::Engine`]: each simulator here contributes only decode
//! and execute semantics (via [`crate::exec::Core`]) and forwards its
//! public `step`/`run` API to the engine. Consumers that need runtime
//! dialect dispatch use [`crate::exec::AnyCore`] instead of matching on
//! the dialect, and batch work rides
//! [`crate::exec::MultiCoreDriver`].
//!
//! The halt idiom matches what programs on the physical chips do: FlexiCores
//! have no `HALT` instruction, so a finished program spins on a
//! branch-to-self, and the test harness recognises the quiescent program
//! counter.
//!
//! [`Program`]: crate::program::Program

pub mod fault;
pub mod fc4;
pub mod fc8;
pub mod xacc;
pub mod xls;

pub use fault::{
    ArchFault, ArchState, FaultHook, FaultKind, FaultPlane, NoFaults, PowerCut, StateElement,
    WriteEffect,
};

/// Why a `run` call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The program reached the halt idiom (taken branch-to-self).
    Halted,
    /// The cycle budget expired first.
    CycleLimit,
}

/// Aggregate statistics from a `run` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Clock cycles consumed (includes extra fetch beats of multi-byte
    /// instructions).
    pub cycles: u64,
    /// Architectural instructions retired.
    pub instructions: u64,
    /// Taken control transfers retired (used by pipeline timing models).
    pub taken_branches: u64,
    /// Program-memory bytes fetched (used by the bus-width timing models of
    /// §6.2: a core whose bus is narrower than its instructions pays one
    /// cycle per bus beat).
    pub fetched_bytes: u64,
    /// Why execution stopped.
    pub stop: StopReason,
}

impl RunResult {
    /// `true` if the program reached the halt idiom.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.stop == StopReason::Halted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halted_reads_stop_reason() {
        let r = RunResult {
            cycles: 1,
            instructions: 1,
            taken_branches: 0,
            fetched_bytes: 1,
            stop: StopReason::Halted,
        };
        assert!(r.halted());
        let r = RunResult {
            stop: StopReason::CycleLimit,
            ..r
        };
        assert!(!r.halted());
    }
}
