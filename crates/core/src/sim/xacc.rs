//! Functional simulator for the extended accumulator ISA (§6).
//!
//! The simulator is parameterized by a [`FeatureSet`]; executing an
//! instruction whose feature is not enabled raises
//! [`SimError::IllegalInstruction`], exactly as a core synthesized without
//! that hardware would fail to decode it. With an empty feature set the
//! machine is architecturally the base FlexiCore4 (re-encoded).
//!
//! Beyond FlexiCore4's state, the extended machine carries a carry flag
//! (for `ADC`/`SWB` data coalescing) and, when
//! [`Feature::Subroutines`](crate::isa::features::Feature::Subroutines) is
//! enabled, a single return-address register (8 flip-flops, §6.1 — calls do
//! not nest).
//!
//! At the ISA level each instruction costs one "cycle"; the
//! [`uarch`](crate::uarch) module turns retired-instruction, fetched-byte
//! and taken-branch counts into clock cycles for a concrete
//! microarchitecture and program-bus width.
//!
//! The step/run loop lives in [`crate::exec::Engine`]; this module
//! contributes only the extended-accumulator decode/execute semantics via
//! the [`Core`] trait.

use crate::error::SimError;
use crate::exec::{Core, Engine, ExecState, Flow, Snapshot, PC_MASK};
use crate::io::{InputPort, OutputPort};
use crate::isa::features::FeatureSet;
use crate::isa::sign_extend;
use crate::isa::xacc::{Instruction, IPORT_ADDR, OPORT_ADDR};
use crate::program::Program;
use crate::sim::fault::{ArchState, FaultHook, NoFaults};
use crate::sim::RunResult;
use crate::trace::StepEvent;

const WIDTH: u32 = 4;
const WIDTH_MASK: u8 = 0xF;
const MEM_WORDS: usize = 8;

/// An extended-accumulator core with a given feature configuration.
#[derive(Debug, Clone)]
pub struct XaccCore {
    features: FeatureSet,
    exec: ExecState,
    acc: u8,
    carry: bool,
    ra: u8,
    mem: [u8; MEM_WORDS],
}

impl XaccCore {
    /// A core with `features` enabled and `program` loaded.
    #[must_use]
    pub fn new(features: FeatureSet, program: Program) -> Self {
        XaccCore {
            features,
            exec: ExecState::new(program),
            acc: 0,
            carry: false,
            ra: 0,
            mem: [0; MEM_WORDS],
        }
    }

    /// Reset architectural state, keeping program and features.
    pub fn reset(&mut self) {
        let features = self.features;
        let program = core::mem::take(&mut self.exec.program);
        *self = XaccCore::new(features, program);
    }

    /// The enabled feature set.
    #[must_use]
    pub fn features(&self) -> FeatureSet {
        self.features
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u8 {
        self.exec.pc
    }

    /// Current accumulator value.
    #[must_use]
    pub fn acc(&self) -> u8 {
        self.acc
    }

    /// Current carry flag.
    #[must_use]
    pub fn carry(&self) -> bool {
        self.carry
    }

    /// The data-memory word at `addr`, or `None` when `addr >= 8`.
    #[must_use]
    pub fn mem(&self, addr: u8) -> Option<u8> {
        self.mem.get(usize::from(addr)).copied()
    }

    /// Whether the halt idiom has been reached.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.exec.halted
    }

    /// Retired instruction count (also the ISA-level cycle count).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.exec.instructions
    }

    /// Elapsed ISA-level cycles (one per retired instruction).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.exec.cycle
    }

    /// The currently selected MMU page.
    #[must_use]
    pub fn page(&self) -> u8 {
        self.exec.mmu.page()
    }

    /// The loaded program image.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.exec.program
    }

    fn read_operand<I: InputPort, F: FaultHook>(
        &mut self,
        addr: u8,
        input: &mut I,
        faults: &mut F,
    ) -> u8 {
        if addr == IPORT_ADDR {
            let v = input.read(self.exec.cycle) & WIDTH_MASK;
            if F::ACTIVE {
                faults.on_input(self.exec.cycle, v) & WIDTH_MASK
            } else {
                v
            }
        } else {
            self.mem[usize::from(addr & 0x7)]
        }
    }

    fn write_mem<O: OutputPort, F: FaultHook>(
        &mut self,
        addr: u8,
        value: u8,
        output: &mut O,
        faults: &mut F,
    ) {
        if addr != IPORT_ADDR {
            self.mem[usize::from(addr & 0x7)] = value;
        }
        if addr == OPORT_ADDR {
            let driven = if F::ACTIVE {
                faults.on_output(self.exec.cycle, value) & WIDTH_MASK
            } else {
                value
            };
            output.write(self.exec.cycle, driven);
            self.exec.mmu.observe(driven);
        }
    }

    fn add_with(&mut self, operand: u8, carry_in: u8) {
        let sum = u16::from(self.acc) + u16::from(operand & WIDTH_MASK) + u16::from(carry_in);
        self.carry = sum > u16::from(WIDTH_MASK);
        self.acc = (sum as u8) & WIDTH_MASK;
    }

    fn sub_with(&mut self, operand: u8, borrow_in: u8) {
        // 6502-style: carry set means "no borrow occurred"
        let lhs = i16::from(self.acc);
        let rhs = i16::from(operand & WIDTH_MASK) + i16::from(borrow_in);
        self.carry = lhs >= rhs;
        self.acc = (lhs - rhs) as u8 & WIDTH_MASK;
    }

    /// Execute one instruction.
    ///
    /// # Errors
    ///
    /// * [`SimError::FetchOutOfBounds`] / [`SimError::TruncatedInstruction`]
    ///   for bad fetches,
    /// * [`SimError::IllegalInstruction`] for reserved encodings **and** for
    ///   instructions whose feature is not enabled on this core.
    pub fn step<I, O>(&mut self, input: &mut I, output: &mut O) -> Result<StepEvent, SimError>
    where
        I: InputPort,
        O: OutputPort,
    {
        self.step_with(input, output, &mut NoFaults)
    }

    /// [`step`](XaccCore::step) with a fault-injection hook.
    ///
    /// # Errors
    ///
    /// Same as [`XaccCore::step`].
    pub fn step_with<I, O, F>(
        &mut self,
        input: &mut I,
        output: &mut O,
        faults: &mut F,
    ) -> Result<StepEvent, SimError>
    where
        I: InputPort,
        O: OutputPort,
        F: FaultHook,
    {
        Engine::with_faults(&mut *self, faults).step(input, output)
    }

    /// Run until the halt idiom or until `max_steps` instructions retire.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`XaccCore::step`].
    pub fn run<I, O>(
        &mut self,
        input: &mut I,
        output: &mut O,
        max_steps: u64,
    ) -> Result<RunResult, SimError>
    where
        I: InputPort,
        O: OutputPort,
    {
        self.run_with(input, output, max_steps, &mut NoFaults)
    }

    /// [`run`](XaccCore::run) with a fault-injection hook. State faults
    /// are applied once before the first fetch (a stuck power-on bit)
    /// and after every retired instruction.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`XaccCore::step_with`].
    pub fn run_with<I, O, F>(
        &mut self,
        input: &mut I,
        output: &mut O,
        max_steps: u64,
        faults: &mut F,
    ) -> Result<RunResult, SimError>
    where
        I: InputPort,
        O: OutputPort,
        F: FaultHook,
    {
        Engine::with_faults(&mut *self, faults).run(input, output, max_steps)
    }
}

impl Core for XaccCore {
    type Insn = Instruction;
    const FETCH_WINDOW: usize = 2;

    #[inline]
    fn state(&self) -> &ExecState {
        &self.exec
    }

    #[inline]
    fn state_mut(&mut self) -> &mut ExecState {
        &mut self.exec
    }

    #[inline]
    fn decode(&self, window: &[u8], address: u32) -> Result<(Instruction, u8), SimError> {
        let (insn, len) = Instruction::decode(window).map_err(|e| match e {
            crate::error::DecodeError::NeedsSecondByte { .. } => {
                SimError::TruncatedInstruction { address }
            }
            crate::error::DecodeError::Illegal { raw } => {
                SimError::IllegalInstruction { raw, address }
            }
        })?;
        if !insn.is_legal(self.features) {
            return Err(SimError::IllegalInstruction {
                raw: u16::from(window[0]),
                address,
            });
        }
        Ok((insn, len as u8))
    }

    #[inline]
    fn execute<I: InputPort, O: OutputPort, F: FaultHook>(
        &mut self,
        insn: Instruction,
        input: &mut I,
        output: &mut O,
        faults: &mut F,
    ) -> Flow {
        match insn {
            Instruction::Add { m } => {
                let v = self.read_operand(m, input, faults);
                self.add_with(v, 0);
            }
            Instruction::Adc { m } => {
                let v = self.read_operand(m, input, faults);
                let c = u8::from(self.carry);
                self.add_with(v, c);
            }
            Instruction::Sub { m } => {
                let v = self.read_operand(m, input, faults);
                self.sub_with(v, 0);
            }
            Instruction::Swb { m } => {
                let v = self.read_operand(m, input, faults);
                let b = u8::from(!self.carry);
                self.sub_with(v, b);
            }
            Instruction::Nand { m } => {
                let v = self.read_operand(m, input, faults);
                self.acc = !(self.acc & v) & WIDTH_MASK;
            }
            Instruction::Or { m } => {
                let v = self.read_operand(m, input, faults);
                self.acc = (self.acc | v) & WIDTH_MASK;
            }
            Instruction::Xor { m } => {
                let v = self.read_operand(m, input, faults);
                self.acc = (self.acc ^ v) & WIDTH_MASK;
            }
            Instruction::Xch { m } => {
                let v = self.read_operand(m, input, faults);
                let old = self.acc;
                self.acc = v;
                self.write_mem(m, old, output, faults);
            }
            Instruction::Load { m } => {
                self.acc = self.read_operand(m, input, faults);
            }
            Instruction::Store { m } => {
                let v = self.acc;
                self.write_mem(m, v, output, faults);
            }
            Instruction::AddImm { imm } => {
                let v = (sign_extend(imm, 4) as u8) & WIDTH_MASK;
                self.add_with(v, 0);
            }
            Instruction::NandImm { imm } => {
                let v = (sign_extend(imm, 4) as u8) & WIDTH_MASK;
                self.acc = !(self.acc & v) & WIDTH_MASK;
            }
            Instruction::OrImm { imm } => {
                let v = (sign_extend(imm, 4) as u8) & WIDTH_MASK;
                self.acc = (self.acc | v) & WIDTH_MASK;
            }
            Instruction::XorImm { imm } => {
                let v = (sign_extend(imm, 4) as u8) & WIDTH_MASK;
                self.acc = (self.acc ^ v) & WIDTH_MASK;
            }
            Instruction::AsrImm { amount } => {
                let a = u32::from(amount.min(7));
                let sign = self.acc & 0x8 != 0;
                if a > 0 {
                    let shifted_out = a <= WIDTH && (self.acc >> (a - 1)) & 1 != 0;
                    let mut v = self.acc >> a.min(WIDTH);
                    if sign {
                        // sign-fill the vacated bits
                        let fill = (WIDTH_MASK << (WIDTH.saturating_sub(a))) & WIDTH_MASK;
                        v |= fill;
                    }
                    if a >= WIDTH {
                        v = if sign { WIDTH_MASK } else { 0 };
                    }
                    self.carry = shifted_out;
                    self.acc = v & WIDTH_MASK;
                }
            }
            Instruction::LsrImm { amount } => {
                let a = u32::from(amount.min(7));
                if a > 0 {
                    self.carry = a <= WIDTH && (self.acc >> (a - 1)) & 1 != 0;
                    self.acc = if a >= WIDTH {
                        0
                    } else {
                        (self.acc >> a) & WIDTH_MASK
                    };
                }
            }
            Instruction::AdcImm { imm } => {
                let v = (sign_extend(imm, 4) as u8) & WIDTH_MASK;
                let c = u8::from(self.carry);
                self.add_with(v, c);
            }
            Instruction::Neg => {
                let v = self.acc;
                self.acc = 0;
                self.sub_with(v, 0);
            }
            Instruction::MulL { m } => {
                let v = self.read_operand(m, input, faults);
                self.acc = (self.acc.wrapping_mul(v)) & WIDTH_MASK;
            }
            Instruction::MulH { m } => {
                let v = self.read_operand(m, input, faults);
                self.acc = ((u16::from(self.acc) * u16::from(v)) >> WIDTH) as u8 & WIDTH_MASK;
            }
            Instruction::Br { cond, target } => {
                if cond.taken(self.acc, WIDTH) {
                    return Flow::Jump { target };
                }
            }
            Instruction::Call { target } => {
                self.ra = (self.exec.pc + 2) & PC_MASK;
                return Flow::Jump { target };
            }
            Instruction::Ret => {
                return Flow::Jump { target: self.ra };
            }
        }
        Flow::Sequential
    }

    #[inline]
    fn budget_spent(state: &ExecState) -> u64 {
        state.instructions
    }

    fn arch_state(&mut self) -> ArchState<'_> {
        let (page, pending_page) = self.exec.mmu.fault_view();
        ArchState {
            pc: &mut self.exec.pc,
            acc: Some(&mut self.acc),
            mem: &mut self.mem,
            page,
            pending_page,
            data_mask: WIDTH_MASK,
        }
    }

    #[inline]
    fn event_acc(&self) -> u8 {
        self.acc
    }

    fn save_arch(&self, snap: &mut Snapshot) {
        snap.acc = self.acc;
        snap.ra = self.ra;
        snap.flags = u8::from(self.carry);
        snap.mem = self.mem.to_vec();
    }

    fn load_arch(&mut self, snap: &Snapshot) {
        self.acc = snap.acc;
        self.ra = snap.ra;
        self.carry = snap.flags & 1 != 0;
        self.mem.copy_from_slice(&snap.mem);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{ConstInput, NullOutput, RecordingOutput};
    use crate::isa::features::Feature;
    use crate::isa::xacc::{Cond, Instruction as I};

    fn assemble(insns: &[I]) -> Program {
        let mut bytes = Vec::new();
        for i in insns {
            i.encode_into(&mut bytes);
        }
        Program::from_bytes(bytes)
    }

    fn run_with(
        features: FeatureSet,
        insns: &[I],
        input: u8,
    ) -> (XaccCore, RunResult, RecordingOutput) {
        let mut core = XaccCore::new(features, assemble(insns));
        let mut inp = ConstInput::new(input);
        let mut out = RecordingOutput::new();
        let r = core.run(&mut inp, &mut out, 10_000).expect("run");
        (core, r, out)
    }

    /// Unconditional branch-to-self for BranchFlags configs; `at` is the
    /// byte address of this (two-byte) instruction.
    fn halt(at: u8) -> I {
        I::Br {
            cond: Cond::ALWAYS,
            target: at,
        }
    }

    #[test]
    fn adc_chains_carry_for_multinibble_addition() {
        let f = FeatureSet::revised();
        // low-nibble ADD overflows; ADC on the next nibble consumes the carry
        let prog = [
            I::AddImm { imm: 3 },  // acc = 3, carry 0             @0
            I::Store { m: 2 },     // r2 = 3                       @1
            I::NandImm { imm: 0 }, // acc = 0xF                    @2
            I::Add { m: 2 },       // 0xF + 3 = 0x12 -> 2, carry 1 @3
            I::Store { m: 3 },     //                              @4
            I::AdcImm { imm: 4 },  // 2 + 4 + 1 = 7, carry 0       @5
            I::Store { m: 4 },     //                              @6
            halt(7),
        ];
        let (core, r, _) = run_with(f, &prog, 0);
        assert!(r.halted());
        assert_eq!(core.mem(3), Some(2));
        assert_eq!(core.mem(4), Some(7));
        assert!(!core.carry());
    }

    #[test]
    fn sub_sets_borrow_free_carry() {
        let f = FeatureSet::revised();
        let prog = [
            I::AddImm { imm: 2 }, // acc = 2          @0
            I::Store { m: 2 },    // r2 = 2           @1
            I::AddImm { imm: 1 }, // acc = 3          @2
            I::Sub { m: 2 },      // 3 - 2 = 1, carry @3
            I::Store { m: 3 },    //                  @4
            halt(5),
        ];
        let (core, _, _) = run_with(f, &prog, 0);
        assert_eq!(core.mem(3), Some(1));
        assert!(core.carry());

        let prog = [
            I::AddImm { imm: 3 },   // acc = 3                        @0
            I::Store { m: 2 },      // r2 = 3                         @1
            I::AddImm { imm: 0xF }, // 3 - 1 = 2                      @2
            I::Sub { m: 2 },        // 2 - 3 = 0xF, borrow: carry clr @3
            I::Store { m: 3 },      //                                @4
            halt(5),
        ];
        let (core, _, _) = run_with(f, &prog, 0);
        assert_eq!(core.mem(3), Some(0xF));
        assert!(!core.carry());
    }

    #[test]
    fn swb_consumes_borrow() {
        let f = FeatureSet::revised();
        // 16-bit style subtraction: low nibble borrows, SWB consumes it on
        // the high nibble. Load the high nibble from memory prepared before
        // the subtraction (an ADD would clobber the borrow).
        let prog = [
            I::AddImm { imm: 2 },   // acc = 2                       @0
            I::Store { m: 4 },      // r4 = 2 (high of minuend)      @1
            I::AddImm { imm: 1 },   // acc = 3                       @2
            I::Store { m: 2 },      // r2 = 3 (low of subtrahend)    @3
            I::AddImm { imm: 1 },   // acc = 4                       @4
            I::Store { m: 5 },      // r5 = 4 (high of subtrahend)   @5
            I::AddImm { imm: 0xF }, // acc = 3  (4 - 1)              @6
            I::Sub { m: 5 },        // 3 - 4 = 0xF, borrow           @7
            I::Load { m: 4 },       // acc = 2 (logic: carry kept)   @8
            I::Swb { m: 2 },        // 2 - 3 - 1 = 0xE, borrow       @9
            I::Store { m: 6 },      //                               @10
            halt(11),
        ];
        let (core, _, _) = run_with(f, &prog, 0);
        assert_eq!(core.mem(6), Some(0xE));
        assert!(!core.carry());
    }

    #[test]
    fn shifts_behave_and_set_carry() {
        let f = FeatureSet::revised();
        let prog = [
            I::AddImm { imm: 3 },    // 0b0011 @0
            I::LsrImm { amount: 1 }, // 0b0001 carry 1 @1
            I::Store { m: 2 },       // @2
            halt(3),
        ];
        let (core, _, _) = run_with(f, &prog, 0);
        assert_eq!(core.mem(2), Some(1));
        assert!(core.carry());

        // asr keeps the sign: 0b1010 >> 1 (arith) = 0b1101
        let prog = [
            I::NandImm { imm: 0 },   // 0xF @0
            I::AddImm { imm: 4 },    // 0xF - 4 = 0xB @1
            I::AddImm { imm: 7 },    // 0xB - 1 = 0xA @2
            I::AsrImm { amount: 1 }, // 0xD, carry 0 @3
            I::Store { m: 2 },       // @4
            halt(5),
        ];
        let (core, _, _) = run_with(f, &prog, 0);
        assert_eq!(core.mem(2), Some(0xD));
        assert!(!core.carry());
    }

    #[test]
    fn shift_by_width_or_more_saturates() {
        let f = FeatureSet::revised();
        let prog = [
            I::NandImm { imm: 0 },   // acc = 0xF (negative) @0
            I::AsrImm { amount: 6 }, // sign-fill: 0xF @1
            I::Store { m: 2 },       // @2
            I::NandImm { imm: 0 },   // acc = 0xF @3
            I::LsrImm { amount: 7 }, // 0 @4
            I::Store { m: 3 },       // @5
            I::NandImm { imm: 0 },   // @6
            halt(7),
        ];
        let (core, _, _) = run_with(f, &prog, 0);
        assert_eq!(core.mem(2), Some(0xF));
        assert_eq!(core.mem(3), Some(0));
    }

    #[test]
    fn branch_flags_conditions() {
        let f = FeatureSet::only(Feature::BranchFlags);
        // acc = 0 -> br.z taken, skipping the two addi
        let prog = [
            I::Br {
                cond: Cond::Z,
                target: 4,
            }, // @0-1
            I::AddImm { imm: 1 }, // @2 skipped
            I::AddImm { imm: 1 }, // @3 skipped
            I::Store { m: 2 },    // @4: r2 = 0
            halt(5),
        ];
        let (core, r, _) = run_with(f, &prog, 0);
        assert_eq!(core.mem(2), Some(0));
        assert_eq!(r.taken_branches, 2); // the br.z and the halt spin
    }

    #[test]
    fn call_and_ret() {
        let f = FeatureSet::revised();
        let prog = [
            I::Call { target: 5 }, // @0-1
            I::Store { m: 2 },     // @2 (return lands here)
            halt(3),               // @3-4
            I::AddImm { imm: 2 },  // @5 subroutine body
            I::Ret,                // @6
        ];
        let (core, r, _) = run_with(f, &prog, 0);
        assert!(r.halted());
        assert_eq!(core.mem(2), Some(2));
    }

    #[test]
    fn xch_swaps_acc_and_memory() {
        let f = FeatureSet::revised();
        let prog = [
            I::AddImm { imm: 3 }, // @0 acc = 3
            I::Store { m: 2 },    // @1 r2 = 3
            I::AddImm { imm: 2 }, // @2 acc = 5
            I::Xch { m: 2 },      // @3 acc = 3, r2 = 5
            I::Store { m: 3 },    // @4 r3 = 3
            halt(5),
        ];
        let (core, _, _) = run_with(f, &prog, 0);
        assert_eq!(core.mem(2), Some(5));
        assert_eq!(core.mem(3), Some(3));
    }

    #[test]
    fn multiplier_low_and_high() {
        let f = FeatureSet::only(Feature::Multiplier).with(Feature::BranchFlags);
        // 6 * 7 = 42 = 0x2A: mull -> 0xA, mulh -> 0x2
        let prog = [
            I::AddImm { imm: 7 },   // 7  @0
            I::Store { m: 2 },      // r2 = 7 @1
            I::AddImm { imm: 0xF }, // 6  @2
            I::Store { m: 3 },      // r3 = 6 @3
            I::MulL { m: 2 },       // 6*7 low = 0xA @4
            I::Store { m: 4 },      // @5
            I::Load { m: 3 },       // 6 @6
            I::MulH { m: 2 },       // high = 2 @7
            I::Store { m: 5 },      // @8
            halt(9),
        ];
        let (core, _, _) = run_with(f, &prog, 0);
        assert_eq!(core.mem(4), Some(0xA));
        assert_eq!(core.mem(5), Some(0x2));
    }

    #[test]
    fn feature_violation_is_illegal_instruction() {
        let base = FeatureSet::BASE;
        let prog = assemble(&[I::Adc { m: 2 }]);
        let mut core = XaccCore::new(base, prog);
        let err = core
            .step(&mut ConstInput::new(0), &mut NullOutput::new())
            .unwrap_err();
        assert!(matches!(err, SimError::IllegalInstruction { .. }));
    }

    #[test]
    fn base_config_matches_fc4_semantics() {
        // the same logical program on Fc4Core and base XaccCore produces the
        // same memory state
        use crate::isa::fc4::Instruction as F;
        use crate::sim::fc4::Fc4Core;

        let fc4 = [
            F::Load { addr: 0 },
            F::AddImm { imm: 3 },
            F::Store { addr: 2 },
            F::NandImm { imm: 0 },
            F::Branch { target: 4 },
        ];
        let xac = [
            I::Load { m: 0 },      // @0
            I::AddImm { imm: 3 },  // @1
            I::Store { m: 2 },     // @2
            I::NandImm { imm: 0 }, // @3
            I::Br {
                cond: Cond::N,
                target: 4,
            }, // @4-5
        ];
        let mut a = Fc4Core::new(Program::from_bytes(
            fc4.iter().map(|i| i.encode()).collect(),
        ));
        a.run(&mut ConstInput::new(9), &mut NullOutput::new(), 100)
            .unwrap();
        let (b, r, _) = run_with(FeatureSet::BASE, &xac, 9);
        assert!(r.halted());
        assert_eq!(a.mem(2), b.mem(2));
        assert_eq!(a.mem(2), Some(0xC));
    }

    #[test]
    fn neg_negates() {
        let f = FeatureSet::revised();
        let prog = [
            I::AddImm { imm: 3 }, // @0
            I::Neg,               // @1 acc = 0xD
            I::Store { m: 2 },    // @2
            halt(3),
        ];
        let (core, _, _) = run_with(f, &prog, 0);
        assert_eq!(core.mem(2), Some(0xD));
        assert!(!core.carry(), "3 > 0 so 0-3 borrows");
    }

    #[test]
    fn fetched_bytes_counts_two_byte_branches() {
        let f = FeatureSet::revised();
        let prog = [
            I::AddImm { imm: 1 }, // 1 byte
            halt(1),              // 2 bytes, spins once then halts
        ];
        let (_, r, _) = run_with(f, &prog, 0);
        assert_eq!(r.instructions, 2);
        assert_eq!(r.fetched_bytes, 3);
    }
}
