//! The off-chip memory management unit (§5.1).
//!
//! Programs larger than the 128 bytes reachable by the 7-bit program counter
//! use an off-chip MMU: a finite-state transducer watching the core's
//! *output* port plus a four-bit page register. When the transducer
//! recognises a specific escape sequence on the output port it latches the
//! next output value into the page register "after a short delay"; software
//! then branches to the desired location inside the newly selected page.
//!
//! The paper does not publish the escape sequence, so this model uses a
//! three-value sequence — two fixed escape values followed by the page
//! number:
//!
//! ```text
//! OPORT: 0xE, 0xD, page     (4-bit cores)
//! ```
//!
//! A three-value prefix makes an accidental trigger from ordinary program
//! output vanishingly unlikely while keeping the transducer tiny (two state
//! flip-flops plus the page register), in the spirit of the paper's
//! "finite-state transducer based controller, and a four-bit register".
//!
//! **The short delay.** The paper notes the MMU stores the page "after a
//! short delay" — this is essential: the store instruction that emits the
//! page number and the branch that follows it are still fetched from the
//! *old* page. This model commits the page [`COMMIT_DELAY`] instruction
//! slots after the page value appears, which admits the canonical
//! page-change sequence:
//!
//! ```text
//! store OPORT   ; page value on the bus (third value of the sequence)
//! nandi 0       ; make ACC negative            (old page)
//! br   target   ; taken branch                 (old page)
//! target:       ; execution continues          (NEW page)
//! ```
//!
//! The full fetch address is `page << 7 | PC`, supporting sixteen 128-byte
//! pages (2 KiB), exactly the "sixteen different 128-instruction pages" of
//! §5.1.

/// First escape value of the page-change sequence.
pub const ESCAPE_1: u8 = 0xE;
/// Second escape value of the page-change sequence.
pub const ESCAPE_2: u8 = 0xD;
/// Number of selectable pages (the page register is four bits).
pub const PAGE_COUNT: usize = 16;
/// Instruction slots between the page value appearing on the output port
/// and the page register updating (the "short delay" of §5.1).
pub const COMMIT_DELAY: u8 = 3;

/// The finite-state transducer and page register of the off-chip MMU.
///
/// Feed every value the core drives on its output port to
/// [`Mmu::observe`]; call [`Mmu::tick`] once at the start of every
/// instruction slot; consult [`Mmu::page`] when forming fetch addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mmu {
    state: State,
    page: u8,
    pending: Option<(u8, u8)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum State {
    Idle,
    SawEscape1,
    SawEscape2,
}

impl Default for Mmu {
    fn default() -> Self {
        Mmu::new()
    }
}

impl Mmu {
    /// An MMU with page 0 selected.
    #[must_use]
    pub fn new() -> Self {
        Mmu {
            state: State::Idle,
            page: 0,
            pending: None,
        }
    }

    /// The currently selected 4-bit page.
    #[must_use]
    pub fn page(self) -> u8 {
        self.page
    }

    /// A page change that has been recognised but not yet committed.
    #[must_use]
    pub fn pending_page(self) -> Option<u8> {
        self.pending.map(|(p, _)| p)
    }

    /// Form the full fetch address for an in-page program counter.
    #[must_use]
    pub fn extend(self, pc: u8) -> u32 {
        (u32::from(self.page) << 7) | u32::from(pc & 0x7F)
    }

    /// The fault-injection view of the MMU's two registers: the
    /// committed page register, and the pending-commit latch while a
    /// page change is in flight (`None` otherwise). Both are 4-bit;
    /// hooks must not set bits outside `0xF`.
    ///
    /// The page register sits on the off-chip programming board, so it
    /// is exactly as exposed to substrate defects and upsets as the
    /// core's own state — this view is what lets `flexinject` campaigns
    /// target it.
    pub fn fault_view(&mut self) -> (&mut u8, Option<&mut u8>) {
        (&mut self.page, self.pending.as_mut().map(|(p, _)| p))
    }

    /// Advance the delay line by one instruction slot, committing a pending
    /// page change whose delay has elapsed. Call at the start of each step,
    /// before the instruction fetch.
    pub fn tick(&mut self) {
        if let Some((page, delay)) = self.pending {
            if delay <= 1 {
                self.page = page;
                self.pending = None;
            } else {
                self.pending = Some((page, delay - 1));
            }
        }
    }

    /// Snoop one output-port value. Returns `true` when this value completed
    /// a page-change sequence (the page register will update after
    /// [`COMMIT_DELAY`] ticks).
    pub fn observe(&mut self, value: u8) -> bool {
        let v = value & 0xF;
        match self.state {
            State::Idle => {
                if v == ESCAPE_1 {
                    self.state = State::SawEscape1;
                }
                false
            }
            State::SawEscape1 => {
                self.state = if v == ESCAPE_2 {
                    State::SawEscape2
                } else if v == ESCAPE_1 {
                    // stay armed: `0xE 0xE 0xD page` must still work
                    State::SawEscape1
                } else {
                    State::Idle
                };
                false
            }
            State::SawEscape2 => {
                self.pending = Some((v, COMMIT_DELAY));
                self.state = State::Idle;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(mmu: &mut Mmu) {
        for _ in 0..COMMIT_DELAY {
            mmu.tick();
        }
    }

    #[test]
    fn page_change_sequence() {
        let mut mmu = Mmu::new();
        assert_eq!(mmu.page(), 0);
        assert!(!mmu.observe(ESCAPE_1));
        assert!(!mmu.observe(ESCAPE_2));
        assert!(mmu.observe(5));
        assert_eq!(mmu.pending_page(), Some(5));
        assert_eq!(mmu.page(), 0, "not yet committed");
        commit(&mut mmu);
        assert_eq!(mmu.page(), 5);
        assert_eq!(mmu.pending_page(), None);
    }

    #[test]
    fn commit_takes_exactly_the_delay() {
        let mut mmu = Mmu::new();
        mmu.observe(ESCAPE_1);
        mmu.observe(ESCAPE_2);
        mmu.observe(7);
        for i in 0..COMMIT_DELAY {
            assert_eq!(mmu.page(), 0, "still old page after {i} ticks");
            mmu.tick();
        }
        assert_eq!(mmu.page(), 7);
    }

    #[test]
    fn ordinary_output_does_not_change_page() {
        let mut mmu = Mmu::new();
        for v in [0u8, 1, 2, 0xD, 3, 0xF] {
            assert!(!mmu.observe(v));
            mmu.tick();
        }
        assert_eq!(mmu.page(), 0);
    }

    #[test]
    fn broken_sequence_resets() {
        let mut mmu = Mmu::new();
        mmu.observe(ESCAPE_1);
        mmu.observe(0x3); // breaks the sequence
        mmu.observe(ESCAPE_2);
        mmu.observe(0x7);
        commit(&mut mmu);
        assert_eq!(mmu.page(), 0);
    }

    #[test]
    fn repeated_escape1_keeps_armed() {
        let mut mmu = Mmu::new();
        mmu.observe(ESCAPE_1);
        mmu.observe(ESCAPE_1);
        mmu.observe(ESCAPE_2);
        assert!(mmu.observe(9));
        commit(&mut mmu);
        assert_eq!(mmu.page(), 9);
    }

    #[test]
    fn extend_forms_full_address() {
        let mut mmu = Mmu::new();
        assert_eq!(mmu.extend(0x15), 0x15);
        mmu.observe(ESCAPE_1);
        mmu.observe(ESCAPE_2);
        mmu.observe(2);
        commit(&mut mmu);
        assert_eq!(mmu.extend(0x15), (2 << 7) | 0x15);
        assert_eq!(mmu.extend(0xFF), (2 << 7) | 0x7F, "pc masked to 7 bits");
    }

    #[test]
    fn page_value_masked_to_four_bits() {
        let mut mmu = Mmu::new();
        mmu.observe(ESCAPE_1);
        mmu.observe(ESCAPE_2);
        mmu.observe(0xF3);
        commit(&mut mmu);
        assert_eq!(mmu.page(), 3);
    }

    #[test]
    fn idle_ticks_are_harmless() {
        let mut mmu = Mmu::new();
        for _ in 0..10 {
            mmu.tick();
        }
        assert_eq!(mmu.page(), 0);
    }
}
