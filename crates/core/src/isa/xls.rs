//! The two-operand load-store ISA of the design-space exploration (§6.2).
//!
//! The paper's DSE compares the accumulator model against a load-store
//! machine whose register file plays the role of the accumulator machine's
//! data memory. Instructions are **sixteen bits** — this is the crucial
//! property for Figure 13: with an 8-bit program bus the load-store machine
//! cannot fetch an instruction per cycle, ruling out its single-cycle and
//! two-stage-pipelined implementations.
//!
//! Encoding (one halfword, big-endian in the program image):
//!
//! ```text
//! ALU      [ op:5 | rd:3 | i:1 | rs:3 | imm:4 ]   rd = rd op (i ? sext(imm) : rs)
//! MOV      [ MOV  | rd:3 | i:1 | rs:3 | imm:4 ]   rd = (i ? sext(imm) : rs)
//! BR       [ BR   | nzp:3 | target:8 ]
//! CALL     [ CALL | 000  | target:8 ]
//! RET/NEG  [ op:5 | rd:3 | 0000000 0 ]
//! ```
//!
//! Registers `r0` and `r1` are memory-mapped IO, mirroring the accumulator
//! machines: reading `r0` samples the input bus, writing `r1` drives the
//! output bus. `r2`–`r7` are general purpose.
//!
//! All ALU operations and `MOV` update the `nzp` condition flags on the
//! value written to `rd`; branches test the flags register (unlike the
//! accumulator dialects, which test the accumulator directly).

use crate::error::DecodeError;
use crate::isa::features::{Feature, FeatureSet};
use crate::isa::xacc::Cond;

/// Number of architectural registers (including the two IO-mapped ones).
pub const NUM_REGS: usize = 8;
/// Register that reads the input bus.
pub const IPORT_REG: u8 = 0;
/// Register that drives the output bus.
pub const OPORT_REG: u8 = 1;
/// Width of the program counter in bits (in *instructions*; the fetch
/// address is `pc * 2` bytes).
pub const PC_BITS: u32 = 7;
/// Datapath width in bits.
pub const WIDTH: u32 = 4;

/// ALU/data operations of the load-store dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `rd += operand`; sets carry.
    Add,
    /// `rd += operand + C`. Requires [`Feature::AddWithCarry`].
    Adc,
    /// `rd -= operand`.
    Sub,
    /// `rd -= operand + !C`. Requires [`Feature::AddWithCarry`].
    Swb,
    /// `rd &= operand`.
    And,
    /// `rd |= operand`.
    Or,
    /// `rd ^= operand`.
    Xor,
    /// `rd = !(rd & operand)` — kept for parity with the accumulator ISA.
    Nand,
    /// `rd = operand` (register move or load-immediate).
    Mov,
    /// `rd = -rd` (operand ignored).
    Neg,
    /// `rd >>= operand` arithmetic. Requires [`Feature::BarrelShifter`].
    Asr,
    /// `rd >>= operand` logical. Requires [`Feature::BarrelShifter`].
    Lsr,
    /// `rd = low(rd * operand)`. Requires [`Feature::Multiplier`].
    MulL,
    /// `rd = high(rd * operand)`. Requires [`Feature::Multiplier`].
    MulH,
}

impl Op {
    const ALL: [Op; 14] = [
        Op::Add,
        Op::Adc,
        Op::Sub,
        Op::Swb,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Nand,
        Op::Mov,
        Op::Neg,
        Op::Asr,
        Op::Lsr,
        Op::MulL,
        Op::MulH,
    ];

    fn code(self) -> u16 {
        Op::ALL
            .iter()
            .position(|o| *o == self)
            .expect("Op::ALL enumerates every Op variant") as u16
    }

    fn from_code(code: u16) -> Option<Op> {
        Op::ALL.get(code as usize).copied()
    }

    /// The feature this operation needs beyond the base dialect, if any.
    #[must_use]
    pub fn required_feature(self) -> Option<Feature> {
        match self {
            Op::Adc | Op::Swb => Some(Feature::AddWithCarry),
            Op::Asr | Op::Lsr => Some(Feature::BarrelShifter),
            Op::MulL | Op::MulH => Some(Feature::Multiplier),
            _ => None,
        }
    }

    /// Lower-case mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Add => "add",
            Op::Adc => "adc",
            Op::Sub => "sub",
            Op::Swb => "swb",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Nand => "nand",
            Op::Mov => "mov",
            Op::Neg => "neg",
            Op::Asr => "asr",
            Op::Lsr => "lsr",
            Op::MulL => "mull",
            Op::MulH => "mulh",
        }
    }
}

const OP_BR: u16 = 28;
const OP_CALL: u16 = 29;
const OP_RET: u16 = 30;

/// The second operand of an ALU instruction: a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand.
    Reg(u8),
    /// 4-bit immediate, sign-extended before use.
    Imm(u8),
}

/// A decoded load-store instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Register/immediate ALU or move operation.
    Alu {
        /// Operation.
        op: Op,
        /// Destination (and first source) register.
        rd: u8,
        /// Second operand.
        operand: Operand,
    },
    /// Conditional branch; tests the flags register. Masks other than
    /// [`Cond::N`] require [`Feature::BranchFlags`].
    Br {
        /// Condition mask.
        cond: Cond,
        /// Instruction-index target (0..128).
        target: u8,
    },
    /// Call. Requires [`Feature::Subroutines`].
    Call {
        /// Instruction-index target.
        target: u8,
    },
    /// Return. Requires [`Feature::Subroutines`].
    Ret,
}

impl Instruction {
    /// Encoded size in bytes — always two.
    #[must_use]
    pub fn len(self) -> usize {
        2
    }

    /// Always `false`.
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }

    /// The feature this instruction needs beyond the base dialect, if any.
    #[must_use]
    pub fn required_feature(self) -> Option<Feature> {
        match self {
            Instruction::Alu { op, .. } => op.required_feature(),
            Instruction::Br { cond, .. } if cond != Cond::N => Some(Feature::BranchFlags),
            Instruction::Call { .. } | Instruction::Ret => Some(Feature::Subroutines),
            _ => None,
        }
    }

    /// Whether this instruction is legal under `features`.
    #[must_use]
    pub fn is_legal(self, features: FeatureSet) -> bool {
        self.required_feature().is_none_or(|f| features.contains(f))
    }

    /// Encode to a 16-bit halfword.
    ///
    /// `NEG` ignores its second operand; it is canonicalized to the
    /// immediate-zero form so every instruction has one encoding.
    #[must_use]
    pub fn encode(self) -> u16 {
        match self {
            Instruction::Alu { op, rd, operand } => {
                let operand = if op == Op::Neg {
                    Operand::Imm(0)
                } else {
                    operand
                };
                let (i, rs, imm) = match operand {
                    Operand::Reg(r) => (0u16, u16::from(r & 7), 0u16),
                    Operand::Imm(v) => (1u16, 0u16, u16::from(v & 0xF)),
                };
                (op.code() << 11) | (u16::from(rd & 7) << 8) | (i << 7) | (rs << 4) | imm
            }
            Instruction::Br { cond, target } => {
                (OP_BR << 11) | (u16::from(cond.bits()) << 8) | u16::from(target)
            }
            Instruction::Call { target } => (OP_CALL << 11) | u16::from(target),
            Instruction::Ret => OP_RET << 11,
        }
    }

    /// Encode into `buf` as two big-endian bytes; returns 2.
    pub fn encode_into(self, buf: &mut Vec<u8>) -> usize {
        let h = self.encode();
        buf.push((h >> 8) as u8);
        buf.push(h as u8);
        2
    }

    /// Decode a 16-bit halfword.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Illegal`] for reserved opcodes or reserved
    /// field patterns.
    pub fn decode(halfword: u16) -> Result<Self, DecodeError> {
        let opc = halfword >> 11;
        if let Some(op) = Op::from_code(opc) {
            let rd = ((halfword >> 8) & 7) as u8;
            let i = (halfword >> 7) & 1 != 0;
            let rs = ((halfword >> 4) & 7) as u8;
            let imm = (halfword & 0xF) as u8;
            if op == Op::Neg && (!i || rs != 0 || imm != 0) {
                // only the canonical operand-less form is legal
                return Err(DecodeError::Illegal { raw: halfword });
            }
            let operand = if i {
                if rs != 0 {
                    return Err(DecodeError::Illegal { raw: halfword });
                }
                Operand::Imm(imm)
            } else {
                if imm != 0 {
                    return Err(DecodeError::Illegal { raw: halfword });
                }
                Operand::Reg(rs)
            };
            return Ok(Instruction::Alu { op, rd, operand });
        }
        match opc {
            OP_BR => Ok(Instruction::Br {
                cond: Cond::from_bits(((halfword >> 8) & 7) as u8),
                target: (halfword & 0xFF) as u8,
            }),
            OP_CALL => {
                if halfword & 0x0700 != 0 {
                    return Err(DecodeError::Illegal { raw: halfword });
                }
                Ok(Instruction::Call {
                    target: (halfword & 0xFF) as u8,
                })
            }
            OP_RET => {
                if halfword & 0x07FF != 0 {
                    return Err(DecodeError::Illegal { raw: halfword });
                }
                Ok(Instruction::Ret)
            }
            _ => Err(DecodeError::Illegal { raw: halfword }),
        }
    }

    /// Decode from the front of a big-endian byte stream.
    ///
    /// # Errors
    ///
    /// [`DecodeError::NeedsSecondByte`] if only one byte is available, or
    /// any error from [`Instruction::decode`].
    pub fn decode_bytes(bytes: &[u8]) -> Result<(Self, usize), DecodeError> {
        let hi = *bytes.first().ok_or(DecodeError::Illegal { raw: 0 })?;
        let lo = *bytes
            .get(1)
            .ok_or(DecodeError::NeedsSecondByte { raw: hi })?;
        let h = (u16::from(hi) << 8) | u16::from(lo);
        Instruction::decode(h).map(|i| (i, 2))
    }
}

impl core::fmt::Display for Instruction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            Instruction::Alu { op, rd, operand } => {
                if op == Op::Neg {
                    return write!(f, "neg r{rd}");
                }
                match operand {
                    Operand::Reg(rs) => write!(f, "{} r{rd}, r{rs}", op.mnemonic()),
                    Operand::Imm(v) => {
                        write!(
                            f,
                            "{}i r{rd}, {}",
                            op.mnemonic(),
                            crate::isa::sign_extend(v, 4)
                        )
                    }
                }
            }
            Instruction::Br { cond, target } => write!(f, "br.{cond} {target:#04x}"),
            Instruction::Call { target } => write!(f, "call {target:#04x}"),
            Instruction::Ret => f.write_str("ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Instruction> {
        let mut v = vec![Instruction::Ret];
        for op in Op::ALL {
            for rd in 0..8 {
                if op == Op::Neg {
                    v.push(Instruction::Alu {
                        op,
                        rd,
                        operand: Operand::Imm(0),
                    });
                    continue;
                }
                v.push(Instruction::Alu {
                    op,
                    rd,
                    operand: Operand::Reg((rd + 1) & 7),
                });
                v.push(Instruction::Alu {
                    op,
                    rd,
                    operand: Operand::Imm(0xD),
                });
            }
        }
        for c in 0..8 {
            v.push(Instruction::Br {
                cond: Cond::from_bits(c),
                target: 0x42,
            });
        }
        v.push(Instruction::Call { target: 0x7F });
        v
    }

    #[test]
    fn roundtrip_all_samples() {
        for insn in samples() {
            let h = insn.encode();
            assert_eq!(Instruction::decode(h), Ok(insn), "halfword={h:#06x}");
            let mut bytes = Vec::new();
            insn.encode_into(&mut bytes);
            let (d, n) = Instruction::decode_bytes(&bytes).unwrap();
            assert_eq!((d, n), (insn, 2));
        }
    }

    #[test]
    fn all_instructions_sixteen_bits() {
        for insn in samples() {
            assert_eq!(insn.len(), 2);
        }
    }

    #[test]
    fn reserved_opcodes_rejected() {
        for opc in [14u16, 20, 27, 31] {
            assert!(Instruction::decode(opc << 11).is_err(), "opcode {opc}");
        }
    }

    #[test]
    fn noncanonical_operand_fields_rejected() {
        // imm form with rs != 0
        let h = (Op::Add.code() << 11) | (1 << 7) | (3 << 4) | 5;
        assert!(Instruction::decode(h).is_err());
        // reg form with imm != 0
        let h = (Op::Add.code() << 11) | (3 << 4) | 5;
        assert!(Instruction::decode(h).is_err());
    }

    #[test]
    fn feature_gating() {
        let base = FeatureSet::BASE;
        let add = Instruction::Alu {
            op: Op::Add,
            rd: 2,
            operand: Operand::Reg(3),
        };
        assert!(add.is_legal(base));
        let adc = Instruction::Alu {
            op: Op::Adc,
            rd: 2,
            operand: Operand::Reg(3),
        };
        assert!(!adc.is_legal(base));
        assert!(adc.is_legal(FeatureSet::revised()));
        assert!(!Instruction::Ret.is_legal(base));
    }

    #[test]
    fn display_forms() {
        let i = Instruction::Alu {
            op: Op::Add,
            rd: 2,
            operand: Operand::Imm(0xD),
        };
        assert_eq!(i.to_string(), "addi r2, -3");
        let i = Instruction::Alu {
            op: Op::Mov,
            rd: 4,
            operand: Operand::Reg(2),
        };
        assert_eq!(i.to_string(), "mov r4, r2");
    }
}
