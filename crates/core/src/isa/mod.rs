//! Instruction-set architectures of the FlexiCore family.
//!
//! Four dialects are modelled:
//!
//! | Dialect | Paper section | Datapath | Memory | Notes |
//! |---|---|---|---|---|
//! | [`fc4`] | §3.3, Fig. 2a | 4 bit | 8 × 4 bit | fabricated base core |
//! | [`fc8`] | §3.3, Fig. 2b | 8 bit | 4 × 8 bit | adds `LOAD BYTE` |
//! | [`xacc`] | §6.1–6.2 | 4 bit | 8 × 4 bit (opt. 16) | extended accumulator ISA |
//! | [`xls`] | §6.2 | 4 bit | 8 registers | two-operand load-store ISA |
//!
//! The encodings for `fc4` and `fc8` follow Figure 2 of the paper bit-for-bit
//! (see the module docs for the one reconstruction choice made where the
//! figure is ambiguous). The paper does not publish encodings for the DSE
//! dialects, so `xacc` and `xls` define compact encodings with the operand
//! counts and instruction widths the paper's Section 6.2 assumes (8-bit
//! instructions for the accumulator machine, 16-bit for load-store).

pub mod fc4;
pub mod fc8;
pub mod features;
pub mod xacc;
pub mod xls;

/// The three ALU functions shared by every fabricated FlexiCore.
///
/// The paper chose exactly `ADD`, `NAND` and `XOR` because all three fall out
/// of a single ripple-carry adder: the adder's internal propagate (XOR) and
/// generate (AND) terms are exported as side effects, and NAND costs only
/// four extra inverters (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AluOp {
    /// Two's-complement addition (carry-out discarded).
    Add,
    /// Bitwise NAND.
    Nand,
    /// Bitwise XOR.
    Xor,
}

impl AluOp {
    /// The 2-bit `op` field encoding used by both FlexiCore4 and FlexiCore8
    /// (instruction bits 5:4, wired directly to the ALU output multiplexer).
    #[must_use]
    pub fn field(self) -> u8 {
        match self {
            AluOp::Add => 0b00,
            AluOp::Nand => 0b01,
            AluOp::Xor => 0b10,
        }
    }

    /// Decode a 2-bit `op` field. Returns `None` for `0b11`, which selects
    /// the transfer (load/store) format instead of an ALU function.
    #[must_use]
    pub fn from_field(bits: u8) -> Option<Self> {
        match bits & 0b11 {
            0b00 => Some(AluOp::Add),
            0b01 => Some(AluOp::Nand),
            0b10 => Some(AluOp::Xor),
            _ => None,
        }
    }

    /// Apply the operation to `a` and `b`, truncated to `width` bits.
    ///
    /// `width` must be 1..=8; the fabricated cores use 4 and 8.
    #[must_use]
    pub fn apply(self, a: u8, b: u8, width: u32) -> u8 {
        debug_assert!((1..=8).contains(&width));
        let mask = ((1u16 << width) - 1) as u8;
        let r = match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Nand => !(a & b),
            AluOp::Xor => a ^ b,
        };
        r & mask
    }
}

impl core::fmt::Display for AluOp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Nand => "nand",
            AluOp::Xor => "xor",
        };
        f.write_str(s)
    }
}

/// Identifies one of the modelled ISA dialects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// The fabricated 4-bit FlexiCore4 (Figure 2a).
    Fc4,
    /// The fabricated 8-bit FlexiCore8 (Figure 2b).
    Fc8,
    /// The extended accumulator ISA of the design-space exploration (§6).
    ExtendedAcc,
    /// The two-operand load-store ISA of the design-space exploration (§6.2).
    LoadStore,
}

impl Dialect {
    /// Datapath width in bits.
    #[must_use]
    pub fn datapath_bits(self) -> u32 {
        match self {
            Dialect::Fc4 | Dialect::ExtendedAcc | Dialect::LoadStore => 4,
            Dialect::Fc8 => 8,
        }
    }

    /// Width of the *shortest* instruction encoding in bits.
    #[must_use]
    pub fn base_instruction_bits(self) -> u32 {
        match self {
            Dialect::Fc4 | Dialect::Fc8 | Dialect::ExtendedAcc => 8,
            Dialect::LoadStore => 16,
        }
    }

    /// Number of data-memory words (accumulator dialects) or registers
    /// (load-store dialect), IO-mapped entries included.
    #[must_use]
    pub fn mem_words(self) -> u8 {
        match self {
            Dialect::Fc4 | Dialect::ExtendedAcc | Dialect::LoadStore => 8,
            Dialect::Fc8 => 4,
        }
    }

    /// Whether the dialect has a dedicated accumulator register (the
    /// load-store dialect keeps all state in its register file).
    #[must_use]
    pub fn has_accumulator(self) -> bool {
        !matches!(self, Dialect::LoadStore)
    }
}

impl core::fmt::Display for Dialect {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Dialect::Fc4 => "fc4",
            Dialect::Fc8 => "fc8",
            Dialect::ExtendedAcc => "xacc",
            Dialect::LoadStore => "xls",
        };
        f.write_str(s)
    }
}

/// Sign-extend the low `bits` bits of `v` into an `i16`.
///
/// Used for 4-bit immediates: the paper's Listing 1 writes `addi -3`, so
/// immediates are interpreted as two's-complement nibbles.
#[must_use]
pub fn sign_extend(v: u8, bits: u32) -> i16 {
    debug_assert!((1..=8).contains(&bits));
    let shift = 16 - bits;
    ((i16::from(v)) << shift) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_field_roundtrip() {
        for op in [AluOp::Add, AluOp::Nand, AluOp::Xor] {
            assert_eq!(AluOp::from_field(op.field()), Some(op));
        }
        assert_eq!(AluOp::from_field(0b11), None);
    }

    #[test]
    fn alu_apply_masks_to_width() {
        assert_eq!(AluOp::Add.apply(0xF, 0x1, 4), 0x0);
        assert_eq!(AluOp::Add.apply(0xFF, 0x02, 8), 0x01);
        assert_eq!(AluOp::Nand.apply(0b1010, 0b0110, 4), 0b1101);
        assert_eq!(AluOp::Xor.apply(0b1010, 0b0110, 4), 0b1100);
    }

    #[test]
    fn nand_of_zero_is_all_ones() {
        // the `nandi 0` idiom from the paper's Listing 1 sets ACC = -1
        assert_eq!(AluOp::Nand.apply(0x3, 0x0, 4), 0xF);
        assert_eq!(AluOp::Nand.apply(0xAB, 0x00, 8), 0xFF);
    }

    #[test]
    fn sign_extend_nibbles() {
        assert_eq!(sign_extend(0xD, 4), -3);
        assert_eq!(sign_extend(0x7, 4), 7);
        assert_eq!(sign_extend(0x8, 4), -8);
        assert_eq!(sign_extend(0x0, 4), 0);
        assert_eq!(sign_extend(0xFF, 8), -1);
    }

    #[test]
    fn dialect_properties() {
        assert_eq!(Dialect::Fc4.datapath_bits(), 4);
        assert_eq!(Dialect::Fc8.datapath_bits(), 8);
        assert_eq!(Dialect::LoadStore.base_instruction_bits(), 16);
        assert_eq!(Dialect::Fc4.to_string(), "fc4");
    }
}
