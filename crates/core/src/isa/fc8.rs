//! The FlexiCore8 instruction set (paper Figure 2b).
//!
//! FlexiCore8 keeps every FlexiCore4 instruction and format but widens the
//! datapath to eight bits. To stay inside the 800-NAND2 area budget the data
//! memory is halved to four octet words (§3.3), so the memory address fields
//! shrink to two bits (bits 3:2 are fixed zeros).
//!
//! ```text
//! Branch     [ 1 | target:7 ]
//! I-Type     [ 0 | 1 | op:2 | imm:4 ]          imm sign-extended to 8 bits
//! M-Type     [ 0 | 0 | op:2 | 0 0 | src:2 ]
//! T-Type     [ 0 | d | 1 1  | 0 0 | src:2 ]    d=0 LOAD, d=1 STORE
//! Load Byte  [ 0000_1000 ] [ imm:8 ]           ACC = imm (two bytes)
//! ```
//!
//! `LOAD BYTE` is the only instruction in either fabricated ISA that is not
//! eight bits: the opcode byte `0x08` (a reserved FlexiCore4 encoding — bit 3
//! set in a memory-format instruction) tells the controller that the *next*
//! byte fetched from program memory is data, not an instruction. This is the
//! single stateful bit in FlexiCore8's controller (§3.4).
//!
//! I-type immediates are sign-extended from four to eight bits so idioms such
//! as `addi -3` keep working on the wider datapath (reconstruction choice;
//! the paper does not state the extension rule).

use crate::error::DecodeError;
use crate::isa::AluOp;

/// Number of data-memory words (including the two memory-mapped IO words).
pub const MEM_WORDS: usize = 4;
/// Memory address that reads the 8-bit input bus.
pub const IPORT_ADDR: u8 = 0;
/// Memory address that drives the 8-bit output bus.
pub const OPORT_ADDR: u8 = 1;
/// Width of the program counter in bits.
pub const PC_BITS: u32 = 7;
/// Bytes per program page reachable without the off-chip MMU.
pub const PAGE_BYTES: usize = 1 << PC_BITS;
/// Datapath width in bits.
pub const WIDTH: u32 = 8;
/// The opcode byte announcing a `LOAD BYTE` payload.
pub const LOAD_BYTE_OPCODE: u8 = 0b0000_1000;

/// A decoded FlexiCore8 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// `ACC = ACC + sext(imm)`.
    AddImm {
        /// 4-bit immediate (sign-extended to 8 bits before use).
        imm: u8,
    },
    /// `ACC = !(ACC & sext(imm))`.
    NandImm {
        /// 4-bit immediate.
        imm: u8,
    },
    /// `ACC = ACC ^ sext(imm)`.
    XorImm {
        /// 4-bit immediate.
        imm: u8,
    },
    /// `ACC = ACC + MEM[src]`.
    AddMem {
        /// Memory address 0..4.
        src: u8,
    },
    /// `ACC = !(ACC & MEM[src])`.
    NandMem {
        /// Memory address 0..4.
        src: u8,
    },
    /// `ACC = ACC ^ MEM[src]`.
    XorMem {
        /// Memory address 0..4.
        src: u8,
    },
    /// `ACC = MEM[addr]`.
    Load {
        /// Memory address 0..4.
        addr: u8,
    },
    /// `MEM[addr] = ACC`.
    Store {
        /// Memory address 0..4.
        addr: u8,
    },
    /// `if ACC[7] { PC = target }`.
    Branch {
        /// 7-bit in-page target address.
        target: u8,
    },
    /// `ACC = imm` — the two-byte `LOAD BYTE` instruction.
    LoadByte {
        /// Full 8-bit immediate carried in the second byte.
        imm: u8,
    },
}

impl Instruction {
    /// Size of the encoded instruction in bytes (1, or 2 for `LOAD BYTE`).
    #[must_use]
    pub fn len(self) -> usize {
        match self {
            Instruction::LoadByte { .. } => 2,
            _ => 1,
        }
    }

    /// Always `false`; instructions occupy at least one byte.
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }

    /// Encode into `buf`, returning the number of bytes written (1 or 2).
    pub fn encode_into(self, buf: &mut Vec<u8>) -> usize {
        match self {
            Instruction::AddImm { imm } => buf.push(0b0100_0000 | (imm & 0xF)),
            Instruction::NandImm { imm } => buf.push(0b0101_0000 | (imm & 0xF)),
            Instruction::XorImm { imm } => buf.push(0b0110_0000 | (imm & 0xF)),
            Instruction::AddMem { src } => buf.push(src & 0x3),
            Instruction::NandMem { src } => buf.push(0b0001_0000 | (src & 0x3)),
            Instruction::XorMem { src } => buf.push(0b0010_0000 | (src & 0x3)),
            Instruction::Load { addr } => buf.push(0b0011_0000 | (addr & 0x3)),
            Instruction::Store { addr } => buf.push(0b0111_0000 | (addr & 0x3)),
            Instruction::Branch { target } => buf.push(0b1000_0000 | (target & 0x7F)),
            Instruction::LoadByte { imm } => {
                buf.push(LOAD_BYTE_OPCODE);
                buf.push(imm);
            }
        }
        self.len()
    }

    /// Encode to a small byte vector.
    #[must_use]
    pub fn encode(self) -> Vec<u8> {
        let mut v = Vec::with_capacity(2);
        self.encode_into(&mut v);
        v
    }

    /// Decode from the byte at the front of `bytes`.
    ///
    /// Returns the instruction and its encoded length.
    ///
    /// # Errors
    ///
    /// * [`DecodeError::Illegal`] for reserved encodings,
    /// * [`DecodeError::NeedsSecondByte`] if `bytes` holds only the `LOAD
    ///   BYTE` opcode.
    pub fn decode(bytes: &[u8]) -> Result<(Self, usize), DecodeError> {
        let byte = *bytes.first().ok_or(DecodeError::Illegal { raw: 0 })?;
        if byte & 0x80 != 0 {
            return Ok((
                Instruction::Branch {
                    target: byte & 0x7F,
                },
                1,
            ));
        }
        if byte == LOAD_BYTE_OPCODE {
            let imm = *bytes
                .get(1)
                .ok_or(DecodeError::NeedsSecondByte { raw: byte })?;
            return Ok((Instruction::LoadByte { imm }, 2));
        }
        let imm_mode = byte & 0x40 != 0;
        let op = (byte >> 4) & 0b11;
        if let Some(alu) = AluOp::from_field(op) {
            if imm_mode {
                let imm = byte & 0xF;
                return Ok((
                    match alu {
                        AluOp::Add => Instruction::AddImm { imm },
                        AluOp::Nand => Instruction::NandImm { imm },
                        AluOp::Xor => Instruction::XorImm { imm },
                    },
                    1,
                ));
            }
            if byte & 0b1100 != 0 {
                return Err(DecodeError::Illegal { raw: byte.into() });
            }
            let src = byte & 0x3;
            return Ok((
                match alu {
                    AluOp::Add => Instruction::AddMem { src },
                    AluOp::Nand => Instruction::NandMem { src },
                    AluOp::Xor => Instruction::XorMem { src },
                },
                1,
            ));
        }
        if byte & 0b1100 != 0 {
            return Err(DecodeError::Illegal { raw: byte.into() });
        }
        let addr = byte & 0x3;
        Ok((
            if imm_mode {
                Instruction::Store { addr }
            } else {
                Instruction::Load { addr }
            },
            1,
        ))
    }

    /// The ALU operation performed, if this is an ALU instruction.
    #[must_use]
    pub fn alu_op(self) -> Option<AluOp> {
        match self {
            Instruction::AddImm { .. } | Instruction::AddMem { .. } => Some(AluOp::Add),
            Instruction::NandImm { .. } | Instruction::NandMem { .. } => Some(AluOp::Nand),
            Instruction::XorImm { .. } | Instruction::XorMem { .. } => Some(AluOp::Xor),
            _ => None,
        }
    }
}

impl core::fmt::Display for Instruction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            Instruction::AddImm { imm } => write!(f, "addi {}", crate::isa::sign_extend(imm, 4)),
            Instruction::NandImm { imm } => write!(f, "nandi {imm:#x}"),
            Instruction::XorImm { imm } => write!(f, "xori {imm:#x}"),
            Instruction::AddMem { src } => write!(f, "add r{src}"),
            Instruction::NandMem { src } => write!(f, "nand r{src}"),
            Instruction::XorMem { src } => write!(f, "xor r{src}"),
            Instruction::Load { addr } => write!(f, "load r{addr}"),
            Instruction::Store { addr } => write!(f, "store r{addr}"),
            Instruction::Branch { target } => write!(f, "br {target:#04x}"),
            Instruction::LoadByte { imm } => write!(f, "ldb {imm:#04x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_legal() -> Vec<Instruction> {
        let mut v = Vec::new();
        for imm in 0..16u8 {
            v.push(Instruction::AddImm { imm });
            v.push(Instruction::NandImm { imm });
            v.push(Instruction::XorImm { imm });
        }
        for a in 0..4u8 {
            v.push(Instruction::AddMem { src: a });
            v.push(Instruction::NandMem { src: a });
            v.push(Instruction::XorMem { src: a });
            v.push(Instruction::Load { addr: a });
            v.push(Instruction::Store { addr: a });
        }
        for t in 0..128u8 {
            v.push(Instruction::Branch { target: t });
        }
        for imm in [0u8, 1, 0x7F, 0x80, 0xFF] {
            v.push(Instruction::LoadByte { imm });
        }
        v
    }

    #[test]
    fn encode_decode_roundtrip() {
        for insn in all_legal() {
            let bytes = insn.encode();
            let (decoded, len) = Instruction::decode(&bytes).expect("legal");
            assert_eq!(decoded, insn);
            assert_eq!(len, bytes.len());
        }
    }

    #[test]
    fn load_byte_is_0x08_prefix() {
        let bytes = Instruction::LoadByte { imm: 0xAB }.encode();
        assert_eq!(bytes, vec![0x08, 0xAB]);
    }

    #[test]
    fn load_byte_needs_second_byte() {
        assert_eq!(
            Instruction::decode(&[0x08]),
            Err(DecodeError::NeedsSecondByte { raw: 0x08 })
        );
    }

    #[test]
    fn narrower_address_fields_than_fc4() {
        // bits 3:2 must be zero in memory formats
        assert!(Instruction::decode(&[0b0000_0100]).is_err());
        assert!(Instruction::decode(&[0b0011_0100]).is_err());
        // 0b0000_1000 is LOAD BYTE, not illegal
        assert!(matches!(
            Instruction::decode(&[0x08, 0x00]),
            Ok((Instruction::LoadByte { imm: 0 }, 2))
        ));
    }

    #[test]
    fn shared_formats_match_fc4_encodings() {
        // FlexiCore8 "has all of the instructions of FlexiCore4" — shared
        // instructions use identical byte encodings.
        use crate::isa::fc4;
        let pairs: Vec<(u8, Vec<u8>)> = vec![
            (
                fc4::Instruction::AddImm { imm: 7 }.encode(),
                Instruction::AddImm { imm: 7 }.encode(),
            ),
            (
                fc4::Instruction::Load { addr: 2 }.encode(),
                Instruction::Load { addr: 2 }.encode(),
            ),
            (
                fc4::Instruction::Branch { target: 99 }.encode(),
                Instruction::Branch { target: 99 }.encode(),
            ),
        ];
        for (a, b) in pairs {
            assert_eq!(vec![a], b);
        }
    }
}
