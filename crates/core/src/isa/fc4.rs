//! The FlexiCore4 instruction set (paper Figure 2a).
//!
//! All instructions are exactly eight bits wide. The encoding embeds datapath
//! control directly in the instruction bits (§3.3):
//!
//! * bit 7 — `1` selects the branch format; `0` everything else,
//! * bit 6 — ALU input multiplexer: `1` = immediate operand, `0` = memory
//!   operand,
//! * bits 5:4 — ALU output multiplexer (`00` ADD, `01` NAND, `10` XOR);
//!   `11` selects the transfer (load/store) format,
//! * bits 3:0 — immediate, or `0 src[2:0]` memory address.
//!
//! ```text
//! Branch  [ 1 | target:7 ]                    taken iff ACC bit 3 is set
//! I-Type  [ 0 | 1 | op:2 | imm:4 ]            ACC = ACC op imm
//! M-Type  [ 0 | 0 | op:2 | 0 | src:3 ]        ACC = ACC op MEM[src]
//! T-Type  [ 0 | d | 1 1  | 0 | addr:3 ]       d=0 LOAD, d=1 STORE
//! ```
//!
//! **Reconstruction note.** Figure 2a leaves the bit that distinguishes
//! `LOAD` from `STORE` ambiguous in the scanned text. We place the direction
//! in bit 6 (`0` = LOAD, `1` = STORE), consistent with bit 6's hardware role:
//! for a LOAD the datapath passes the *memory* operand through, exactly the
//! `0 = memory` sense bit 6 already has for M-type instructions. Bit 3 is
//! fixed to zero in both M- and T-type formats as drawn in the figure.
//!
//! The data memory is eight 4-bit words. Addresses 0 and 1 are memory-mapped
//! to the input and output buses respectively (§3.3), leaving `r2`–`r7` as
//! general-purpose storage.

use crate::error::DecodeError;
use crate::isa::AluOp;

/// Number of data-memory words (including the two memory-mapped IO words).
pub const MEM_WORDS: usize = 8;
/// Memory address that reads the 4-bit input bus.
pub const IPORT_ADDR: u8 = 0;
/// Memory address that drives the 4-bit output bus.
pub const OPORT_ADDR: u8 = 1;
/// Width of the program counter in bits; one page is `2^7 = 128` bytes.
pub const PC_BITS: u32 = 7;
/// Bytes per program page reachable without the off-chip MMU.
pub const PAGE_BYTES: usize = 1 << PC_BITS;
/// Datapath width in bits.
pub const WIDTH: u32 = 4;

/// A decoded FlexiCore4 instruction.
///
/// The nine instructions of Figure 2a: three ALU operations in each of two
/// addressing modes, `LOAD`, `STORE`, and the conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// `ACC = ACC + imm` (two's-complement nibble immediate).
    AddImm {
        /// 4-bit immediate (raw nibble; interpreted two's-complement).
        imm: u8,
    },
    /// `ACC = !(ACC & imm)`.
    NandImm {
        /// 4-bit immediate.
        imm: u8,
    },
    /// `ACC = ACC ^ imm`.
    XorImm {
        /// 4-bit immediate.
        imm: u8,
    },
    /// `ACC = ACC + MEM[src]`.
    AddMem {
        /// Memory address 0..8.
        src: u8,
    },
    /// `ACC = !(ACC & MEM[src])`.
    NandMem {
        /// Memory address 0..8.
        src: u8,
    },
    /// `ACC = ACC ^ MEM[src]`.
    XorMem {
        /// Memory address 0..8.
        src: u8,
    },
    /// `ACC = MEM[addr]` (reading address 0 samples the input bus).
    Load {
        /// Memory address 0..8.
        addr: u8,
    },
    /// `MEM[addr] = ACC` (writing address 1 drives the output bus).
    Store {
        /// Memory address 0..8.
        addr: u8,
    },
    /// `if ACC[3] { PC = target }` — branch within the current 128-byte page.
    Branch {
        /// 7-bit in-page target address.
        target: u8,
    },
}

impl Instruction {
    /// Encode to the 8-bit machine word of Figure 2a.
    ///
    /// Field values are masked to their field widths, so out-of-range
    /// arguments cannot produce an encoding that decodes differently.
    #[must_use]
    pub fn encode(self) -> u8 {
        match self {
            Instruction::AddImm { imm } => 0b0100_0000 | (imm & 0xF),
            Instruction::NandImm { imm } => 0b0101_0000 | (imm & 0xF),
            Instruction::XorImm { imm } => 0b0110_0000 | (imm & 0xF),
            Instruction::AddMem { src } => src & 0x7,
            Instruction::NandMem { src } => 0b0001_0000 | (src & 0x7),
            Instruction::XorMem { src } => 0b0010_0000 | (src & 0x7),
            Instruction::Load { addr } => 0b0011_0000 | (addr & 0x7),
            Instruction::Store { addr } => 0b0111_0000 | (addr & 0x7),
            Instruction::Branch { target } => 0b1000_0000 | (target & 0x7F),
        }
    }

    /// Decode an 8-bit machine word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Illegal`] if the fixed-zero bit (bit 3) of an
    /// M- or T-type encoding is set — those encodings are reserved in the
    /// FlexiCore4 ISA (FlexiCore8 reuses one of them for `LOAD BYTE`).
    pub fn decode(byte: u8) -> Result<Self, DecodeError> {
        if byte & 0x80 != 0 {
            return Ok(Instruction::Branch {
                target: byte & 0x7F,
            });
        }
        let imm_mode = byte & 0x40 != 0;
        let op = (byte >> 4) & 0b11;
        if let Some(alu) = AluOp::from_field(op) {
            if imm_mode {
                let imm = byte & 0xF;
                return Ok(match alu {
                    AluOp::Add => Instruction::AddImm { imm },
                    AluOp::Nand => Instruction::NandImm { imm },
                    AluOp::Xor => Instruction::XorImm { imm },
                });
            }
            if byte & 0b1000 != 0 {
                return Err(DecodeError::Illegal { raw: byte.into() });
            }
            let src = byte & 0x7;
            return Ok(match alu {
                AluOp::Add => Instruction::AddMem { src },
                AluOp::Nand => Instruction::NandMem { src },
                AluOp::Xor => Instruction::XorMem { src },
            });
        }
        // op == 0b11: transfer format
        if byte & 0b1000 != 0 {
            return Err(DecodeError::Illegal { raw: byte.into() });
        }
        let addr = byte & 0x7;
        Ok(if imm_mode {
            Instruction::Store { addr }
        } else {
            Instruction::Load { addr }
        })
    }

    /// The ALU operation performed, if this is an ALU instruction.
    #[must_use]
    pub fn alu_op(self) -> Option<AluOp> {
        match self {
            Instruction::AddImm { .. } | Instruction::AddMem { .. } => Some(AluOp::Add),
            Instruction::NandImm { .. } | Instruction::NandMem { .. } => Some(AluOp::Nand),
            Instruction::XorImm { .. } | Instruction::XorMem { .. } => Some(AluOp::Xor),
            _ => None,
        }
    }

    /// `true` for the branch format.
    #[must_use]
    pub fn is_branch(self) -> bool {
        matches!(self, Instruction::Branch { .. })
    }

    /// Assembly mnemonic spelling used by `flexasm` listings.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Instruction::AddImm { .. } => "addi",
            Instruction::NandImm { .. } => "nandi",
            Instruction::XorImm { .. } => "xori",
            Instruction::AddMem { .. } => "add",
            Instruction::NandMem { .. } => "nand",
            Instruction::XorMem { .. } => "xor",
            Instruction::Load { .. } => "load",
            Instruction::Store { .. } => "store",
            Instruction::Branch { .. } => "br",
        }
    }
}

impl core::fmt::Display for Instruction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            Instruction::AddImm { imm } => write!(f, "addi {}", crate::isa::sign_extend(imm, 4)),
            Instruction::NandImm { imm } => write!(f, "nandi {imm:#x}"),
            Instruction::XorImm { imm } => write!(f, "xori {imm:#x}"),
            Instruction::AddMem { src } => write!(f, "add r{src}"),
            Instruction::NandMem { src } => write!(f, "nand r{src}"),
            Instruction::XorMem { src } => write!(f, "xor r{src}"),
            Instruction::Load { addr } => write!(f, "load r{addr}"),
            Instruction::Store { addr } => write!(f, "store r{addr}"),
            Instruction::Branch { target } => write!(f, "br {target:#04x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_legal_instructions() -> Vec<Instruction> {
        let mut v = Vec::new();
        for imm in 0..16u8 {
            v.push(Instruction::AddImm { imm });
            v.push(Instruction::NandImm { imm });
            v.push(Instruction::XorImm { imm });
        }
        for a in 0..8u8 {
            v.push(Instruction::AddMem { src: a });
            v.push(Instruction::NandMem { src: a });
            v.push(Instruction::XorMem { src: a });
            v.push(Instruction::Load { addr: a });
            v.push(Instruction::Store { addr: a });
        }
        for t in 0..128u8 {
            v.push(Instruction::Branch { target: t });
        }
        v
    }

    #[test]
    fn encode_decode_roundtrip_all() {
        for insn in all_legal_instructions() {
            let byte = insn.encode();
            assert_eq!(Instruction::decode(byte), Ok(insn), "byte={byte:#04x}");
        }
    }

    #[test]
    fn every_byte_decodes_or_is_reserved() {
        let mut legal = 0usize;
        for byte in 0..=255u8 {
            match Instruction::decode(byte) {
                Ok(insn) => {
                    legal += 1;
                    assert_eq!(insn.encode(), byte, "re-encode mismatch for {byte:#04x}");
                }
                Err(DecodeError::Illegal { .. }) => {
                    // reserved encodings all have op!=branch and bit3 set in
                    // memory/transfer mode
                    assert_eq!(byte & 0x80, 0);
                    assert_eq!(byte & 0b1000, 0b1000);
                    assert!(byte & 0x40 == 0 || (byte >> 4) & 0b11 == 0b11);
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        // 128 branches + 48 I-type + 24 M-type + 16 T-type = 216 legal bytes
        assert_eq!(legal, 216);
    }

    #[test]
    fn figure2a_field_wiring() {
        // bits 5:4 go straight to the ALU output mux
        assert_eq!(Instruction::AddImm { imm: 0 }.encode() >> 4 & 0b11, 0b00);
        assert_eq!(Instruction::NandImm { imm: 0 }.encode() >> 4 & 0b11, 0b01);
        assert_eq!(Instruction::XorImm { imm: 0 }.encode() >> 4 & 0b11, 0b10);
        // bit 6 selects immediate vs memory operand
        assert_eq!(Instruction::AddImm { imm: 5 }.encode() & 0x40, 0x40);
        assert_eq!(Instruction::AddMem { src: 5 }.encode() & 0x40, 0);
    }

    #[test]
    fn branch_encoding_uses_high_bit() {
        let b = Instruction::Branch { target: 0x55 }.encode();
        assert_eq!(b, 0xD5);
    }

    #[test]
    fn listing1_style_instructions_display() {
        assert_eq!(Instruction::AddImm { imm: 0xD }.to_string(), "addi -3");
        assert_eq!(Instruction::NandImm { imm: 0 }.to_string(), "nandi 0x0");
        assert_eq!(Instruction::Load { addr: 2 }.to_string(), "load r2");
    }

    #[test]
    fn masks_out_of_range_fields() {
        // address 9 wraps into the 3-bit field rather than corrupting opcode bits
        let enc = Instruction::Load { addr: 9 }.encode();
        assert_eq!(Instruction::decode(enc), Ok(Instruction::Load { addr: 1 }));
    }
}
