//! The extended accumulator ISA of the design-space exploration (§6.1–6.2).
//!
//! Section 6.1 of the paper settles on this revised operation set for an
//! accumulator machine:
//!
//! > Add(i), Adc(i), Sub, Swb, And(i), Or(i), Xor(i), Neg, Xch, Load, Store,
//! > Branch nzp, Call, Ret, Asr(i), Lsr(i)
//!
//! The paper does not publish binary encodings for the DSE dialects, so this
//! module defines a compact one with the properties §6.2 assumes: ordinary
//! instructions stay **eight bits** wide (one program-bus beat), immediates
//! keep FlexiCore4's four bits, and only control transfers (`BR`, `CALL`)
//! take a second byte for their target.
//!
//! ```text
//! group M   [ 0 0 | op:3 | m:3 ]      mem ALU: add adc sub swb nand or xor xch
//! group A   [ 0 1 | op:2 | imm:4 ]    addi nandi ori xori (imm4, sign-extended)
//! control   [ 1 0 | nzp:3 | f:1 ] [ 0 target:7 ]   f=0 BR, f=1 CALL
//! group B   [ 1 1 | op:2 | v:4 ]      load/store, adci, shifts, ret/neg/mul
//! ```
//!
//! Group-B sub-encodings: `op=0` is `[d | m:3]` (load/store), `op=1` is
//! `adci imm4`, `op=2` is `[arith | amt:3]` (logical/arithmetic right
//! shift), `op=3` packs `ret` (v=0), `neg` (v=1) and the multiplier
//! (`[1 | hi | m:2]`, operands limited to the first four memory words).
//!
//! `NAND` is retained from the base ISA in every configuration, so base-ISA
//! idioms (`nandi 0`) keep working; `AND` is always synthesizable as two
//! NANDs. Which instructions are *architecturally legal* depends on the
//! enabled [`FeatureSet`]: see [`Instruction::required_feature`]. A
//! configuration with no features enabled is exactly the base FlexiCore4
//! ISA re-encoded.

use crate::error::DecodeError;
use crate::isa::features::{Feature, FeatureSet};

/// Memory address that reads the input bus.
pub const IPORT_ADDR: u8 = 0;
/// Memory address that drives the output bus.
pub const OPORT_ADDR: u8 = 1;
/// Width of the program counter in bits.
pub const PC_BITS: u32 = 7;
/// Datapath width in bits.
pub const WIDTH: u32 = 4;

/// Branch condition mask: any subset of negative / zero / positive.
///
/// The base FlexiCore branch corresponds to [`Cond::N`]; the
/// [`Feature::BranchFlags`] extension unlocks the remaining masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cond {
    bits: u8,
}

impl Cond {
    /// Branch if negative (the base FlexiCore condition).
    pub const N: Cond = Cond { bits: 0b100 };
    /// Branch if zero.
    pub const Z: Cond = Cond { bits: 0b010 };
    /// Branch if positive (non-zero, non-negative).
    pub const P: Cond = Cond { bits: 0b001 };
    /// Branch always.
    pub const ALWAYS: Cond = Cond { bits: 0b111 };
    /// Branch never (legal encoding; effectively a two-byte no-op).
    pub const NEVER: Cond = Cond { bits: 0b000 };
    /// Branch if not zero.
    pub const NZ: Cond = Cond { bits: 0b101 };
    /// Branch if zero or negative (less-or-equal-zero).
    pub const LE: Cond = Cond { bits: 0b110 };
    /// Branch if zero or positive (greater-or-equal-zero).
    pub const GE: Cond = Cond { bits: 0b011 };

    /// Build from a raw 3-bit `nzp` mask.
    #[must_use]
    pub fn from_bits(bits: u8) -> Cond {
        Cond { bits: bits & 0b111 }
    }

    /// The raw 3-bit `nzp` mask.
    #[must_use]
    pub fn bits(self) -> u8 {
        self.bits
    }

    /// Evaluate against an accumulator value of the given bit width.
    #[must_use]
    pub fn taken(self, acc: u8, width: u32) -> bool {
        let mask = ((1u16 << width) - 1) as u8;
        let v = acc & mask;
        let n = v & (1 << (width - 1)) != 0;
        let z = v == 0;
        let p = !n && !z;
        (self.bits & 0b100 != 0 && n)
            || (self.bits & 0b010 != 0 && z)
            || (self.bits & 0b001 != 0 && p)
    }
}

impl core::fmt::Display for Cond {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self.bits {
            0b000 => "never",
            0b001 => "p",
            0b010 => "z",
            0b011 => "zp",
            0b100 => "n",
            0b101 => "np",
            0b110 => "nz",
            _ => "always",
        };
        f.write_str(s)
    }
}

/// A decoded extended-accumulator instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// `ACC += MEM[m]`; sets carry.
    Add {
        /// Memory address.
        m: u8,
    },
    /// `ACC += MEM[m] + C`; sets carry. Requires [`Feature::AddWithCarry`].
    Adc {
        /// Memory address.
        m: u8,
    },
    /// `ACC -= MEM[m]`; sets carry (borrow-free flag, 6502 style).
    /// Requires [`Feature::AddWithCarry`].
    Sub {
        /// Memory address.
        m: u8,
    },
    /// `ACC -= MEM[m] + !C`; sets carry. Requires [`Feature::AddWithCarry`].
    Swb {
        /// Memory address.
        m: u8,
    },
    /// `ACC = !(ACC & MEM[m])` — retained base operation.
    Nand {
        /// Memory address.
        m: u8,
    },
    /// `ACC |= MEM[m]`. Requires [`Feature::AddWithCarry`] (extended ALU).
    Or {
        /// Memory address.
        m: u8,
    },
    /// `ACC ^= MEM[m]`.
    Xor {
        /// Memory address.
        m: u8,
    },
    /// Exchange `ACC` and `MEM[m]`. Requires [`Feature::AccExchange`].
    Xch {
        /// Memory address.
        m: u8,
    },
    /// `ACC = MEM[m]`.
    Load {
        /// Memory address.
        m: u8,
    },
    /// `MEM[m] = ACC`.
    Store {
        /// Memory address.
        m: u8,
    },
    /// `ACC += sext(imm4)`; sets carry.
    AddImm {
        /// Raw 4-bit immediate, sign-extended before use.
        imm: u8,
    },
    /// `ACC = !(ACC & sext(imm4))`.
    NandImm {
        /// Raw 4-bit immediate.
        imm: u8,
    },
    /// `ACC |= sext(imm4)`. Requires [`Feature::AddWithCarry`].
    OrImm {
        /// Raw 4-bit immediate.
        imm: u8,
    },
    /// `ACC ^= sext(imm4)`.
    XorImm {
        /// Raw 4-bit immediate.
        imm: u8,
    },
    /// Arithmetic shift right by `amount`; carry = last bit out.
    /// Requires [`Feature::BarrelShifter`].
    AsrImm {
        /// Shift amount 0..8.
        amount: u8,
    },
    /// Logical shift right by `amount`; carry = last bit out.
    /// Requires [`Feature::BarrelShifter`].
    LsrImm {
        /// Shift amount 0..8.
        amount: u8,
    },
    /// `ACC += sext(imm4) + C`. Requires [`Feature::AddWithCarry`].
    AdcImm {
        /// Raw 4-bit immediate.
        imm: u8,
    },
    /// `ACC = -ACC`; sets carry like `SUB`. Requires
    /// [`Feature::AddWithCarry`].
    Neg,
    /// `ACC = low(ACC * MEM[m])`, `m < 4`. Requires [`Feature::Multiplier`].
    MulL {
        /// Memory address (0..4).
        m: u8,
    },
    /// `ACC = high(ACC * MEM[m])`, `m < 4`. Requires
    /// [`Feature::Multiplier`].
    MulH {
        /// Memory address (0..4).
        m: u8,
    },
    /// Conditional branch to a 7-bit in-page target (two-byte encoding).
    /// Masks other than [`Cond::N`] require [`Feature::BranchFlags`].
    Br {
        /// Condition mask.
        cond: Cond,
        /// 7-bit in-page target.
        target: u8,
    },
    /// Call: `RA = PC + 2; PC = target` (two-byte encoding).
    /// Requires [`Feature::Subroutines`].
    Call {
        /// 7-bit in-page target.
        target: u8,
    },
    /// Return: `PC = RA`. Requires [`Feature::Subroutines`].
    Ret,
}

impl Instruction {
    /// Encoded size in bytes (1, or 2 for `BR`/`CALL`).
    #[must_use]
    pub fn len(self) -> usize {
        match self {
            Instruction::Br { .. } | Instruction::Call { .. } => 2,
            _ => 1,
        }
    }

    /// Always `false`.
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }

    /// The feature this instruction needs beyond the base ISA, if any.
    #[must_use]
    pub fn required_feature(self) -> Option<Feature> {
        match self {
            Instruction::Adc { .. }
            | Instruction::AdcImm { .. }
            | Instruction::Sub { .. }
            | Instruction::Swb { .. }
            | Instruction::Or { .. }
            | Instruction::OrImm { .. }
            | Instruction::Neg => Some(Feature::AddWithCarry),
            Instruction::AsrImm { .. } | Instruction::LsrImm { .. } => Some(Feature::BarrelShifter),
            Instruction::MulL { .. } | Instruction::MulH { .. } => Some(Feature::Multiplier),
            Instruction::Xch { .. } => Some(Feature::AccExchange),
            Instruction::Call { .. } | Instruction::Ret => Some(Feature::Subroutines),
            Instruction::Br { cond, .. } if cond != Cond::N => Some(Feature::BranchFlags),
            _ => None,
        }
    }

    /// Whether this instruction is legal under `features`.
    #[must_use]
    pub fn is_legal(self, features: FeatureSet) -> bool {
        self.required_feature().is_none_or(|f| features.contains(f))
    }

    /// Encode into `buf`; returns bytes written.
    pub fn encode_into(self, buf: &mut Vec<u8>) -> usize {
        const GM: u8 = 0b0000_0000;
        const GA: u8 = 0b0100_0000;
        const GC: u8 = 0b1000_0000;
        const GB: u8 = 0b1100_0000;
        match self {
            Instruction::Add { m } => buf.push(GM | (m & 7)),
            Instruction::Adc { m } => buf.push(GM | (1 << 3) | (m & 7)),
            Instruction::Sub { m } => buf.push(GM | (2 << 3) | (m & 7)),
            Instruction::Swb { m } => buf.push(GM | (3 << 3) | (m & 7)),
            Instruction::Nand { m } => buf.push(GM | (4 << 3) | (m & 7)),
            Instruction::Or { m } => buf.push(GM | (5 << 3) | (m & 7)),
            Instruction::Xor { m } => buf.push(GM | (6 << 3) | (m & 7)),
            Instruction::Xch { m } => buf.push(GM | (7 << 3) | (m & 7)),
            Instruction::AddImm { imm } => buf.push(GA | (imm & 0xF)),
            Instruction::NandImm { imm } => buf.push(GA | (1 << 4) | (imm & 0xF)),
            Instruction::OrImm { imm } => buf.push(GA | (2 << 4) | (imm & 0xF)),
            Instruction::XorImm { imm } => buf.push(GA | (3 << 4) | (imm & 0xF)),
            Instruction::Br { cond, target } => {
                buf.push(GC | (cond.bits() << 1));
                buf.push(target & 0x7F);
            }
            Instruction::Call { target } => {
                buf.push(GC | (Cond::ALWAYS.bits() << 1) | 1);
                buf.push(target & 0x7F);
            }
            Instruction::Load { m } => buf.push(GB | (m & 7)),
            Instruction::Store { m } => buf.push(GB | (1 << 3) | (m & 7)),
            Instruction::AdcImm { imm } => buf.push(GB | (1 << 4) | (imm & 0xF)),
            Instruction::LsrImm { amount } => buf.push(GB | (2 << 4) | (amount & 7)),
            Instruction::AsrImm { amount } => buf.push(GB | (2 << 4) | (1 << 3) | (amount & 7)),
            Instruction::Ret => buf.push(GB | (3 << 4)),
            Instruction::Neg => buf.push(GB | (3 << 4) | 1),
            Instruction::MulL { m } => buf.push(GB | (3 << 4) | (1 << 3) | (m & 3)),
            Instruction::MulH { m } => buf.push(GB | (3 << 4) | (1 << 3) | (1 << 2) | (m & 3)),
        }
        self.len()
    }

    /// Encode to a byte vector.
    #[must_use]
    pub fn encode(self) -> Vec<u8> {
        let mut v = Vec::with_capacity(2);
        self.encode_into(&mut v);
        v
    }

    /// Decode from the front of `bytes`, returning `(instruction, length)`.
    ///
    /// # Errors
    ///
    /// * [`DecodeError::Illegal`] for reserved encodings,
    /// * [`DecodeError::NeedsSecondByte`] for a lone `BR`/`CALL` opcode byte.
    pub fn decode(bytes: &[u8]) -> Result<(Self, usize), DecodeError> {
        let b = *bytes.first().ok_or(DecodeError::Illegal { raw: 0 })?;
        match b >> 6 {
            0b00 => {
                let m = b & 7;
                Ok((
                    match (b >> 3) & 7 {
                        0 => Instruction::Add { m },
                        1 => Instruction::Adc { m },
                        2 => Instruction::Sub { m },
                        3 => Instruction::Swb { m },
                        4 => Instruction::Nand { m },
                        5 => Instruction::Or { m },
                        6 => Instruction::Xor { m },
                        _ => Instruction::Xch { m },
                    },
                    1,
                ))
            }
            0b01 => {
                let imm = b & 0xF;
                Ok((
                    match (b >> 4) & 3 {
                        0 => Instruction::AddImm { imm },
                        1 => Instruction::NandImm { imm },
                        2 => Instruction::OrImm { imm },
                        _ => Instruction::XorImm { imm },
                    },
                    1,
                ))
            }
            0b10 => {
                if b & 0b0001_0000 != 0 {
                    return Err(DecodeError::Illegal { raw: b.into() });
                }
                let cond = Cond::from_bits((b >> 1) & 7);
                let is_call = b & 1 != 0;
                let target = *bytes
                    .get(1)
                    .ok_or(DecodeError::NeedsSecondByte { raw: b })?
                    & 0x7F;
                if is_call {
                    if cond != Cond::ALWAYS {
                        return Err(DecodeError::Illegal { raw: b.into() });
                    }
                    Ok((Instruction::Call { target }, 2))
                } else {
                    Ok((Instruction::Br { cond, target }, 2))
                }
            }
            _ => {
                let v = b & 0xF;
                match (b >> 4) & 3 {
                    0 => Ok((
                        if v & 0b1000 == 0 {
                            Instruction::Load { m: v & 7 }
                        } else {
                            Instruction::Store { m: v & 7 }
                        },
                        1,
                    )),
                    1 => Ok((Instruction::AdcImm { imm: v }, 1)),
                    2 => Ok((
                        if v & 0b1000 == 0 {
                            Instruction::LsrImm { amount: v & 7 }
                        } else {
                            Instruction::AsrImm { amount: v & 7 }
                        },
                        1,
                    )),
                    _ => match v {
                        0 => Ok((Instruction::Ret, 1)),
                        1 => Ok((Instruction::Neg, 1)),
                        8..=11 => Ok((Instruction::MulL { m: v & 3 }, 1)),
                        12..=15 => Ok((Instruction::MulH { m: v & 3 }, 1)),
                        _ => Err(DecodeError::Illegal { raw: b.into() }),
                    },
                }
            }
        }
    }
}

impl core::fmt::Display for Instruction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        use crate::isa::sign_extend;
        match *self {
            Instruction::Add { m } => write!(f, "add r{m}"),
            Instruction::Adc { m } => write!(f, "adc r{m}"),
            Instruction::Sub { m } => write!(f, "sub r{m}"),
            Instruction::Swb { m } => write!(f, "swb r{m}"),
            Instruction::Nand { m } => write!(f, "nand r{m}"),
            Instruction::Or { m } => write!(f, "or r{m}"),
            Instruction::Xor { m } => write!(f, "xor r{m}"),
            Instruction::Xch { m } => write!(f, "xch r{m}"),
            Instruction::Load { m } => write!(f, "load r{m}"),
            Instruction::Store { m } => write!(f, "store r{m}"),
            Instruction::AddImm { imm } => write!(f, "addi {}", sign_extend(imm, 4)),
            Instruction::NandImm { imm } => write!(f, "nandi {}", sign_extend(imm, 4)),
            Instruction::OrImm { imm } => write!(f, "ori {}", sign_extend(imm, 4)),
            Instruction::XorImm { imm } => write!(f, "xori {}", sign_extend(imm, 4)),
            Instruction::AsrImm { amount } => write!(f, "asri {amount}"),
            Instruction::LsrImm { amount } => write!(f, "lsri {amount}"),
            Instruction::AdcImm { imm } => write!(f, "adci {}", sign_extend(imm, 4)),
            Instruction::Neg => f.write_str("neg"),
            Instruction::MulL { m } => write!(f, "mull r{m}"),
            Instruction::MulH { m } => write!(f, "mulh r{m}"),
            Instruction::Br { cond, target } => write!(f, "br.{cond} {target:#04x}"),
            Instruction::Call { target } => write!(f, "call {target:#04x}"),
            Instruction::Ret => f.write_str("ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instructions() -> Vec<Instruction> {
        let mut v = vec![Instruction::Ret, Instruction::Neg];
        for m in 0..8 {
            v.extend([
                Instruction::Add { m },
                Instruction::Adc { m },
                Instruction::Sub { m },
                Instruction::Swb { m },
                Instruction::Nand { m },
                Instruction::Or { m },
                Instruction::Xor { m },
                Instruction::Xch { m },
                Instruction::Load { m },
                Instruction::Store { m },
            ]);
        }
        for m in 0..4 {
            v.push(Instruction::MulL { m });
            v.push(Instruction::MulH { m });
        }
        for imm in 0..16 {
            v.extend([
                Instruction::AddImm { imm },
                Instruction::NandImm { imm },
                Instruction::OrImm { imm },
                Instruction::XorImm { imm },
                Instruction::AdcImm { imm },
            ]);
        }
        for amount in 0..8 {
            v.push(Instruction::AsrImm { amount });
            v.push(Instruction::LsrImm { amount });
        }
        for c in 0..8 {
            v.push(Instruction::Br {
                cond: Cond::from_bits(c),
                target: 0x55,
            });
        }
        v.push(Instruction::Call { target: 0x7F });
        v
    }

    #[test]
    fn encode_decode_roundtrip() {
        for insn in sample_instructions() {
            let bytes = insn.encode();
            let (decoded, len) =
                Instruction::decode(&bytes).unwrap_or_else(|e| panic!("decode {insn:?}: {e}"));
            assert_eq!(decoded, insn);
            assert_eq!(len, bytes.len());
        }
    }

    #[test]
    fn all_single_bytes_decode_uniquely() {
        // every decodable single byte must re-encode to itself
        for b in 0..=255u8 {
            if let Ok((insn, 1)) = Instruction::decode(&[b]) {
                assert_eq!(insn.encode(), vec![b], "byte {b:#04x} -> {insn}");
            }
        }
    }

    #[test]
    fn control_transfers_are_two_bytes() {
        assert_eq!(
            Instruction::Br {
                cond: Cond::N,
                target: 3
            }
            .len(),
            2
        );
        assert_eq!(Instruction::Call { target: 3 }.len(), 2);
        assert_eq!(Instruction::Add { m: 2 }.len(), 1);
    }

    #[test]
    fn cond_evaluation_4bit() {
        assert!(Cond::N.taken(0x8, 4));
        assert!(!Cond::N.taken(0x7, 4));
        assert!(Cond::Z.taken(0x0, 4));
        assert!(Cond::P.taken(0x3, 4));
        assert!(!Cond::P.taken(0x0, 4));
        assert!(!Cond::P.taken(0xF, 4));
        assert!(Cond::ALWAYS.taken(0x0, 4));
        assert!(Cond::ALWAYS.taken(0xF, 4));
        assert!(!Cond::NEVER.taken(0x5, 4));
        assert!(Cond::NZ.taken(0xF, 4)); // np mask: negative qualifies
    }

    #[test]
    fn feature_gating() {
        let base = FeatureSet::BASE;
        assert!(Instruction::Add { m: 2 }.is_legal(base));
        assert!(Instruction::Nand { m: 2 }.is_legal(base));
        assert!(Instruction::Br {
            cond: Cond::N,
            target: 0
        }
        .is_legal(base));
        assert!(!Instruction::Br {
            cond: Cond::ALWAYS,
            target: 0
        }
        .is_legal(base));
        assert!(!Instruction::Adc { m: 2 }.is_legal(base));
        assert!(!Instruction::AsrImm { amount: 1 }.is_legal(base));
        assert!(!Instruction::Ret.is_legal(base));

        let revised = FeatureSet::revised();
        assert!(Instruction::Adc { m: 2 }.is_legal(revised));
        assert!(Instruction::Xch { m: 2 }.is_legal(revised));
        assert!(Instruction::Ret.is_legal(revised));
        assert!(!Instruction::MulL { m: 2 }.is_legal(revised));
    }

    #[test]
    fn base_feature_set_is_fc4_equivalent_ops() {
        // every instruction legal in the base configuration must be one of
        // the nine FlexiCore4 operations (re-encoded)
        for insn in sample_instructions() {
            if insn.is_legal(FeatureSet::BASE) {
                let ok = matches!(
                    insn,
                    Instruction::Add { .. }
                        | Instruction::Nand { .. }
                        | Instruction::Xor { .. }
                        | Instruction::Load { .. }
                        | Instruction::Store { .. }
                        | Instruction::AddImm { .. }
                        | Instruction::NandImm { .. }
                        | Instruction::XorImm { .. }
                        | Instruction::Br { cond: Cond::N, .. }
                );
                assert!(ok, "{insn:?} should not be legal in base config");
            }
        }
    }

    #[test]
    fn reserved_encodings_rejected() {
        // control group with bit 4 set is reserved
        assert!(Instruction::decode(&[0b1001_0000, 0]).is_err());
        // call with a non-always condition is reserved
        assert!(Instruction::decode(&[0b1000_0011, 0]).is_err());
        // group-B op=3 with v in 2..=7 is reserved
        for v in 2..8u8 {
            assert!(Instruction::decode(&[0b1111_0000 | v]).is_err(), "{v}");
        }
    }

    #[test]
    fn imm4_covers_the_full_nibble() {
        // the re-encoded ISA must keep FlexiCore4's immediate reach
        let i = Instruction::XorImm { imm: 0x8 };
        let bytes = i.encode();
        assert_eq!(Instruction::decode(&bytes).unwrap().0, i);
    }
}
