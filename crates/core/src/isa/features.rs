//! ISA extension features explored by the paper's design-space exploration.
//!
//! Section 6.1 evaluates seven candidate additions to the base FlexiCore4
//! ISA (Figure 9). Each is represented here as a flag; a [`FeatureSet`]
//! parameterizes the extended-ISA assembler, simulator and the gate-level
//! cost models, so every experiment that sweeps features does so through one
//! type.

use core::fmt;

/// A single candidate ISA extension from Figure 9 / Section 6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Feature {
    /// Data-coalescing arithmetic: `ADC`/`SWB` (add-with-carry, subtract-
    /// with-borrow) plus an architected carry flag. Enables multi-nibble
    /// integers and overflow inspection.
    AddWithCarry,
    /// A barrel shifter supporting arithmetic and logical right shifts
    /// (`ASR`, `LSR`). Left shifts were already cheap via repeated addition.
    BarrelShifter,
    /// Three-bit branch condition mask: branch on negative / zero / positive
    /// instead of only on the accumulator sign bit.
    BranchFlags,
    /// A 4 × 4 → 4-bit hardware multiplier that returns either the low or
    /// high half of the product (`MULL`, `MULH`).
    Multiplier,
    /// `XCH` — exchange the accumulator with a data-memory word in one
    /// instruction.
    AccExchange,
    /// A return-address register with `CALL`/`RET`, enabling cheap
    /// subroutine linkage (costs 8 flip-flops, §6.1).
    Subroutines,
    /// Double the data memory from 8 to 16 words. Does not change code size
    /// but admits programs with larger working sets (rejected by the paper
    /// for its >70 % area cost).
    DoubleRegfile,
}

impl Feature {
    /// All features, in the order Figure 9 presents them.
    pub const ALL: [Feature; 7] = [
        Feature::AddWithCarry,
        Feature::BarrelShifter,
        Feature::BranchFlags,
        Feature::Multiplier,
        Feature::AccExchange,
        Feature::Subroutines,
        Feature::DoubleRegfile,
    ];

    fn bit(self) -> u8 {
        match self {
            Feature::AddWithCarry => 1 << 0,
            Feature::BarrelShifter => 1 << 1,
            Feature::BranchFlags => 1 << 2,
            Feature::Multiplier => 1 << 3,
            Feature::AccExchange => 1 << 4,
            Feature::Subroutines => 1 << 5,
            Feature::DoubleRegfile => 1 << 6,
        }
    }

    /// Short label used in tables and figure output (matches Figure 9/10
    /// legends).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Feature::AddWithCarry => "ADC",
            Feature::BarrelShifter => "RShift",
            Feature::BranchFlags => "BranchFlags",
            Feature::Multiplier => "Multiplication",
            Feature::AccExchange => "AccExchange",
            Feature::Subroutines => "Subroutines",
            Feature::DoubleRegfile => "2xRegfile",
        }
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A set of enabled [`Feature`]s.
///
/// Implemented as a transparent bit set so sweeps over all 2⁷ combinations
/// are cheap; the type still reads like a collection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct FeatureSet(u8);

impl FeatureSet {
    /// The empty set — the base FlexiCore4 ISA.
    pub const BASE: FeatureSet = FeatureSet(0);

    /// The paper's revised ISA (§6.1 conclusion): coalescing arithmetic,
    /// barrel shifter, condition codes, accumulator exchange and subroutine
    /// linkage — but **not** the multiplier (too much area) and **not** the
    /// doubled register file (>70 % area cost).
    #[must_use]
    pub fn revised() -> FeatureSet {
        FeatureSet::BASE
            .with(Feature::AddWithCarry)
            .with(Feature::BarrelShifter)
            .with(Feature::BranchFlags)
            .with(Feature::AccExchange)
            .with(Feature::Subroutines)
    }

    /// The feature mix of the fabricated **FlexiCore4+** die (§6.1:
    /// "several of the ISA extensions — barrel shifter, branch condition
    /// flags").
    #[must_use]
    pub fn fc4_plus() -> FeatureSet {
        FeatureSet::BASE
            .with(Feature::BarrelShifter)
            .with(Feature::BranchFlags)
    }

    /// An empty set.
    #[must_use]
    pub fn new() -> FeatureSet {
        FeatureSet::BASE
    }

    /// A set containing exactly `feature`.
    #[must_use]
    pub fn only(feature: Feature) -> FeatureSet {
        FeatureSet(feature.bit())
    }

    /// Return `self` with `feature` enabled.
    #[must_use]
    pub fn with(self, feature: Feature) -> FeatureSet {
        FeatureSet(self.0 | feature.bit())
    }

    /// Return `self` with `feature` disabled.
    #[must_use]
    pub fn without(self, feature: Feature) -> FeatureSet {
        FeatureSet(self.0 & !feature.bit())
    }

    /// Whether `feature` is enabled.
    #[must_use]
    pub fn contains(self, feature: Feature) -> bool {
        self.0 & feature.bit() != 0
    }

    /// `true` if no features are enabled (base ISA).
    #[must_use]
    pub fn is_base(self) -> bool {
        self.0 == 0
    }

    /// Number of enabled features.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` when no features are enabled.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over the enabled features in declaration order.
    pub fn iter(self) -> impl Iterator<Item = Feature> {
        Feature::ALL.into_iter().filter(move |f| self.contains(*f))
    }

    /// Iterate over all 2⁷ feature combinations (used by exhaustive sweeps).
    pub fn all_combinations() -> impl Iterator<Item = FeatureSet> {
        (0u8..128).map(FeatureSet)
    }

    /// Number of general-purpose data-memory words this configuration has
    /// (addresses 0 and 1 stay memory-mapped IO).
    #[must_use]
    pub fn mem_words(self) -> usize {
        if self.contains(Feature::DoubleRegfile) {
            16
        } else {
            8
        }
    }
}

impl FromIterator<Feature> for FeatureSet {
    fn from_iter<I: IntoIterator<Item = Feature>>(iter: I) -> Self {
        iter.into_iter()
            .fold(FeatureSet::BASE, |acc, f| acc.with(f))
    }
}

impl Extend<Feature> for FeatureSet {
    fn extend<I: IntoIterator<Item = Feature>>(&mut self, iter: I) {
        for f in iter {
            *self = self.with(f);
        }
    }
}

impl fmt::Debug for FeatureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for FeatureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_base() {
            return f.write_str("base");
        }
        let mut first = true;
        for feat in self.iter() {
            if !first {
                f.write_str("+")?;
            }
            write!(f, "{feat}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_without_contains() {
        let s = FeatureSet::new().with(Feature::BarrelShifter);
        assert!(s.contains(Feature::BarrelShifter));
        assert!(!s.contains(Feature::Multiplier));
        assert!(s.without(Feature::BarrelShifter).is_base());
    }

    #[test]
    fn revised_set_matches_paper() {
        let r = FeatureSet::revised();
        assert!(r.contains(Feature::AddWithCarry));
        assert!(r.contains(Feature::BarrelShifter));
        assert!(r.contains(Feature::BranchFlags));
        assert!(r.contains(Feature::AccExchange));
        assert!(r.contains(Feature::Subroutines));
        assert!(
            !r.contains(Feature::Multiplier),
            "multiplier rejected (§6.1)"
        );
        assert!(
            !r.contains(Feature::DoubleRegfile),
            "2x regfile rejected (§6.1)"
        );
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn fc4_plus_has_shifter_and_flags() {
        let p = FeatureSet::fc4_plus();
        assert_eq!(p.len(), 2);
        assert!(p.contains(Feature::BarrelShifter));
        assert!(p.contains(Feature::BranchFlags));
    }

    #[test]
    fn iteration_and_collect() {
        let s: FeatureSet = [Feature::Multiplier, Feature::Subroutines]
            .into_iter()
            .collect();
        let back: Vec<Feature> = s.iter().collect();
        assert_eq!(back, vec![Feature::Multiplier, Feature::Subroutines]);
    }

    #[test]
    fn all_combinations_count() {
        assert_eq!(FeatureSet::all_combinations().count(), 128);
    }

    #[test]
    fn double_regfile_doubles_words() {
        assert_eq!(FeatureSet::BASE.mem_words(), 8);
        assert_eq!(FeatureSet::only(Feature::DoubleRegfile).mem_words(), 16);
    }

    #[test]
    fn display_forms() {
        assert_eq!(FeatureSet::BASE.to_string(), "base");
        assert_eq!(FeatureSet::fc4_plus().to_string(), "RShift+BranchFlags");
    }
}
