//! Error types for simulation and instruction decoding.

use core::fmt;

/// Errors produced while simulating a FlexiCore.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The program counter advanced past the end of the loaded program image
    /// and no instruction byte exists at the fetch address.
    ///
    /// On real silicon the fetch bus would float; the simulator treats it as
    /// a hard error so buggy programs are caught instead of executing noise.
    FetchOutOfBounds {
        /// The full (page-extended) fetch address.
        address: u32,
        /// The size of the loaded program image in bytes.
        program_len: usize,
    },
    /// An instruction byte did not decode to a legal instruction for the
    /// active ISA dialect.
    IllegalInstruction {
        /// The offending raw encoding (low byte, or both bytes for
        /// two-byte formats).
        raw: u16,
        /// The full fetch address of the instruction.
        address: u32,
    },
    /// The cycle budget given to [`run`](crate::sim::fc4::Fc4Core::run) was
    /// exhausted before the program reached its halt idiom.
    CycleLimitExceeded {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// A two-byte instruction (e.g. FlexiCore8 `LOAD BYTE`) straddled the end
    /// of the program image, leaving no byte to fetch for its payload.
    TruncatedInstruction {
        /// The full fetch address of the first (opcode) byte.
        address: u32,
    },
    /// The MMU page register selects a page that starts beyond the end
    /// of the loaded program image.
    ///
    /// A healthy program can only reach a page it actually branched to,
    /// so this indicates a corrupted page register or pending-commit
    /// latch (a §5.1 MMU fault site). The engine raises it *before* the
    /// fetch, so a resilient executor sees a recoverable lane fault
    /// instead of silently running noise from an unmapped page.
    PageOutOfRange {
        /// The 4-bit page the MMU selected.
        page: u8,
        /// The size of the loaded program image in bytes.
        program_len: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::FetchOutOfBounds {
                address,
                program_len,
            } => write!(
                f,
                "instruction fetch at address {address:#06x} is outside the \
                 {program_len}-byte program image"
            ),
            SimError::IllegalInstruction { raw, address } => write!(
                f,
                "illegal instruction encoding {raw:#06x} at address {address:#06x}"
            ),
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "program did not halt within {limit} cycles")
            }
            SimError::TruncatedInstruction { address } => write!(
                f,
                "two-byte instruction at address {address:#06x} is truncated \
                 by the end of the program image"
            ),
            SimError::PageOutOfRange { page, program_len } => write!(
                f,
                "mmu page register selects page {page} but the \
                 {program_len}-byte program image ends before it"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Errors produced while decoding a single instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The encoding does not correspond to any instruction of the dialect.
    Illegal {
        /// The raw encoding that failed to decode.
        raw: u16,
    },
    /// The encoding is the first byte of a two-byte instruction and the
    /// second byte was not supplied.
    NeedsSecondByte {
        /// The raw first byte.
        raw: u8,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Illegal { raw } => {
                write!(f, "illegal instruction encoding {raw:#06x}")
            }
            DecodeError::NeedsSecondByte { raw } => write!(
                f,
                "encoding {raw:#04x} is the first byte of a two-byte \
                 instruction; the second byte is required to decode it"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_error_messages_are_lowercase_and_informative() {
        let e = SimError::FetchOutOfBounds {
            address: 0x80,
            program_len: 16,
        };
        let msg = e.to_string();
        assert!(msg.contains("0x0080"));
        assert!(msg.contains("16-byte"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn decode_error_display() {
        let e = DecodeError::Illegal { raw: 0x1ff };
        assert!(e.to_string().contains("0x01ff"));
        let e = DecodeError::NeedsSecondByte { raw: 0x08 };
        assert!(e.to_string().contains("two-byte"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
        assert_send_sync::<DecodeError>();
    }
}
