//! # flexicore
//!
//! A software reproduction of the **FlexiCore** flexible microprocessors from
//! *"FlexiCores: Low Footprint, High Yield, Field Reprogrammable Flexible
//! Microprocessors"* (Bleier et al., ISCA 2022).
//!
//! The crate models the paper's primary contribution:
//!
//! * The [`isa`] module defines the FlexiCore4 and FlexiCore8 instruction
//!   sets exactly as encoded in the paper (Figure 2), plus the *extended*
//!   accumulator ISA and the *load-store* ISA explored in the paper's design
//!   space exploration (Section 6).
//! * The [`sim`] module provides cycle-callable functional simulators for
//!   every ISA dialect, including the off-chip [`mmu`] page transducer that
//!   lets programs exceed the 7-bit program counter's 128-instruction reach.
//! * The [`uarch`] module models the microarchitectures considered in the
//!   paper — single-cycle, two-stage pipelined and multicycle — together with
//!   the program-bus-width constraint of Section 6.2.
//! * The [`energy`] module converts executed cycles into latency and energy
//!   using either the measured per-instruction energy (360 nJ) or a static
//!   power model, and estimates battery life as in Section 5.2.
//!
//! ## Quick example
//!
//! Run a tiny FlexiCore4 program that adds 3 to the input port and writes the
//! result to the output port:
//!
//! ```
//! use flexicore::isa::fc4::Instruction;
//! use flexicore::program::Program;
//! use flexicore::sim::fc4::Fc4Core;
//! use flexicore::io::{ConstInput, RecordingOutput};
//!
//! // load IPORT (address 0), add 3, store to OPORT (address 1), halt.
//! let prog = Program::from_words(&[
//!     Instruction::Load { addr: 0 }.encode(),
//!     Instruction::AddImm { imm: 3 }.encode(),
//!     Instruction::Store { addr: 1 }.encode(),
//!     // spin: branch-to-self is the halt idiom (taken when ACC is negative)
//!     Instruction::NandImm { imm: 0 }.encode(), // ACC = 0xF (negative)
//!     Instruction::Branch { target: 4 }.encode(),
//! ]);
//! let mut core = Fc4Core::new(prog);
//! let mut input = ConstInput::new(0x5);
//! let mut output = RecordingOutput::new();
//! let result = core.run(&mut input, &mut output, 1_000).expect("program runs");
//! assert!(result.halted());
//! assert_eq!(output.last(), Some(0x8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod energy;
pub mod error;
pub mod exec;
pub mod io;
pub mod isa;
pub mod mmu;
pub mod program;
pub mod sim;
pub mod trace;
pub mod uarch;

pub use error::SimError;
pub use program::Program;
pub use sim::{RunResult, StopReason};
