//! Energy and battery-life models (§3.1, §5.2).
//!
//! In 0.8 µm IGZO more than 99 % of power is *static* (§3.1), so energy is
//! simply `P_static × T`. The paper also quotes a measured figure of
//! **360 nJ per instruction** for FlexiCore4 at 12.5 kHz, which is the same
//! model expressed per instruction (4.5 mW / 12.5 kHz = 360 nJ). Both forms
//! are provided.
//!
//! [`BatteryModel`] reproduces the §5.2 deployment estimate: an
//! IIR-filter-plus-thresholding duty cycle of one input per second consumes
//! 3.6 J/day with perfect power gating, running two weeks on a commercial
//! 3 V, 5 mAh flexible battery.

/// The paper's measured FlexiCore4 energy per instruction, in nanojoules.
pub const FLEXICORE4_NJ_PER_INSN: f64 = 360.0;

/// The fabricated FlexiCores' clock frequency in hertz.
pub const FLEXICORE_CLOCK_HZ: f64 = 12_500.0;

/// An energy model for a core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EnergyModel {
    /// Fixed energy per retired instruction (nanojoules). Matches how the
    /// paper reports kernel measurements (Figure 8's 360 nJ/instruction).
    PerInstruction {
        /// Nanojoules consumed per instruction.
        nanojoules: f64,
    },
    /// Static power integrated over runtime. `power_mw` at clock `clock_hz`;
    /// energy = `power × cycles / clock`.
    StaticPower {
        /// Static power draw in milliwatts.
        power_mw: f64,
        /// Clock frequency in hertz.
        clock_hz: f64,
    },
}

impl EnergyModel {
    /// The measured FlexiCore4 model (360 nJ/instruction).
    #[must_use]
    pub fn flexicore4_measured() -> EnergyModel {
        EnergyModel::PerInstruction {
            nanojoules: FLEXICORE4_NJ_PER_INSN,
        }
    }

    /// Energy in microjoules for a run of `instructions` retired over
    /// `cycles` clocks.
    ///
    /// For [`EnergyModel::PerInstruction`] only `instructions` matters; for
    /// [`EnergyModel::StaticPower`] only `cycles`.
    #[must_use]
    pub fn microjoules(&self, instructions: u64, cycles: u64) -> f64 {
        match *self {
            EnergyModel::PerInstruction { nanojoules } => {
                instructions as f64 * nanojoules / 1_000.0
            }
            EnergyModel::StaticPower { power_mw, clock_hz } => {
                // mW * s = mJ; ×1000 -> µJ
                power_mw * (cycles as f64 / clock_hz) * 1_000.0
            }
        }
    }

    /// Latency in milliseconds for `cycles` clocks at this model's
    /// frequency (uses [`FLEXICORE_CLOCK_HZ`] for the per-instruction
    /// model, where one instruction is one cycle on the fabricated chips).
    #[must_use]
    pub fn milliseconds(&self, cycles: u64) -> f64 {
        let hz = match *self {
            EnergyModel::PerInstruction { .. } => FLEXICORE_CLOCK_HZ,
            EnergyModel::StaticPower { clock_hz, .. } => clock_hz,
        };
        cycles as f64 / hz * 1_000.0
    }
}

/// Latency/energy summary for one kernel execution (one row of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Execution latency in milliseconds.
    pub latency_ms: f64,
    /// Energy in microjoules.
    pub energy_uj: f64,
    /// Dynamic instruction count the numbers derive from.
    pub instructions: u64,
}

impl EnergyReport {
    /// Build a report from architectural counts under `model`.
    #[must_use]
    pub fn from_counts(model: &EnergyModel, instructions: u64, cycles: u64) -> EnergyReport {
        EnergyReport {
            latency_ms: model.milliseconds(cycles),
            energy_uj: model.microjoules(instructions, cycles),
            instructions,
        }
    }
}

/// A battery powering a duty-cycled FlexiCore deployment (§5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryModel {
    /// Battery voltage in volts.
    pub voltage_v: f64,
    /// Battery capacity in milliamp-hours.
    pub capacity_mah: f64,
}

impl BatteryModel {
    /// The commercial 3 V, 5 mAh flexible battery the paper cites.
    #[must_use]
    pub fn flexible_3v_5mah() -> BatteryModel {
        BatteryModel {
            voltage_v: 3.0,
            capacity_mah: 5.0,
        }
    }

    /// Total stored energy in joules.
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        // mAh × 3600 s/h / 1000 = Ah·s = coulombs; × V = joules
        self.capacity_mah * 3.6 * self.voltage_v
    }

    /// Days of operation for a workload consuming `joules_per_day`,
    /// assuming perfect power gating between activations.
    #[must_use]
    pub fn lifetime_days(&self, joules_per_day: f64) -> f64 {
        self.energy_j() / joules_per_day
    }
}

/// Daily energy of a periodic workload: each activation consumes
/// `uj_per_activation` and fires `activations_per_second` times per second.
#[must_use]
pub fn joules_per_day(uj_per_activation: f64, activations_per_second: f64) -> f64 {
    uj_per_activation * 1e-6 * activations_per_second * 86_400.0
}

/// A duty-cycled deployment: the core computes for `active_ms` every
/// `period_ms`, and is power-gated in between (§5.2 assumes *perfect*
/// power gating; [`DutyCycle::with_gating_efficiency`] relaxes that).
///
/// Since >99 % of 0.8 µm IGZO power is static (§3.1), average power is
/// just static power × duty ratio plus the residual gated draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycle {
    /// Milliseconds of computation per activation.
    pub active_ms: f64,
    /// Milliseconds between activation starts.
    pub period_ms: f64,
    /// Fraction of static power still drawn while gated (0 = perfect
    /// gating, the paper's assumption).
    pub gated_fraction: f64,
}

impl DutyCycle {
    /// A perfectly gated duty cycle.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < active_ms <= period_ms`.
    #[must_use]
    pub fn new(active_ms: f64, period_ms: f64) -> DutyCycle {
        assert!(
            active_ms > 0.0 && active_ms <= period_ms,
            "activation ({active_ms} ms) must fit in the period ({period_ms} ms)"
        );
        DutyCycle {
            active_ms,
            period_ms,
            gated_fraction: 0.0,
        }
    }

    /// The same schedule with imperfect gating: `gated_fraction` of the
    /// core's static power leaks while idle.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `0.0..=1.0`.
    #[must_use]
    pub fn with_gating_efficiency(self, gated_fraction: f64) -> DutyCycle {
        assert!((0.0..=1.0).contains(&gated_fraction));
        DutyCycle {
            gated_fraction,
            ..self
        }
    }

    /// The active-time fraction.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.active_ms / self.period_ms
    }

    /// Average power in µW for a core whose static draw is `power_mw`.
    #[must_use]
    pub fn average_power_uw(&self, power_mw: f64) -> f64 {
        let duty = self.ratio();
        power_mw * 1_000.0 * (duty + (1.0 - duty) * self.gated_fraction)
    }

    /// Battery lifetime in days on `battery` for a core drawing
    /// `power_mw` while active.
    #[must_use]
    pub fn lifetime_days(&self, power_mw: f64, battery: &BatteryModel) -> f64 {
        let avg_w = self.average_power_uw(power_mw) * 1e-6;
        battery.energy_j() / avg_w / 86_400.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_instruction_matches_static_power_at_nominal() {
        // 4.5 mW at 12.5 kHz is exactly 360 nJ per (single-cycle) instruction
        let per = EnergyModel::flexicore4_measured();
        let stat = EnergyModel::StaticPower {
            power_mw: 4.5,
            clock_hz: 12_500.0,
        };
        let e1 = per.microjoules(1000, 1000);
        let e2 = stat.microjoules(1000, 1000);
        assert!((e1 - e2).abs() < 1e-9, "{e1} vs {e2}");
    }

    #[test]
    fn figure8_range_reproduced_from_instruction_counts() {
        // paper: kernels take 4.28 ms to 12.9 ms and 21.0 µJ to 61.4 µJ;
        // at 12.5 kHz and 360 nJ/insn that corresponds to ~53..161 dynamic
        // instructions... actually 4.28 ms = 53.5 cycles? No: 4.28 ms ×
        // 12.5 kHz = 53.5. The shortest kernel retires ~54 instructions.
        let m = EnergyModel::flexicore4_measured();
        let rep = EnergyReport::from_counts(&m, 54, 54);
        assert!((rep.latency_ms - 4.32).abs() < 0.1);
        assert!((rep.energy_uj - 19.44).abs() < 0.5);
        let rep = EnergyReport::from_counts(&m, 161, 161);
        assert!((rep.latency_ms - 12.88).abs() < 0.1);
        assert!((rep.energy_uj - 57.96).abs() < 1.0);
    }

    #[test]
    fn battery_holds_54_joules() {
        let b = BatteryModel::flexible_3v_5mah();
        assert!((b.energy_j() - 54.0).abs() < 1e-9);
    }

    #[test]
    fn paper_deployment_runs_two_weeks() {
        // §5.2: IIR filter + thresholding once per second = 3.6 J/day,
        // two weeks on the 54 J battery.
        let b = BatteryModel::flexible_3v_5mah();
        let days = b.lifetime_days(3.6);
        assert!((13.0..17.0).contains(&days), "got {days} days");
    }

    #[test]
    fn joules_per_day_scales_linearly() {
        // 41.7 µJ per activation, once per second ≈ 3.6 J/day
        let jd = joules_per_day(41.7, 1.0);
        assert!((jd - 3.6).abs() < 0.01, "got {jd}");
        assert!((joules_per_day(41.7, 2.0) - 2.0 * jd).abs() < 1e-9);
    }

    #[test]
    fn static_power_latency_uses_model_clock() {
        let m = EnergyModel::StaticPower {
            power_mw: 2.0,
            clock_hz: 25_000.0,
        };
        assert!((m.milliseconds(25) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duty_cycle_average_power() {
        // 5 ms of 4.5 mW every second, perfectly gated
        let d = DutyCycle::new(5.0, 1_000.0);
        let avg = d.average_power_uw(4.5);
        assert!((avg - 22.5).abs() < 1e-9, "{avg}");
        // 1 % gating leakage adds ~45 µW × 0.995
        let leaky = d.with_gating_efficiency(0.01);
        assert!(leaky.average_power_uw(4.5) > avg);
    }

    #[test]
    fn duty_cycle_lifetime_matches_manual_arithmetic() {
        let battery = BatteryModel::flexible_3v_5mah();
        let d = DutyCycle::new(5.44, 1_000.0); // the smart-bandage pipeline
        let days = d.lifetime_days(4.5, &battery);
        // 54 J / (4.5 mW * 0.00544) / 86400 s
        let expected = 54.0 / (4.5e-3 * 0.00544) / 86_400.0;
        assert!((days - expected).abs() / expected < 1e-9);
        assert!(
            days > 14.0,
            "at one sample/s the bandage outlives two weeks: {days}"
        );
    }

    #[test]
    #[should_panic(expected = "must fit in the period")]
    fn overlong_activation_panics() {
        let _ = DutyCycle::new(2_000.0, 1_000.0);
    }
}
