//! Property tests for the MMU escape-sequence transducer (§5.1).
//!
//! The page register is the only piece of state that redirects *every*
//! subsequent fetch, so an accidental page change silently corrupts the
//! rest of the run. These properties pin down when a change can happen
//! at all: only a complete `0xE, 0xD, page` sequence on the output port
//! commits, and only after exactly [`COMMIT_DELAY`] ticks.

use flexicore::mmu::{Mmu, COMMIT_DELAY, ESCAPE_1, ESCAPE_2};
use proptest::prelude::*;

/// Reference recognizer: a commit can occur iff the masked stream
/// contains an adjacent `(ESCAPE_1, ESCAPE_2)` pair with at least one
/// value after it (the page operand). Derived independently of the
/// transducer's state machine: reaching the armed state requires the
/// pair, and the next value always commits.
fn has_full_prefix(stream: &[u8]) -> bool {
    stream.windows(3).any(|w| {
        let (a, b) = (w[0] & 0xF, w[1] & 0xF);
        a == ESCAPE_1 && b == ESCAPE_2
    })
}

/// Feed a stream the way the engine does: one tick per instruction
/// slot, then the output value. Returns the number of recognized
/// sequences.
fn feed(mmu: &mut Mmu, stream: &[u8]) -> usize {
    let mut commits = 0;
    for &v in stream {
        mmu.tick();
        if mmu.observe(v) {
            commits += 1;
        }
    }
    commits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Arbitrary output traffic changes the page iff it carries the
    /// full escape prefix — no partial sequence, interleaved tick, or
    /// high-bit garbage (values are masked to 4 bits) ever commits.
    #[test]
    fn page_changes_require_the_full_prefix(
        stream in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let mut mmu = Mmu::new();
        let commits = feed(&mut mmu, &stream);
        // drain the delay line so a pending commit becomes visible
        for _ in 0..COMMIT_DELAY {
            mmu.tick();
        }
        if has_full_prefix(&stream) {
            prop_assert!(commits > 0, "complete sequence must be recognized");
        } else {
            prop_assert_eq!(commits, 0, "no complete sequence in {stream:?}");
            prop_assert_eq!(mmu.page(), 0);
            prop_assert_eq!(mmu.pending_page(), None);
        }
    }

    /// A recognized sequence commits after exactly `COMMIT_DELAY`
    /// ticks: never earlier, never later, regardless of pair-free noise
    /// fed before the sequence or while the delay line drains.
    #[test]
    fn commit_delay_is_exact(
        page in 0u8..16,
        noise in proptest::collection::vec(0u8..=255, 0..16),
        drain_noise in proptest::collection::vec(0u8..=255, 3..=3),
    ) {
        // strip accidental escape pairs so the noise stays noise
        let noise: Vec<u8> = noise
            .into_iter()
            .filter(|v| {
                let m = v & 0xF;
                m != ESCAPE_1 && m != ESCAPE_2
            })
            .collect();
        let mut mmu = Mmu::new();
        feed(&mut mmu, &noise);
        prop_assert_eq!(mmu.page(), 0);

        mmu.observe(ESCAPE_1);
        mmu.observe(ESCAPE_2);
        prop_assert!(mmu.observe(page));
        prop_assert_eq!(mmu.pending_page(), Some(page));

        // output traffic during the delay must not disturb the commit,
        // even though it resets the recognizer state
        for (i, &v) in drain_noise.iter().enumerate().take(COMMIT_DELAY as usize) {
            prop_assert_eq!(mmu.page(), 0, "tick {i}: committed early");
            mmu.tick();
            let m = v & 0xF;
            if m != ESCAPE_1 && m != ESCAPE_2 {
                mmu.observe(m);
            }
        }
        prop_assert_eq!(mmu.page(), page);
        prop_assert_eq!(mmu.pending_page(), None);
    }

    /// Adversarial case: the page *operand* itself equals `ESCAPE_1` or
    /// `ESCAPE_2` (pages 0xE and 0xD are legal fetch targets). The
    /// operand must be consumed — it selects the page, it does not
    /// re-arm or extend the recognizer — and the transducer must return
    /// to idle so a *following* full sequence still works mid-stream.
    #[test]
    fn escape_valued_page_operand_is_consumed_and_rearms(
        tricky in prop_oneof![Just(ESCAPE_1), Just(ESCAPE_2)],
        next in 0u8..16,
        gap in proptest::collection::vec(any::<u8>(), 0..8),
    ) {
        // strip escape values from the gap so it cannot start a
        // sequence of its own
        let gap: Vec<u8> = gap
            .into_iter()
            .filter(|v| {
                let m = v & 0xF;
                m != ESCAPE_1 && m != ESCAPE_2
            })
            .collect();

        let mut mmu = Mmu::new();
        mmu.observe(ESCAPE_1);
        mmu.observe(ESCAPE_2);
        prop_assert!(mmu.observe(tricky), "operand completes the sequence");
        prop_assert_eq!(mmu.pending_page(), Some(tricky));

        // the escape-valued operand was consumed: the recognizer is
        // idle again, so `ESCAPE_2`-after-operand must NOT commit
        prop_assert!(!mmu.observe(ESCAPE_2));
        prop_assert!(!mmu.observe(0x1));
        for _ in 0..COMMIT_DELAY {
            mmu.tick();
        }
        prop_assert_eq!(mmu.page(), tricky, "tricky page committed");

        // and a later full sequence, fed mid-stream after arbitrary
        // pair-free traffic, still re-arms and retargets the page
        let commits = feed(&mut mmu, &gap);
        prop_assert_eq!(commits, 0);
        mmu.observe(ESCAPE_1);
        mmu.observe(ESCAPE_2);
        prop_assert!(mmu.observe(next), "recognizer re-armed mid-stream");
        for _ in 0..COMMIT_DELAY {
            mmu.tick();
        }
        prop_assert_eq!(mmu.page(), next);
    }

    /// A second full sequence arriving before the first commits
    /// replaces the pending page — the delay line holds one entry, and
    /// the *latest* recognized page wins.
    #[test]
    fn later_sequence_replaces_pending_page(first in 0u8..16, second in 0u8..16) {
        let mut mmu = Mmu::new();
        mmu.observe(ESCAPE_1);
        mmu.observe(ESCAPE_2);
        mmu.observe(first);
        // immediately recognize a second sequence (3 observes, no ticks)
        mmu.observe(ESCAPE_1);
        mmu.observe(ESCAPE_2);
        mmu.observe(second);
        prop_assert_eq!(mmu.pending_page(), Some(second));
        for _ in 0..COMMIT_DELAY {
            mmu.tick();
        }
        prop_assert_eq!(mmu.page(), second);
    }
}
