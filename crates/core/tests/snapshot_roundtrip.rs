//! Snapshot/restore round-trips across every dialect.
//!
//! A rollback-recovery executor is only as sound as its checkpoints: if
//! `snapshot()` misses one bit of architectural state (the xacc carry,
//! the xls flags, a pending MMU page change), a restored core silently
//! diverges from the run it replaced. Each test runs a program partway,
//! checkpoints, records the reference continuation, then replays from
//! the checkpoint — on the same core and on a freshly constructed one —
//! and demands bit-for-bit identical outputs and final state.

use flexicore::exec::AnyCore;
use flexicore::io::{RecordingOutput, ScriptedInput};
use flexicore::isa::features::FeatureSet;
use flexicore::isa::{fc4, fc8, xacc, xls, Dialect};
use flexicore::program::Program;

/// Step `core` until it halts, bounded by a step guard.
fn run_to_halt(core: &mut AnyCore, input: &mut ScriptedInput, output: &mut RecordingOutput) {
    let mut guard = 0u32;
    while !core.is_halted() {
        core.step(input, output).expect("step");
        guard += 1;
        assert!(guard < 10_000, "program did not halt");
    }
}

/// The shared drill: run `prefix` instructions, checkpoint (core +
/// input cursor), finish the run as the reference, then replay twice
/// from the checkpoint — a rollback onto the same core, and a
/// migration onto a fresh core of the same design.
fn roundtrip(core: AnyCore, inputs: Vec<u8>, prefix: u32) {
    let fresh = core.clone();
    let mut core = core;
    let mut input = ScriptedInput::new(inputs);
    let mut output = RecordingOutput::new();
    for _ in 0..prefix {
        assert!(!core.is_halted(), "prefix longer than the program");
        core.step(&mut input, &mut output).expect("prefix step");
    }
    let snap = core.snapshot();
    let input_at_snap = input.clone();

    let mut ref_out = RecordingOutput::new();
    run_to_halt(&mut core, &mut input, &mut ref_out);
    let ref_end = core.snapshot();

    // rollback: the same core, rolled back to the checkpoint
    core.restore(&snap);
    assert_eq!(
        core.snapshot(),
        snap,
        "restore must reproduce the checkpoint"
    );
    let mut replay_in = input_at_snap.clone();
    let mut replay_out = RecordingOutput::new();
    run_to_halt(&mut core, &mut replay_in, &mut replay_out);
    assert_eq!(
        replay_out.values(),
        ref_out.values(),
        "rollback replay diverged"
    );
    assert_eq!(core.snapshot(), ref_end);

    // migration: a spare power-on core adopts the checkpoint
    let mut spare = fresh;
    spare.restore(&snap);
    let mut spare_in = input_at_snap;
    let mut spare_out = RecordingOutput::new();
    run_to_halt(&mut spare, &mut spare_in, &mut spare_out);
    assert_eq!(
        spare_out.values(),
        ref_out.values(),
        "migrated replay diverged"
    );
    assert_eq!(spare.snapshot(), ref_end);
}

#[test]
fn fc4_roundtrip_covers_acc_and_mem() {
    use fc4::Instruction as I;
    let prog: Vec<u8> = [
        I::Load { addr: 0 },
        I::AddImm { imm: 1 },
        I::Store { addr: 1 },
        I::Load { addr: 0 },
        I::AddImm { imm: 2 },
        I::Store { addr: 1 },
        I::NandImm { imm: 0 },
        I::Branch { target: 7 },
    ]
    .iter()
    .map(|i| i.encode())
    .collect();
    let core = AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, Program::from_bytes(prog));
    for prefix in 0..6 {
        roundtrip(core.clone(), vec![3, 9], prefix);
    }
}

#[test]
fn fc4_roundtrip_preserves_pending_mmu_page_change() {
    use fc4::Instruction as I;
    // page 0: forward the scripted 0xE, 0xD, 1 sequence to the output
    // port (arming a page change to page 1), then branch to 0x20; the
    // commit delay means the branch still fetches from page 0, and the
    // instruction after it from page 1.
    let page0 = [
        I::Load { addr: 0 }, // 0xE
        I::Store { addr: 1 },
        I::Load { addr: 0 }, // 0xD
        I::Store { addr: 1 },
        I::Load { addr: 0 }, // 1 — page change pending after this store
        I::Store { addr: 1 },
        I::NandImm { imm: 0 },      // delay slot 1 (old page)
        I::Branch { target: 0x20 }, // delay slot 2 (old page)
    ];
    let page1 = [
        I::Load { addr: 0 }, // fetched from page 1
        I::AddImm { imm: 4 },
        I::Store { addr: 1 },
        I::NandImm { imm: 0 },
        I::Branch { target: 0x24 },
    ];
    let mut bytes: Vec<u8> = page0.iter().map(|i| i.encode()).collect();
    bytes.resize(128 + 0x20, 0);
    bytes.extend(page1.iter().map(|i| i.encode()));
    let core = AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, Program::from_bytes(bytes));
    // prefixes 5..8 checkpoint while the page change sits in the MMU
    // delay line; losing it would replay the wrong page
    for prefix in 0..10 {
        roundtrip(core.clone(), vec![0xE, 0xD, 1, 0x6], prefix);
    }
}

#[test]
fn fc8_roundtrip_covers_acc_and_mem() {
    use fc8::Instruction as I;
    let prog = [
        I::Load { addr: 0 },
        I::AddImm { imm: 7 },
        I::Store { addr: 1 },
        I::Load { addr: 0 },
        I::XorImm { imm: 3 },
        I::Store { addr: 1 },
        I::NandImm { imm: 0 },
    ];
    let mut bytes = Vec::new();
    for i in &prog {
        i.encode_into(&mut bytes);
    }
    let halt_at = bytes.len() as u8;
    I::Branch { target: halt_at }.encode_into(&mut bytes);
    let core = AnyCore::for_dialect(Dialect::Fc8, FeatureSet::BASE, Program::from_bytes(bytes));
    for prefix in 0..6 {
        roundtrip(core.clone(), vec![0x21, 0x5A], prefix);
    }
}

#[test]
fn xacc_roundtrip_covers_carry_and_link_register() {
    use xacc::{Cond, Instruction as I};
    let prog = [
        I::AddImm { imm: 0xF }, // acc = 0xF
        I::AdcImm { imm: 0x2 }, // overflows: acc = 1, carry set
        I::Store {
            m: xacc::OPORT_ADDR,
        },
        I::AdcImm { imm: 0 }, // consumes the carry: acc = 2
        I::Store {
            m: xacc::OPORT_ADDR,
        },
    ];
    let mut bytes = Vec::new();
    for i in &prog {
        i.encode_into(&mut bytes);
    }
    let halt_at = bytes.len() as u8;
    I::Br {
        cond: Cond::ALWAYS,
        target: halt_at,
    }
    .encode_into(&mut bytes);
    let core = AnyCore::for_dialect(
        Dialect::ExtendedAcc,
        FeatureSet::revised(),
        Program::from_bytes(bytes),
    );
    // prefix 2 checkpoints with the carry flag set — a snapshot that
    // drops it replays 1 instead of 2 on the second output
    for prefix in 0..5 {
        roundtrip(core.clone(), vec![], prefix);
    }
}

#[test]
fn xls_roundtrip_covers_flags_and_register_file() {
    use xacc::Cond;
    use xls::{Instruction as I, Op, Operand};
    let prog = [
        I::Alu {
            op: Op::Mov,
            rd: 2,
            operand: Operand::Reg(xls::IPORT_REG),
        },
        I::Alu {
            op: Op::Add,
            rd: 2,
            operand: Operand::Imm(0xF),
        }, // sets carry + NZP flags
        I::Alu {
            op: Op::Adc,
            rd: 2,
            operand: Operand::Imm(0),
        }, // consumes carry
        I::Alu {
            op: Op::Mov,
            rd: xls::OPORT_REG,
            operand: Operand::Reg(2),
        },
    ];
    let mut bytes = Vec::new();
    for i in &prog {
        i.encode_into(&mut bytes);
    }
    let halt_at = (bytes.len() / 2) as u8;
    I::Br {
        cond: Cond::ALWAYS,
        target: halt_at,
    }
    .encode_into(&mut bytes);
    let core = AnyCore::for_dialect(
        Dialect::LoadStore,
        FeatureSet::revised(),
        Program::from_bytes(bytes),
    );
    // prefix 2 checkpoints between the carry-setting ADD and the ADC
    for prefix in 0..4 {
        roundtrip(core.clone(), vec![0x3], prefix);
    }
}
