//! The corrupt-page guard: a faulted MMU page register must surface as
//! [`SimError::PageOutOfRange`] — a recoverable lane fault — instead of
//! fetching noise from an unmapped page, while legitimate page changes
//! keep working.

use flexicore::exec::AnyCore;
use flexicore::io::{RecordingOutput, ScriptedInput};
use flexicore::isa::features::FeatureSet;
use flexicore::isa::{fc4, Dialect};
use flexicore::program::Program;
use flexicore::sim::{ArchFault, FaultKind, FaultPlane, StateElement};
use flexicore::SimError;

/// A one-page fc4 program: copy the input to the output, then halt.
fn one_page_program() -> Program {
    use fc4::Instruction as I;
    let bytes: Vec<u8> = [
        I::Load { addr: 0 },
        I::Store { addr: 1 },
        I::NandImm { imm: 0 },
        I::Branch { target: 3 },
    ]
    .iter()
    .map(|i| i.encode())
    .collect();
    Program::from_bytes(bytes)
}

fn run_with_fault(fault: ArchFault) -> Result<flexicore::RunResult, SimError> {
    let mut core = AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, one_page_program());
    let mut plane = FaultPlane::with_faults(vec![fault]);
    let mut input = ScriptedInput::new(vec![5]);
    let mut output = RecordingOutput::new();
    core.run_with(&mut input, &mut output, 10_000, &mut plane)
}

#[test]
fn stuck_page_register_is_a_page_fault_not_noise() {
    let err = run_with_fault(ArchFault {
        element: StateElement::PageReg,
        bit: 3,
        kind: FaultKind::StuckAt1,
    })
    .expect_err("page 8 of a 4-byte image must not fetch");
    assert_eq!(
        err,
        SimError::PageOutOfRange {
            page: 8,
            program_len: 4,
        }
    );
}

#[test]
fn transient_page_flip_mid_run_is_caught() {
    let err = run_with_fault(ArchFault {
        element: StateElement::PageReg,
        bit: 0,
        kind: FaultKind::FlipAtCycle(2),
    })
    .expect_err("flipped page register must fault at the next fetch");
    assert!(
        matches!(err, SimError::PageOutOfRange { page: 1, .. }),
        "got {err:?}"
    );
}

#[test]
fn page_faults_display_the_corrupt_page() {
    let err = run_with_fault(ArchFault {
        element: StateElement::PageReg,
        bit: 2,
        kind: FaultKind::StuckAt1,
    })
    .expect_err("page 4 is unmapped");
    let msg = err.to_string();
    assert!(msg.contains("page 4"), "got {msg:?}");
}

#[test]
fn legitimate_page_change_still_fetches_the_new_page() {
    use fc4::Instruction as I;
    // page 0 forwards the scripted 0xE, 0xD, 1 escape sequence to the
    // output port, then branches to 0x20 of the newly selected page 1,
    // where the program halts after emitting one more value.
    let page0 = [
        I::Load { addr: 0 }, // 0xE
        I::Store { addr: 1 },
        I::Load { addr: 0 }, // 0xD
        I::Store { addr: 1 },
        I::Load { addr: 0 }, // 1 — page change pending after this store
        I::Store { addr: 1 },
        I::NandImm { imm: 0 },      // delay slot (old page)
        I::Branch { target: 0x20 }, // delay slot (old page)
    ];
    let page1 = [
        I::Load { addr: 0 }, // fetched from page 1
        I::Store { addr: 1 },
        I::NandImm { imm: 0 },
        I::Branch { target: 0x23 },
    ];
    let mut bytes: Vec<u8> = page0.iter().map(|i| i.encode()).collect();
    bytes.resize(128 + 0x20, 0);
    bytes.extend(page1.iter().map(|i| i.encode()));

    let mut core = AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, Program::from_bytes(bytes));
    let mut input = ScriptedInput::new(vec![0xE, 0xD, 1, 0x6]);
    let mut output = RecordingOutput::new();
    let result = core
        .run(&mut input, &mut output, 10_000)
        .expect("the guard must not reject a mapped page");
    assert!(result.halted());
    assert_eq!(output.values().last(), Some(&0x6), "page 1 code ran");
}

#[test]
fn corrupt_pending_latch_faults_at_commit_not_before() {
    use fc4::Instruction as I;
    // Same page-changing program, but a stuck bit in the pending-commit
    // latch retargets the in-flight change from page 1 to page 9 —
    // which was never programmed. The guard must catch it when the
    // corrupt value commits.
    let page0 = [
        I::Load { addr: 0 },
        I::Store { addr: 1 },
        I::Load { addr: 0 },
        I::Store { addr: 1 },
        I::Load { addr: 0 },
        I::Store { addr: 1 },
        I::NandImm { imm: 0 },
        I::Branch { target: 0x20 },
    ];
    let page1 = [
        I::Load { addr: 0 },
        I::Store { addr: 1 },
        I::NandImm { imm: 0 },
        I::Branch { target: 0x23 },
    ];
    let mut bytes: Vec<u8> = page0.iter().map(|i| i.encode()).collect();
    bytes.resize(128 + 0x20, 0);
    bytes.extend(page1.iter().map(|i| i.encode()));

    let mut core = AnyCore::for_dialect(Dialect::Fc4, FeatureSet::BASE, Program::from_bytes(bytes));
    let mut plane = FaultPlane::with_faults(vec![ArchFault {
        element: StateElement::PagePending,
        bit: 3,
        kind: FaultKind::StuckAt1,
    }]);
    let mut input = ScriptedInput::new(vec![0xE, 0xD, 1, 0x6]);
    let mut output = RecordingOutput::new();
    let err = core
        .run_with(&mut input, &mut output, 10_000, &mut plane)
        .expect_err("retargeted commit selects unmapped page 9");
    assert!(
        matches!(err, SimError::PageOutOfRange { page: 9, .. }),
        "got {err:?}"
    );
}
