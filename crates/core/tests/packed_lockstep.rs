//! Lockstep properties: the packed 64-lane driver against the scalar
//! engine, which stays the differential oracle.
//!
//! Every lane admitted to a [`PackedDriver`] (via [`run_packed_lanes`])
//! must retire with exactly the status, accounting, and output stream a
//! serial `run_with` of the same core/input/fault-plane produces —
//! across all four dialects, over arbitrary program bytes (legal or
//! not), and with fault planes that do and do not corrupt the fetch bus
//! (the cached-decode and divergence-fallback paths respectively).

use flexicore::exec::{run_packed_lanes, AnyCore, LaneStatus};
use flexicore::io::{RecordingOutput, ScriptedInput};
use flexicore::isa::features::FeatureSet;
use flexicore::isa::Dialect;
use flexicore::program::Program;
use flexicore::sim::fault::{ArchFault, FaultKind, FaultPlane, StateElement};
use proptest::prelude::*;

fn dialects() -> impl Strategy<Value = Dialect> {
    prop_oneof![
        Just(Dialect::Fc4),
        Just(Dialect::Fc8),
        Just(Dialect::ExtendedAcc),
        Just(Dialect::LoadStore),
    ]
}

fn elements() -> impl Strategy<Value = StateElement> {
    prop_oneof![
        Just(StateElement::Pc),
        Just(StateElement::Acc),
        (0u8..8).prop_map(StateElement::Mem),
        Just(StateElement::FetchBus),
        Just(StateElement::InputPort),
        Just(StateElement::OutputPort),
        Just(StateElement::PageReg),
        Just(StateElement::PagePending),
    ]
}

fn fault_kinds() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::StuckAt0),
        Just(FaultKind::StuckAt1),
        (0u64..200).prop_map(FaultKind::FlipAtCycle),
    ]
}

fn arch_faults() -> impl Strategy<Value = ArchFault> {
    (elements(), 0u8..8, fault_kinds()).prop_map(|(element, bit, kind)| ArchFault {
        element,
        bit,
        kind,
    })
}

/// One lane's worth of campaign material.
#[derive(Debug, Clone)]
struct LanePlan {
    dialect: Dialect,
    faults: Vec<ArchFault>,
    inputs: Vec<u8>,
}

fn lane_plans() -> impl Strategy<Value = LanePlan> {
    (
        dialects(),
        proptest::collection::vec(arch_faults(), 0..3),
        proptest::collection::vec(any::<u8>(), 1..6),
    )
        .prop_map(|(dialect, faults, inputs)| LanePlan {
            dialect,
            faults,
            inputs,
        })
}

/// The serial oracle: `run_with` on a fresh core, mapped onto the
/// driver's retirement statuses.
fn serial_oracle(
    dialect: Dialect,
    program: &Program,
    inputs: &[u8],
    faults: &FaultPlane,
    budget: u64,
) -> (LaneStatus, Vec<u8>) {
    let mut core = AnyCore::for_dialect(dialect, FeatureSet::BASE, program.clone());
    let mut input = ScriptedInput::new(inputs.to_vec());
    let mut output = RecordingOutput::new();
    let mut hook = faults.clone();
    let status = match core.run_with(&mut input, &mut output, budget, &mut hook) {
        Ok(r) if r.halted() => LaneStatus::Done(r),
        Ok(r) => LaneStatus::Hung(r),
        Err(e) => LaneStatus::Faulted(e),
    };
    (status, output.values().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary program bytes, mixed dialects, faulty and clean lanes:
    /// packed execution retires every lane exactly as the scalar engine
    /// does.
    #[test]
    fn packed_batches_replay_the_scalar_engine(
        program_bytes in proptest::collection::vec(any::<u8>(), 1..40),
        plans in proptest::collection::vec(lane_plans(), 1..24),
        budget in 1u64..400,
    ) {
        let program = Program::from_bytes(program_bytes);
        let batch: Vec<_> = plans
            .iter()
            .map(|p| {
                (
                    AnyCore::for_dialect(p.dialect, FeatureSet::BASE, program.clone()),
                    ScriptedInput::new(p.inputs.clone()),
                    RecordingOutput::new(),
                    FaultPlane::with_faults(p.faults.clone()),
                )
            })
            .collect();
        let packed = run_packed_lanes(batch, budget);
        prop_assert_eq!(packed.len(), plans.len());
        for (plan, (status, output)) in plans.iter().zip(packed) {
            let faults = FaultPlane::with_faults(plan.faults.clone());
            let (want_status, want_output) =
                serial_oracle(plan.dialect, &program, &plan.inputs, &faults, budget);
            prop_assert_eq!(&status, &want_status, "dialect {:?}", plan.dialect);
            prop_assert_eq!(output.values(), &want_output[..], "dialect {:?}", plan.dialect);
        }
    }

    /// Same-program 64-lane packs where one half corrupts the fetch bus
    /// and the other half does not: the divergence fallback and the
    /// shared cache must coexist without contaminating each other.
    #[test]
    fn fetch_divergence_never_contaminates_clean_lanes(
        program_bytes in proptest::collection::vec(any::<u8>(), 4..32),
        dialect in dialects(),
        bus_bit in 0u8..8,
        lanes in 2usize..16,
        budget in 10u64..200,
    ) {
        let program = Program::from_bytes(program_bytes);
        let plans: Vec<FaultPlane> = (0..lanes)
            .map(|l| {
                if l % 2 == 0 {
                    FaultPlane::new()
                } else {
                    FaultPlane::with_faults(vec![ArchFault {
                        element: StateElement::FetchBus,
                        bit: bus_bit,
                        kind: FaultKind::StuckAt1,
                    }])
                }
            })
            .collect();
        let batch: Vec<_> = plans
            .iter()
            .map(|p| {
                (
                    AnyCore::for_dialect(dialect, FeatureSet::BASE, program.clone()),
                    ScriptedInput::new(vec![5]),
                    RecordingOutput::new(),
                    p.clone(),
                )
            })
            .collect();
        let packed = run_packed_lanes(batch, budget);
        for (plane, (status, output)) in plans.iter().zip(packed) {
            let (want_status, want_output) =
                serial_oracle(dialect, &program, &[5], plane, budget);
            prop_assert_eq!(&status, &want_status);
            prop_assert_eq!(output.values(), &want_output[..]);
        }
    }
}
