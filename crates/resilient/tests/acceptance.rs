//! Acceptance criteria for the resilient execution layer:
//!
//! * TMR masks 100 % of single-lane stuck-at faults on all four
//!   dialects;
//! * checkpoint/rollback recovers ≥ 90 % of injected transient faults;
//! * the same seed reproduces identical trials and retry traces
//!   bit-for-bit;
//! * every benchmark kernel runs through the resilient executor;
//! * the degradation ladder composes end-to-end from a fabricated
//!   wafer's salvage pool.

use flexasm::Target;
use flexfab::wafer_run::{CoreDesign, WaferExperiment};
use flexinject::campaign::FaultModel;
use flexinject::pool::SalvagePool;
use flexkernels::harness::PreparedKernel;
use flexkernels::{inputs::Sampler, oracle, Kernel};
use flexresilient::recovery::{RecoveryConfig, RecoveryExecutor};
use flexresilient::sched::{compose, QuorumMode};
use flexresilient::vote::{NmrConfig, NmrExecutor, VoteVerdict};
use flexresilient::{
    run_recovery_campaign, RecoveryCampaignConfig, ResilienceTally, ResilientOutcome,
};

const ALL_TARGETS: [fn() -> Target; 4] = [
    Target::fc4,
    Target::fc8,
    Target::xacc_revised,
    Target::xls_revised,
];

fn quick(target: Target, mode: QuorumMode, model: FaultModel, seed: u64) -> RecoveryCampaignConfig {
    RecoveryCampaignConfig {
        budget: 20_000,
        model,
        mode,
        ..RecoveryCampaignConfig::new(target, Kernel::ParityCheck, 24, seed)
    }
}

#[test]
fn tmr_masks_every_single_lane_stuck_at_fault_on_all_dialects() {
    for target in ALL_TARGETS {
        let target = target();
        let campaign =
            run_recovery_campaign(quick(target, QuorumMode::Tmr, FaultModel::StuckAt, 17)).unwrap();
        assert_eq!(campaign.trials.len(), 24);
        for (i, trial) in campaign.trials.iter().enumerate() {
            assert_eq!(
                trial.outcome,
                ResilientOutcome::Masked,
                "{:?} trial {i}: {} on lane {} was not masked",
                target.dialect,
                trial.fault,
                trial.lane
            );
        }
    }
}

#[test]
fn checkpoint_rollback_recovers_most_transients_on_all_dialects() {
    for target in ALL_TARGETS {
        let target = target();
        let campaign = run_recovery_campaign(quick(
            target,
            QuorumMode::DmrReexec,
            FaultModel::Transient,
            29,
        ))
        .unwrap();
        let tally = ResilienceTally::of(&campaign.trials);
        assert!(
            tally.survival_rate() >= 0.9,
            "{:?}: survival {:.2} < 0.90 over {} trials ({} unrecoverable)",
            target.dialect,
            tally.survival_rate(),
            tally.total(),
            tally.unrecoverable
        );
    }
}

#[test]
fn same_seed_reproduces_identical_trials_bit_for_bit() {
    for mode in [QuorumMode::Tmr, QuorumMode::DmrReexec, QuorumMode::Simplex] {
        let cfg = quick(Target::fc4(), mode, FaultModel::Mixed, 41);
        let a = run_recovery_campaign(cfg).unwrap();
        let b = run_recovery_campaign(cfg).unwrap();
        assert_eq!(a.trials, b.trials, "{mode}");
        assert_eq!(a.clean_cycles, b.clean_cycles, "{mode}");
    }
}

#[test]
fn retry_traces_replay_bit_for_bit() {
    // a stuck-at on one DMR lane forces rollbacks and a reassignment;
    // the full RecoveryRun (outputs, trace, counters) must replay
    use flexicore::sim::{ArchFault, FaultKind, FaultPlane, StateElement};
    let prepared = PreparedKernel::new(Kernel::ParityCheck, Target::fc4()).unwrap();
    let executor = RecoveryExecutor::new(
        prepared.core(),
        RecoveryConfig {
            interval: 16,
            max_retries: 6,
            budget: 20_000,
        },
    );
    let planes = || {
        [
            FaultPlane::with_faults(vec![ArchFault {
                element: StateElement::OutputPort,
                bit: 0,
                kind: FaultKind::StuckAt1,
            }]),
            FaultPlane::new(),
        ]
    };
    let a = executor.run_dmr(&[0x3, 0x5], planes(), vec![FaultPlane::new(); 2]);
    let b = executor.run_dmr(&[0x3, 0x5], planes(), vec![FaultPlane::new(); 2]);
    assert!(!a.trace.is_empty(), "the fault must force retries");
    assert_eq!(a, b);
}

#[test]
fn corrupt_page_mmu_faults_are_recovered_not_sdc() {
    // A corrupted §5.1 page register surfaces as a PageOutOfRange lane
    // crash (never silent data corruption), which the resilient layer
    // absorbs: TMR outvotes a permanently stuck page register, and
    // checkpoint/rollback re-executes through a transient page flip.
    use flexicore::sim::{ArchFault, FaultKind, FaultPlane, StateElement};
    let prepared = PreparedKernel::new(Kernel::ParityCheck, Target::fc4()).unwrap();
    let inputs = [0x3, 0x5];
    let expected = oracle::expected_outputs(Kernel::ParityCheck, Target::fc4().dialect, &inputs);

    // TMR: lane 0's page register is stuck at page 8 — that lane
    // crashes on its first fetch and the healthy majority wins
    let tmr = NmrExecutor::new(
        prepared.core(),
        NmrConfig {
            budget: 20_000,
            ..NmrConfig::default()
        },
    );
    let stuck = ArchFault {
        element: StateElement::PageReg,
        bit: 3,
        kind: FaultKind::StuckAt1,
    };
    let voted = tmr.run(
        &inputs,
        vec![
            FaultPlane::with_faults(vec![stuck]),
            FaultPlane::new(),
            FaultPlane::new(),
        ],
    );
    assert_eq!(voted.verdict, VoteVerdict::Majority);
    assert_eq!(voted.outputs, expected, "no SDC from the corrupt page");

    // DMR re-exec: a one-shot flip of the page register mid-run crashes
    // the lane, rollback replays the segment, and the retry (the flip
    // has already fired) completes oracle-exact
    let dmr = RecoveryExecutor::new(
        prepared.core(),
        RecoveryConfig {
            interval: 16,
            max_retries: 6,
            budget: 20_000,
        },
    );
    let flip = ArchFault {
        element: StateElement::PageReg,
        bit: 0,
        kind: FaultKind::FlipAtCycle(40),
    };
    let run = dmr.run_dmr(
        &inputs,
        [FaultPlane::with_faults(vec![flip]), FaultPlane::new()],
        vec![],
    );
    assert!(run.halted && !run.gave_up);
    assert!(run.retries > 0, "the page flip must force a rollback");
    assert_eq!(run.outputs, expected, "recovered, not corrupted");
}

#[test]
fn every_kernel_runs_through_the_resilient_executor() {
    let target = Target::fc4();
    for kernel in Kernel::ALL {
        let prepared = PreparedKernel::new(kernel, target).unwrap();
        let inputs = Sampler::new(kernel, 13).draw();
        let expected = oracle::expected_outputs(kernel, target.dialect, &inputs);

        let tmr = NmrExecutor::new(prepared.core(), NmrConfig::default());
        let voted = tmr.run(&inputs, vec![flexicore::sim::FaultPlane::new(); 3]);
        assert_eq!(voted.verdict, VoteVerdict::Unanimous, "{kernel}");
        assert_eq!(voted.outputs, expected, "{kernel}");
        assert!(voted.state.halted, "{kernel}");

        let dmr = RecoveryExecutor::new(prepared.core(), RecoveryConfig::default());
        let run = dmr.run_dmr(
            &inputs,
            [
                flexicore::sim::FaultPlane::new(),
                flexicore::sim::FaultPlane::new(),
            ],
            vec![],
        );
        assert!(run.halted && !run.gave_up, "{kernel}");
        assert_eq!(run.outputs, expected, "{kernel}");
        assert_eq!(run.retries, 0, "{kernel}: clean lanes never diverge");
    }
}

#[test]
fn degradation_ladder_composes_from_a_fabricated_wafer() {
    let exp = WaferExperiment::published(CoreDesign::FlexiCore4);
    let run = exp.run(4.5, 300).unwrap();
    let pool = SalvagePool::from_wafer(&run, CoreDesign::FlexiCore4);
    let quorums = compose(&pool);

    // every pooled die is scheduled exactly once
    let scheduled: usize = quorums.iter().map(|q| q.dies.len()).sum();
    assert_eq!(scheduled, pool.len());
    // a mostly-functional wafer yields plenty of TMR quorums
    assert!(quorums.iter().any(|q| q.mode == QuorumMode::Tmr));
    // quorum members are always pairwise fault-site-disjoint
    for q in &quorums {
        for a in 0..q.dies.len() {
            for b in a + 1..q.dies.len() {
                assert!(q.dies[a].disjoint_with(&q.dies[b]));
            }
        }
    }

    // a clean TMR quorum from the pool runs a kernel oracle-exact
    let clean = quorums
        .iter()
        .find(|q| q.mode == QuorumMode::Tmr && q.defects() == 0)
        .expect("a good wafer has three clean dies");
    let prepared = PreparedKernel::new(Kernel::ParityCheck, Target::fc4()).unwrap();
    let executor = NmrExecutor::new(
        prepared.core(),
        NmrConfig {
            budget: 20_000,
            ..NmrConfig::default()
        },
    );
    let inputs = [0x3, 0x5];
    let voted = executor.run(&inputs, clean.planes());
    assert_eq!(voted.verdict, VoteVerdict::Unanimous);
    assert_eq!(
        voted.outputs,
        oracle::expected_outputs(Kernel::ParityCheck, Target::fc4().dialect, &inputs)
    );

    // retiring dies walks the pool down the ladder
    let mut shrinking = pool.clone();
    let ids: Vec<usize> = shrinking.dies().iter().map(|d| d.id).collect();
    for id in ids.iter().take(pool.len() - 2) {
        shrinking.retire(*id);
    }
    assert_eq!(shrinking.len(), 2);
    let degraded = compose(&shrinking);
    assert!(
        degraded.iter().all(|q| q.mode != QuorumMode::Tmr),
        "two dies cannot form TMR"
    );
}
