//! Recovery campaigns: measure how much of `flexinject`'s fault
//! population the resilient executor masks or recovers.
//!
//! A campaign mirrors [`flexinject::campaign`] — same site enumeration,
//! same fault population via [`draw_fault`], same input sampler, one
//! seeded RNG stream — but instead of a bare simulator each trial runs
//! through the resilient executor at one rung of the degradation
//! ladder. The three-way classification refines the injector's:
//!
//! * **Masked** — oracle-exact output with zero retries (TMR voting, or
//!   a fault that never perturbed the run);
//! * **Recovered** — oracle-exact output, but the executor had to roll
//!   back, re-execute or reassign a lane to get there;
//! * **Unrecoverable** — wrong or missing output despite the machinery
//!   (lost quorum, exhausted retry budget, or simplex SDC).
//!
//! Everything derives from the campaign seed, so a campaign — including
//! every retry decision inside every trial — replays bit-for-bit.

use flexasm::Target;
use flexicore::sim::{ArchFault, FaultPlane, NoFaults};
use flexinject::campaign::{draw_fault, FaultModel};
use flexinject::sites;
use flexkernels::harness::{PreparedKernel, RunError, CYCLE_BUDGET};
use flexkernels::{inputs::Sampler, oracle, Kernel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::recovery::{RecoveryConfig, RecoveryExecutor};
use crate::sched::QuorumMode;
use crate::vote::{NmrConfig, NmrExecutor, VoteVerdict};

/// How one resiliently-executed injection ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResilientOutcome {
    /// Oracle-exact with zero retries.
    Masked,
    /// Oracle-exact after rollback / re-execution / reassignment.
    Recovered,
    /// Wrong output, lost quorum, or exhausted retry budget.
    Unrecoverable,
}

impl ResilientOutcome {
    /// Fixed-width display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ResilientOutcome::Masked => "masked",
            ResilientOutcome::Recovered => "recovered",
            ResilientOutcome::Unrecoverable => "unrecoverable",
        }
    }
}

impl core::fmt::Display for ResilientOutcome {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// One classified resilient injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilientTrial {
    /// The injected fault.
    pub fault: ArchFault,
    /// The lane it was injected into.
    pub lane: usize,
    /// Retry attempts the executor spent on this trial.
    pub retries: u32,
    /// How the trial ended.
    pub outcome: ResilientOutcome,
}

/// Parameters of one recovery campaign.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryCampaignConfig {
    /// Assembly target (fixes the dialect and its site list).
    pub target: Target,
    /// The kernel under test.
    pub kernel: Kernel,
    /// Number of injections.
    pub trials: usize,
    /// Master seed; fault draws, input draws and faulty-lane choices
    /// all derive from it.
    pub seed: u64,
    /// Watchdog budget per lane.
    pub budget: u64,
    /// Fault population.
    pub model: FaultModel,
    /// Which rung of the degradation ladder executes the trials.
    pub mode: QuorumMode,
    /// Output values per voting window (TMR).
    pub window: usize,
    /// Retired instructions per checkpoint segment (DMR / simplex).
    pub interval: u64,
    /// Retry attempts per segment before giving up (DMR / simplex).
    pub max_retries: u32,
    /// Spare (fault-free) dies available for lane reassignment
    /// (DMR / simplex).
    pub spares: usize,
    /// Contiguous shards the trial list is split into for execution.
    /// Never changes the report — shards only decide worker sharing.
    pub shards: usize,
    /// Worker threads executing shards (`1` = run inline, serially).
    pub threads: usize,
}

impl RecoveryCampaignConfig {
    /// A TMR stuck-at campaign with default cadence parameters, run
    /// serially (one shard, one thread).
    #[must_use]
    pub fn new(target: Target, kernel: Kernel, trials: usize, seed: u64) -> Self {
        RecoveryCampaignConfig {
            target,
            kernel,
            trials,
            seed,
            budget: CYCLE_BUDGET,
            model: FaultModel::StuckAt,
            mode: QuorumMode::Tmr,
            window: 4,
            interval: 64,
            max_retries: 8,
            spares: 2,
            shards: 1,
            threads: 1,
        }
    }
}

/// The classified trials of one recovery campaign.
#[derive(Debug, Clone)]
pub struct RecoveryCampaign {
    /// The configuration that produced it.
    pub config: RecoveryCampaignConfig,
    /// One entry per injection, in draw order.
    pub trials: Vec<ResilientTrial>,
    /// Cycle count of the fault-free reference run (bounds the
    /// transient flip window).
    pub clean_cycles: u64,
}

impl RecoveryCampaign {
    /// Count trials with `outcome`.
    #[must_use]
    pub fn count(&self, outcome: ResilientOutcome) -> usize {
        self.trials.iter().filter(|t| t.outcome == outcome).count()
    }

    /// Fraction of trials the executor delivered oracle-exact (masked
    /// plus recovered).
    #[must_use]
    pub fn survival_rate(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        (self.count(ResilientOutcome::Masked) + self.count(ResilientOutcome::Recovered)) as f64
            / self.trials.len() as f64
    }
}

/// Run one recovery campaign: `config.trials` single-fault injections,
/// each executed through the configured rung of the degradation ladder
/// with a freshly sampled input case.
///
/// # Errors
///
/// [`RunError::Asm`] if the kernel does not assemble for the target, or
/// any error from the fault-free reference run — a kernel that fails
/// *clean* makes every classification meaningless.
pub fn run_recovery_campaign(config: RecoveryCampaignConfig) -> Result<RecoveryCampaign, RunError> {
    let prepared = PreparedKernel::new(config.kernel, config.target)?;
    let site_list = sites::enumerate(config.target.dialect);
    let mut sampler = Sampler::new(config.kernel, config.seed ^ 0x001A_7E57);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let clean = prepared.run_with(&sampler.draw(), config.budget, &mut NoFaults)?;
    let clean_cycles = clean.result.cycles.max(1);

    // Serial pre-draw: faults, lane choices, inputs and oracle outputs
    // all come off the single seeded stream in trial order, exactly as
    // the old serial loop interleaved them. The executors themselves use
    // no RNG, so each pre-drawn trial is a pure function of its plan and
    // the sharded execution below merges back bit-for-bit identical to
    // a serial pass, whatever the thread or shard count.
    let lanes = config.mode.lanes();
    let plans: Vec<(ArchFault, usize, Vec<u8>, Vec<u8>)> = (0..config.trials)
        .map(|_| {
            let fault = draw_fault(&mut rng, &site_list, config.model, clean_cycles);
            let lane = if lanes > 1 {
                rng.gen_range(0..lanes)
            } else {
                0
            };
            let inputs = sampler.draw();
            let expected = oracle::expected_outputs(config.kernel, config.target.dialect, &inputs);
            (fault, lane, inputs, expected)
        })
        .collect();

    let trials = flexshard::map_sharded(plans.len(), config.shards, config.threads, |_, range| {
        plans[range]
            .iter()
            .map(|(fault, lane, inputs, expected)| {
                run_trial(&prepared, &config, lanes, *fault, *lane, inputs, expected)
            })
            .collect()
    });
    Ok(RecoveryCampaign {
        config,
        trials,
        clean_cycles,
    })
}

/// Execute one pre-drawn trial through the configured rung of the
/// degradation ladder and classify it. RNG-free by construction.
fn run_trial(
    prepared: &PreparedKernel,
    config: &RecoveryCampaignConfig,
    lanes: usize,
    fault: ArchFault,
    lane: usize,
    inputs: &[u8],
    expected: &[u8],
) -> ResilientTrial {
    let mut planes = vec![FaultPlane::new(); lanes];
    planes[lane] = FaultPlane::with_faults(vec![fault]);
    let spares = vec![FaultPlane::new(); config.spares];

    let (outputs, completed, retries) = match config.mode {
        QuorumMode::Tmr => {
            let executor = NmrExecutor::new(
                prepared.core(),
                NmrConfig {
                    lanes,
                    window: config.window,
                    budget: config.budget,
                },
            );
            let run = executor.run(inputs, planes);
            (run.outputs, run.verdict != VoteVerdict::QuorumLost, 0)
        }
        QuorumMode::DmrReexec => {
            let executor = recovery_executor(prepared, config);
            let [a, b] = <[FaultPlane; 2]>::try_from(planes).expect("two DMR planes");
            let run = executor.run_dmr(inputs, [a, b], spares);
            (run.outputs, run.halted && !run.gave_up, run.retries)
        }
        QuorumMode::Simplex => {
            let executor = recovery_executor(prepared, config);
            let plane = planes.pop().expect("one simplex plane");
            let run = executor.run_simplex(inputs, plane, spares);
            (run.outputs, run.halted && !run.gave_up, run.retries)
        }
    };
    let outcome = if completed && outputs == expected {
        if retries == 0 {
            ResilientOutcome::Masked
        } else {
            ResilientOutcome::Recovered
        }
    } else {
        ResilientOutcome::Unrecoverable
    };
    ResilientTrial {
        fault,
        lane,
        retries,
        outcome,
    }
}

fn recovery_executor(
    prepared: &PreparedKernel,
    config: &RecoveryCampaignConfig,
) -> RecoveryExecutor {
    RecoveryExecutor::new(
        prepared.core(),
        RecoveryConfig {
            interval: config.interval,
            max_retries: config.max_retries,
            budget: config.budget,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mode: QuorumMode, model: FaultModel, seed: u64) -> RecoveryCampaignConfig {
        RecoveryCampaignConfig {
            budget: 20_000,
            model,
            mode,
            ..RecoveryCampaignConfig::new(Target::fc4(), Kernel::ParityCheck, 12, seed)
        }
    }

    #[test]
    fn tmr_campaign_masks_stuck_at_faults() {
        let campaign =
            run_recovery_campaign(quick(QuorumMode::Tmr, FaultModel::StuckAt, 3)).unwrap();
        assert_eq!(campaign.trials.len(), 12);
        assert!(
            campaign
                .trials
                .iter()
                .all(|t| t.outcome == ResilientOutcome::Masked),
            "{:?}",
            campaign.trials
        );
        assert!((campaign.survival_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn dmr_campaign_recovers_transients() {
        let campaign =
            run_recovery_campaign(quick(QuorumMode::DmrReexec, FaultModel::Transient, 5)).unwrap();
        assert!(campaign.survival_rate() >= 0.9, "{:?}", campaign.trials);
    }

    #[test]
    fn simplex_campaign_leaves_sdc_on_the_table() {
        let campaign =
            run_recovery_campaign(quick(QuorumMode::Simplex, FaultModel::StuckAt, 7)).unwrap();
        // a lone lane cannot vote away permanent faults; some trials
        // must fail, or the classification is broken
        assert!(campaign.count(ResilientOutcome::Unrecoverable) > 0);
    }

    #[test]
    fn campaigns_replay_bit_for_bit() {
        for mode in [QuorumMode::Tmr, QuorumMode::DmrReexec, QuorumMode::Simplex] {
            let a = run_recovery_campaign(quick(mode, FaultModel::Mixed, 11)).unwrap();
            let b = run_recovery_campaign(quick(mode, FaultModel::Mixed, 11)).unwrap();
            assert_eq!(a.trials, b.trials, "{mode}");
            assert_eq!(a.clean_cycles, b.clean_cycles);
        }
    }

    #[test]
    fn thread_and_shard_counts_never_change_the_report() {
        for mode in [QuorumMode::Tmr, QuorumMode::DmrReexec, QuorumMode::Simplex] {
            let base = quick(mode, FaultModel::Mixed, 17);
            let serial = run_recovery_campaign(base).unwrap();
            for (shards, threads) in [(1, 8), (64, 1), (64, 8)] {
                let parallel = run_recovery_campaign(RecoveryCampaignConfig {
                    shards,
                    threads,
                    ..base
                })
                .unwrap();
                assert_eq!(
                    serial.trials, parallel.trials,
                    "{mode}: {shards} shards / {threads} threads"
                );
            }
        }
    }
}
