//! # flexresilient
//!
//! A resilient execution layer over the FlexiCore functional
//! simulators: run programs *correctly* on imperfect silicon instead of
//! discarding it.
//!
//! The paper's §4.1 screen is binary — a die either passes every test
//! vector or is thrown away — and `flexinject`'s campaigns quantify how
//! often a single fault corrupts a kernel. This crate closes the loop
//! with the classic fault-tolerance toolbox, built entirely on
//! architectural mechanisms the paper's off-chip board could implement:
//!
//! * **N-modular redundancy** ([`vote`]) — the same program on N lanes
//!   with independent fault planes; output windows and end states are
//!   decided by majority vote, masking anything a single lane does.
//! * **Checkpoint/rollback recovery** ([`recovery`]) — cheap
//!   architectural snapshots every K instructions; on divergence, crash
//!   or hang the lanes roll back and re-execute, with exponentially
//!   backed-off reassignment onto spare dies. Transients recover
//!   because fault planes are never rolled back; permanents are retired
//!   onto spares.
//! * **Degraded-mode scheduling** ([`sched`]) — quorums composed from
//!   `flexinject`'s salvage pool by pairing dies whose defect sites do
//!   not overlap, descending TMR → DMR-with-re-execution →
//!   simplex-with-checkpoints as the pool shrinks.
//! * **Recovery campaigns** ([`campaign`], [`report`]) — seeded,
//!   bit-for-bit reproducible sweeps measuring masked / recovered /
//!   unrecoverable rates per dialect and fault model.
//!
//! ```
//! use flexasm::Target;
//! use flexkernels::Kernel;
//! use flexresilient::{run_recovery_campaign, RecoveryCampaignConfig, ResilientOutcome};
//!
//! let cfg = RecoveryCampaignConfig {
//!     budget: 20_000,
//!     ..RecoveryCampaignConfig::new(Target::fc4(), Kernel::ParityCheck, 4, 1)
//! };
//! let campaign = run_recovery_campaign(cfg)?;
//! // TMR outvotes every single-lane stuck-at fault
//! assert!(campaign
//!     .trials
//!     .iter()
//!     .all(|t| t.outcome == ResilientOutcome::Masked));
//! # Ok::<(), flexkernels::RunError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod recovery;
pub mod report;
pub mod sched;
pub mod vote;

pub use campaign::{
    run_recovery_campaign, RecoveryCampaign, RecoveryCampaignConfig, ResilientOutcome,
    ResilientTrial,
};
pub use recovery::{
    RecoveryConfig, RecoveryExecutor, RecoveryRun, RetryAction, RetryCause, RetryEvent,
};
pub use report::{render_recovery_campaign, ResilienceTally};
pub use sched::{compose, Quorum, QuorumMode};
pub use vote::{NmrConfig, NmrExecutor, NmrRun, StateDigest, VoteVerdict, WindowVote};
