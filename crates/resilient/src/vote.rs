//! N-modular redundancy: the same program on N lanes, outputs decided
//! by majority vote.
//!
//! Each lane is an independent simulated die — its own core, scripted
//! input cursor, output recorder and [`FaultPlane`] — stepped by the
//! [`MultiCoreDriver`]. After the batch retires, the output streams are
//! compared window by window and the final architectural states are
//! compared as [`StateDigest`]s. A window (or the end state) where at
//! least a quorum of lanes agree is decided by that majority, masking
//! whatever the dissenting lane did; a window with no quorum is flagged
//! as potential silent data corruption rather than silently decided.
//!
//! Voting is purely architectural: it sees what the paper's off-chip
//! board sees (the output port stream) plus the state a §4.1 tester
//! could scan out, never simulator internals. Two fault-free lanes are
//! bit-for-bit identical by construction, so with at most one faulty
//! lane a 3-lane quorum always holds.

use flexicore::exec::{AnyCore, LaneStatus, MultiCoreDriver, Snapshot};
use flexicore::io::{RecordingOutput, ScriptedInput};
use flexicore::mmu::Mmu;
use flexicore::sim::FaultPlane;

/// The architectural fingerprint of a finished lane: everything voted
/// on besides the output stream. Built from a [`Snapshot`] by dropping
/// the accounting counters — two lanes that reconverged after a masked
/// fault may disagree on cycle counts while agreeing on every
/// observable bit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateDigest {
    /// Program counter.
    pub pc: u8,
    /// Whether the halt idiom was reached.
    pub halted: bool,
    /// Accumulator (0 on the load-store dialect).
    pub acc: u8,
    /// Link register (0 on dialects without one).
    pub ra: u8,
    /// Packed condition flags (dialect-specific; 0 when absent).
    pub flags: u8,
    /// Data memory or register file.
    pub mem: Vec<u8>,
    /// The off-chip MMU transducer state.
    pub mmu: Mmu,
}

impl StateDigest {
    /// Digest a snapshot.
    #[must_use]
    pub fn of(snap: &Snapshot) -> Self {
        StateDigest {
            pc: snap.pc,
            halted: snap.halted,
            acc: snap.acc,
            ra: snap.ra,
            flags: snap.flags,
            mem: snap.mem.clone(),
            mmu: snap.mmu,
        }
    }
}

/// How decisively a vote went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VoteVerdict {
    /// Every lane agreed.
    Unanimous,
    /// A quorum agreed; the dissenters were outvoted (fault masked).
    Majority,
    /// No quorum — the plurality value is reported but cannot be
    /// trusted (potential silent data corruption).
    QuorumLost,
}

/// One voted output window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowVote {
    /// Window index (window `i` covers output positions
    /// `i*window .. (i+1)*window`).
    pub index: usize,
    /// How the window's vote went.
    pub verdict: VoteVerdict,
    /// Lanes that disagreed with the winning value.
    pub dissenters: Vec<usize>,
}

/// Configuration of an [`NmrExecutor`].
#[derive(Debug, Clone, Copy)]
pub struct NmrConfig {
    /// Number of redundant lanes (3 = TMR). Quorum is `lanes/2 + 1`.
    pub lanes: usize,
    /// Output values voted per window.
    pub window: usize,
    /// Watchdog budget per lane (cycles on FC4/FC8, retired
    /// instructions on the extended dialects).
    pub budget: u64,
}

impl Default for NmrConfig {
    fn default() -> Self {
        NmrConfig {
            lanes: 3,
            window: 4,
            budget: 200_000,
        }
    }
}

/// The decided result of one N-modular run.
#[derive(Debug, Clone)]
pub struct NmrRun {
    /// The voted output stream (per-window plurality winners).
    pub outputs: Vec<u8>,
    /// Per-window vote records, in stream order.
    pub windows: Vec<WindowVote>,
    /// The voted end state.
    pub state: StateDigest,
    /// How the end-state vote went.
    pub state_verdict: VoteVerdict,
    /// The worst verdict across every window and the end state.
    pub verdict: VoteVerdict,
    /// Lanes that dissented anywhere (output window, end state, or by
    /// crashing / hanging).
    pub suspects: Vec<usize>,
    /// How each lane retired, in lane order.
    pub statuses: Vec<LaneStatus>,
}

/// Runs one program image on N redundant lanes and votes the results.
#[derive(Debug, Clone)]
pub struct NmrExecutor {
    proto: AnyCore,
    config: NmrConfig,
}

impl NmrExecutor {
    /// An executor cloning fresh lanes from `proto` (a core with the
    /// program image loaded, e.g. [`PreparedKernel::core`]).
    ///
    /// [`PreparedKernel::core`]: flexkernels::harness::PreparedKernel::core
    #[must_use]
    pub fn new(proto: AnyCore, config: NmrConfig) -> Self {
        NmrExecutor { proto, config }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &NmrConfig {
        &self.config
    }

    /// Run `inputs` through every lane, one [`FaultPlane`] per lane, and
    /// vote the outputs and end states.
    ///
    /// # Panics
    ///
    /// Panics if `planes.len()` differs from the configured lane count.
    #[must_use]
    pub fn run(&self, inputs: &[u8], planes: Vec<FaultPlane>) -> NmrRun {
        assert_eq!(
            planes.len(),
            self.config.lanes,
            "one fault plane per configured lane"
        );
        let mut driver = MultiCoreDriver::new(self.config.budget);
        for plane in planes {
            driver.push(
                self.proto.clone(),
                ScriptedInput::new(inputs.to_vec()),
                RecordingOutput::new(),
                plane,
            );
        }
        driver.run_to_completion();
        let lanes = driver.into_lanes();
        let streams: Vec<Vec<u8>> = lanes.iter().map(|l| l.output.values()).collect();
        let digests: Vec<StateDigest> = lanes
            .iter()
            .map(|l| StateDigest::of(&l.core.snapshot()))
            .collect();
        let statuses: Vec<LaneStatus> = lanes.into_iter().map(|l| l.status).collect();

        let quorum = self.config.lanes / 2 + 1;
        let mut outputs = Vec::new();
        let mut windows = Vec::new();
        let mut suspects: Vec<usize> = Vec::new();
        let longest = streams.iter().map(Vec::len).max().unwrap_or(0);
        for index in 0..longest.div_ceil(self.config.window) {
            let lo = index * self.config.window;
            let chunks: Vec<&[u8]> = streams
                .iter()
                .map(|s| {
                    let hi = (lo + self.config.window).min(s.len());
                    if lo >= s.len() {
                        &[][..]
                    } else {
                        &s[lo..hi]
                    }
                })
                .collect();
            let (votes, winner) = plurality(&chunks);
            let verdict = verdict_of(votes, chunks.len(), quorum);
            let dissenters: Vec<usize> = chunks
                .iter()
                .enumerate()
                .filter(|&(_, c)| *c != *winner)
                .map(|(i, _)| i)
                .collect();
            outputs.extend_from_slice(winner);
            note_suspects(&mut suspects, &dissenters);
            windows.push(WindowVote {
                index,
                verdict,
                dissenters,
            });
        }

        let (votes, winner) = plurality(&digests);
        let state_verdict = verdict_of(votes, digests.len(), quorum);
        let state = winner.clone();
        let state_dissenters: Vec<usize> = digests
            .iter()
            .enumerate()
            .filter(|&(_, d)| *d != state)
            .map(|(i, _)| i)
            .collect();
        note_suspects(&mut suspects, &state_dissenters);

        let verdict = windows
            .iter()
            .map(|w| w.verdict)
            .chain([state_verdict])
            .max()
            .unwrap_or(VoteVerdict::Unanimous);
        NmrRun {
            outputs,
            windows,
            state,
            state_verdict,
            verdict,
            suspects,
            statuses,
        }
    }
}

/// Plurality over `items`: the count and first item reaching the
/// maximum multiplicity. Ties break toward the lowest lane index, so
/// the vote is a pure function of the lane contents.
fn plurality<T: Eq>(items: &[T]) -> (usize, &T) {
    let mut best = 0usize;
    let mut winner = &items[0];
    for candidate in items {
        let votes = items.iter().filter(|i| *i == candidate).count();
        if votes > best {
            best = votes;
            winner = candidate;
        }
    }
    (best, winner)
}

fn verdict_of(votes: usize, lanes: usize, quorum: usize) -> VoteVerdict {
    if votes == lanes {
        VoteVerdict::Unanimous
    } else if votes >= quorum {
        VoteVerdict::Majority
    } else {
        VoteVerdict::QuorumLost
    }
}

fn note_suspects(suspects: &mut Vec<usize>, dissenters: &[usize]) {
    for &d in dissenters {
        if !suspects.contains(&d) {
            suspects.push(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexasm::Target;
    use flexicore::sim::{ArchFault, FaultKind, StateElement};
    use flexkernels::harness::PreparedKernel;
    use flexkernels::{oracle, Kernel};

    fn parity_executor() -> (NmrExecutor, Vec<u8>, Vec<u8>) {
        let prepared = PreparedKernel::new(Kernel::ParityCheck, Target::fc4()).unwrap();
        let inputs = vec![0x3, 0x5];
        let expected =
            oracle::expected_outputs(Kernel::ParityCheck, Target::fc4().dialect, &inputs);
        let executor = NmrExecutor::new(
            prepared.core(),
            NmrConfig {
                budget: 20_000,
                ..NmrConfig::default()
            },
        );
        (executor, inputs, expected)
    }

    fn stuck(element: StateElement, bit: u8) -> FaultPlane {
        FaultPlane::with_faults(vec![ArchFault {
            element,
            bit,
            kind: FaultKind::StuckAt1,
        }])
    }

    #[test]
    fn clean_lanes_vote_unanimously() {
        let (executor, inputs, expected) = parity_executor();
        let run = executor.run(&inputs, vec![FaultPlane::new(); 3]);
        assert_eq!(run.verdict, VoteVerdict::Unanimous);
        assert_eq!(run.outputs, expected);
        assert!(run.suspects.is_empty());
        assert!(run.state.halted);
    }

    #[test]
    fn single_faulty_lane_is_outvoted() {
        let (executor, inputs, expected) = parity_executor();
        for lane in 0..3 {
            let mut planes = vec![FaultPlane::new(); 3];
            planes[lane] = stuck(StateElement::OutputPort, 0);
            let run = executor.run(&inputs, planes);
            assert_ne!(run.verdict, VoteVerdict::QuorumLost, "lane {lane}");
            assert_eq!(run.outputs, expected, "lane {lane}");
            // parity(0x53) = 0, so oport.0 stuck-at-1 really corrupts
            // the faulty lane: the vote was load-bearing, not a no-op
            assert_eq!(run.suspects, vec![lane]);
        }
    }

    #[test]
    fn crashing_lane_is_outvoted_too() {
        let (executor, inputs, expected) = parity_executor();
        let mut planes = vec![FaultPlane::new(); 3];
        // a PC bit stuck high tends to derail fetch entirely
        planes[2] = stuck(StateElement::Pc, 6);
        let run = executor.run(&inputs, planes);
        assert_ne!(run.verdict, VoteVerdict::QuorumLost);
        assert_eq!(run.outputs, expected);
    }

    #[test]
    fn two_faulty_lanes_lose_the_quorum_detectably() {
        let (executor, inputs, _) = parity_executor();
        // three pairwise-different lanes: no two agree anywhere it counts
        let planes = vec![
            stuck(StateElement::OutputPort, 0),
            stuck(StateElement::OutputPort, 1),
            stuck(StateElement::Pc, 6),
        ];
        let run = executor.run(&inputs, planes);
        assert_eq!(run.verdict, VoteVerdict::QuorumLost);
    }

    #[test]
    fn vote_is_deterministic() {
        let (executor, inputs, _) = parity_executor();
        let planes = || {
            vec![
                stuck(StateElement::Acc, 1),
                FaultPlane::new(),
                FaultPlane::new(),
            ]
        };
        let a = executor.run(&inputs, planes());
        let b = executor.run(&inputs, planes());
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.state, b.state);
    }
}
