//! Aggregation and text rendering of recovery campaign results.

use crate::campaign::{RecoveryCampaign, ResilientOutcome, ResilientTrial};

/// Outcome counts over a set of resilient trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceTally {
    /// Oracle-exact with zero retries.
    pub masked: usize,
    /// Oracle-exact after rollback / reassignment.
    pub recovered: usize,
    /// Wrong output despite the machinery.
    pub unrecoverable: usize,
    /// Total retry attempts spent across the counted trials.
    pub retries: u32,
}

impl ResilienceTally {
    /// Count the outcomes of `trials`.
    #[must_use]
    pub fn of(trials: &[ResilientTrial]) -> ResilienceTally {
        let mut t = ResilienceTally::default();
        for trial in trials {
            t.retries += trial.retries;
            match trial.outcome {
                ResilientOutcome::Masked => t.masked += 1,
                ResilientOutcome::Recovered => t.recovered += 1,
                ResilientOutcome::Unrecoverable => t.unrecoverable += 1,
            }
        }
        t
    }

    /// Total trials counted.
    #[must_use]
    pub fn total(&self) -> usize {
        self.masked + self.recovered + self.unrecoverable
    }

    /// Fraction masked.
    #[must_use]
    pub fn masked_rate(&self) -> f64 {
        self.rate(self.masked)
    }

    /// Fraction recovered.
    #[must_use]
    pub fn recovered_rate(&self) -> f64 {
        self.rate(self.recovered)
    }

    /// Fraction that survived (masked plus recovered).
    #[must_use]
    pub fn survival_rate(&self) -> f64 {
        self.rate(self.masked + self.recovered)
    }

    fn rate(&self, n: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            n as f64 / total as f64
        }
    }
}

/// Render a recovery campaign as the CLI's table: one row per
/// injection, then the tally.
#[must_use]
pub fn render_recovery_campaign(campaign: &RecoveryCampaign) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let cfg = &campaign.config;
    let _ = writeln!(
        out,
        "# {} on {:?} under {}: {} faults, seed {}, budget {}",
        cfg.kernel, cfg.target.dialect, cfg.mode, cfg.trials, cfg.seed, cfg.budget
    );
    let _ = writeln!(
        out,
        "{:<6} {:<18} {:<5} {:<8} outcome",
        "trial", "fault", "lane", "retries"
    );
    for (i, t) in campaign.trials.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<6} {:<18} {:<5} {:<8} {}",
            i,
            t.fault.to_string(),
            t.lane,
            t.retries,
            t.outcome
        );
    }
    let tally = ResilienceTally::of(&campaign.trials);
    let _ = writeln!(
        out,
        "\nmasked {:>4} ({:5.1} %)   recovered {:>4} ({:5.1} %)   unrecoverable {:>4} ({:5.1} %)   retries {}",
        tally.masked,
        100.0 * tally.masked_rate(),
        tally.recovered,
        100.0 * tally.recovered_rate(),
        tally.unrecoverable,
        100.0 * (1.0 - tally.survival_rate()),
        tally.retries,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexicore::sim::{ArchFault, FaultKind, StateElement};

    fn trial(outcome: ResilientOutcome, retries: u32) -> ResilientTrial {
        ResilientTrial {
            fault: ArchFault {
                element: StateElement::Acc,
                bit: 0,
                kind: FaultKind::StuckAt1,
            },
            lane: 0,
            retries,
            outcome,
        }
    }

    #[test]
    fn tally_counts_and_rates() {
        let trials = [
            trial(ResilientOutcome::Masked, 0),
            trial(ResilientOutcome::Recovered, 2),
            trial(ResilientOutcome::Recovered, 1),
            trial(ResilientOutcome::Unrecoverable, 9),
        ];
        let t = ResilienceTally::of(&trials);
        assert_eq!((t.masked, t.recovered, t.unrecoverable), (1, 2, 1));
        assert_eq!(t.total(), 4);
        assert_eq!(t.retries, 12);
        assert!((t.survival_rate() - 0.75).abs() < 1e-12);
        assert_eq!(ResilienceTally::default().survival_rate(), 0.0);
    }
}
