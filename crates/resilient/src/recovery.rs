//! Checkpoint/rollback recovery: run in short segments, compare at
//! every boundary, and re-execute from the last good checkpoint when
//! the lanes disagree.
//!
//! The executor steps one or two lanes in lockstep segments of a fixed
//! number of retired instructions. At every boundary it takes a cheap
//! architectural checkpoint ([`Snapshot`] plus the input cursor and the
//! committed output stream) and — in DMR mode — compares the lanes'
//! segment outputs and [`Snapshot::same_arch`] states. On divergence,
//! crash or hang, every lane is rolled back to the canonical checkpoint
//! and the segment re-executes.
//!
//! Fault planes are **never** rolled back: a transient flip that
//! already fired stays fired (the particle strike happened; rewinding
//! the machine does not repeat it), so re-execution after a transient
//! is clean and the retry succeeds — that is the recovery mechanism.
//! A *permanent* fault diverges again on every retry; after an
//! exponentially backed-off number of attempts the suspect lane is
//! reassigned to a spare die (a fresh core restored from the
//! checkpoint, carrying the spare's fault plane). A segment that
//! exhausts its retry budget gives up, returning the outputs committed
//! so far.
//!
//! Everything here is deterministic — no RNG, no wall-clock — so a
//! retry trace replays bit-for-bit from the same inputs and planes.
//!
//! Simplex mode (one lane, checkpoints only) detects crashes and hangs
//! but **cannot** detect silent data corruption: with no second lane to
//! compare against, a wrong-but-halting run commits. That blind spot is
//! the price of the bottom rung of the degradation ladder.

use flexicore::exec::{AnyCore, Snapshot};
use flexicore::io::{RecordingOutput, ScriptedInput};
use flexicore::sim::FaultPlane;

use crate::vote::StateDigest;

/// Configuration of a [`RecoveryExecutor`].
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Retired instructions per segment (checkpoint cadence).
    pub interval: u64,
    /// Retry attempts per segment before giving up.
    pub max_retries: u32,
    /// Watchdog budget per lane (cycles on FC4/FC8, retired
    /// instructions on the extended dialects); exceeding it inside a
    /// segment counts as a hang.
    pub budget: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            interval: 64,
            max_retries: 8,
            budget: 200_000,
        }
    }
}

/// Why a segment was retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetryCause {
    /// DMR lanes disagreed on segment outputs or architectural state.
    Divergence,
    /// A lane raised a simulator error.
    Crash,
    /// A lane exhausted the watchdog budget.
    Hang,
}

/// What the executor did about a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetryAction {
    /// Rolled every lane back to the checkpoint and re-executed.
    Rollback,
    /// Rolled back and additionally moved one lane onto a spare die.
    Reassign {
        /// The lane index that was reassigned.
        lane: usize,
    },
    /// Exhausted the retry budget; the run stops at the checkpoint.
    GiveUp,
}

/// One entry of the deterministic retry trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryEvent {
    /// Which segment (0-based commit index) failed.
    pub segment: usize,
    /// Attempt number within the segment (1-based).
    pub attempt: u32,
    /// What went wrong.
    pub cause: RetryCause,
    /// What the executor did.
    pub action: RetryAction,
}

/// The result of one recovery-executed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRun {
    /// The committed output stream.
    pub outputs: Vec<u8>,
    /// Whether the program reached the halt idiom.
    pub halted: bool,
    /// Whether a segment exhausted its retry budget.
    pub gave_up: bool,
    /// Total retry attempts across all segments.
    pub retries: u32,
    /// Lane-to-spare reassignments performed.
    pub reassignments: u32,
    /// The full retry trace, in order.
    pub trace: Vec<RetryEvent>,
    /// The committed end state.
    pub end: StateDigest,
}

/// How one lane finished a segment.
enum SegmentEnd {
    /// Retired the segment's instruction quota.
    Reached,
    /// Hit the halt idiom before the quota.
    Halted,
    /// Raised a simulator error.
    Crashed,
    /// Burned the watchdog budget.
    Hung,
}

/// One redundant lane: a core plus its private IO and fault plane.
struct RecoveryLane {
    core: AnyCore,
    input: ScriptedInput,
    output: RecordingOutput,
    plane: FaultPlane,
}

/// The canonical committed state every lane re-synchronizes to.
struct Checkpoint {
    snap: Snapshot,
    input: ScriptedInput,
    committed: Vec<u8>,
}

/// Runs a program under checkpoint/rollback, in DMR-with-re-execution
/// or simplex mode.
#[derive(Debug, Clone)]
pub struct RecoveryExecutor {
    proto: AnyCore,
    config: RecoveryConfig,
}

impl RecoveryExecutor {
    /// An executor cloning fresh lanes from `proto`.
    #[must_use]
    pub fn new(proto: AnyCore, config: RecoveryConfig) -> Self {
        RecoveryExecutor { proto, config }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &RecoveryConfig {
        &self.config
    }

    /// Dual-modular redundancy with re-execution: two lanes compared at
    /// every checkpoint, `spares` consumed by lane reassignment.
    #[must_use]
    pub fn run_dmr(
        &self,
        inputs: &[u8],
        planes: [FaultPlane; 2],
        spares: Vec<FaultPlane>,
    ) -> RecoveryRun {
        self.run_lanes(inputs, planes.into(), spares)
    }

    /// Simplex with checkpoints: one lane, rollback on crash or hang
    /// only. Silent data corruption passes through undetected.
    #[must_use]
    pub fn run_simplex(
        &self,
        inputs: &[u8],
        plane: FaultPlane,
        spares: Vec<FaultPlane>,
    ) -> RecoveryRun {
        self.run_lanes(inputs, vec![plane], spares)
    }

    fn run_lanes(
        &self,
        inputs: &[u8],
        planes: Vec<FaultPlane>,
        mut spares: Vec<FaultPlane>,
    ) -> RecoveryRun {
        // The canonical checkpoint starts *before* power-on faults are
        // applied, so the very first rollback already lands on a clean
        // architectural state.
        let mut checkpoint = Checkpoint {
            snap: self.proto.snapshot(),
            input: ScriptedInput::new(inputs.to_vec()),
            committed: Vec::new(),
        };
        let mut lanes: Vec<RecoveryLane> = planes
            .into_iter()
            .map(|plane| {
                let mut lane = RecoveryLane {
                    core: self.proto.clone(),
                    input: checkpoint.input.clone(),
                    output: RecordingOutput::new(),
                    plane,
                };
                lane.core.power_on_faults(&mut lane.plane);
                lane
            })
            .collect();

        let mut trace = Vec::new();
        let mut retries = 0u32;
        let mut reassignments = 0u32;
        let mut gave_up = false;

        let mut segment = 0usize;
        'run: while !checkpoint.snap.halted {
            let mut attempt = 0u32;
            let mut next_reassign = 1u32;
            loop {
                let target = checkpoint.snap.instructions + self.config.interval;
                let mut failure: Option<(RetryCause, usize)> = None;
                for (index, lane) in lanes.iter_mut().enumerate() {
                    match run_segment(lane, target, self.config.budget) {
                        SegmentEnd::Reached | SegmentEnd::Halted => {}
                        SegmentEnd::Crashed => {
                            failure.get_or_insert((RetryCause::Crash, index));
                        }
                        SegmentEnd::Hung => {
                            failure.get_or_insert((RetryCause::Hang, index));
                        }
                    }
                }
                if failure.is_none() && lanes.len() >= 2 {
                    let reference = lanes[0].core.snapshot();
                    let diverged = lanes[1..].iter().any(|lane| {
                        lane.output.values() != lanes[0].output.values()
                            || !lane.core.snapshot().same_arch(&reference)
                    });
                    if diverged {
                        // DMR cannot attribute a divergence to a lane;
                        // the suspect is chosen by alternation below.
                        failure = Some((RetryCause::Divergence, 1));
                    }
                }

                let Some((cause, suspect)) = failure else {
                    break; // segment agreed: commit below
                };
                attempt += 1;
                retries += 1;
                if attempt > self.config.max_retries {
                    trace.push(RetryEvent {
                        segment,
                        attempt,
                        cause,
                        action: RetryAction::GiveUp,
                    });
                    gave_up = true;
                    break 'run;
                }
                let action = if attempt >= next_reassign && !spares.is_empty() {
                    next_reassign = next_reassign.saturating_mul(2);
                    // Divergence points at no one, so reassignment
                    // alternates between the lanes; within two
                    // reassignments the faulty lane has been replaced.
                    let lane = if cause == RetryCause::Divergence && lanes.len() == 2 {
                        reassignments as usize % 2
                    } else {
                        suspect
                    };
                    lanes[lane] = RecoveryLane {
                        core: self.proto.clone(),
                        input: checkpoint.input.clone(),
                        output: RecordingOutput::new(),
                        plane: spares.remove(0),
                    };
                    reassignments += 1;
                    RetryAction::Reassign { lane }
                } else {
                    RetryAction::Rollback
                };
                trace.push(RetryEvent {
                    segment,
                    attempt,
                    cause,
                    action,
                });
                resync(&mut lanes, &checkpoint);
            }

            // Commit: lane 0 speaks for the agreed state. Re-syncing the
            // other lanes to the canonical snapshot keeps their budget
            // accounting in lockstep for the next segment.
            checkpoint.committed.extend(lanes[0].output.values());
            checkpoint.snap = lanes[0].core.snapshot();
            checkpoint.input = lanes[0].input.clone();
            resync(&mut lanes, &checkpoint);
            segment += 1;
        }

        RecoveryRun {
            outputs: checkpoint.committed,
            halted: checkpoint.snap.halted,
            gave_up,
            retries,
            reassignments,
            trace,
            end: StateDigest::of(&checkpoint.snap),
        }
    }
}

/// Roll every lane onto the canonical checkpoint. Fault planes are
/// deliberately left alone (see the module docs).
fn resync(lanes: &mut [RecoveryLane], checkpoint: &Checkpoint) {
    for lane in lanes {
        lane.core.restore(&checkpoint.snap);
        lane.input = checkpoint.input.clone();
        lane.output = RecordingOutput::new();
    }
}

/// Step one lane until it retires `target` total instructions, halts,
/// crashes or burns the watchdog budget.
fn run_segment(lane: &mut RecoveryLane, target: u64, budget: u64) -> SegmentEnd {
    loop {
        if lane.core.is_halted() {
            return SegmentEnd::Halted;
        }
        if lane.core.instructions() >= target {
            return SegmentEnd::Reached;
        }
        if lane.core.budget_spent() >= budget {
            return SegmentEnd::Hung;
        }
        if lane
            .core
            .step_with(&mut lane.input, &mut lane.output, &mut lane.plane)
            .is_err()
        {
            return SegmentEnd::Crashed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexasm::Target;
    use flexicore::sim::{ArchFault, FaultKind, StateElement};
    use flexkernels::harness::PreparedKernel;
    use flexkernels::{oracle, Kernel};

    fn parity_setup() -> (RecoveryExecutor, Vec<u8>, Vec<u8>) {
        let prepared = PreparedKernel::new(Kernel::ParityCheck, Target::fc4()).unwrap();
        let inputs = vec![0x3, 0x5];
        let expected =
            oracle::expected_outputs(Kernel::ParityCheck, Target::fc4().dialect, &inputs);
        let executor = RecoveryExecutor::new(
            prepared.core(),
            RecoveryConfig {
                interval: 16,
                max_retries: 6,
                budget: 20_000,
            },
        );
        (executor, inputs, expected)
    }

    fn flip(element: StateElement, bit: u8, at: u64) -> FaultPlane {
        FaultPlane::with_faults(vec![ArchFault {
            element,
            bit,
            kind: FaultKind::FlipAtCycle(at),
        }])
    }

    fn stuck(element: StateElement, bit: u8) -> FaultPlane {
        FaultPlane::with_faults(vec![ArchFault {
            element,
            bit,
            kind: FaultKind::StuckAt1,
        }])
    }

    #[test]
    fn clean_dmr_commits_without_retries() {
        let (executor, inputs, expected) = parity_setup();
        let run = executor.run_dmr(&inputs, [FaultPlane::new(), FaultPlane::new()], vec![]);
        assert!(run.halted && !run.gave_up);
        assert_eq!(run.retries, 0);
        assert!(run.trace.is_empty());
        assert_eq!(run.outputs, expected);
    }

    #[test]
    fn transient_divergence_is_rolled_back_and_recovered() {
        let (executor, inputs, expected) = parity_setup();
        // an accumulator flip early in the run corrupts lane 0 once
        let run = executor.run_dmr(
            &inputs,
            [flip(StateElement::Acc, 2, 40), FaultPlane::new()],
            vec![],
        );
        assert!(run.halted && !run.gave_up, "{:?}", run.trace);
        assert_eq!(run.outputs, expected);
        assert!(run.retries > 0, "the flip must actually perturb the run");
        assert_eq!(run.reassignments, 0, "no spares were offered");
    }

    #[test]
    fn permanent_fault_is_retired_onto_a_spare() {
        let (executor, inputs, expected) = parity_setup();
        let run = executor.run_dmr(
            &inputs,
            [stuck(StateElement::OutputPort, 0), FaultPlane::new()],
            vec![FaultPlane::new(), FaultPlane::new()],
        );
        assert!(run.halted && !run.gave_up, "{:?}", run.trace);
        assert_eq!(run.outputs, expected);
        assert!(run.reassignments >= 1, "{:?}", run.trace);
    }

    #[test]
    fn permanent_fault_without_spares_gives_up() {
        let (executor, inputs, _) = parity_setup();
        let run = executor.run_dmr(
            &inputs,
            [stuck(StateElement::OutputPort, 0), FaultPlane::new()],
            vec![],
        );
        assert!(run.gave_up);
        assert_eq!(
            run.trace.last().map(|e| e.action),
            Some(RetryAction::GiveUp)
        );
        assert_eq!(run.retries, executor.config().max_retries + 1);
    }

    #[test]
    fn simplex_recovers_from_crashes_but_not_sdc() {
        let (executor, inputs, expected) = parity_setup();
        // a PC bit stuck high derails fetch: detectable, so a spare fixes it
        let crashing =
            executor.run_simplex(&inputs, stuck(StateElement::Pc, 6), vec![FaultPlane::new()]);
        assert!(crashing.halted && !crashing.gave_up, "{:?}", crashing.trace);
        assert_eq!(crashing.outputs, expected);
        assert!(crashing.reassignments >= 1);

        // a stuck output bit halts cleanly with wrong outputs: invisible
        let sdc = executor.run_simplex(&inputs, stuck(StateElement::OutputPort, 0), vec![]);
        assert!(sdc.halted && !sdc.gave_up);
        assert_eq!(sdc.retries, 0);
        assert_ne!(sdc.outputs, expected, "simplex cannot see SDC");
    }

    #[test]
    fn retry_traces_replay_bit_for_bit() {
        let (executor, inputs, _) = parity_setup();
        let planes = || [flip(StateElement::Acc, 1, 30), stuck(StateElement::Acc, 3)];
        let spares = || vec![FaultPlane::new(), FaultPlane::new()];
        let a = executor.run_dmr(&inputs, planes(), spares());
        let b = executor.run_dmr(&inputs, planes(), spares());
        assert_eq!(a, b);
    }
}
