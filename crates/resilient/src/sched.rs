//! Degraded-mode scheduling: build voting quorums from a pool of
//! partially-defective salvaged dies.
//!
//! The paper's binary screen throws away every die that fails a single
//! test vector; the salvage pool (`flexinject::pool`) keeps those dies
//! together with their replayed architectural fault sets. This module
//! turns a pool into execution *quorums*: groups of dies whose defect
//! sites do not overlap, so no two members can agree on the same wrong
//! bit and a majority vote stays trustworthy.
//!
//! The scheduler is greedy and works healthiest-first: it tries to
//! assemble TMR triples, falls back to DMR-with-re-execution pairs
//! when no third compatible die exists, and hands the dregs out as
//! simplex-with-checkpoints singles — the degradation ladder
//! TMR → DMR → simplex, descended as the pool shrinks.

use flexicore::sim::FaultPlane;
use flexinject::pool::{PoolDie, SalvagePool};

/// A rung of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QuorumMode {
    /// Triple-modular redundancy: three lanes, majority vote.
    Tmr,
    /// Dual-modular redundancy with checkpoint/rollback re-execution.
    DmrReexec,
    /// One lane with checkpoints: crashes and hangs recoverable, silent
    /// data corruption undetectable.
    Simplex,
}

impl QuorumMode {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QuorumMode::Tmr => "tmr",
            QuorumMode::DmrReexec => "dmr",
            QuorumMode::Simplex => "simplex",
        }
    }

    /// Parse a CLI spelling.
    #[must_use]
    pub fn from_name(name: &str) -> Option<QuorumMode> {
        match name.to_ascii_lowercase().as_str() {
            "tmr" | "nmr" | "3" => Some(QuorumMode::Tmr),
            "dmr" | "dmr-reexec" | "2" => Some(QuorumMode::DmrReexec),
            "simplex" | "1" => Some(QuorumMode::Simplex),
            _ => None,
        }
    }

    /// Lanes a quorum of this mode occupies.
    #[must_use]
    pub fn lanes(self) -> usize {
        match self {
            QuorumMode::Tmr => 3,
            QuorumMode::DmrReexec => 2,
            QuorumMode::Simplex => 1,
        }
    }

    /// The next rung down the ladder, or `None` below simplex.
    #[must_use]
    pub fn degrade(self) -> Option<QuorumMode> {
        match self {
            QuorumMode::Tmr => Some(QuorumMode::DmrReexec),
            QuorumMode::DmrReexec => Some(QuorumMode::Simplex),
            QuorumMode::Simplex => None,
        }
    }

    /// The next rung *up* the ladder, or `None` above TMR. In-field
    /// health managers climb back up when trouble is observed, spending
    /// lanes for assurance; the inverse of [`QuorumMode::degrade`].
    #[must_use]
    pub fn promote(self) -> Option<QuorumMode> {
        match self {
            QuorumMode::Tmr => None,
            QuorumMode::DmrReexec => Some(QuorumMode::Tmr),
            QuorumMode::Simplex => Some(QuorumMode::DmrReexec),
        }
    }
}

impl core::fmt::Display for QuorumMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A scheduled group of dies executing one program redundantly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quorum {
    /// The redundancy mode the group runs under.
    pub mode: QuorumMode,
    /// Member dies, healthiest first.
    pub dies: Vec<PoolDie>,
}

impl Quorum {
    /// One armed [`FaultPlane`] per member die, in lane order.
    #[must_use]
    pub fn planes(&self) -> Vec<FaultPlane> {
        self.dies
            .iter()
            .map(|d| FaultPlane::with_faults(d.faults.clone()))
            .collect()
    }

    /// Total defects across the members.
    #[must_use]
    pub fn defects(&self) -> u32 {
        self.dies.iter().map(|d| d.defect_count).sum()
    }
}

/// Whether every pair in `dies ∪ {candidate}` stays site-disjoint.
fn compatible(dies: &[&PoolDie], candidate: &PoolDie) -> bool {
    dies.iter().all(|d| d.disjoint_with(candidate))
}

/// Partition the pool into quorums, descending the degradation ladder
/// as material runs out.
///
/// Dies are considered healthiest (fewest defects) first; id order
/// breaks ties, so the schedule is a pure function of the pool. Each
/// TMR triple and DMR pair is pairwise fault-site-disjoint — dies whose
/// defects overlap are never grouped, because two lanes stuck on the
/// same bit can outvote a healthy third.
#[must_use]
pub fn compose(pool: &SalvagePool) -> Vec<Quorum> {
    let mut dies = pool.dies().to_vec();
    dies.sort_by_key(|d| (d.defect_count, d.id));
    compose_sorted(dies)
}

/// [`compose`], but ranked by the static vulnerability report of the
/// program the quorums will run: dies are considered *live-healthiest*
/// first — fewest defects the analyzer could not prove masked for this
/// program, raw defect count and id breaking ties. A die whose stuck
/// bits all land on provably-dead state behaves exactly like a clean
/// die for this program, so it anchors a quorum instead of being
/// buried under nominally-cleaner material.
///
/// The disjointness rule is unchanged (it protects the vote even if
/// the analysis were wrong about a site), so `compose_ranked` only
/// re-orders which dies anchor quorums — it never groups overlapping
/// dies.
#[must_use]
pub fn compose_ranked(pool: &SalvagePool, report: &flexcheck::vuln::VulnReport) -> Vec<Quorum> {
    let mut dies = pool.dies().to_vec();
    dies.sort_by_key(|d| {
        let live = d
            .faults
            .iter()
            .filter(|f| !report.is_masked_fault(f))
            .count();
        (live, d.defect_count, d.id)
    });
    compose_sorted(dies)
}

/// The greedy ladder descent over an already-ranked die list.
fn compose_sorted(mut dies: Vec<PoolDie>) -> Vec<Quorum> {
    let mut quorums = Vec::new();
    while !dies.is_empty() {
        let chosen = pick_triple(&dies)
            .or_else(|| pick_pair(&dies))
            .unwrap_or(vec![0]);
        let mode = match chosen.len() {
            3 => QuorumMode::Tmr,
            2 => QuorumMode::DmrReexec,
            _ => QuorumMode::Simplex,
        };
        // remove back-to-front so earlier indices stay valid
        let mut members: Vec<PoolDie> = Vec::with_capacity(chosen.len());
        for &index in chosen.iter().rev() {
            members.push(dies.remove(index));
        }
        members.reverse();
        quorums.push(Quorum {
            mode,
            dies: members,
        });
    }
    quorums
}

/// First (seed-anchored) pairwise-disjoint triple, healthiest first.
fn pick_triple(dies: &[PoolDie]) -> Option<Vec<usize>> {
    if dies.len() < 3 {
        return None;
    }
    let seed = &dies[0];
    for j in 1..dies.len() {
        if !compatible(&[seed], &dies[j]) {
            continue;
        }
        for k in j + 1..dies.len() {
            if compatible(&[seed, &dies[j]], &dies[k]) {
                return Some(vec![0, j, k]);
            }
        }
    }
    None
}

/// First disjoint pair anchored on the healthiest remaining die.
fn pick_pair(dies: &[PoolDie]) -> Option<Vec<usize>> {
    if dies.len() < 2 {
        return None;
    }
    let seed = &dies[0];
    (1..dies.len())
        .find(|&j| compatible(&[seed], &dies[j]))
        .map(|j| vec![0, j])
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexicore::isa::Dialect;
    use flexicore::sim::{ArchFault, FaultKind, StateElement};

    fn die(id: usize, sites: &[(StateElement, u8)]) -> PoolDie {
        PoolDie {
            id,
            faults: sites
                .iter()
                .map(|&(element, bit)| ArchFault {
                    element,
                    bit,
                    kind: FaultKind::StuckAt0,
                })
                .collect(),
            defect_count: sites.len() as u32,
        }
    }

    fn pool_of(dies: Vec<PoolDie>) -> SalvagePool {
        SalvagePool::new(Dialect::Fc4, dies)
    }

    #[test]
    fn ladder_order_and_lane_counts() {
        assert_eq!(QuorumMode::Tmr.degrade(), Some(QuorumMode::DmrReexec));
        assert_eq!(QuorumMode::DmrReexec.degrade(), Some(QuorumMode::Simplex));
        assert_eq!(QuorumMode::Simplex.degrade(), None);
        // promote is degrade's exact inverse
        assert_eq!(QuorumMode::Tmr.promote(), None);
        assert_eq!(QuorumMode::DmrReexec.promote(), Some(QuorumMode::Tmr));
        assert_eq!(QuorumMode::Simplex.promote(), Some(QuorumMode::DmrReexec));
        for mode in [QuorumMode::Tmr, QuorumMode::DmrReexec, QuorumMode::Simplex] {
            if let Some(down) = mode.degrade() {
                assert_eq!(down.promote(), Some(mode));
            }
        }
        assert_eq!(QuorumMode::Tmr.lanes(), 3);
        assert_eq!(QuorumMode::from_name("TMR"), Some(QuorumMode::Tmr));
        assert_eq!(QuorumMode::from_name("bogus"), None);
    }

    #[test]
    fn disjoint_dies_form_tmr_triples() {
        let pool = pool_of(vec![
            PoolDie::clean(0),
            die(1, &[(StateElement::Acc, 0)]),
            die(2, &[(StateElement::Acc, 1)]),
            die(3, &[(StateElement::Pc, 0)]),
            die(4, &[(StateElement::Pc, 1)]),
            die(5, &[(StateElement::Mem(0), 2)]),
        ]);
        let quorums = compose(&pool);
        assert_eq!(quorums.len(), 2);
        assert!(quorums.iter().all(|q| q.mode == QuorumMode::Tmr));
        for q in &quorums {
            for a in 0..q.dies.len() {
                for b in a + 1..q.dies.len() {
                    assert!(q.dies[a].disjoint_with(&q.dies[b]));
                }
            }
        }
    }

    #[test]
    fn overlapping_defects_force_degradation() {
        // every die shares the Acc.0 site with every other: no pair is
        // disjoint, so the whole pool degrades to simplex singles
        let pool = pool_of(vec![
            die(0, &[(StateElement::Acc, 0)]),
            die(1, &[(StateElement::Acc, 0)]),
            die(2, &[(StateElement::Acc, 0)]),
        ]);
        let quorums = compose(&pool);
        assert_eq!(quorums.len(), 3);
        assert!(quorums.iter().all(|q| q.mode == QuorumMode::Simplex));
    }

    #[test]
    fn shrinking_pool_descends_the_ladder() {
        // 3 dies -> one TMR; 2 -> one DMR; 1 -> simplex
        let fresh = |n: usize| pool_of((0..n).map(PoolDie::clean).collect());
        assert_eq!(compose(&fresh(3))[0].mode, QuorumMode::Tmr);
        assert_eq!(compose(&fresh(2))[0].mode, QuorumMode::DmrReexec);
        assert_eq!(compose(&fresh(1))[0].mode, QuorumMode::Simplex);
        assert!(compose(&fresh(0)).is_empty());
    }

    #[test]
    fn leftover_after_triples_becomes_a_pair() {
        let pool = pool_of(vec![
            PoolDie::clean(0),
            PoolDie::clean(1),
            PoolDie::clean(2),
            die(3, &[(StateElement::Pc, 3)]),
            die(4, &[(StateElement::Pc, 4)]),
        ]);
        let quorums = compose(&pool);
        let modes: Vec<QuorumMode> = quorums.iter().map(|q| q.mode).collect();
        assert_eq!(modes, vec![QuorumMode::Tmr, QuorumMode::DmrReexec]);
    }

    #[test]
    fn schedule_is_deterministic_over_synthetic_pools() {
        let pool = SalvagePool::synthetic(Dialect::Fc4, 20, 9, 3);
        let a = compose(&pool);
        let b = compose(&pool);
        assert_eq!(a, b);
        // every die appears exactly once
        let mut ids: Vec<usize> = a.iter().flat_map(|q| q.dies.iter().map(|d| d.id)).collect();
        ids.sort_unstable();
        let mut expected: Vec<usize> = pool.dies().iter().map(|d| d.id).collect();
        expected.sort_unstable();
        assert_eq!(ids, expected);
    }

    #[test]
    fn ranked_compose_prefers_dies_whose_defects_are_masked() {
        use flexicore::Program;

        // nandi 0 ; br self: memory, IO and the pending latch are all
        // provably dead, so a die riddled with memory stuck-ats is
        // live-clean for this program while a single Acc defect is not
        let target = flexasm::Target::fc4();
        let program = Program::from_bytes(vec![0b0101_0000, 0b1000_0001]);
        let report = flexcheck::vuln::analyze(&target, &program);

        let masked_heavy = die(
            7,
            &[
                (StateElement::Mem(2), 0),
                (StateElement::Mem(3), 1),
                (StateElement::Mem(4), 2),
            ],
        );
        let live_light = die(1, &[(StateElement::Acc, 0)]);
        let pool = pool_of(vec![live_light.clone(), masked_heavy.clone()]);

        // raw ranking anchors on the fewest-defect die ...
        assert_eq!(compose(&pool)[0].dies[0].id, live_light.id);
        // ... vulnerability ranking anchors on the live-clean one
        let ranked = compose_ranked(&pool, &report);
        assert_eq!(ranked[0].dies[0].id, masked_heavy.id);
        // same membership either way, just re-ordered
        let mut ids: Vec<usize> = ranked
            .iter()
            .flat_map(|q| q.dies.iter().map(|d| d.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 7]);
    }

    #[test]
    fn quorum_planes_carry_the_die_faults() {
        let q = Quorum {
            mode: QuorumMode::DmrReexec,
            dies: vec![PoolDie::clean(0), die(1, &[(StateElement::Acc, 2)])],
        };
        let planes = q.planes();
        assert_eq!(planes.len(), 2);
        assert!(planes[0].is_empty());
        assert_eq!(planes[1].faults().len(), 1);
        assert_eq!(q.defects(), 1);
    }
}
