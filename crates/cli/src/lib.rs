//! # flexcli
//!
//! Implementation of the `flexi` command-line tool. The binary is a thin
//! wrapper; all command logic lives here and returns strings, so every
//! command is unit-testable.
//!
//! ```text
//! flexi asm     <file.s> [--target T] [--features F,..] [--out prog.bin] [--listing]
//! flexi check   <file.s> [--target T] [--features F,..] [--deny info|warning|error]
//!               | --kernels [--target T] | --campaign N [--seed S]
//! flexi disasm  <prog.bin> [--target T]
//! flexi run     <file.s> [--target T] [--features F,..] [--input 1,2,..]
//!                        [--max-cycles N] [--trace]
//! flexi cosim   <file.s> [--target fc4|fc8] [--input N] [--cycles N]
//! flexi wave    <file.s> [--target fc4|fc8] [--input N] [--cycles N]
//!                        [--out trace.vcd]
//! flexi kernels [--target T] [--features F,..]
//! flexi kernel  <name> --input 1,2,.. [--target T]
//! flexi wafer   [--design fc4|fc8|fc4plus] [--voltage V] [--seed N]
//!               [--cycles N] [--map errors|current|csv] [--threads N]
//! flexi inject  [--dialect fc4|fc8|xacc|xls] [--kernel K] [--faults N]
//!               [--seed N] [--budget N] [--mode stuck|transient|mixed]
//!               [--threads N] [--shards N]
//! flexi resilient [--dialect fc4|fc8|xacc|xls] [--kernel K] [--faults N]
//!               [--seed N] [--budget N] [--mode stuck|transient|mixed]
//!               [--quorum tmr|dmr|simplex] [--window N] [--interval N]
//!               [--retries N] [--spares N] [--threads N] [--shards N]
//! flexi link    [--dialect fc4|fc8|xacc|xls] [--kernel K] [--rates R1,R2,..]
//!               [--ber R1,R2,..] [--seed N] [--upsets N] [--interval N]
//!               [--scrub N] [--retries N] [--budget N] [--signed]
//!               [--threads N] [--shards N]
//! flexi attack  [--dialect fc4|fc8|xacc|xls] [--rates R1,R2,..] [--reps N]
//!               [--trials N] [--seed N] [--retries N] [--threads N] [--shards N]
//! flexi mission [--dialect fc4|fc8|xacc|xls] [--kernel K] [--trials N]
//!               [--ticks N] [--seed N] [--spares N] [--budget N]
//!               [--deny info|warning|error] [--threads N] [--shards N]
//! flexi dse
//! flexi serve   [--port N] [--host H] [--cache DIR] [--workers N]
//!               [--queue N] [--conns N] [--deadline-ms N]
//! flexi client  <status|drain|asm|check|admit|run|yield|batch> [<file.s>]
//!               --port N [--host H] [--deadline-ms N] [--target T]
//!               [--features F,..] [--deny S] [--input 1,2,..]
//!               [--max-cycles N] [--design D] [--voltage-mv N] [--seed N]
//!               [--cycles N] [--salvage]
//! ```
//!
//! Targets: `fc4` (default), `fc8`, `xacc`, `xls`; `--features` applies to
//! the DSE dialects (`adc,shift,flags,mul,xch,call,2xreg` or `revised`).
//!
//! The campaign commands (`wafer`, `inject`, `resilient`, `link`, `attack`,
//! `mission`)
//! accept `--threads N` worker threads and, where trials shard, `--shards N`
//! work units; every combination replays the single-threaded report
//! bit-for-bit (the seed, not the schedule, owns every draw).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{Args, CliError};

/// Entry point shared by the binary and the tests: dispatch `argv`
/// (without the program name) and return the output text.
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands, malformed flags, file
/// problems, assembly failures, and simulator faults.
pub fn dispatch(argv: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = argv.split_first() else {
        return Ok(commands::usage());
    };
    let mut args = Args::parse(rest)?;
    let out = match command.as_str() {
        "asm" => commands::asm(&mut args)?,
        "check" => commands::check(&mut args)?,
        "disasm" => commands::disasm(&mut args)?,
        "run" => commands::run(&mut args)?,
        "cosim" => commands::cosim(&mut args)?,
        "wave" => commands::wave(&mut args)?,
        "kernels" => commands::kernels(&mut args)?,
        "kernel" => commands::kernel(&mut args)?,
        "wafer" => commands::wafer(&mut args)?,
        "inject" => commands::inject(&mut args)?,
        "resilient" => commands::resilient(&mut args)?,
        "link" => commands::link(&mut args)?,
        "attack" => commands::attack(&mut args)?,
        "mission" => commands::mission(&mut args)?,
        "dse" => commands::dse(&mut args)?,
        "serve" => commands::serve(&mut args)?,
        "client" => commands::client(&mut args)?,
        "help" | "--help" | "-h" => commands::usage(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown command `{other}`; run `flexi help`"
            )))
        }
    };
    args.finish()?;
    Ok(out)
}
