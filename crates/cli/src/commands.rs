//! The `flexi` subcommands. Each returns its output as a `String`.

use crate::args::{Args, CliError};
use flexasm::{Assembler, Target};
use flexicore::exec::AnyCore;
use flexicore::io::{InputPort, OutputPort, RecordingOutput, ScriptedInput};
use flexicore::isa::Dialect;
use flexicore::program::Program;
use flexicore::sim::RunResult;
use std::fmt::Write as _;

/// Build the gate-level netlist for a fabricated dialect, or report that
/// `command` only supports the two taped-out cores.
fn fabricated_netlist(
    command: &str,
    dialect: Dialect,
) -> Result<flexgate::netlist::Netlist, CliError> {
    match dialect {
        Dialect::Fc4 => Ok(flexrtl::build_fc4()),
        Dialect::Fc8 => Ok(flexrtl::build_fc8()),
        other => Err(CliError::Usage(format!(
            "{command} supports the fabricated dialects fc4/fc8, not {other}"
        ))),
    }
}

/// The help text.
#[must_use]
pub fn usage() -> String {
    "\
flexi — FlexiCores toolbox (ISCA 2022 reproduction)

commands:
  asm     <file.s> [--target T] [--features F,..] [--out prog.bin] [--listing]
  check   <file.s> [--target T] [--features F,..] [--deny info|warning|error]
          [--vuln] | --kernels [--target T] [--vuln] | --campaign N [--seed S]
  disasm  <prog.bin> [--target T]
  run     <file.s> [--target T] [--features F,..] [--input 1,2,..]
                   [--max-cycles N] [--trace]
  cosim   <file.s> [--target fc4|fc8] [--input N] [--cycles N]
  kernels [--target T] [--features F,..]
  kernel  <name> --input 1,2,.. [--target T] [--features F,..]
  wave    <file.s> [--target fc4|fc8] [--input N] [--cycles N] [--out trace.vcd]
  wafer   [--design fc4|fc8|fc4plus] [--voltage V] [--seed N] [--cycles N]
          [--map errors|current|csv] [--threads N]
  inject  [--dialect fc4|fc8|xacc|xls] [--kernel K] [--faults N] [--seed N]
          [--budget N] [--mode stuck|transient|mixed] [--threads N] [--shards N]
  resilient [--dialect fc4|fc8|xacc|xls] [--kernel K] [--faults N] [--seed N]
          [--budget N] [--mode stuck|transient|mixed]
          [--quorum tmr|dmr|simplex] [--window N] [--interval N]
          [--retries N] [--spares N] [--threads N] [--shards N]
  link    [--dialect fc4|fc8|xacc|xls] [--kernel K] [--rates R1,R2,..]
          [--ber R1,R2,..] [--seed N] [--upsets N] [--interval N] [--scrub N]
          [--retries N] [--budget N] [--signed] [--threads N] [--shards N]
  attack  [--dialect fc4|fc8|xacc|xls] [--rates R1,R2,..] [--reps N]
          [--trials N] [--seed N] [--retries N] [--threads N] [--shards N]
  mission [--dialect fc4|fc8|xacc|xls] [--kernel K] [--trials N] [--ticks N]
          [--seed N] [--spares N] [--budget N] [--deny info|warning|error]
          [--threads N] [--shards N]
  dse
  serve   [--port N] [--host H] [--cache DIR] [--workers N] [--queue N]
          [--conns N] [--deadline-ms N]
  client  <status|drain|asm|check|admit|run|yield|batch> [<file.s>] --port N
          [--host H] [--deadline-ms N] [--target T] [--features F,..]
          [--deny S] [--input 1,2,..] [--max-cycles N] [--design D]
          [--voltage-mv N] [--seed N] [--cycles N] [--salvage]
  help

targets: fc4 (default), fc8, xacc, xls
features (xacc/xls): adc, shift, flags, mul, xch, call, 2xreg — or `revised`
campaign scaling: --threads N workers, --shards N work units; any combination
replays the single-threaded report bit-for-bit
"
    .to_string()
}

/// `flexi asm` — assemble a source file.
///
/// # Errors
///
/// Usage, IO or assembly errors.
pub fn asm(args: &mut Args) -> Result<String, CliError> {
    let path = args.positional(0, "source file").map(str::to_string)?;
    let target = args.target()?;
    let source = std::fs::read_to_string(&path)?;
    let assembly = Assembler::new(target).assemble(&source)?;
    let mut out = format!(
        "{path}: {} instructions, {} bytes ({} bits) for {} [{}]\n",
        assembly.static_instructions(),
        assembly.code_bytes(),
        assembly.code_bits(),
        target.dialect,
        target.features,
    );
    if args.has("listing") {
        out.push_str(&assembly.listing_text());
    }
    // surface analyzer warnings at assembly time (errors don't block
    // `asm` — `flexi check` is the gate)
    let report = flexcheck::check_assembly(&assembly);
    for finding in report.at_least(flexcheck::Severity::Warning) {
        let _ = writeln!(out, "{finding}");
    }
    if let Some(dest) = args.flag("out") {
        std::fs::write(&dest, assembly.program().as_bytes())?;
        let _ = writeln!(out, "wrote {} bytes to {dest}", assembly.program().len());
    }
    Ok(out)
}

/// `flexi check` — static analysis over a source file, the kernel
/// suite, or a differential soundness campaign.
///
/// # Errors
///
/// Usage, IO or assembly errors; [`CliError::Run`] (non-zero exit) when
/// findings at or above the `--deny` severity exist, or when a campaign
/// observes an unsound verdict.
pub fn check(args: &mut Args) -> Result<String, CliError> {
    let deny = match args.flag("deny") {
        None => flexcheck::Severity::Error,
        Some(name) => flexcheck::Severity::parse(&name).ok_or_else(|| {
            CliError::Usage(format!("unknown severity `{name}` (info, warning, error)"))
        })?,
    };

    if let Some(n) = args.flag("campaign") {
        let programs: usize = n
            .parse()
            .map_err(|_| CliError::Usage(format!("bad campaign size `{n}`")))?;
        let seed = args.num("seed", 0xF1EC5u64)?;
        let config = flexcheck::soundness::CampaignConfig {
            seed,
            programs_per_dialect: programs,
            budget: 4_096,
        };
        let stats = flexcheck::soundness::run_campaign(&config);
        let mut out = format!("soundness campaign (seed {seed:#x}): {}\n", stats.summary());
        if stats.violations.is_empty() {
            out.push_str("no unsound verdicts\n");
            return Ok(out);
        }
        for v in &stats.violations {
            let _ = writeln!(out, "UNSOUND: {v}");
        }
        return Err(CliError::Run(format!(
            "{} unsound verdict(s)",
            stats.violations.len()
        )));
    }

    let target = args.target()?;
    let vuln = args.has("vuln");
    if args.has("kernels") {
        let mut out = String::new();
        let mut worst: Option<String> = None;
        let mut digest = 0xCBF2_9CE4_8422_2325u64;
        for kernel in flexkernels::Kernel::ALL {
            if !kernel.supports(target.dialect) {
                continue;
            }
            let assembly = Assembler::new(target).assemble(&kernel.source_for(target.dialect))?;
            if vuln {
                let report = flexcheck::vuln::analyze_assembly(&assembly);
                let _ = writeln!(
                    out,
                    "{kernel}: {}/{} site(s) provably masked ({:.1}%), {} polarity-masked bit(s)",
                    report.masked_sites(),
                    report.total_sites(),
                    report.masked_fraction() * 100.0,
                    report.polarity_masked_bits(),
                );
                digest ^= report.digest();
                digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
                continue;
            }
            let report = flexcheck::check_assembly(&assembly);
            let _ = writeln!(
                out,
                "{kernel}: {} reachable instruction(s), {} finding(s)",
                report.reachable_instructions,
                report.findings.len()
            );
            for finding in &report.findings {
                let _ = writeln!(out, "  {finding}");
            }
            if report.has_at_least(deny) && worst.is_none() {
                worst = Some(kernel.to_string());
            }
        }
        if vuln {
            let _ = writeln!(out, "suite vuln digest {digest:#018x}");
        }
        if let Some(kernel) = worst {
            return Err(CliError::Run(format!(
                "kernel `{kernel}` has findings at or above `{deny}` severity"
            )));
        }
        return Ok(out);
    }

    let path = args.positional(0, "source file").map(str::to_string)?;
    let source = std::fs::read_to_string(&path)?;
    let assembly = Assembler::new(target).assemble(&source)?;
    if vuln {
        let report = flexcheck::vuln::analyze_assembly(&assembly);
        return Ok(format!("{path}: {}", report.render()));
    }
    let report = flexcheck::check_assembly(&assembly);
    let out = format!("{path}: {}", report.render());
    if report.has_at_least(deny) {
        return Err(CliError::Run(format!(
            "`{path}` has findings at or above `{deny}` severity\n{out}"
        )));
    }
    Ok(out)
}

/// `flexi disasm` — disassemble a binary image.
///
/// # Errors
///
/// Usage or IO errors.
pub fn disasm(args: &mut Args) -> Result<String, CliError> {
    let path = args.positional(0, "binary file").map(str::to_string)?;
    let target = args.target()?;
    let bytes = std::fs::read(&path)?;
    let program = Program::from_bytes(bytes);
    Ok(flexasm::disasm::disassemble_text(target.dialect, &program))
}

/// `flexi run` — assemble and execute on the matching simulator.
///
/// # Errors
///
/// Usage, IO, assembly or simulation errors.
pub fn run(args: &mut Args) -> Result<String, CliError> {
    let path = args.positional(0, "source file").map(str::to_string)?;
    let target = args.target()?;
    let inputs = args.u8_list("input")?;
    let max_cycles = args.num("max-cycles", 1_000_000u64)?;
    let trace = args.has("trace");

    let source = std::fs::read_to_string(&path)?;
    let assembly = Assembler::new(target).assemble(&source)?;
    let program = assembly.into_program();
    let mut input = ScriptedInput::new(inputs);
    let mut output = RecordingOutput::new();
    let (result, trace_text) = execute(target, program, &mut input, &mut output, max_cycles, trace)
        .map_err(|e| CliError::Run(e.to_string()))?;

    let mut out = String::new();
    if trace {
        out.push_str(&trace_text);
    }
    let _ = writeln!(
        out,
        "{}: {} instructions, {} cycles, {} taken branches",
        if result.halted() {
            "halted"
        } else {
            "cycle limit"
        },
        result.instructions,
        result.cycles,
        result.taken_branches,
    );
    let values: Vec<String> = output.values().iter().map(|v| format!("{v:#x}")).collect();
    let _ = writeln!(out, "output port: [{}]", values.join(", "));
    Ok(out)
}

/// `flexi cosim` — run a program on both the ISA model and the gate-level
/// netlist and report equivalence.
///
/// # Errors
///
/// Usage, IO, or assembly errors; a mismatch is reported in the output,
/// not as an error.
pub fn cosim(args: &mut Args) -> Result<String, CliError> {
    let path = args.positional(0, "source file").map(str::to_string)?;
    let target = args.target()?;
    let input = args.num("input", 0u8)?;
    let cycles = args.num("cycles", 10_000u64)?;
    let source = std::fs::read_to_string(&path)?;
    let assembly = Assembler::new(target).assemble(&source)?;
    let mut fixed = flexicore::io::ConstInput::new(input);
    let netlist = fabricated_netlist("cosim", target.dialect)?;
    let result = if target.dialect == Dialect::Fc4 {
        flexrtl::cosim::cosim_fc4(&netlist, assembly.program(), &mut fixed, cycles)
    } else {
        flexrtl::cosim::cosim_fc8(&netlist, assembly.program(), &mut fixed, cycles)
    };
    Ok(if result.is_equivalent() {
        format!(
            "equivalent: RTL matched the ISA model on all {} cycles\n",
            result.cycles
        )
    } else {
        format!("MISMATCH: {:?}\n", result.mismatches)
    })
}

/// `flexi wave` — run a program on the gate-level netlist and dump a VCD
/// waveform of its ports.
///
/// # Errors
///
/// Usage, IO or assembly errors.
pub fn wave(args: &mut Args) -> Result<String, CliError> {
    let path = args.positional(0, "source file").map(str::to_string)?;
    let target = args.target()?;
    let input = args.num("input", 0u8)?;
    let cycles = args.num("cycles", 500u64)?;
    let dest = args.flag("out").unwrap_or_else(|| "trace.vcd".to_string());

    let source = std::fs::read_to_string(&path)?;
    let assembly = Assembler::new(target).assemble(&source)?;
    let netlist = fabricated_netlist("wave", target.dialect)?;
    let mut sim = flexgate::sim::BatchSim::new(&netlist)
        .map_err(|e| CliError::Run(format!("netlist rejected by the gate simulator: {e}")))?;
    sim.reset();
    let mut vcd = flexgate::vcd::VcdRecorder::new(&netlist, &["instr", "iport", "pc", "oport"]);
    let program = assembly.program();
    let mut sampled = 0u64;
    for _ in 0..cycles {
        let pc = sim.output_value("pc", 0) as u32;
        let Some(byte) = program.fetch(pc) else { break };
        sim.set_input_value("instr", u64::from(byte), !0);
        sim.set_input_value("iport", u64::from(input), !0);
        sim.clock();
        sim.settle();
        vcd.sample(&sim);
        sampled += 1;
    }
    std::fs::write(&dest, vcd.render("flexicore"))?;
    Ok(format!(
        "wrote {sampled} cycles of instr/iport/pc/oport to {dest}
"
    ))
}

/// `flexi kernels` — list the benchmark kernels for a target.
///
/// # Errors
///
/// Usage or assembly errors.
pub fn kernels(args: &mut Args) -> Result<String, CliError> {
    let target = args.target()?;
    let mut out = format!(
        "{:<15} {:>8} {:>8} {:>8}  inputs\n",
        "kernel", "insns", "bytes", "paper"
    );
    for k in flexkernels::Kernel::ALL {
        let assembly = k.assemble(target)?;
        let _ = writeln!(
            out,
            "{:<15} {:>8} {:>8} {:>8}  {}",
            k.name(),
            assembly.static_instructions(),
            assembly.code_bytes(),
            k.paper_static_instructions(),
            k.inputs_per_run(),
        );
    }
    Ok(out)
}

/// `flexi kernel <name>` — run one kernel with explicit inputs, verified
/// against its oracle.
///
/// # Errors
///
/// Usage errors, or [`CliError::Run`] when the kernel fails verification.
pub fn kernel(args: &mut Args) -> Result<String, CliError> {
    let name = args.positional(0, "kernel name").map(str::to_string)?;
    let target = args.target()?;
    let inputs = args.u8_list("input")?;
    let kernel = flexkernels::Kernel::ALL
        .into_iter()
        .find(|k| {
            k.name().eq_ignore_ascii_case(&name)
                || k.name().to_lowercase().replace([' ', '-'], "") == name.to_lowercase()
        })
        .ok_or_else(|| {
            CliError::Usage(format!(
                "unknown kernel `{name}`; see `flexi kernels` for the list"
            ))
        })?;
    if inputs.len() < kernel.inputs_per_run() {
        return Err(CliError::Usage(format!(
            "{} needs {} input values (--input), got {}",
            kernel.name(),
            kernel.inputs_per_run(),
            inputs.len()
        )));
    }
    let run = kernel
        .run(target, &inputs)
        .map_err(|e| CliError::Run(e.to_string()))?;
    let payload: Vec<String> = run.outputs.iter().map(|v| format!("{v:#x}")).collect();
    Ok(format!(
        "{}: verified against oracle\noutputs: [{}]\n{} instructions, {} cycles\n",
        kernel.name(),
        payload.join(", "),
        run.result.instructions,
        run.result.cycles,
    ))
}

/// `flexi wafer` — fabricate and test a virtual wafer.
///
/// # Errors
///
/// Usage errors.
pub fn wafer(args: &mut Args) -> Result<String, CliError> {
    use flexfab::wafer_run::{CoreDesign, WaferExperiment};
    let design_name = args.flag("design").unwrap_or_else(|| "fc4".to_string());
    let design = CoreDesign::parse(&design_name).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown design `{design_name}` (fc4, fc8, fc4plus)"
        ))
    })?;
    let voltage = args.num("voltage", 4.5f64)?;
    let seed = args.num("seed", flexfab::calibration::seeds::YIELD)?;
    let cycles = args.num("cycles", 10_000u64)?;
    let map = args.flag("map").unwrap_or_else(|| "errors".to_string());
    let threads = args.positive("threads", 1)?;

    let exp = WaferExperiment::new(design, seed);
    let run = exp
        .run_with(voltage, cycles, threads)
        .map_err(|e| CliError::Run(e.to_string()))?;
    let mut out = format!(
        "{} wafer, seed {seed:#x}, {} dies, tested at {voltage} V with {} vectors/die\n",
        design.name(),
        exp.layout().die_count(),
        cycles
    );
    match map.as_str() {
        "errors" => out.push_str(&flexfab::wafermap::error_map(&run)),
        "current" => out.push_str(&flexfab::wafermap::current_map(&run)),
        "csv" => out.push_str(&flexfab::wafermap::to_csv(&run)),
        other => {
            return Err(CliError::Usage(format!(
                "unknown map `{other}` (errors, current, csv)"
            )))
        }
    }
    let stats = run.current_stats();
    let _ = writeln!(
        out,
        "yield: {:.0}% full / {:.0}% inclusion; current mean {:.2} mA, RSD {:.1}%",
        run.yield_full() * 100.0,
        run.yield_inclusion() * 100.0,
        stats.mean_ma,
        stats.rsd * 100.0,
    );
    Ok(out)
}

/// `flexi inject` — run a deterministic fault-injection campaign
/// against one kernel on one dialect and print the classification
/// table (Masked / SDC / Crash / Hang) plus the per-element
/// vulnerability ranking.
///
/// # Errors
///
/// Usage errors, or [`CliError::Run`] if the campaign itself fails
/// (the kernel does not assemble or the clean reference run fails).
pub fn inject(args: &mut Args) -> Result<String, CliError> {
    use flexinject::{CampaignConfig, FaultModel};

    let dialect = args.flag("dialect").unwrap_or_else(|| "fc4".to_string());
    let target = flexinject::target_from_name(&dialect).ok_or_else(|| {
        CliError::Usage(format!("unknown dialect `{dialect}` (fc4, fc8, xacc, xls)"))
    })?;
    let kernel_name = args.flag("kernel").unwrap_or_else(|| "parity".to_string());
    let kernel = flexinject::kernel_from_name(&kernel_name).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown kernel `{kernel_name}`; run `flexi kernels` for the list"
        ))
    })?;
    if !kernel.supports(target.dialect) {
        return Err(CliError::Usage(format!(
            "kernel `{}` does not fit the {} dialect (§3.3 capacity trade-off)",
            kernel.name(),
            target.dialect,
        )));
    }
    let trials = args.num("faults", 32usize)?;
    let seed = args.num("seed", 0xF417u64)?;
    let budget = args.num("budget", flexkernels::harness::CYCLE_BUDGET)?;
    let mode = args.flag("mode").unwrap_or_else(|| "stuck".to_string());
    let model = FaultModel::from_name(&mode).ok_or_else(|| {
        CliError::Usage(format!("unknown mode `{mode}` (stuck, transient, mixed)"))
    })?;

    let mut config = CampaignConfig::new(target, kernel, trials, seed);
    config.budget = budget;
    config.model = model;
    config.threads = args.positive("threads", 1)?;
    config.shards = args.positive("shards", 1)?;
    let result = flexinject::run_campaign(config).map_err(|e| CliError::Run(e.to_string()))?;
    Ok(flexinject::report::render_campaign(&result))
}

/// `flexi resilient` — run a seeded fault-injection campaign through
/// the resilient executor and print the per-trial recovery table
/// (Masked / Recovered / Unrecoverable) plus the tally.
///
/// `--quorum` picks the rung of the degradation ladder: `tmr` votes
/// three lanes per output window, `dmr` re-executes checkpoint segments
/// on divergence, `simplex` only catches crashes and hangs.
///
/// # Errors
///
/// Usage errors, or [`CliError::Run`] if the campaign itself fails
/// (the kernel does not assemble or the clean reference run fails).
pub fn resilient(args: &mut Args) -> Result<String, CliError> {
    use flexinject::FaultModel;
    use flexresilient::{QuorumMode, RecoveryCampaignConfig};

    let dialect = args.flag("dialect").unwrap_or_else(|| "fc4".to_string());
    let target = flexinject::target_from_name(&dialect).ok_or_else(|| {
        CliError::Usage(format!("unknown dialect `{dialect}` (fc4, fc8, xacc, xls)"))
    })?;
    let kernel_name = args.flag("kernel").unwrap_or_else(|| "parity".to_string());
    let kernel = flexinject::kernel_from_name(&kernel_name).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown kernel `{kernel_name}`; run `flexi kernels` for the list"
        ))
    })?;
    if !kernel.supports(target.dialect) {
        return Err(CliError::Usage(format!(
            "kernel `{}` does not fit the {} dialect (§3.3 capacity trade-off)",
            kernel.name(),
            target.dialect,
        )));
    }
    let mode = args.flag("mode").unwrap_or_else(|| "stuck".to_string());
    let model = FaultModel::from_name(&mode).ok_or_else(|| {
        CliError::Usage(format!("unknown mode `{mode}` (stuck, transient, mixed)"))
    })?;
    let quorum_name = args.flag("quorum").unwrap_or_else(|| "tmr".to_string());
    let quorum = QuorumMode::from_name(&quorum_name).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown quorum `{quorum_name}` (tmr, dmr, simplex)"
        ))
    })?;

    let mut config = RecoveryCampaignConfig::new(
        target,
        kernel,
        args.num("faults", 32usize)?,
        args.num("seed", 0xF417u64)?,
    );
    config.budget = args.num("budget", flexkernels::harness::CYCLE_BUDGET)?;
    config.model = model;
    config.mode = quorum;
    config.window = args.num("window", config.window)?;
    config.interval = args.num("interval", config.interval)?;
    config.max_retries = args.num("retries", config.max_retries)?;
    config.spares = args.num("spares", config.spares)?;
    config.threads = args.positive("threads", 1)?;
    config.shards = args.positive("shards", 1)?;

    let campaign =
        flexresilient::run_recovery_campaign(config).map_err(|e| CliError::Run(e.to_string()))?;
    Ok(flexresilient::render_recovery_campaign(&campaign))
}

/// `flexi link` — soak the field-reprogramming link: program every
/// kernel through a noisy channel across a bit-error-rate sweep, upset
/// the ECC store while it executes, and print the per-trial
/// masked / recovered / unrecoverable table.
///
/// # Errors
///
/// Usage errors, or [`CliError::Run`] if a configured kernel does not
/// assemble for the dialect.
pub fn link(args: &mut Args) -> Result<String, CliError> {
    use flexlink::soak::{run_soak, SoakConfig};

    let dialect = args.flag("dialect").unwrap_or_else(|| "fc4".to_string());
    let target = flexinject::target_from_name(&dialect).ok_or_else(|| {
        CliError::Usage(format!("unknown dialect `{dialect}` (fc4, fc8, xacc, xls)"))
    })?;
    let mut rates = args.f64_list("rates")?;
    rates.extend(args.f64_list("ber")?);
    if rates.is_empty() {
        rates = vec![0.0, 1e-4, 5e-4];
    }
    if let Some(bad) = rates.iter().find(|r| !(0.0..=1.0).contains(*r)) {
        return Err(CliError::Usage(format!(
            "bit-error rate {bad} outside [0, 1]"
        )));
    }
    let signed = args.has("signed");
    let seed = args.num("seed", 0x11FEu64)?;
    let mut config = SoakConfig::new(target, rates, seed);
    if let Some(kernel_name) = args.flag("kernel") {
        let kernel = flexinject::kernel_from_name(&kernel_name).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown kernel `{kernel_name}`; run `flexi kernels` for the list"
            ))
        })?;
        if !kernel.supports(target.dialect) {
            return Err(CliError::Usage(format!(
                "kernel `{}` does not fit the {} dialect (§3.3 capacity trade-off)",
                kernel.name(),
                target.dialect,
            )));
        }
        config.kernels = vec![kernel];
    }
    config.upsets_per_trial = args.num("upsets", config.upsets_per_trial)?;
    config.exec.interval = args.num("interval", config.exec.interval)?;
    config.exec.scrub_interval = args.num("scrub", config.exec.scrub_interval)?;
    config.exec.budget = args.num("budget", config.exec.budget)?;
    config.link.max_retries = args.num("retries", config.link.max_retries)?;
    config.threads = args.positive("threads", 1)?;
    config.shards = args.positive("shards", 1)?;

    if signed {
        return link_signed(&config);
    }
    let campaign = run_soak(config).map_err(|e| CliError::Run(e.to_string()))?;
    Ok(flexlink::report::render(&campaign))
}

/// `flexi link --signed` — drive one authenticated A/B update per
/// (kernel, error-rate) cell and report each device's verdict.
fn link_signed(config: &flexlink::SoakConfig) -> Result<String, CliError> {
    use flexicore::sim::PowerCut;
    use flexkernels::harness::PreparedKernel;
    use flexlink::attack::DEVICE_KEY;

    let mut out = format!(
        "signed update: {:?} · {} kernels × {} error rates · seed {}\n\n",
        config.target.dialect,
        config.kernels.len(),
        config.error_rates.len(),
        config.seed,
    );
    let _ = writeln!(
        out,
        "{:<14} {:>9} {:>6} {:>6}  status",
        "kernel", "ber", "from", "to"
    );
    let mut applied = 0usize;
    for (k, &kernel) in config.kernels.iter().enumerate() {
        let prepared =
            PreparedKernel::new(kernel, config.target).map_err(|e| CliError::Run(e.to_string()))?;
        let image = prepared.program().as_bytes().to_vec();
        for (r, &ber) in config.error_rates.iter().enumerate() {
            let cell = ((k as u64) << 32) | r as u64;
            let trial_seed = config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(cell);
            let mut device = flexlink::Device::new(config.target, image.len(), DEVICE_KEY)
                .with_link(config.link);
            device
                .provision(&flexlink::sign_update(
                    config.target.dialect,
                    &image,
                    1,
                    DEVICE_KEY,
                ))
                .map_err(|e| CliError::Run(format!("provisioning failed: {e}")))?;
            let from = device.active_version().unwrap_or(0);
            let next = flexlink::sign_update(config.target.dialect, &image, 2, DEVICE_KEY);
            let mut channel = flexlink::NoisyChannel::new(
                flexlink::ChannelConfig::with_bit_error_rate(ber),
                trial_seed,
            );
            let report =
                device.apply_update(&next.wire_bytes(), &mut channel, &mut PowerCut::never());
            let to = device.active_version().unwrap_or(0);
            if matches!(report.status, flexlink::UpdateStatus::Applied { .. }) {
                applied += 1;
            }
            let _ = writeln!(
                out,
                "{:<14} {:>9.1e} {:>6} {:>6}  {}",
                kernel.name(),
                ber,
                from,
                to,
                report.status
            );
        }
    }
    let _ = writeln!(
        out,
        "\napplied {applied}/{} updates",
        config.kernels.len() * config.error_rates.len()
    );
    Ok(out)
}

/// `flexi attack` — the authenticated-update attacker soak: sweep
/// forgery, replay, downgrade, truncation, bit-flip and power-cut
/// behaviours against every dialect and grade each die after reboot.
///
/// # Errors
///
/// [`CliError::Usage`] for malformed flags; [`CliError::Run`] if a
/// kernel fails to assemble **or the campaign is breached** (any
/// accepted forgery or bricked die), so scripted gates fail loudly.
pub fn attack(args: &mut Args) -> Result<String, CliError> {
    use flexlink::{run_attack_soak, AttackSoakConfig};

    let mut rates = args.f64_list("rates")?;
    rates.extend(args.f64_list("ber")?);
    if rates.is_empty() {
        rates = vec![0.0, 1e-4];
    }
    if let Some(bad) = rates.iter().find(|r| !(0.0..=1.0).contains(*r)) {
        return Err(CliError::Usage(format!(
            "bit-error rate {bad} outside [0, 1]"
        )));
    }
    let seed = args.num("seed", 0xA77Cu64)?;
    let mut config = AttackSoakConfig::new(rates, 1, seed);
    if let Some(dialect) = args.flag("dialect") {
        let target = flexinject::target_from_name(&dialect).ok_or_else(|| {
            CliError::Usage(format!("unknown dialect `{dialect}` (fc4, fc8, xacc, xls)"))
        })?;
        config.targets = vec![target];
    }
    config.link.max_retries = args.num("retries", config.link.max_retries)?;
    config.reps = args.num("reps", config.reps)?;
    config.threads = args.positive("threads", 1)?;
    config.shards = args.positive("shards", 1)?;
    // `--trials N` asks for at least N trials: scale the repetitions
    let trials = args.num("trials", 0usize)?;
    if trials > 0 {
        let per_rep = config.trial_count() / config.reps.max(1);
        if per_rep == 0 {
            return Err(CliError::Usage(
                "empty sweep: no (kernel, rate) cells".into(),
            ));
        }
        config.reps = trials.div_ceil(per_rep).max(config.reps);
    }

    let campaign = run_attack_soak(config).map_err(|e| CliError::Run(e.to_string()))?;
    let rendered = flexlink::report::render_attack(&campaign);
    if !campaign.defended() {
        return Err(CliError::Run(format!(
            "attack soak breached: {} accepted forgeries, {} bricked dies\n{rendered}",
            campaign.accepted_forgeries(),
            campaign.bricked_dies(),
        )));
    }
    Ok(rendered)
}

/// `flexi mission` — lifetime soak: adaptive closed-loop health
/// management versus the static always-TMR baseline under the same
/// seeded mission stress histories (wear, bend events, brownouts).
///
/// # Errors
///
/// Usage errors for unknown dialects/kernels/severities and zero
/// `--threads`/`--shards`; [`CliError::Run`] if any forged re-flash is
/// accepted (a security breach, never expected).
pub fn mission(args: &mut Args) -> Result<String, CliError> {
    use flexmission::{run_mission_campaign, MissionConfig, MissionTally};

    let dialect = args.flag("dialect").unwrap_or_else(|| "fc4".to_string());
    let target = flexinject::target_from_name(&dialect).ok_or_else(|| {
        CliError::Usage(format!("unknown dialect `{dialect}` (fc4, fc8, xacc, xls)"))
    })?;
    let kernel = match args.flag("kernel") {
        None => flexkernels::Kernel::ParityCheck,
        Some(kernel_name) => {
            let kernel = flexinject::kernel_from_name(&kernel_name).ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown kernel `{kernel_name}`; run `flexi kernels` for the list"
                ))
            })?;
            if !kernel.supports(target.dialect) {
                return Err(CliError::Usage(format!(
                    "kernel `{}` does not fit the {} dialect (§3.3 capacity trade-off)",
                    kernel.name(),
                    target.dialect,
                )));
            }
            kernel
        }
    };
    let trials = args.num("trials", 64usize)?;
    let ticks = args.num("ticks", 12u32)?;
    let seed = args.num("seed", 0x0015_510Au64)?;
    let mut config = MissionConfig::new(target, kernel, trials, ticks, seed);
    config.spares = args.num("spares", config.spares)?;
    config.budget = args.num("budget", config.budget)?;
    config.threads = args.positive("threads", 1)?;
    config.shards = args.positive("shards", 1)?;
    if let Some(name) = args.flag("deny") {
        config.deny = Some(flexcheck::Severity::parse(&name).ok_or_else(|| {
            CliError::Usage(format!("unknown severity `{name}` (info, warning, error)"))
        })?);
    }

    let adaptive = run_mission_campaign(&config).map_err(|e| CliError::Run(e.to_string()))?;
    let baseline = run_mission_campaign(&MissionConfig {
        adaptive: false,
        ..config
    })
    .map_err(|e| CliError::Run(e.to_string()))?;
    let rendered = flexmission::render_mission_comparison(&adaptive, &baseline);
    let forged =
        MissionTally::of(&adaptive).forged_accepted + MissionTally::of(&baseline).forged_accepted;
    if forged > 0 {
        return Err(CliError::Run(format!(
            "mission soak breached: {forged} accepted forgeries\n{rendered}"
        )));
    }
    Ok(rendered)
}

/// `flexi dse` — print the §6 summary.
///
/// # Errors
///
/// [`CliError::Run`] if the population fails to evaluate.
pub fn dse(_args: &mut Args) -> Result<String, CliError> {
    let summary = flexdse::pareto::summarize().map_err(|e| CliError::Run(e.to_string()))?;
    let base = &summary.population[0];
    let mut out = format!(
        "{:<10} {:>10} {:>10} {:>12} {:>12}\n",
        "config", "area", "fmax kHz", "time (rel)", "energy (rel)"
    );
    for r in &summary.population {
        let _ = writeln!(
            out,
            "{:<10} {:>10.0} {:>10.1} {:>12.2} {:>12.2}",
            if r.config.features.is_base() {
                "FC4 base".to_string()
            } else {
                r.config.label()
            },
            r.cost.area_nand2,
            r.cost.fmax_hz(4.5) / 1000.0,
            r.geomean_time_ms() / base.geomean_time_ms(),
            r.geomean_energy_uj() / base.geomean_energy_uj(),
        );
    }
    Ok(out)
}

/// `flexi serve` — run the toolchain daemon until drained (by a `drain`
/// request or stdin EOF). Prints the listening line eagerly so
/// supervising scripts can scrape the bound port.
///
/// # Errors
///
/// Usage errors, or [`CliError::Io`] if the bind or cache directory
/// fails.
pub fn serve(args: &mut Args) -> Result<String, CliError> {
    let host = args.flag("host").unwrap_or_else(|| "127.0.0.1".to_string());
    let port = args.num("port", 0u16)?;
    let cache_dir = args
        .flag("cache")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("flexserve-cache"));
    let config = flexserve::ServeConfig {
        addr: format!("{host}:{port}"),
        workers: args.num("workers", 4usize)?,
        queue_depth: args.num("queue", 64usize)?,
        max_connections: args.num("conns", 32usize)?,
        cache_dir,
        default_deadline_ms: args.num("deadline-ms", 0u64)?,
    };
    // Reject unknown flags *before* blocking in the daemon (dispatch's
    // own finish() would only run after the drain).
    args.finish()?;
    let handle = flexserve::serve(config)?;
    let stats = handle.stats();
    println!(
        "flexi serve: listening on {} ({} workers, queue {})",
        handle.addr(),
        stats.workers,
        stats.queue_depth,
    );
    let _ = std::io::Write::flush(&mut std::io::stdout());
    flexserve::drain_on_stdin_eof(&handle);
    let stats = handle.wait();
    Ok(format!("drained cleanly\n{}", stats.render()))
}

fn parse_deny(args: &mut Args) -> Result<u8, CliError> {
    let name = args.flag("deny").unwrap_or_else(|| "error".to_string());
    match name.as_str() {
        "info" => Ok(0),
        "warning" => Ok(1),
        "error" => Ok(2),
        other => Err(CliError::Usage(format!(
            "unknown deny severity `{other}` (info, warning, error)"
        ))),
    }
}

fn client_source_request(op: &str, args: &mut Args) -> Result<flexserve::Request, CliError> {
    let path = args.positional(1, "source file").map(str::to_string)?;
    let dialect = args.flag("target").unwrap_or_else(|| "fc4".to_string());
    let features = args.flag("features").unwrap_or_default();
    let source = std::fs::read_to_string(&path)?;
    Ok(match op {
        "asm" => flexserve::Request::Assemble {
            dialect,
            features,
            source,
        },
        "check" => flexserve::Request::Check {
            dialect,
            features,
            source,
            deny: parse_deny(args)?,
        },
        "admit" => flexserve::Request::Admit {
            dialect,
            features,
            source,
            deny: parse_deny(args)?,
        },
        _ => flexserve::Request::Simulate {
            dialect,
            features,
            source,
            inputs: args.u8_list("input")?,
            max_cycles: args.num("max-cycles", 1_000_000u64)?,
        },
    })
}

/// The CI/soak reference workload: assemble + analyze + admit + simulate
/// every kernel the fc4 dialect supports, plus one wafer yield query.
/// Deterministic in `seed`, so repeated batches are byte-identical and
/// the second run is all cache hits.
#[must_use]
pub fn standard_batch(seed: u64) -> Vec<flexserve::Request> {
    let dialect = Dialect::Fc4;
    let mut subs = Vec::new();
    for k in flexkernels::Kernel::ALL {
        if !k.supports(dialect) {
            continue;
        }
        let source = k.source_for(dialect);
        subs.push(flexserve::Request::Assemble {
            dialect: "fc4".to_string(),
            features: String::new(),
            source: source.clone(),
        });
        subs.push(flexserve::Request::Check {
            dialect: "fc4".to_string(),
            features: String::new(),
            source: source.clone(),
            deny: 2,
        });
        subs.push(flexserve::Request::Admit {
            dialect: "fc4".to_string(),
            features: String::new(),
            source: source.clone(),
            deny: 2,
        });
        subs.push(flexserve::Request::Simulate {
            dialect: "fc4".to_string(),
            features: String::new(),
            source,
            inputs: flexkernels::inputs::Sampler::new(k, seed).draw(),
            max_cycles: 200_000,
        });
    }
    subs.push(flexserve::Request::Yield {
        design: "fc4".to_string(),
        voltage_mv: 4_500,
        seed,
        cycles: 300,
        salvage: false,
    });
    subs
}

fn render_reply(reply: &flexserve::Reply) -> String {
    let mut out = format!(
        "{}{}: {}",
        reply.status.name(),
        if reply.cached { " (cached)" } else { "" },
        reply.text.trim_end(),
    );
    if !reply.data.is_empty() {
        let _ = write!(out, "\n{} data bytes", reply.data.len());
    }
    out.push('\n');
    out
}

/// `flexi client` — talk to a running daemon.
///
/// Operations: `status`, `drain`, `asm|check|admit|run <file.s>`,
/// `yield`, `batch` (the standard mixed workload; prints a digest over
/// all sub-replies for warm-vs-cold byte-identity checks).
///
/// # Errors
///
/// Usage errors, or [`CliError::Run`] for connection trouble.
pub fn client(args: &mut Args) -> Result<String, CliError> {
    let op = args
        .positional(
            0,
            "operation (status|drain|asm|check|admit|run|yield|batch)",
        )?
        .to_string();
    let host = args.flag("host").unwrap_or_else(|| "127.0.0.1".to_string());
    let port = args.num("port", 0u16)?;
    if port == 0 {
        return Err(CliError::Usage("--port is required".to_string()));
    }
    let request = match op.as_str() {
        "status" => flexserve::Request::Status,
        "drain" => flexserve::Request::Drain,
        "asm" | "check" | "admit" | "run" => client_source_request(&op, args)?,
        "yield" => flexserve::Request::Yield {
            design: args.flag("design").unwrap_or_else(|| "fc4".to_string()),
            voltage_mv: args.num("voltage-mv", 4_500u64)?,
            seed: args.num("seed", flexfab::calibration::seeds::YIELD)?,
            cycles: args.num("cycles", 300u64)?,
            salvage: args.has("salvage"),
        },
        "batch" => flexserve::Request::Batch(standard_batch(args.num("seed", 0xF1E5u64)?)),
        other => {
            return Err(CliError::Usage(format!(
                "unknown client operation `{other}` (status|drain|asm|check|admit|run|yield|batch)"
            )))
        }
    };
    let mut client = flexserve::Client::connect((host.as_str(), port))
        .map_err(|e| CliError::Run(e.to_string()))?;
    client.deadline_ms = args.num("deadline-ms", 0u64)?;
    let reply = client
        .call(&request)
        .map_err(|e| CliError::Run(e.to_string()))?;

    if let flexserve::Request::Batch(subs) = &request {
        let replies = flexserve::protocol::decode_batch_data(&reply.data)
            .map_err(|e| CliError::Run(e.to_string()))?;
        let mut out = format!("{}\n", reply.text.trim_end());
        let mut cached = 0usize;
        let mut ok = 0usize;
        for (sub, sub_reply) in subs.iter().zip(&replies) {
            let _ = writeln!(
                out,
                "  {:<9} {}{}",
                sub.kind_name(),
                sub_reply.status.name(),
                if sub_reply.cached { " (cached)" } else { "" },
            );
            cached += usize::from(sub_reply.cached);
            ok += usize::from(sub_reply.status == flexserve::ReplyStatus::Ok);
        }
        let _ = writeln!(out, "summary: {ok}/{} ok, {cached} cached", replies.len());
        if cached == replies.len() && !replies.is_empty() {
            out.push_str("all cache hits\n");
        }
        let _ = writeln!(out, "batch digest {}", flexserve::reply_digest(&replies));
        return Ok(out);
    }
    Ok(render_reply(&reply))
}

fn execute<I: InputPort, O: OutputPort>(
    target: Target,
    program: Program,
    input: &mut I,
    output: &mut O,
    max_cycles: u64,
    trace: bool,
) -> Result<(RunResult, String), flexicore::SimError> {
    // One constructor for all four dialects; the per-dialect matches that
    // used to live here moved into `flexicore::exec::AnyCore`.
    let mut core = AnyCore::for_dialect(target.dialect, target.features, program);
    let mut text = String::new();
    if trace {
        // trace by stepping; the subsequent run() finishes the budget
        while !core.is_halted() && core.instructions() < max_cycles {
            let ev = core.step(input, output)?;
            let _ = writeln!(
                text,
                "cycle {:>6}  addr {:#06x}  acc {:#03x}  pc -> {:#04x}{}",
                ev.cycle,
                ev.address,
                ev.acc,
                ev.next_pc,
                if ev.taken_branch { "  (taken)" } else { "" }
            );
        }
    }
    let r = core.run(input, output, max_cycles)?;
    Ok((r, text))
}

#[cfg(test)]
mod tests {
    use crate::dispatch;

    fn call(args: &[&str]) -> Result<String, crate::CliError> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn write_temp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("flexi_test_{name}_{}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    const ADD3: &str = "load r0\naddi 3\nstore r1\nhalt\n";

    #[test]
    fn no_args_prints_usage() {
        let out = call(&[]).unwrap();
        assert!(out.contains("flexi"));
        assert!(out.contains("wafer"));
    }

    #[test]
    fn asm_reports_sizes_and_listing() {
        let src = write_temp("asm", ADD3);
        let out = call(&["asm", &src, "--listing"]).unwrap();
        assert!(out.contains("5 instructions"), "{out}");
        assert!(out.contains("load r0"), "{out}");
    }

    #[test]
    fn asm_roundtrips_through_disasm() {
        let src = write_temp("rt", ADD3);
        let bin = write_temp("rt_bin", "");
        call(&["asm", &src, "--out", &bin]).unwrap();
        let out = call(&["disasm", &bin]).unwrap();
        assert!(out.contains("addi 3"), "{out}");
    }

    #[test]
    fn run_executes_and_prints_output_port() {
        let src = write_temp("run", ADD3);
        let out = call(&["run", &src, "--input", "4"]).unwrap();
        assert!(out.contains("halted"), "{out}");
        assert!(out.contains("0x7"), "{out}");
    }

    #[test]
    fn run_with_trace_lists_cycles() {
        let src = write_temp("trace", ADD3);
        let out = call(&["run", &src, "--input", "1", "--trace"]).unwrap();
        assert!(out.contains("cycle"), "{out}");
        assert!(out.contains("(taken)"), "{out}");
    }

    #[test]
    fn client_round_trips_against_a_live_daemon() {
        let cache = std::env::temp_dir().join(format!("flexi-cli-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache);
        let handle = flexserve::serve(flexserve::ServeConfig {
            workers: 2,
            queue_depth: 16,
            max_connections: 8,
            cache_dir: cache,
            ..flexserve::ServeConfig::default()
        })
        .unwrap();
        let port = handle.addr().port().to_string();

        let src = write_temp("client_asm", ADD3);
        let cold = call(&["client", "asm", &src, "--port", &port]).unwrap();
        assert!(cold.starts_with("ok"), "{cold}");
        let warm = call(&["client", "asm", &src, "--port", &port]).unwrap();
        assert!(warm.contains("(cached)"), "{warm}");

        let status = call(&["client", "status", "--port", &port]).unwrap();
        assert!(status.contains("cache-hits 1"), "{status}");
        assert!(status.contains("panics 0"), "{status}");

        let drain = call(&["client", "drain", "--port", &port]).unwrap();
        assert!(drain.contains("draining"), "{drain}");
        let stats = handle.wait();
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.queued, 0);
    }

    #[test]
    fn client_requires_a_port_and_known_operation() {
        assert!(matches!(
            call(&["client", "status"]),
            Err(crate::CliError::Usage(_))
        ));
        assert!(matches!(
            call(&["client", "frobnicate", "--port", "1"]),
            Err(crate::CliError::Usage(_))
        ));
    }

    #[test]
    fn cosim_reports_equivalence() {
        let src = write_temp("cosim", ADD3);
        let out = call(&["cosim", &src, "--input", "2"]).unwrap();
        assert!(out.contains("equivalent"), "{out}");
    }

    #[test]
    fn kernels_lists_all_seven() {
        let out = call(&["kernels"]).unwrap();
        for name in ["Calculator", "XorShift8", "Thresholding"] {
            assert!(out.contains(name), "{out}");
        }
    }

    #[test]
    fn check_passes_a_clean_file() {
        let src = write_temp("check_ok", ADD3);
        let out = call(&["check", &src]).unwrap();
        assert!(out.contains("reachable"), "{out}");
    }

    #[test]
    fn check_rejects_a_statically_hung_file() {
        // a two-instruction loop with no exit (a self-branch would be
        // the halt idiom, so the loop body must advance the pc)
        let src = write_temp("check_hang", "load r0\nloop:\n  addi 1\n  br loop\n");
        let err = call(&["check", &src]).unwrap_err();
        assert!(err.to_string().contains("error"), "{err}");
    }

    #[test]
    fn check_deny_severity_is_configurable() {
        // dead code after halt is an info-level lint: clean at the
        // default `error` gate, rejected when denying info findings
        let dead = "load r0\nstore r1\nhalt\naddi 1\n";
        let src = write_temp("check_warn", dead);
        call(&["check", &src]).unwrap();
        let err = call(&["check", &src, "--deny", "info"]).unwrap_err();
        assert!(err.to_string().contains("info"), "{err}");
    }

    #[test]
    fn check_kernels_lint_clean() {
        for target in ["fc4", "fc8"] {
            let out = call(&["check", "--kernels", "--target", target]).unwrap();
            assert!(out.contains("reachable instruction(s)"), "{out}");
        }
    }

    #[test]
    fn check_vuln_classifies_a_file() {
        let src = write_temp("check_vuln", ADD3);
        let out = call(&["check", &src, "--vuln"]).unwrap();
        assert!(out.contains("provably masked"), "{out}");
        assert!(out.contains("exact"), "{out}");
    }

    #[test]
    fn check_vuln_kernels_prints_fractions_and_digest() {
        let out = call(&["check", "--kernels", "--vuln", "--target", "fc4"]).unwrap();
        assert!(out.contains("site(s) provably masked"), "{out}");
        assert!(out.contains("suite vuln digest 0x"), "{out}");
        // deterministic across invocations
        assert_eq!(
            out,
            call(&["check", "--kernels", "--vuln", "--target", "fc4"]).unwrap()
        );
    }

    #[test]
    fn check_campaign_smoke_is_sound() {
        let out = call(&["check", "--campaign", "3", "--seed", "9"]).unwrap();
        assert!(out.contains("no unsound verdicts"), "{out}");
        assert!(out.contains("seed 0x9"), "{out}");
    }

    #[test]
    fn asm_prints_analyzer_warnings() {
        // cell 3 is never written, so reading it is a warning
        let src = write_temp("asm_warn", "load r3\nstore r1\nhalt\n");
        let out = call(&["asm", &src]).unwrap();
        assert!(out.contains("uninit-read"), "{out}");
    }

    #[test]
    fn kernel_runs_verified() {
        let out = call(&["kernel", "paritycheck", "--input", "1,0"]).unwrap();
        assert!(out.contains("verified"), "{out}");
        assert!(out.contains("[0x1]"), "{out}");
    }

    #[test]
    fn kernel_rejects_short_input() {
        let err = call(&["kernel", "calculator", "--input", "1"]).unwrap_err();
        assert!(err.to_string().contains("needs 3"), "{err}");
    }

    #[test]
    fn wafer_prints_map_and_yield() {
        let out = call(&["wafer", "--cycles", "300"]).unwrap();
        assert!(out.contains("yield:"), "{out}");
        assert!(out.contains('.'), "{out}");
    }

    #[test]
    fn inject_prints_a_deterministic_classification_table() {
        let argv = &[
            "inject",
            "--dialect",
            "fc8",
            "--kernel",
            "parity",
            "--faults",
            "8",
            "--seed",
            "41",
        ];
        let a = call(argv).unwrap();
        let b = call(argv).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("seed 41"), "{a}");
        assert!(a.contains("masked"), "{a}");
        assert!(a.contains("most vulnerable"), "{a}");
    }

    #[test]
    fn inject_threads_and_shards_replay_the_serial_report() {
        let base = &[
            "inject",
            "--dialect",
            "fc4",
            "--kernel",
            "parity",
            "--faults",
            "16",
            "--seed",
            "41",
        ];
        let serial = call(base).unwrap();
        let mut threaded = base.to_vec();
        threaded.extend(["--threads", "8", "--shards", "16"]);
        assert_eq!(serial, call(&threaded).unwrap());
    }

    #[test]
    fn zero_threads_or_shards_is_a_usage_error_with_exit_code_2() {
        for (cmd, flag) in [
            ("inject", "--threads"),
            ("inject", "--shards"),
            ("resilient", "--threads"),
            ("resilient", "--shards"),
            ("link", "--threads"),
            ("link", "--shards"),
            ("attack", "--threads"),
            ("attack", "--shards"),
            ("wafer", "--threads"),
        ] {
            let err = call(&[cmd, flag, "0"]).unwrap_err();
            assert!(
                matches!(err, crate::CliError::Usage(_)),
                "`{cmd} {flag} 0` must be a usage error, got {err}"
            );
            assert_eq!(err.exit_code(), 2, "{cmd} {flag}");
            assert!(err.to_string().contains("at least 1"), "{err}");
        }
    }

    #[test]
    fn wafer_threads_replay_the_serial_map() {
        let serial = call(&["wafer", "--cycles", "300"]).unwrap();
        let threaded = call(&["wafer", "--cycles", "300", "--threads", "4"]).unwrap();
        assert_eq!(serial, threaded);
    }

    #[test]
    fn resilient_tmr_masks_and_replays_deterministically() {
        let argv = &[
            "resilient",
            "--dialect",
            "fc4",
            "--kernel",
            "parity",
            "--faults",
            "6",
            "--seed",
            "17",
            "--budget",
            "20000",
        ];
        let a = call(argv).unwrap();
        let b = call(argv).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("under tmr"), "{a}");
        assert!(a.contains("seed 17"), "{a}");
        assert!(a.contains("unrecoverable    0"), "{a}");
    }

    #[test]
    fn resilient_dmr_recovers_transients() {
        let out = call(&[
            "resilient",
            "--quorum",
            "dmr",
            "--mode",
            "transient",
            "--faults",
            "6",
            "--seed",
            "29",
            "--budget",
            "20000",
            "--interval",
            "32",
        ])
        .unwrap();
        assert!(out.contains("under dmr"), "{out}");
        assert!(out.contains("masked"), "{out}");
    }

    #[test]
    fn link_soaks_and_replays_deterministically() {
        let argv = &[
            "link", "--kernel", "parity", "--rates", "0,2e-4", "--seed", "23",
        ];
        let a = call(argv).unwrap();
        let b = call(argv).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("seed 23"), "{a}");
        assert!(a.contains("survival"), "{a}");
        assert!(a.contains("unrecoverable"), "{a}");
    }

    #[test]
    fn link_rejects_out_of_range_rates() {
        let err = call(&["link", "--rates", "1.5"]).unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");
    }

    #[test]
    fn link_malformed_ber_is_a_usage_error_with_exit_code_2() {
        for bad in ["--ber", "--rates"] {
            let err = call(&["link", bad, "0,often,1e-4"]).unwrap_err();
            assert!(
                matches!(err, crate::CliError::Usage(_)),
                "`{bad} 0,often,1e-4` must be a usage error, got {err}"
            );
            assert_eq!(err.exit_code(), 2, "{err}");
            assert!(err.to_string().contains("often"), "{err}");
        }
        // a well-formed --ber list is accepted as an alias for --rates
        let out = call(&["link", "--kernel", "parity", "--ber", "0,1e-4"]).unwrap();
        assert!(out.contains("survival"), "{out}");
    }

    #[test]
    fn link_signed_applies_updates_across_the_sweep() {
        let out = call(&[
            "link", "--signed", "--kernel", "parity", "--ber", "0,1e-4", "--seed", "7",
        ])
        .unwrap();
        assert!(out.contains("signed update"), "{out}");
        assert!(out.contains("applied 2/2 updates"), "{out}");
    }

    #[test]
    fn attack_soak_defends_and_replays() {
        let argv = &[
            "attack",
            "--dialect",
            "fc8",
            "--rates",
            "0",
            "--reps",
            "2",
            "--seed",
            "5",
        ];
        let a = call(argv).unwrap();
        let b = call(argv).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("verdict            defended"), "{a}");
        assert!(a.contains("forge-metadata"), "{a}");
    }

    #[test]
    fn attack_trials_floor_scales_reps() {
        // fc8 runs one kernel × 1 rate × 8 attacks = 8 trials per rep;
        // asking for 20 trials must round the reps up to 3
        let out = call(&[
            "attack",
            "--dialect",
            "fc8",
            "--rates",
            "0",
            "--trials",
            "20",
            "--seed",
            "3",
        ])
        .unwrap();
        assert!(out.contains("24 trials"), "{out}");
    }

    #[test]
    fn mission_soaks_and_replays_across_threads_and_shards() {
        let base = &[
            "mission", "--kernel", "parity", "--trials", "6", "--ticks", "4", "--seed", "41",
        ];
        let a = call(base).unwrap();
        let sharded = call(&[
            "mission",
            "--kernel",
            "parity",
            "--trials",
            "6",
            "--ticks",
            "4",
            "--seed",
            "41",
            "--threads",
            "4",
            "--shards",
            "5",
        ])
        .unwrap();
        assert_eq!(a, sharded, "threads/shards must not change the report");
        assert!(a.contains("adaptive"), "{a}");
        assert!(a.contains("static TMR"), "{a}");
        assert!(a.contains("comparison"), "{a}");
        assert!(a.contains("forgeries      0 accepted"), "{a}");
    }

    #[test]
    fn mission_zero_threads_or_shards_is_a_usage_error_with_exit_code_2() {
        for flag in ["--threads", "--shards"] {
            let err = call(&["mission", flag, "0"]).unwrap_err();
            assert!(
                matches!(err, crate::CliError::Usage(_)),
                "`{flag} 0` must be a usage error, got {err}"
            );
            assert_eq!(err.exit_code(), 2, "{err}");
        }
    }

    #[test]
    fn mission_rejects_bad_deny_and_unknown_kernels() {
        let err = call(&["mission", "--deny", "fatal"]).unwrap_err();
        assert!(matches!(err, crate::CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("fatal"), "{err}");
        let err = call(&["mission", "--kernel", "warp-drive"]).unwrap_err();
        assert!(matches!(err, crate::CliError::Usage(_)), "{err}");
    }

    #[test]
    fn resilient_rejects_unknown_quorum() {
        let err = call(&["resilient", "--quorum", "qmr"]).unwrap_err();
        assert!(err.to_string().contains("unknown quorum"), "{err}");
    }

    #[test]
    fn inject_rejects_unsupported_fc8_kernels() {
        let err = call(&["inject", "--dialect", "fc8", "--kernel", "fir"]).unwrap_err();
        assert!(err.to_string().contains("does not fit"), "{err}");
    }

    #[test]
    fn unknown_command_and_flags_fail() {
        assert!(call(&["frobnicate"]).is_err());
        let src = write_temp("uf", ADD3);
        assert!(call(&["asm", &src, "--bogus", "1"]).is_err());
    }

    #[test]
    fn run_on_extended_target() {
        let src = write_temp("ext", "load r0\nlsri 2\nstore r1\nhalt\n");
        let out = call(&[
            "run",
            &src,
            "--target",
            "xacc",
            "--features",
            "revised",
            "--input",
            "12",
        ])
        .unwrap();
        assert!(out.contains("0x3"), "{out}");
    }

    #[test]
    fn wave_writes_a_vcd() {
        let src = write_temp("wave", ADD3);
        let out_path = std::env::temp_dir().join(format!("flexi_wave_{}.vcd", std::process::id()));
        let out = call(&[
            "wave",
            &src,
            "--input",
            "3",
            "--cycles",
            "20",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let vcd = std::fs::read_to_string(&out_path).unwrap();
        assert!(vcd.contains("$var wire 7 "), "{vcd}");
        assert!(vcd.contains("oport"), "{vcd}");
    }
}
