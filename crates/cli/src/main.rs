//! The `flexi` binary: see [`flexcli`] for the command set.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match flexcli::dispatch(&argv) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("flexi: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
