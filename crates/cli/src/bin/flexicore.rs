//! The `flexicore` binary: the same toolbox as `flexi`, under the
//! paper's project name. See [`flexcli`] for the command set.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match flexcli::dispatch(&argv) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("flexicore: {e}");
            std::process::exit(1);
        }
    }
}
