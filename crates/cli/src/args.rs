//! Minimal flag parsing (no external dependencies).

use core::fmt;
use std::collections::BTreeMap;

/// CLI failure modes.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad invocation: unknown command/flag, missing argument, bad value.
    Usage(String),
    /// Filesystem trouble.
    Io(std::io::Error),
    /// The assembler rejected the source.
    Asm(flexasm::AsmError),
    /// The simulator faulted or a kernel failed verification.
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Asm(e) => write!(f, "assembly error: {e}"),
            CliError::Run(m) => write!(f, "run error: {m}"),
        }
    }
}

impl CliError {
    /// The process exit code for this failure: `2` for bad invocations
    /// (the conventional usage-error code), `1` for everything else.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<flexasm::AsmError> for CliError {
    fn from(e: flexasm::AsmError) -> Self {
        CliError::Asm(e)
    }
}

/// Parsed `--flag value` pairs, boolean `--flag`s, and positionals.
#[derive(Debug, Default)]
pub struct Args {
    positionals: Vec<String>,
    flags: BTreeMap<String, Option<String>>,
    consumed: std::collections::BTreeSet<String>,
}

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &["listing", "trace", "signed", "salvage", "vuln", "kernels"];

impl Args {
    /// Parse raw arguments.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] for a value-taking flag with no value.
    pub fn parse(raw: &[String]) -> Result<Self, CliError> {
        let mut args = Args::default();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&name) {
                    args.flags.insert(name.to_string(), None);
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| CliError::Usage(format!("flag --{name} needs a value")))?;
                    args.flags.insert(name.to_string(), Some(value.clone()));
                }
            } else {
                args.positionals.push(a.clone());
            }
        }
        Ok(args)
    }

    /// The `n`-th positional argument.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] naming `what` when missing.
    pub fn positional(&self, n: usize, what: &str) -> Result<&str, CliError> {
        self.positionals
            .get(n)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing {what}")))
    }

    /// A string flag value, if given.
    pub fn flag(&mut self, name: &str) -> Option<String> {
        self.consumed.insert(name.to_string());
        self.flags.get(name).cloned().flatten()
    }

    /// A boolean flag.
    pub fn has(&mut self, name: &str) -> bool {
        self.consumed.insert(name.to_string());
        self.flags.contains_key(name)
    }

    /// A parsed numeric flag with a default.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] when the value does not parse.
    pub fn num<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, CliError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad value for --{name}: `{v}`"))),
        }
    }

    /// A parsed numeric flag that must be at least 1 (`--threads`,
    /// `--shards`), with a default.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] when the value does not parse or is zero.
    pub fn positive(&mut self, name: &str, default: usize) -> Result<usize, CliError> {
        let v: usize = self.num(name, default)?;
        if v == 0 {
            return Err(CliError::Usage(format!("--{name} must be at least 1")));
        }
        Ok(v)
    }

    /// Comma-separated u8 list (`--input 1,2,3`).
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] for unparsable entries.
    pub fn u8_list(&mut self, name: &str) -> Result<Vec<u8>, CliError> {
        match self.flag(name) {
            None => Ok(Vec::new()),
            Some(v) => v
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    let s = s.trim();
                    if let Some(hex) = s.strip_prefix("0x") {
                        u8::from_str_radix(hex, 16)
                    } else {
                        s.parse()
                    }
                    .map_err(|_| CliError::Usage(format!("bad value in --{name}: `{s}`")))
                })
                .collect(),
        }
    }

    /// Comma-separated f64 list (`--rates 0,1e-4,5e-4`).
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] for unparsable entries.
    pub fn f64_list(&mut self, name: &str) -> Result<Vec<f64>, CliError> {
        match self.flag(name) {
            None => Ok(Vec::new()),
            Some(v) => v
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| CliError::Usage(format!("bad value in --{name}: `{s}`")))
                })
                .collect(),
        }
    }

    /// Reject unrecognised flags (call after a command consumed its own).
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] naming the stray flag.
    pub fn finish(&self) -> Result<(), CliError> {
        for name in self.flags.keys() {
            if !self.consumed.contains(name) {
                return Err(CliError::Usage(format!("unknown flag --{name}")));
            }
        }
        Ok(())
    }

    /// Resolve `--target`/`--features` into an assembler target.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] for unknown names.
    pub fn target(&mut self) -> Result<flexasm::Target, CliError> {
        let features = self.flag("features").unwrap_or_default();
        let dialect = self.flag("target").unwrap_or_else(|| "fc4".to_string());
        flexasm::Target::parse(&dialect, &features).map_err(|e| CliError::Usage(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(items: &[&str]) -> Args {
        Args::parse(&items.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn positionals_and_flags() {
        let mut a = parse(&["prog.s", "--target", "fc8", "--listing"]);
        assert_eq!(a.positional(0, "source").unwrap(), "prog.s");
        assert_eq!(a.flag("target").as_deref(), Some("fc8"));
        assert!(a.has("listing"));
        assert!(a.finish().is_ok());
    }

    #[test]
    fn missing_value_is_a_usage_error() {
        let err = Args::parse(&["--target".to_string()]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn u8_list_parses_decimal_and_hex() {
        let mut a = parse(&["--input", "1,0xA, 3"]);
        assert_eq!(a.u8_list("input").unwrap(), vec![1, 0xA, 3]);
    }

    #[test]
    fn f64_list_parses_scientific_notation() {
        let mut a = parse(&["--rates", "0, 1e-4,5e-4"]);
        assert_eq!(a.f64_list("rates").unwrap(), vec![0.0, 1e-4, 5e-4]);
        let mut b = parse(&["--rates", "often"]);
        assert!(b.f64_list("rates").is_err());
    }

    #[test]
    fn unknown_flags_are_rejected_at_finish() {
        let mut a = parse(&["--bogus", "1"]);
        let _ = a.flag("target");
        assert!(matches!(a.finish(), Err(CliError::Usage(_))));
    }

    #[test]
    fn target_resolution() {
        let mut a = parse(&["--target", "xacc", "--features", "adc,shift"]);
        let t = a.target().unwrap();
        assert_eq!(t.dialect, flexicore::isa::Dialect::ExtendedAcc);
        assert!(t
            .features
            .contains(flexicore::isa::features::Feature::AddWithCarry));
        assert!(!t
            .features
            .contains(flexicore::isa::features::Feature::Multiplier));

        let mut a = parse(&["--target", "xls", "--features", "revised"]);
        assert_eq!(a.target().unwrap(), flexasm::Target::xls_revised());

        let mut a = parse(&[]);
        assert_eq!(a.target().unwrap(), flexasm::Target::fc4());

        let mut a = parse(&["--features", "warp-drive"]);
        assert!(a.target().is_err());
    }

    #[test]
    fn positive_rejects_zero() {
        let mut a = parse(&["--threads", "0"]);
        let err = a.positive("threads", 1).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert_eq!(err.exit_code(), 2);

        let mut b = parse(&["--threads", "8"]);
        assert_eq!(b.positive("threads", 1).unwrap(), 8);
        let mut c = parse(&[]);
        assert_eq!(c.positive("shards", 4).unwrap(), 4);
    }

    #[test]
    fn num_parses_with_default() {
        let mut a = parse(&["--cycles", "500"]);
        assert_eq!(a.num("cycles", 10u64).unwrap(), 500);
        assert_eq!(a.num("seed", 7u64).unwrap(), 7);
        let mut b = parse(&["--cycles", "many"]);
        assert!(b.num("cycles", 10u64).is_err());
    }
}
