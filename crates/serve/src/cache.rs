//! The content-addressed on-disk reply cache.
//!
//! Every cacheable request's *core* bytes (kind + body, no deadline)
//! hash to a SHA-256 key; the cached value is the encoded reply core
//! with the provenance flag zeroed. Entries live at
//! `dir/<key[0..2]>/<key>.bin` as
//!
//! ```text
//! [magic 8B "FXSERV01"][key 32B][payload sha256 32B][len u64be][payload]
//! ```
//!
//! **Crash safety.** Writes go to a temp file in the same directory and
//! land with an atomic `rename`, so a `kill -9` at any instant leaves
//! either the old entry, the new entry, or a stray temp file — never a
//! half-written entry under the real name.
//!
//! **Corruption safety.** Reads re-derive both digests and check every
//! header field. Any mismatch — flipped payload byte, truncated file,
//! wrong key, stale magic — deletes the entry and reports a miss, and
//! the caller's recompute-and-store repairs it silently. A corrupt
//! cache can cost time, never correctness.

use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use flexlink::crypto::{sha256, DIGEST_BYTES};

const MAGIC: &[u8; 8] = b"FXSERV01";
const HEADER_LEN: usize = 8 + DIGEST_BYTES + DIGEST_BYTES + 8;

/// Monotonic counters describing cache behaviour since startup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served from a verified entry.
    pub hits: u64,
    /// Reads that found no entry (includes repaired corruptions).
    pub misses: u64,
    /// Entries that failed verification and were deleted for recompute.
    pub repairs: u64,
    /// Entries written (fresh stores and repairs).
    pub writes: u64,
}

/// A content-addressed, digest-verified, crash-safe reply cache.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    repairs: AtomicU64,
    writes: AtomicU64,
}

impl DiskCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure if the root cannot be
    /// made.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<DiskCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DiskCache {
            dir,
            seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// The cache key for a request core: its SHA-256.
    #[must_use]
    pub fn key_for(core: &[u8]) -> [u8; DIGEST_BYTES] {
        sha256(core)
    }

    /// Where an entry for `key` lives on disk.
    #[must_use]
    pub fn entry_path(&self, key: &[u8; DIGEST_BYTES]) -> PathBuf {
        let hex = crate::protocol::hex(key);
        self.dir.join(&hex[..2]).join(format!("{hex}.bin"))
    }

    /// Fetch and verify the payload stored under `key`. Returns `None`
    /// on a clean miss *and* on any verification failure; in the latter
    /// case the corrupt entry is deleted (counted as a repair) so the
    /// caller's recompute-and-[`put`](DiskCache::put) heals it.
    #[must_use]
    pub fn get(&self, key: &[u8; DIGEST_BYTES]) -> Option<Vec<u8>> {
        let path = self.entry_path(key);
        let raw = match fs::read(&path) {
            Ok(raw) => raw,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match verify_entry(&raw, key) {
            Some(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            None => {
                // Corrupt: delete so a fresh put repairs it. Removal
                // failure is tolerable — the next read re-verifies.
                let _ = fs::remove_file(&path);
                self.repairs.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store `payload` under `key` atomically (temp file + rename).
    /// Errors are swallowed: the cache is an accelerator, and a failed
    /// write merely costs the next request a recompute.
    pub fn put(&self, key: &[u8; DIGEST_BYTES], payload: &[u8]) {
        if self.try_put(key, payload).is_ok() {
            self.writes.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn try_put(&self, key: &[u8; DIGEST_BYTES], payload: &[u8]) -> std::io::Result<()> {
        let path = self.entry_path(key);
        let parent = path.parent().unwrap_or(&self.dir);
        fs::create_dir_all(parent)?;
        let tmp = parent.join(format!(
            "tmp-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(MAGIC)?;
            f.write_all(key)?;
            f.write_all(&sha256(payload))?;
            f.write_all(&(payload.len() as u64).to_be_bytes())?;
            f.write_all(payload)?;
            f.sync_all()?;
        }
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Snapshot the counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            repairs: self.repairs.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// The cache root.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

fn verify_entry(raw: &[u8], key: &[u8; DIGEST_BYTES]) -> Option<Vec<u8>> {
    if raw.len() < HEADER_LEN || &raw[..8] != MAGIC {
        return None;
    }
    let stored_key = &raw[8..8 + DIGEST_BYTES];
    if stored_key != key {
        return None;
    }
    let digest_at = 8 + DIGEST_BYTES;
    let len_at = digest_at + DIGEST_BYTES;
    let stored_digest = &raw[digest_at..len_at];
    let mut len8 = [0u8; 8];
    len8.copy_from_slice(&raw[len_at..len_at + 8]);
    let len = u64::from_be_bytes(len8) as usize;
    let payload = &raw[HEADER_LEN..];
    if payload.len() != len {
        return None;
    }
    if sha256(payload) != *stored_digest.first_chunk::<DIGEST_BYTES>()? {
        return None;
    }
    Some(payload.to_vec())
}

// `first_chunk` needs the slice to be at least DIGEST_BYTES long; the
// header-length check above guarantees that, but going through the
// Option keeps the function panic-free by construction.

/// Read an entry's raw on-disk bytes (test and inspection helper).
///
/// # Errors
///
/// Propagates the underlying `fs::read` failure.
pub fn read_raw_entry(cache: &DiskCache, key: &[u8; DIGEST_BYTES]) -> std::io::Result<Vec<u8>> {
    let mut raw = Vec::new();
    fs::File::open(cache.entry_path(key))?.read_to_end(&mut raw)?;
    Ok(raw)
}

/// Overwrite an entry's raw on-disk bytes in place (test helper for
/// simulating torn writes and bit rot).
///
/// # Errors
///
/// Propagates the underlying `fs::write` failure.
pub fn write_raw_entry(
    cache: &DiskCache,
    key: &[u8; DIGEST_BYTES],
    raw: &[u8],
) -> std::io::Result<()> {
    fs::write(cache.entry_path(key), raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flexserve-cache-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip_and_counters() {
        let cache = DiskCache::open(scratch("roundtrip")).unwrap();
        let key = DiskCache::key_for(b"request");
        assert_eq!(cache.get(&key), None);
        cache.put(&key, b"reply bytes");
        assert_eq!(cache.get(&key), Some(b"reply bytes".to_vec()));
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.repairs, stats.writes),
            (1, 1, 0, 1)
        );
    }

    #[test]
    fn flipped_payload_byte_is_repaired_as_a_miss() {
        let cache = DiskCache::open(scratch("flippay")).unwrap();
        let key = DiskCache::key_for(b"victim");
        cache.put(&key, b"precious artifact");
        let mut raw = read_raw_entry(&cache, &key).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        write_raw_entry(&cache, &key, &raw).unwrap();
        assert_eq!(cache.get(&key), None, "corrupt entry must read as miss");
        assert_eq!(cache.stats().repairs, 1);
        assert!(
            !cache.entry_path(&key).exists(),
            "corrupt entry must be deleted for repair"
        );
        cache.put(&key, b"precious artifact");
        assert_eq!(cache.get(&key), Some(b"precious artifact".to_vec()));
    }

    #[test]
    fn flipped_header_byte_is_repaired_as_a_miss() {
        let cache = DiskCache::open(scratch("fliphdr")).unwrap();
        let key = DiskCache::key_for(b"victim2");
        cache.put(&key, b"metadata matters");
        let mut raw = read_raw_entry(&cache, &key).unwrap();
        raw[12] ^= 0x01; // inside the stored key
        write_raw_entry(&cache, &key, &raw).unwrap();
        assert_eq!(cache.get(&key), None);
        assert_eq!(cache.stats().repairs, 1);
    }

    #[test]
    fn truncated_entry_is_repaired_as_a_miss() {
        let cache = DiskCache::open(scratch("trunc")).unwrap();
        let key = DiskCache::key_for(b"victim3");
        cache.put(&key, b"will be torn");
        let raw = read_raw_entry(&cache, &key).unwrap();
        write_raw_entry(&cache, &key, &raw[..raw.len() / 2]).unwrap();
        assert_eq!(cache.get(&key), None);
        assert_eq!(cache.stats().repairs, 1);
    }

    #[test]
    fn empty_and_garbage_files_are_misses_not_panics() {
        let cache = DiskCache::open(scratch("garbage")).unwrap();
        let key = DiskCache::key_for(b"victim4");
        fs::create_dir_all(cache.entry_path(&key).parent().unwrap()).unwrap();
        fs::write(cache.entry_path(&key), b"").unwrap();
        assert_eq!(cache.get(&key), None);
        fs::write(cache.entry_path(&key), b"short").unwrap();
        assert_eq!(cache.get(&key), None);
    }
}
