//! The wire protocol: length-prefixed frames carrying a small binary
//! request/reply codec.
//!
//! Every frame is a 4-byte big-endian length followed by that many
//! payload bytes, capped at [`MAX_FRAME`]; an oversized length is
//! rejected *before* any body byte is read, so a hostile peer cannot
//! make the daemon allocate unbounded memory. The payload codec is
//! integer-only and bounds-checked everywhere: arbitrary, truncated or
//! corrupt bytes decode to a [`ProtoError`], never a panic — the
//! `protocol_props` property tests drive this with random frames.
//!
//! A request payload is
//!
//! ```text
//! [version u8][deadline_ms u64be][core]
//! core := [kind u8][kind-specific body]
//! ```
//!
//! The *core* — everything except the volatile deadline header — is the
//! content-addressed cache key material: two requests asking for the
//! same computation encode to the same core bytes and therefore the
//! same SHA-256 key, regardless of their deadlines.

use std::io::{Read, Write};

/// Protocol version carried in every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard cap on frame payloads in both directions (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// Hard cap on sub-requests inside one batch.
pub const MAX_BATCH: usize = 512;

/// Hard cap on scripted simulation inputs.
pub const MAX_INPUTS: usize = 4 * 1024;

/// Request kinds and their payloads. `Status`, `Drain` and `Batch` are
/// service-level; the rest are pure computations and therefore
/// cacheable. `Boom` is the panic-injection probe the robustness soaks
/// (and any chaos-testing client) use to prove worker isolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Report queue depth, cache and robustness counters.
    Status,
    /// Stop accepting work, finish in-flight requests, exit cleanly.
    Drain,
    /// Assemble `source` for `(dialect, features)`; reply data is the
    /// program image.
    Assemble {
        /// Dialect name (`fc4`, `fc8`, `xacc`, `xls`).
        dialect: String,
        /// Feature list (empty, `revised`, or comma-separated names).
        features: String,
        /// Assembly source text.
        source: String,
    },
    /// Assemble and run the `flexcheck` analyzer; `deny` is the severity
    /// (0 info, 1 warning, 2 error) at which findings fail the request.
    Check {
        /// Dialect name.
        dialect: String,
        /// Feature list.
        features: String,
        /// Assembly source text.
        source: String,
        /// Deny severity byte (0 info, 1 warning, 2 error).
        deny: u8,
    },
    /// The link-admission gate: assemble and apply [`flexcheck::admit`]
    /// exactly as the field-reprogramming link would before transfer.
    Admit {
        /// Dialect name.
        dialect: String,
        /// Feature list.
        features: String,
        /// Assembly source text.
        source: String,
        /// Deny severity byte (0 info, 1 warning, 2 error).
        deny: u8,
    },
    /// Assemble and execute with scripted inputs; reply data is the
    /// output-port byte stream.
    Simulate {
        /// Dialect name.
        dialect: String,
        /// Feature list.
        features: String,
        /// Assembly source text.
        source: String,
        /// Scripted input-port bytes.
        inputs: Vec<u8>,
        /// Watchdog budget (cycles on fc4/fc8, instructions on the
        /// extended dialects).
        max_cycles: u64,
    },
    /// Fabricate and screen a seeded virtual wafer; optionally run the
    /// partial-yield salvage screen on top.
    Yield {
        /// Design name (`fc4`, `fc8`, `fc4plus`).
        design: String,
        /// Test voltage in millivolts (integer keeps cache keys exact).
        voltage_mv: u64,
        /// Wafer fabrication seed.
        seed: u64,
        /// Test vectors per die.
        cycles: u64,
        /// Also classify failing dies with the salvage screen.
        salvage: bool,
    },
    /// A batch of cacheable sub-requests fanned across the worker pool;
    /// the reply data carries one encoded sub-reply per sub-request, in
    /// order. Batches do not nest.
    Batch(Vec<Request>),
    /// Assemble and run the static fault-vulnerability analysis
    /// (`flexcheck::vuln`); the reply text is the rendered site
    /// classification, the reply data the 8-byte big-endian report
    /// digest.
    Vuln {
        /// Dialect name.
        dialect: String,
        /// Feature list.
        features: String,
        /// Assembly source text.
        source: String,
    },
    /// Panic-injection probe: the worker that picks this up panics.
    Boom,
}

impl Request {
    /// Whether replies to this request are pure functions of the core
    /// bytes and may be cached.
    #[must_use]
    pub fn cacheable(&self) -> bool {
        matches!(
            self,
            Request::Assemble { .. }
                | Request::Check { .. }
                | Request::Admit { .. }
                | Request::Simulate { .. }
                | Request::Yield { .. }
                | Request::Vuln { .. }
        )
    }

    /// Short kind name for logs and reports.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Request::Status => "status",
            Request::Drain => "drain",
            Request::Assemble { .. } => "assemble",
            Request::Check { .. } => "check",
            Request::Admit { .. } => "admit",
            Request::Simulate { .. } => "simulate",
            Request::Yield { .. } => "yield",
            Request::Vuln { .. } => "vuln",
            Request::Batch(_) => "batch",
            Request::Boom => "boom",
        }
    }
}

/// A decoded request plus its volatile (non-cache-key) header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Relative deadline in milliseconds; `0` means none.
    pub deadline_ms: u64,
    /// The request itself.
    pub request: Request,
}

/// Reply status. `Ok` and `Error` are deterministic verdicts about the
/// request; `Shed`, `Protocol` and `Deadline` are service conditions
/// and never enter the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyStatus {
    /// The computation succeeded.
    Ok,
    /// The computation failed deterministically (bad source, findings at
    /// the deny severity, unknown names, simulator fault).
    Error,
    /// Load was shed: the work queue or connection limit was full. Retry
    /// later; nothing was computed.
    Shed,
    /// The frame or request bytes were malformed.
    Protocol,
    /// The request's deadline expired before the computation finished.
    Deadline,
}

impl ReplyStatus {
    fn to_byte(self) -> u8 {
        match self {
            ReplyStatus::Ok => 0,
            ReplyStatus::Error => 1,
            ReplyStatus::Shed => 2,
            ReplyStatus::Protocol => 3,
            ReplyStatus::Deadline => 4,
        }
    }

    fn from_byte(b: u8) -> Result<ReplyStatus, ProtoError> {
        match b {
            0 => Ok(ReplyStatus::Ok),
            1 => Ok(ReplyStatus::Error),
            2 => Ok(ReplyStatus::Shed),
            3 => Ok(ReplyStatus::Protocol),
            4 => Ok(ReplyStatus::Deadline),
            other => Err(ProtoError::new(format!("unknown reply status {other}"))),
        }
    }

    /// Render for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReplyStatus::Ok => "ok",
            ReplyStatus::Error => "error",
            ReplyStatus::Shed => "shed",
            ReplyStatus::Protocol => "protocol-error",
            ReplyStatus::Deadline => "deadline",
        }
    }
}

/// A reply: status, cache provenance, human-readable text and an
/// optional binary payload (program image, output bytes, batch data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The verdict.
    pub status: ReplyStatus,
    /// `true` when served from the content-addressed cache.
    pub cached: bool,
    /// Human-readable result or error text.
    pub text: String,
    /// Binary payload (empty when the text is the whole answer).
    pub data: Vec<u8>,
}

impl Reply {
    /// An `Ok` reply with text only.
    #[must_use]
    pub fn ok(text: impl Into<String>) -> Reply {
        Reply {
            status: ReplyStatus::Ok,
            cached: false,
            text: text.into(),
            data: Vec::new(),
        }
    }

    /// A deterministic error reply.
    #[must_use]
    pub fn error(text: impl Into<String>) -> Reply {
        Reply {
            status: ReplyStatus::Error,
            cached: false,
            text: text.into(),
            data: Vec::new(),
        }
    }

    /// A load-shed reply.
    #[must_use]
    pub fn shed(text: impl Into<String>) -> Reply {
        Reply {
            status: ReplyStatus::Shed,
            cached: false,
            text: text.into(),
            data: Vec::new(),
        }
    }

    /// A protocol-error reply.
    #[must_use]
    pub fn protocol(text: impl Into<String>) -> Reply {
        Reply {
            status: ReplyStatus::Protocol,
            cached: false,
            text: text.into(),
            data: Vec::new(),
        }
    }

    /// A deadline-expired reply.
    #[must_use]
    pub fn deadline() -> Reply {
        Reply {
            status: ReplyStatus::Deadline,
            cached: false,
            text: "deadline expired before the request finished".to_string(),
            data: Vec::new(),
        }
    }
}

/// A malformed frame or payload. Always a value, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(String);

impl ProtoError {
    fn new(msg: impl Into<String>) -> ProtoError {
        ProtoError(msg.into())
    }
}

impl core::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------- codec

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(&(v.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(v);
    }

    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ProtoError::new(format!("truncated {what}")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ProtoError> {
        Ok(self.take(1, what)?[0])
    }

    fn u64(&mut self, what: &str) -> Result<u64, ProtoError> {
        let bytes = self.take(8, what)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(u64::from_be_bytes(raw))
    }

    fn bytes(&mut self, max: usize, what: &str) -> Result<&'a [u8], ProtoError> {
        let raw = self.take(4, what)?;
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(raw);
        let len = u32::from_be_bytes(len4) as usize;
        if len > max {
            return Err(ProtoError::new(format!(
                "{what} length {len} exceeds {max}"
            )));
        }
        self.take(len, what)
    }

    fn str(&mut self, max: usize, what: &str) -> Result<String, ProtoError> {
        let raw = self.bytes(max, what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| ProtoError::new(format!("{what} is not valid UTF-8")))
    }

    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn deny_valid(deny: u8) -> Result<u8, ProtoError> {
    if deny <= 2 {
        Ok(deny)
    } else {
        Err(ProtoError::new(format!(
            "deny severity byte {deny} out of range (0 info, 1 warning, 2 error)"
        )))
    }
}

/// Encode a request *core* — the cache-key material: kind byte plus
/// body, without the volatile deadline header.
#[must_use]
pub fn encode_core(request: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    encode_core_into(&mut w, request);
    w.buf
}

fn encode_core_into(w: &mut Writer, request: &Request) {
    match request {
        Request::Status => w.u8(0),
        Request::Drain => w.u8(1),
        Request::Assemble {
            dialect,
            features,
            source,
        } => {
            w.u8(2);
            w.str(dialect);
            w.str(features);
            w.str(source);
        }
        Request::Check {
            dialect,
            features,
            source,
            deny,
        } => {
            w.u8(3);
            w.str(dialect);
            w.str(features);
            w.str(source);
            w.u8(*deny);
        }
        Request::Admit {
            dialect,
            features,
            source,
            deny,
        } => {
            w.u8(4);
            w.str(dialect);
            w.str(features);
            w.str(source);
            w.u8(*deny);
        }
        Request::Simulate {
            dialect,
            features,
            source,
            inputs,
            max_cycles,
        } => {
            w.u8(5);
            w.str(dialect);
            w.str(features);
            w.str(source);
            w.bytes(inputs);
            w.u64(*max_cycles);
        }
        Request::Yield {
            design,
            voltage_mv,
            seed,
            cycles,
            salvage,
        } => {
            w.u8(6);
            w.str(design);
            w.u64(*voltage_mv);
            w.u64(*seed);
            w.u64(*cycles);
            w.u8(u8::from(*salvage));
        }
        Request::Batch(subs) => {
            w.u8(7);
            w.buf.extend_from_slice(&(subs.len() as u32).to_be_bytes());
            for sub in subs {
                let core = encode_core(sub);
                w.bytes(&core);
            }
        }
        Request::Boom => w.u8(8),
        Request::Vuln {
            dialect,
            features,
            source,
        } => {
            w.u8(9);
            w.str(dialect);
            w.str(features);
            w.str(source);
        }
    }
}

fn decode_core_reader(r: &mut Reader<'_>, nested: bool) -> Result<Request, ProtoError> {
    let kind = r.u8("request kind")?;
    match kind {
        0 => Ok(Request::Status),
        1 => Ok(Request::Drain),
        2 => Ok(Request::Assemble {
            dialect: r.str(64, "dialect")?,
            features: r.str(256, "features")?,
            source: r.str(MAX_FRAME, "source")?,
        }),
        3 => Ok(Request::Check {
            dialect: r.str(64, "dialect")?,
            features: r.str(256, "features")?,
            source: r.str(MAX_FRAME, "source")?,
            deny: deny_valid(r.u8("deny severity")?)?,
        }),
        4 => Ok(Request::Admit {
            dialect: r.str(64, "dialect")?,
            features: r.str(256, "features")?,
            source: r.str(MAX_FRAME, "source")?,
            deny: deny_valid(r.u8("deny severity")?)?,
        }),
        5 => Ok(Request::Simulate {
            dialect: r.str(64, "dialect")?,
            features: r.str(256, "features")?,
            source: r.str(MAX_FRAME, "source")?,
            inputs: r.bytes(MAX_INPUTS, "inputs")?.to_vec(),
            max_cycles: r.u64("max_cycles")?,
        }),
        6 => Ok(Request::Yield {
            design: r.str(64, "design")?,
            voltage_mv: r.u64("voltage")?,
            seed: r.u64("seed")?,
            cycles: r.u64("cycles")?,
            salvage: match r.u8("salvage flag")? {
                0 => false,
                1 => true,
                other => {
                    return Err(ProtoError::new(format!("salvage flag {other} not 0/1")));
                }
            },
        }),
        7 => {
            if nested {
                return Err(ProtoError::new("batches do not nest"));
            }
            let raw = r.take(4, "batch count")?;
            let mut len4 = [0u8; 4];
            len4.copy_from_slice(raw);
            let count = u32::from_be_bytes(len4) as usize;
            if count > MAX_BATCH {
                return Err(ProtoError::new(format!(
                    "batch of {count} exceeds the {MAX_BATCH}-request cap"
                )));
            }
            let mut subs = Vec::with_capacity(count.min(64));
            for _ in 0..count {
                let core = r.bytes(MAX_FRAME, "batch entry")?;
                let mut sub = Reader::new(core);
                let request = decode_core_reader(&mut sub, true)?;
                if !sub.finished() {
                    return Err(ProtoError::new("trailing bytes after batch entry"));
                }
                subs.push(request);
            }
            Ok(Request::Batch(subs))
        }
        8 => Ok(Request::Boom),
        9 => Ok(Request::Vuln {
            dialect: r.str(64, "dialect")?,
            features: r.str(256, "features")?,
            source: r.str(MAX_FRAME, "source")?,
        }),
        other => Err(ProtoError::new(format!("unknown request kind {other}"))),
    }
}

/// Decode a request core (as produced by [`encode_core`]).
///
/// # Errors
///
/// [`ProtoError`] for any malformed byte sequence.
pub fn decode_core(core: &[u8]) -> Result<Request, ProtoError> {
    let mut r = Reader::new(core);
    let request = decode_core_reader(&mut r, false)?;
    if !r.finished() {
        return Err(ProtoError::new("trailing bytes after request"));
    }
    Ok(request)
}

/// Encode a full request payload: version, deadline header, core.
#[must_use]
pub fn encode_request(deadline_ms: u64, request: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(PROTOCOL_VERSION);
    w.u64(deadline_ms);
    encode_core_into(&mut w, request);
    w.buf
}

/// Decode a full request payload.
///
/// # Errors
///
/// [`ProtoError`] for a version mismatch or any malformed byte
/// sequence — arbitrary bytes never panic the decoder.
pub fn decode_request(payload: &[u8]) -> Result<Envelope, ProtoError> {
    let mut r = Reader::new(payload);
    let version = r.u8("version")?;
    if version != PROTOCOL_VERSION {
        return Err(ProtoError::new(format!(
            "protocol version {version} (this daemon speaks {PROTOCOL_VERSION})"
        )));
    }
    let deadline_ms = r.u64("deadline")?;
    let request = decode_core_reader(&mut r, false)?;
    if !r.finished() {
        return Err(ProtoError::new("trailing bytes after request"));
    }
    Ok(Envelope {
        deadline_ms,
        request,
    })
}

/// Encode a reply *core*: status, flags, text, data — the form stored
/// in the cache and embedded per-entry in batch replies. `cached` is
/// always encoded as given; cache writers zero it first so stored
/// entries are provenance-free.
#[must_use]
pub fn encode_reply_core(reply: &Reply) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(reply.status.to_byte());
    w.u8(u8::from(reply.cached));
    w.str(&reply.text);
    w.bytes(&reply.data);
    w.buf
}

fn decode_reply_reader(r: &mut Reader<'_>) -> Result<Reply, ProtoError> {
    let status = ReplyStatus::from_byte(r.u8("reply status")?)?;
    let flags = r.u8("reply flags")?;
    if flags > 1 {
        return Err(ProtoError::new(format!("reply flags {flags} out of range")));
    }
    let text = r.str(MAX_FRAME, "reply text")?;
    let data = r.bytes(MAX_FRAME, "reply data")?.to_vec();
    Ok(Reply {
        status,
        cached: flags == 1,
        text,
        data,
    })
}

/// Decode a reply core (as produced by [`encode_reply_core`]).
///
/// # Errors
///
/// [`ProtoError`] for any malformed byte sequence.
pub fn decode_reply_core(core: &[u8]) -> Result<Reply, ProtoError> {
    let mut r = Reader::new(core);
    let reply = decode_reply_reader(&mut r)?;
    if !r.finished() {
        return Err(ProtoError::new("trailing bytes after reply"));
    }
    Ok(reply)
}

/// Encode a full reply payload (version byte + reply core).
#[must_use]
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(PROTOCOL_VERSION);
    let core = encode_reply_core(reply);
    w.buf.extend_from_slice(&core);
    w.buf
}

/// Decode a full reply payload.
///
/// # Errors
///
/// [`ProtoError`] for a version mismatch or malformed bytes.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, ProtoError> {
    let mut r = Reader::new(payload);
    let version = r.u8("version")?;
    if version != PROTOCOL_VERSION {
        return Err(ProtoError::new(format!("protocol version {version}")));
    }
    let reply = decode_reply_reader(&mut r)?;
    if !r.finished() {
        return Err(ProtoError::new("trailing bytes after reply"));
    }
    Ok(reply)
}

/// Pack batch sub-replies into batch reply data.
#[must_use]
pub fn encode_batch_data(replies: &[Reply]) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf
        .extend_from_slice(&(replies.len() as u32).to_be_bytes());
    for reply in replies {
        let core = encode_reply_core(reply);
        w.bytes(&core);
    }
    w.buf
}

/// Unpack batch reply data into sub-replies.
///
/// # Errors
///
/// [`ProtoError`] for any malformed byte sequence.
pub fn decode_batch_data(data: &[u8]) -> Result<Vec<Reply>, ProtoError> {
    let mut r = Reader::new(data);
    let raw = r.take(4, "batch reply count")?;
    let mut len4 = [0u8; 4];
    len4.copy_from_slice(raw);
    let count = u32::from_be_bytes(len4) as usize;
    if count > MAX_BATCH {
        return Err(ProtoError::new(format!("batch reply count {count}")));
    }
    let mut replies = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let core = r.bytes(MAX_FRAME, "batch reply entry")?;
        replies.push(decode_reply_core(core)?);
    }
    if !r.finished() {
        return Err(ProtoError::new("trailing bytes after batch reply"));
    }
    Ok(replies)
}

/// A digest over reply cores with the cache-provenance flag cleared:
/// two runs of the same batch — cold or warm — must produce the same
/// digest byte-for-byte. Hex-rendered SHA-256.
#[must_use]
pub fn reply_digest(replies: &[Reply]) -> String {
    let mut material = Vec::new();
    for reply in replies {
        let mut canon = reply.clone();
        canon.cached = false;
        let core = encode_reply_core(&canon);
        material.extend_from_slice(&(core.len() as u32).to_be_bytes());
        material.extend_from_slice(&core);
    }
    hex(&flexlink::crypto::sha256(&material))
}

/// Render bytes as lowercase hex.
#[must_use]
pub fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

// -------------------------------------------------------------- framing

/// How reading a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream cleanly before a new frame started.
    Closed,
    /// The advertised length exceeds [`MAX_FRAME`]; no body byte was
    /// read. The stream is no longer in sync and must be dropped after
    /// an error reply.
    TooLarge(usize),
    /// The stream ended or failed mid-frame.
    Io(std::io::Error),
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "peer closed the stream"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Io(e) => write!(f, "stream error: {e}"),
        }
    }
}

/// Write one length-prefixed frame.
///
/// # Errors
///
/// Propagates stream IO errors; refuses payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the cap", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame, rejecting oversized lengths before
/// any body byte is read.
///
/// # Errors
///
/// [`FrameError`] for clean close, oversized frames, or stream trouble.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame body",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(request: &Request) {
        let payload = encode_request(17, request);
        let envelope = decode_request(&payload).unwrap();
        assert_eq!(envelope.deadline_ms, 17);
        assert_eq!(&envelope.request, request);
        // the core alone round-trips too, and is a strict suffix of the
        // payload (the cache-key contract)
        let core = encode_core(request);
        assert_eq!(decode_core(&core).unwrap(), *request);
        assert!(payload.ends_with(&core));
    }

    #[test]
    fn every_request_kind_roundtrips() {
        roundtrip(&Request::Status);
        roundtrip(&Request::Drain);
        roundtrip(&Request::Boom);
        roundtrip(&Request::Assemble {
            dialect: "fc4".into(),
            features: String::new(),
            source: "load r0\nhalt\n".into(),
        });
        roundtrip(&Request::Check {
            dialect: "xacc".into(),
            features: "revised".into(),
            source: "halt\n".into(),
            deny: 2,
        });
        roundtrip(&Request::Admit {
            dialect: "xls".into(),
            features: "adc,shift".into(),
            source: "halt\n".into(),
            deny: 0,
        });
        roundtrip(&Request::Simulate {
            dialect: "fc8".into(),
            features: String::new(),
            source: "load r0\nhalt\n".into(),
            inputs: vec![1, 2, 3],
            max_cycles: 100_000,
        });
        roundtrip(&Request::Yield {
            design: "fc4plus".into(),
            voltage_mv: 4_500,
            seed: 0xD1E5,
            cycles: 2_000,
            salvage: true,
        });
        roundtrip(&Request::Vuln {
            dialect: "fc4".into(),
            features: String::new(),
            source: "load r0\nhalt\n".into(),
        });
        roundtrip(&Request::Batch(vec![
            Request::Boom,
            Request::Assemble {
                dialect: "fc4".into(),
                features: String::new(),
                source: "halt\n".into(),
            },
        ]));
    }

    #[test]
    fn replies_roundtrip_and_batch_data_packs() {
        let replies = vec![
            Reply::ok("fine"),
            Reply {
                status: ReplyStatus::Ok,
                cached: true,
                text: "cached".into(),
                data: vec![9, 8, 7],
            },
            Reply::shed("busy"),
        ];
        for reply in &replies {
            let payload = encode_reply(reply);
            assert_eq!(&decode_reply(&payload).unwrap(), reply);
        }
        let data = encode_batch_data(&replies);
        assert_eq!(decode_batch_data(&data).unwrap(), replies);
    }

    #[test]
    fn reply_digest_ignores_cache_provenance() {
        let cold = vec![Reply::ok("x"), Reply::error("y")];
        let mut warm = cold.clone();
        for r in &mut warm {
            r.cached = true;
        }
        assert_eq!(reply_digest(&cold), reply_digest(&warm));
        let other = vec![Reply::ok("x"), Reply::error("z")];
        assert_ne!(reply_digest(&cold), reply_digest(&other));
    }

    #[test]
    fn nested_batches_and_oversized_counts_are_rejected() {
        let inner = Request::Batch(vec![Request::Boom]);
        let outer = encode_core(&Request::Batch(vec![inner]));
        // the encoder will happily emit it; the decoder must refuse
        assert!(decode_core(&outer).is_err());

        let mut fake = vec![7u8];
        fake.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(decode_core(&fake).is_err());
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let payload = encode_request(
            9,
            &Request::Simulate {
                dialect: "fc4".into(),
                features: String::new(),
                source: "load r0\nhalt\n".into(),
                inputs: vec![4, 5],
                max_cycles: 1_000,
            },
        );
        for cut in 0..payload.len() {
            assert!(
                decode_request(&payload[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn framing_roundtrips_and_rejects_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));

        let huge = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        let mut cursor = std::io::Cursor::new(huge);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::TooLarge(_))
        ));

        let truncated = vec![0, 0, 0, 9, 1, 2];
        let mut cursor = std::io::Cursor::new(truncated);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
    }
}
