//! Request execution: the pure computations behind the daemon.
//!
//! Every method here is a deterministic function of the request core —
//! that is the property that makes exact content-addressed caching
//! sound, and it holds because the underlying toolchain is already
//! seed-deterministic (wafers from [`flexfab`], salvage screens from
//! [`flexinject`], simulation from [`flexicore`]). Verdicts come back
//! as [`Reply`] values: `Ok` and deterministic `Error` replies are both
//! cacheable; only service conditions (shed, deadline, panic) are not,
//! and those are produced by the server layer, not here.
//!
//! Long campaigns (simulation, wafer screens) poll a [`Deadline`]
//! between bounded chunks so a deadline cannot be overshot by more than
//! one chunk.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use flexasm::{Assembler, Target};
use flexcheck::Severity;
use flexfab::wafer_run::{CoreDesign, WaferExperiment};
use flexicore::exec::AnyCore;
use flexicore::io::{RecordingOutput, ScriptedInput};
use flexicore::sim::NoFaults;
use flexinject::{SalvageConfig, SalvageScreen};

use crate::protocol::{Reply, Request};

/// Budget-units executed between deadline polls during simulation. On
/// fc4/fc8 these are cycles; on the extended dialects, retired
/// instructions — either way the poll interval stays sub-millisecond.
const SIM_CHUNK: u64 = 5_000;

/// A per-request deadline. `none()` never expires; `in_ms(0)` is also
/// treated as "no deadline" so the wire default of zero means
/// unlimited.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline.
    #[must_use]
    pub fn none() -> Deadline {
        Deadline { at: None }
    }

    /// Expire `ms` milliseconds from now; `0` means no deadline.
    #[must_use]
    pub fn in_ms(ms: u64) -> Deadline {
        if ms == 0 {
            Deadline::none()
        } else {
            Deadline {
                at: Some(Instant::now() + Duration::from_millis(ms)),
            }
        }
    }

    /// Has the deadline passed?
    #[must_use]
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }
}

fn map_deny(deny: u8) -> Severity {
    match deny {
        0 => Severity::Info,
        1 => Severity::Warning,
        _ => Severity::Error,
    }
}

/// The daemon's computation engine. Stateless with respect to results;
/// the only state is an amortization cache of prepared
/// [`SalvageScreen`]s (kernel assembly + fault-free baseline), which
/// never changes any answer.
#[derive(Debug, Default)]
pub struct Engine {
    screens: Mutex<HashMap<&'static str, Arc<SalvageScreen>>>,
}

impl Engine {
    /// A fresh engine.
    #[must_use]
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Execute one computation request. Never panics for malformed or
    /// hostile *inputs* — those come back as deterministic `Error`
    /// replies; [`Request::Boom`] panics by design (it exists to prove
    /// the worker isolation catches exactly that).
    #[must_use]
    pub fn execute(&self, request: &Request, deadline: &Deadline) -> Reply {
        if deadline.expired() {
            return Reply::deadline();
        }
        match request {
            Request::Assemble {
                dialect,
                features,
                source,
            } => assemble_reply(dialect, features, source),
            Request::Check {
                dialect,
                features,
                source,
                deny,
            } => check_reply(dialect, features, source, *deny),
            Request::Admit {
                dialect,
                features,
                source,
                deny,
            } => admit_reply(dialect, features, source, *deny),
            Request::Simulate {
                dialect,
                features,
                source,
                inputs,
                max_cycles,
            } => simulate_reply(dialect, features, source, inputs, *max_cycles, deadline),
            Request::Yield {
                design,
                voltage_mv,
                seed,
                cycles,
                salvage,
            } => self.yield_reply(design, *voltage_mv, *seed, *cycles, *salvage, deadline),
            Request::Vuln {
                dialect,
                features,
                source,
            } => vuln_reply(dialect, features, source),
            Request::Boom => panic!("boom: injected worker panic probe"),
            Request::Status | Request::Drain | Request::Batch(_) => {
                Reply::protocol("not a computation request")
            }
        }
    }

    fn screen_for(&self, design: CoreDesign) -> Result<Arc<SalvageScreen>, String> {
        // A panic elsewhere while holding this lock must not poison the
        // whole daemon's salvage path: take the inner value either way.
        let mut screens = self
            .screens
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(screen) = screens.get(design.name()) {
            return Ok(Arc::clone(screen));
        }
        let screen = Arc::new(
            SalvageScreen::new(design, SalvageConfig::default()).map_err(|e| e.to_string())?,
        );
        screens.insert(design.name(), Arc::clone(&screen));
        Ok(screen)
    }

    fn yield_reply(
        &self,
        design: &str,
        voltage_mv: u64,
        seed: u64,
        cycles: u64,
        salvage: bool,
        deadline: &Deadline,
    ) -> Reply {
        let Some(design) = CoreDesign::parse(design) else {
            return Reply::error(format!("unknown design `{design}` (fc4, fc8, fc4plus)"));
        };
        if cycles == 0 || cycles > 1_000_000 {
            return Reply::error(format!("cycles {cycles} out of range (1..=1000000)"));
        }
        let voltage = voltage_mv as f64 / 1000.0;
        let experiment = WaferExperiment::new(design, seed);
        if deadline.expired() {
            return Reply::deadline();
        }
        let run = match experiment.run_with(voltage, cycles, 1) {
            Ok(run) => run,
            Err(e) => return Reply::error(format!("wafer screen failed: {e}")),
        };
        let stats = run.current_stats();
        let mut text = format!(
            "design {} at {voltage:.3} V, seed {seed:#x}, {cycles} vectors\n\
             yield-full {:.4}\nyield-inclusion {:.4}\ncurrent-mean-ma {:.3}\n",
            design.name(),
            run.yield_full(),
            run.yield_inclusion(),
            stats.mean_ma,
        );
        if salvage {
            if deadline.expired() {
                return Reply::deadline();
            }
            let screen = match self.screen_for(design) {
                Ok(screen) => screen,
                Err(e) => return Reply::error(format!("salvage screen unavailable: {e}")),
            };
            let analysis = screen.analyze(&run);
            if deadline.expired() {
                return Reply::deadline();
            }
            let _ = std::fmt::Write::write_fmt(
                &mut text,
                format_args!(
                    "salvage-binary-yield {:.4}\nsalvage-partial-yield {:.4}\n",
                    analysis.binary_yield(true),
                    analysis.partial_yield(true),
                ),
            );
        }
        Reply::ok(text)
    }
}

fn parse_target(dialect: &str, features: &str) -> Result<Target, Reply> {
    Target::parse(dialect, features).map_err(|e| Reply::error(e.to_string()))
}

fn assemble_reply(dialect: &str, features: &str, source: &str) -> Reply {
    let target = match parse_target(dialect, features) {
        Ok(target) => target,
        Err(reply) => return reply,
    };
    match Assembler::new(target).assemble(source) {
        Ok(assembly) => {
            let text = format!(
                "assembled for {dialect}: {} instructions, {} bytes",
                assembly.static_instructions(),
                assembly.code_bytes(),
            );
            let data = assembly.into_program().as_bytes().to_vec();
            Reply {
                data,
                ..Reply::ok(text)
            }
        }
        Err(e) => Reply::error(e.to_string()),
    }
}

fn check_reply(dialect: &str, features: &str, source: &str, deny: u8) -> Reply {
    let target = match parse_target(dialect, features) {
        Ok(target) => target,
        Err(reply) => return reply,
    };
    let assembly = match Assembler::new(target).assemble(source) {
        Ok(assembly) => assembly,
        Err(e) => return Reply::error(e.to_string()),
    };
    let report = flexcheck::analyze(&target, assembly.program());
    let rendered = report.render();
    if report.has_at_least(map_deny(deny)) {
        Reply::error(rendered)
    } else {
        Reply::ok(rendered)
    }
}

fn admit_reply(dialect: &str, features: &str, source: &str, deny: u8) -> Reply {
    let target = match parse_target(dialect, features) {
        Ok(target) => target,
        Err(reply) => return reply,
    };
    let assembly = match Assembler::new(target).assemble(source) {
        Ok(assembly) => assembly,
        Err(e) => return Reply::error(e.to_string()),
    };
    match flexcheck::admit(&target, assembly.program(), map_deny(deny)) {
        Ok(()) => Reply::ok("admitted: no findings at or above the deny severity"),
        Err(findings) => {
            let mut text = format!(
                "refused: {} finding(s) at the deny severity\n",
                findings.len()
            );
            for finding in &findings {
                let _ = std::fmt::Write::write_fmt(&mut text, format_args!("{finding}\n"));
            }
            Reply::error(text)
        }
    }
}

fn vuln_reply(dialect: &str, features: &str, source: &str) -> Reply {
    let target = match parse_target(dialect, features) {
        Ok(target) => target,
        Err(reply) => return reply,
    };
    let assembly = match Assembler::new(target).assemble(source) {
        Ok(assembly) => assembly,
        Err(e) => return Reply::error(e.to_string()),
    };
    let report = flexcheck::vuln::analyze(&target, assembly.program());
    Reply {
        data: report.digest().to_be_bytes().to_vec(),
        ..Reply::ok(report.render())
    }
}

fn simulate_reply(
    dialect: &str,
    features: &str,
    source: &str,
    inputs: &[u8],
    max_cycles: u64,
    deadline: &Deadline,
) -> Reply {
    let target = match parse_target(dialect, features) {
        Ok(target) => target,
        Err(reply) => return reply,
    };
    if max_cycles == 0 || max_cycles > 100_000_000 {
        return Reply::error(format!(
            "max_cycles {max_cycles} out of range (1..=100000000)"
        ));
    }
    let assembly = match Assembler::new(target).assemble(source) {
        Ok(assembly) => assembly,
        Err(e) => return Reply::error(e.to_string()),
    };
    let mut core = AnyCore::for_dialect(target.dialect, target.features, assembly.into_program());
    let mut input = ScriptedInput::new(inputs.to_vec());
    let mut output = RecordingOutput::new();
    let mut faults = NoFaults;
    let mut powered_on = false;
    // The watchdog budget is an absolute threshold on the core's
    // cumulative counter, so chunking means walking that threshold up
    // in SIM_CHUNK steps with a deadline poll between steps.
    while !core.is_halted() && core.budget_spent() < max_cycles {
        if deadline.expired() {
            return Reply::deadline();
        }
        let slice = core
            .budget_spent()
            .saturating_add(SIM_CHUNK)
            .min(max_cycles);
        let step = if powered_on {
            core.resume_with(&mut input, &mut output, slice, &mut faults)
        } else {
            powered_on = true;
            core.run_with(&mut input, &mut output, slice, &mut faults)
        };
        if let Err(e) = step {
            return Reply::error(format!("simulation fault: {e}"));
        }
    }
    let text = format!(
        "{}: {} instructions, {} cycles",
        if core.is_halted() {
            "halted"
        } else {
            "budget exhausted"
        },
        core.instructions(),
        core.cycles(),
    );
    Reply {
        data: output.values().to_vec(),
        ..Reply::ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ReplyStatus;

    const ADD3: &str = "load r0\naddi 3\nstore r1\nhalt\n";

    fn engine() -> Engine {
        Engine::new()
    }

    #[test]
    fn assemble_is_deterministic_and_carries_the_image() {
        let req = Request::Assemble {
            dialect: "fc4".into(),
            features: String::new(),
            source: ADD3.into(),
        };
        let a = engine().execute(&req, &Deadline::none());
        let b = engine().execute(&req, &Deadline::none());
        assert_eq!(a, b);
        assert_eq!(a.status, ReplyStatus::Ok);
        assert!(!a.data.is_empty(), "program image rides in data");
    }

    #[test]
    fn bad_source_is_an_error_reply_not_a_panic() {
        let req = Request::Assemble {
            dialect: "fc4".into(),
            features: String::new(),
            source: "not an instruction\n".into(),
        };
        assert_eq!(
            engine().execute(&req, &Deadline::none()).status,
            ReplyStatus::Error
        );
        let req = Request::Assemble {
            dialect: "fc99".into(),
            features: String::new(),
            source: ADD3.into(),
        };
        assert_eq!(
            engine().execute(&req, &Deadline::none()).status,
            ReplyStatus::Error
        );
    }

    #[test]
    fn simulate_runs_and_respects_expired_deadlines() {
        let req = Request::Simulate {
            dialect: "fc4".into(),
            features: String::new(),
            source: ADD3.into(),
            inputs: vec![4],
            max_cycles: 100_000,
        };
        let reply = engine().execute(&req, &Deadline::none());
        assert_eq!(reply.status, ReplyStatus::Ok, "{}", reply.text);
        assert!(reply.text.starts_with("halted"));
        assert_eq!(reply.data, vec![7], "4 + 3 emitted on the output port");

        // an expired deadline cancels an endless program mid-campaign
        let spin = Request::Simulate {
            dialect: "fc4".into(),
            features: String::new(),
            source: "label: jmp label\n".into(),
            inputs: vec![],
            max_cycles: 100_000_000,
        };
        let expired = Deadline::in_ms(1);
        std::thread::sleep(Duration::from_millis(3));
        let reply = engine().execute(&spin, &expired);
        assert_eq!(reply.status, ReplyStatus::Deadline);
    }

    #[test]
    fn admit_refuses_at_the_deny_severity() {
        // a program with no reachable halt trips the analyzer at Error
        let req = Request::Admit {
            dialect: "fc4".into(),
            features: String::new(),
            source: "label: jmp label\n".into(),
            deny: 2,
        };
        let reply = engine().execute(&req, &Deadline::none());
        assert_eq!(reply.status, ReplyStatus::Error);
        assert!(reply.text.starts_with("refused"), "{}", reply.text);

        let req = Request::Admit {
            dialect: "fc4".into(),
            features: String::new(),
            source: ADD3.into(),
            deny: 2,
        };
        let reply = engine().execute(&req, &Deadline::none());
        assert_eq!(reply.status, ReplyStatus::Ok, "{}", reply.text);
    }

    #[test]
    fn vuln_is_deterministic_and_carries_the_digest() {
        let req = Request::Vuln {
            dialect: "fc4".into(),
            features: String::new(),
            source: ADD3.into(),
        };
        let a = engine().execute(&req, &Deadline::none());
        let b = engine().execute(&req, &Deadline::none());
        assert_eq!(a, b);
        assert_eq!(a.status, ReplyStatus::Ok, "{}", a.text);
        assert!(a.text.contains("provably masked"), "{}", a.text);
        assert_eq!(a.data.len(), 8, "8-byte report digest rides in data");
        assert!(req.cacheable(), "vuln replies are pure and cacheable");
    }

    #[test]
    fn yield_query_is_deterministic() {
        let req = Request::Yield {
            design: "fc4".into(),
            voltage_mv: 4_500,
            seed: 7,
            cycles: 120,
            salvage: false,
        };
        let a = engine().execute(&req, &Deadline::none());
        let b = engine().execute(&req, &Deadline::none());
        assert_eq!(a, b);
        assert_eq!(a.status, ReplyStatus::Ok, "{}", a.text);
        assert!(a.text.contains("yield-inclusion"), "{}", a.text);
    }
}
