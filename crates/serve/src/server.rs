//! The daemon: listener, bounded work queue, panic-isolated worker
//! pool, drain choreography.
//!
//! The robustness contract, end to end:
//!
//! * **Exactly one reply per request.** Every frame that decodes gets
//!   exactly one reply frame; every batch entry gets exactly one
//!   sub-reply. Panics, sheds and deadline expiries are all *replies*,
//!   never silence.
//! * **Panic isolation.** Workers run each request under
//!   `catch_unwind`; a panicking request (hostile input, the `Boom`
//!   probe, a latent bug) produces an `Error` reply and a bumped panic
//!   counter — the daemon never dies. A panic that somehow escapes the
//!   catch respawns the worker thread via a drop guard.
//! * **Backpressure, not collapse.** The work queue is a bounded
//!   `sync_channel` submitted to with `try_send`; when it is full the
//!   connection thread answers `Shed` immediately instead of queueing
//!   unbounded work. A connection cap sheds whole connections the same
//!   way.
//! * **Graceful drain.** A `Drain` request (or
//!   [`ServerHandle::trigger_drain`], wired to stdin-EOF by the CLI)
//!   stops the accept loop, lets in-flight and queued requests finish
//!   and reply, then stops the workers. Nothing in flight is lost.
//!   `kill -9` needs no cooperation: the cache's atomic writes mean an
//!   uncooperative death can never poison persisted state.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::cache::{CacheStats, DiskCache};
use crate::engine::{Deadline, Engine};
use crate::protocol::{
    decode_reply_core, decode_request, encode_batch_data, encode_core, encode_reply,
    encode_reply_core, read_frame, write_frame, FrameError, Reply, ReplyStatus, Request,
};

/// How long connection threads block in a read before re-checking the
/// drain flag.
const READ_POLL: Duration = Duration::from_millis(200);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks a free port.
    pub addr: String,
    /// Worker threads (clamped to at least 1; honors the
    /// `FLEXSHARD_FORCE_THREADS` override like every other pool in the
    /// workspace).
    pub workers: usize,
    /// Bounded work-queue depth; a full queue sheds.
    pub queue_depth: usize,
    /// Concurrent-connection cap; excess connections are shed.
    pub max_connections: usize,
    /// Cache directory.
    pub cache_dir: PathBuf,
    /// Deadline applied to requests that carry none (`0` = unlimited).
    pub default_deadline_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            max_connections: 32,
            cache_dir: std::env::temp_dir().join("flexserve-cache"),
            default_deadline_ms: 0,
        }
    }
}

/// A point-in-time snapshot of the daemon's counters (the `status`
/// reply renders exactly these).
#[derive(Debug, Clone, Copy)]
pub struct StatusSnapshot {
    /// Configured worker count.
    pub workers: usize,
    /// Configured queue depth.
    pub queue_depth: usize,
    /// Requests currently queued.
    pub queued: usize,
    /// Requests currently executing.
    pub in_flight: usize,
    /// Open connections.
    pub connections: usize,
    /// Whether a drain is underway.
    pub draining: bool,
    /// Requests received (frames plus batch entries).
    pub requests: u64,
    /// Replies sent (frames plus batch entries).
    pub replies: u64,
    /// Cache counters.
    pub cache: CacheStats,
    /// Load-shed replies.
    pub sheds: u64,
    /// Panics isolated by workers.
    pub panics: u64,
    /// Deadline-expired replies.
    pub deadlines: u64,
    /// Malformed frames or payloads.
    pub protocol_errors: u64,
}

impl StatusSnapshot {
    /// Render as the stable line-oriented `status` reply text (one
    /// `key value` pair per line; keys are part of the protocol and
    /// greppable by scripts).
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "workers {}\nqueue-depth {}\nqueued {}\nin-flight {}\nconnections {}\n\
             draining {}\nrequests {}\nreplies {}\ncache-hits {}\ncache-misses {}\n\
             cache-repairs {}\ncache-writes {}\nsheds {}\npanics {}\n\
             deadline-expired {}\nprotocol-errors {}\n",
            self.workers,
            self.queue_depth,
            self.queued,
            self.in_flight,
            self.connections,
            u8::from(self.draining),
            self.requests,
            self.replies,
            self.cache.hits,
            self.cache.misses,
            self.cache.repairs,
            self.cache.writes,
            self.sheds,
            self.panics,
            self.deadlines,
            self.protocol_errors,
        )
    }
}

enum Job {
    Work {
        request: Request,
        core: Vec<u8>,
        deadline: Deadline,
        reply: mpsc::Sender<Reply>,
    },
    Shutdown,
}

struct Shared {
    cache: DiskCache,
    engine: Engine,
    config: ServeConfig,
    draining: AtomicBool,
    connections: AtomicUsize,
    queued: AtomicUsize,
    in_flight: AtomicUsize,
    requests: AtomicU64,
    replies: AtomicU64,
    sheds: AtomicU64,
    panics: AtomicU64,
    deadlines: AtomicU64,
    protocol_errors: AtomicU64,
}

impl Shared {
    fn snapshot(&self) -> StatusSnapshot {
        StatusSnapshot {
            workers: self.config.workers,
            queue_depth: self.config.queue_depth,
            queued: self.queued.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            replies: self.replies.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            sheds: self.sheds.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            deadlines: self.deadlines.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// Account one outgoing reply (frame-level or batch entry).
    fn note_reply(&self, reply: &Reply) {
        self.replies.fetch_add(1, Ordering::Relaxed);
        match reply.status {
            ReplyStatus::Shed => {
                self.sheds.fetch_add(1, Ordering::Relaxed);
            }
            ReplyStatus::Deadline => {
                self.deadlines.fetch_add(1, Ordering::Relaxed);
            }
            ReplyStatus::Protocol => {
                self.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
            ReplyStatus::Ok | ReplyStatus::Error => {}
        }
    }
}

/// Execute one computation with cache, panic isolation and accounting.
/// This is the only path requests take through the engine.
fn run_job(shared: &Shared, request: &Request, core: &[u8], deadline: &Deadline) -> Reply {
    let key = DiskCache::key_for(core);
    if request.cacheable() {
        if let Some(payload) = shared.cache.get(&key) {
            // The payload survived digest verification; a decode failure
            // here would mean a protocol change, handled as a miss.
            if let Ok(mut reply) = decode_reply_core(&payload) {
                reply.cached = true;
                return reply;
            }
        }
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        shared.engine.execute(request, deadline)
    }));
    match outcome {
        Ok(mut reply) => {
            // Ok and deterministic Error verdicts are pure functions of
            // the core bytes: cache both. Service conditions are not.
            // Stored entries are provenance-free, and a freshly computed
            // reply is by definition not from the cache.
            if request.cacheable() && matches!(reply.status, ReplyStatus::Ok | ReplyStatus::Error) {
                reply.cached = false;
                shared.cache.put(&key, &encode_reply_core(&reply));
            }
            reply
        }
        Err(_) => {
            shared.panics.fetch_add(1, Ordering::Relaxed);
            Reply::error(format!(
                "request `{}` panicked; the worker isolated it and the daemon is healthy",
                request.kind_name()
            ))
        }
    }
}

/// Respawns a worker thread if its loop ever panics outside the
/// per-request `catch_unwind` (which should be impossible, but a dead
/// worker would silently shrink the pool for the daemon's lifetime).
struct RespawnGuard {
    shared: Arc<Shared>,
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.panics.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&self.shared);
            let rx = Arc::clone(&self.rx);
            // The replacement is detached: drain joins workers via the
            // in-flight/queued counters, not thread handles.
            std::thread::spawn(move || worker_loop(&shared, &rx));
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, rx: &Arc<Mutex<mpsc::Receiver<Job>>>) {
    let _guard = RespawnGuard {
        shared: Arc::clone(shared),
        rx: Arc::clone(rx),
    };
    loop {
        let job = {
            let receiver = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            receiver.recv()
        };
        match job {
            Ok(Job::Work {
                request,
                core,
                deadline,
                reply,
            }) => {
                shared.queued.fetch_sub(1, Ordering::Relaxed);
                shared.in_flight.fetch_add(1, Ordering::Relaxed);
                let out = run_job(shared, &request, &core, &deadline);
                shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                // The connection may have died; a lost receiver only
                // drops this reply's delivery, never the worker.
                let _ = reply.send(out);
            }
            Ok(Job::Shutdown) | Err(_) => break,
        }
    }
}

/// Submit one computation, shedding immediately when the queue is full.
/// Returns the receiver to collect the (exactly one) reply, or the shed
/// reply itself.
fn submit(
    shared: &Shared,
    tx: &mpsc::SyncSender<Job>,
    request: Request,
    deadline: Deadline,
) -> Result<mpsc::Receiver<Reply>, Reply> {
    let core = encode_core(&request);
    let (reply_tx, reply_rx) = mpsc::channel();
    shared.queued.fetch_add(1, Ordering::Relaxed);
    match tx.try_send(Job::Work {
        request,
        core,
        deadline,
        reply: reply_tx,
    }) {
        Ok(()) => Ok(reply_rx),
        Err(_) => {
            shared.queued.fetch_sub(1, Ordering::Relaxed);
            Err(Reply::shed("work queue full; retry later"))
        }
    }
}

/// Serve one decoded request from a connection thread. Always returns
/// exactly one reply.
fn serve_request(
    shared: &Arc<Shared>,
    tx: &mpsc::SyncSender<Job>,
    request: Request,
    deadline: Deadline,
) -> Reply {
    match request {
        Request::Status => Reply::ok(shared.snapshot().render()),
        Request::Drain => {
            shared.draining.store(true, Ordering::SeqCst);
            Reply::ok("draining: accept loop stopped, in-flight work finishing")
        }
        Request::Batch(subs) => {
            // Fan the batch across the pool without ever blocking on a
            // full queue (a blocking send here could deadlock the pool
            // against itself); a full queue sheds the sub-request.
            shared
                .requests
                .fetch_add(subs.len() as u64, Ordering::Relaxed);
            let mut pending: VecDeque<Result<mpsc::Receiver<Reply>, Reply>> =
                VecDeque::with_capacity(subs.len());
            for sub in subs {
                pending.push_back(submit(shared, tx, sub, deadline));
            }
            let mut replies = Vec::with_capacity(pending.len());
            for slot in pending {
                let reply = match slot {
                    Ok(rx) => rx.recv().unwrap_or_else(|_| {
                        Reply::error("worker lost before replying (daemon shutting down)")
                    }),
                    Err(shed) => shed,
                };
                shared.note_reply(&reply);
                replies.push(reply);
            }
            let cached = replies.iter().filter(|r| r.cached).count();
            let shed = replies
                .iter()
                .filter(|r| r.status == ReplyStatus::Shed)
                .count();
            let text = format!(
                "batch: {} sub-replies ({} cached, {} shed)",
                replies.len(),
                cached,
                shed
            );
            Reply {
                data: encode_batch_data(&replies),
                ..Reply::ok(text)
            }
        }
        other => match submit(shared, tx, other, deadline) {
            Ok(rx) => rx.recv().unwrap_or_else(|_| {
                Reply::error("worker lost before replying (daemon shutting down)")
            }),
            Err(shed) => shed,
        },
    }
}

fn connection_loop(shared: &Arc<Shared>, tx: &mpsc::SyncSender<Job>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(reader) => reader,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(payload) => payload,
            Err(FrameError::Closed) => break,
            Err(FrameError::TooLarge(_)) => {
                // The stream is out of sync past an oversized header:
                // shed, then drop the connection.
                let reply = Reply::shed("frame exceeds the 1 MiB cap");
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.note_reply(&reply);
                let _ = write_frame(&mut writer, &encode_reply(&reply));
                break;
            }
            Err(FrameError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(FrameError::Io(_)) => break,
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let reply = match decode_request(&payload) {
            Ok(envelope) => {
                let ms = if envelope.deadline_ms == 0 {
                    shared.config.default_deadline_ms
                } else {
                    envelope.deadline_ms
                };
                serve_request(shared, tx, envelope.request, Deadline::in_ms(ms))
            }
            Err(e) => Reply::protocol(e.to_string()),
        };
        shared.note_reply(&reply);
        if write_frame(&mut writer, &encode_reply(&reply)).is_err() {
            break;
        }
    }
}

/// A running daemon: the bound address plus the levers to observe,
/// drain and join it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    tx: mpsc::SyncSender<Job>,
}

impl ServerHandle {
    /// The actual bound address (resolves port `0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> StatusSnapshot {
        self.shared.snapshot()
    }

    /// Begin draining: stop accepting, let in-flight work finish.
    pub fn trigger_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Block until a drain completes — every connection closed, every
    /// queued and in-flight request replied — then stop the workers and
    /// return the final counters. (Blocks until someone triggers the
    /// drain: a `Drain` request, [`trigger_drain`](Self::trigger_drain),
    /// or the CLI's stdin-EOF watcher.)
    pub fn wait(mut self) -> StatusSnapshot {
        while !self.shared.draining.load(Ordering::SeqCst) {
            std::thread::sleep(ACCEPT_POLL);
        }
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        loop {
            let idle = self.shared.connections.load(Ordering::Relaxed) == 0
                && self.shared.queued.load(Ordering::Relaxed) == 0
                && self.shared.in_flight.load(Ordering::Relaxed) == 0;
            if idle {
                break;
            }
            std::thread::sleep(ACCEPT_POLL);
        }
        for _ in &self.workers {
            // The queue is empty and nothing can enqueue: a blocking
            // send cannot stall.
            let _ = self.tx.send(Job::Shutdown);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.snapshot()
    }

    /// [`trigger_drain`](Self::trigger_drain) + [`wait`](Self::wait).
    pub fn drain(self) -> StatusSnapshot {
        self.trigger_drain();
        self.wait()
    }
}

/// Bind, spawn the pool and the accept loop, return immediately.
///
/// # Errors
///
/// Bind or cache-directory failures.
pub fn serve(mut config: ServeConfig) -> std::io::Result<ServerHandle> {
    config.workers = flexshard::effective_threads(config.workers);
    config.queue_depth = config.queue_depth.max(1);
    config.max_connections = config.max_connections.max(1);
    let cache = DiskCache::open(&config.cache_dir)?;
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shared = Arc::new(Shared {
        cache,
        engine: Engine::new(),
        config: config.clone(),
        draining: AtomicBool::new(false),
        connections: AtomicUsize::new(0),
        queued: AtomicUsize::new(0),
        in_flight: AtomicUsize::new(0),
        requests: AtomicU64::new(0),
        replies: AtomicU64::new(0),
        sheds: AtomicU64::new(0),
        panics: AtomicU64::new(0),
        deadlines: AtomicU64::new(0),
        protocol_errors: AtomicU64::new(0),
    });

    let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth);
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..config.workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            std::thread::spawn(move || worker_loop(&shared, &rx))
        })
        .collect();

    let accept_shared = Arc::clone(&shared);
    let accept_tx = tx.clone();
    let listener_thread = std::thread::spawn(move || {
        accept_loop(&listener, &accept_shared, &accept_tx);
    });

    Ok(ServerHandle {
        addr,
        shared,
        listener: Some(listener_thread),
        workers,
        tx,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, tx: &mpsc::SyncSender<Job>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.connections.load(Ordering::Relaxed) >= shared.config.max_connections {
                    // Shed the whole connection with one unsolicited
                    // reply so the client learns why, then close.
                    let reply = Reply::shed("connection limit reached; retry later");
                    shared.note_reply(&reply);
                    let mut stream = stream;
                    let _ = write_frame(&mut stream, &encode_reply(&reply));
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    continue;
                }
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(shared);
                let conn_tx = tx.clone();
                std::thread::spawn(move || {
                    connection_loop(&conn_shared, &conn_tx, stream);
                    conn_shared.connections.fetch_sub(1, Ordering::Relaxed);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Spawn a watcher that triggers a drain when the process's stdin hits
/// EOF — the std-only stand-in for a signal handler: a supervising
/// parent closes the pipe (or the operator hits ^D) and the daemon
/// winds down cleanly.
pub fn drain_on_stdin_eof(handle: &ServerHandle) {
    let shared = Arc::clone(&handle.shared);
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        let _ = std::io::Read::read_to_end(&mut std::io::stdin(), &mut sink);
        shared.draining.store(true, Ordering::SeqCst);
    });
}
