//! A blocking client for the daemon's framed protocol — the library
//! behind `flexi client`, the CI smoke stage and the soak tests.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    decode_reply, encode_request, read_frame, write_frame, FrameError, Reply, Request,
};

/// A connected client. One request/reply in flight at a time (the
/// protocol is strictly request-response per connection; parallelism
/// comes from more connections or from `Batch`).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Relative deadline attached to every request (`0` = use the
    /// daemon's default).
    pub deadline_ms: u64,
}

/// A client-side failure: connection trouble or a malformed reply. The
/// daemon's own verdicts (shed, protocol error, deadline) arrive as
/// normal [`Reply`] values, not as this error.
#[derive(Debug)]
pub struct ClientError(String);

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "client error: {}", self.0)
    }
}

impl std::error::Error for ClientError {}

impl Client {
    /// Connect to a daemon.
    ///
    /// # Errors
    ///
    /// [`ClientError`] when the address does not resolve or connect.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| ClientError(e.to_string()))?
            .next()
            .ok_or_else(|| ClientError("address resolved to nothing".to_string()))?;
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
            .map_err(|e| ClientError(e.to_string()))?;
        // Request-response framing sends many small writes; Nagle's
        // algorithm would serialize them against delayed ACKs.
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            deadline_ms: 0,
        })
    }

    /// Send one request and block for its reply.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on stream trouble or an undecodable reply. A
    /// connection the daemon sheds (connection cap) surfaces as the
    /// shed reply to the first call.
    pub fn call(&mut self, request: &Request) -> Result<Reply, ClientError> {
        let payload = encode_request(self.deadline_ms, request);
        write_frame(&mut self.stream, &payload).map_err(|e| ClientError(e.to_string()))?;
        let frame = match read_frame(&mut self.stream) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => {
                return Err(ClientError("daemon closed the connection".to_string()))
            }
            Err(e) => return Err(ClientError(e.to_string())),
        };
        decode_reply(&frame).map_err(|e| ClientError(e.to_string()))
    }
}
