//! flexserve — the crash-safe, backpressured, content-addressed
//! toolchain daemon.
//!
//! Every toolchain operation the FlexiCores workflow repeats — assemble
//! a kernel, run the `flexcheck` analyzer, apply the field link's
//! admission gate, simulate with scripted inputs, screen a seeded
//! virtual wafer — is a *pure function of its inputs*: the toolchain is
//! seed-deterministic end to end. `flexi serve` exploits that by
//! putting those operations behind a persistent daemon with an exact
//! content-addressed cache: requests hash to SHA-256 keys over their
//! canonical wire encoding, replies are memoized on disk, and a repeat
//! request is a disk read instead of a wafer re-screen.
//!
//! The service layer is built for hostile weather, in the same spirit
//! as the field-reprogramming link (DESIGN.md §11) and the in-field
//! health manager (§13):
//!
//! * per-request **panic isolation** — a poisoned request gets an error
//!   reply, never a dead daemon ([`server`]);
//! * **bounded queues** with explicit load-shed replies instead of
//!   unbounded buffering ([`server`]);
//! * per-request **deadlines** with cancellation polls inside long
//!   campaigns ([`engine`]);
//! * **digest-verified cache reads** with silent recompute-and-repair,
//!   and atomic temp-file + rename writes so `kill -9` can never
//!   poison the cache ([`cache`]);
//! * **graceful drain** that finishes in-flight work before exit
//!   ([`server`]);
//! * a **status** request exposing queue depth and every robustness
//!   counter ([`server::StatusSnapshot`]).
//!
//! ```no_run
//! use flexserve::{serve, Client, Request, ServeConfig};
//!
//! let handle = serve(ServeConfig::default())?;
//! let mut client = Client::connect(handle.addr())?;
//! let reply = client.call(&Request::Assemble {
//!     dialect: "fc4".into(),
//!     features: String::new(),
//!     source: "load r0\naddi 3\nstore r1\nhalt\n".into(),
//! })?;
//! assert!(!reply.data.is_empty(), "{}", reply.text);
//! handle.drain();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod protocol;
pub mod server;

pub use cache::{CacheStats, DiskCache};
pub use client::{Client, ClientError};
pub use engine::{Deadline, Engine};
pub use protocol::{reply_digest, Reply, ReplyStatus, Request};
pub use server::{drain_on_stdin_eof, serve, ServeConfig, ServerHandle, StatusSnapshot};
