//! Property tests for the daemon's wire codec: the protocol layer must
//! be panic-free and non-hanging for *any* byte sequence a hostile or
//! broken client can send. A panic here would take a connection thread
//! down with a request unreplied; a hang would wedge it forever. Both
//! are protocol-error replies in the real daemon, so both are plain
//! `Err` values here.

use flexserve::protocol::{
    decode_batch_data, decode_core, decode_reply, decode_request, encode_core, encode_reply,
    encode_request, read_frame, FrameError, Reply, ReplyStatus, Request, MAX_FRAME,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// A generated structured request covering every cacheable kind.
fn arb_request(
    kind: u8,
    dialect: String,
    features: String,
    source: String,
    blob: Vec<u8>,
    n: u64,
    flag: bool,
) -> Request {
    match kind % 5 {
        0 => Request::Assemble {
            dialect,
            features,
            source,
        },
        1 => Request::Check {
            dialect,
            features,
            source,
            deny: (n % 3) as u8,
        },
        2 => Request::Admit {
            dialect,
            features,
            source,
            deny: (n % 3) as u8,
        },
        3 => Request::Simulate {
            dialect,
            features,
            source,
            inputs: blob,
            max_cycles: n,
        },
        _ => Request::Yield {
            design: dialect,
            voltage_mv: n,
            seed: n.rotate_left(17),
            cycles: n % 10_000,
            salvage: flag,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Arbitrary payload bytes decode to a value or an error — never a
    /// panic. (The harness itself fails the test on any panic.)
    #[test]
    fn arbitrary_bytes_never_panic_the_request_decoder(payload in vec(any::<u8>(), 0..512)) {
        let _ = decode_request(&payload);
        let _ = decode_core(&payload);
        let _ = decode_reply(&payload);
        let _ = decode_batch_data(&payload);
    }

    /// Every structured request round-trips bit-exact through the full
    /// payload codec, and its core is a strict suffix of the payload
    /// (the property the cache key depends on).
    #[test]
    fn structured_requests_roundtrip(
        kind in any::<u8>(),
        dialect in "[a-z0-9]{0,8}",
        features in "[a-z,]{0,12}",
        source in "[ -~\n]{0,64}",
        blob in vec(any::<u8>(), 0..32),
        n in 1u64..1_000_000,
        flag in any::<bool>(),
        deadline in any::<u64>(),
    ) {
        let request = arb_request(kind, dialect, features, source, blob, n, flag);
        let payload = encode_request(deadline, &request);
        let envelope = decode_request(&payload).expect("own encoding must decode");
        prop_assert_eq!(envelope.deadline_ms, deadline);
        prop_assert_eq!(&envelope.request, &request);
        let core = encode_core(&request);
        prop_assert!(payload.ends_with(&core));
        prop_assert_eq!(decode_core(&core).expect("core decodes"), request);
    }

    /// Truncating a valid payload at any point is an error, never a
    /// panic — no length field can make the reader run off the end.
    #[test]
    fn any_truncation_of_a_valid_request_errors(
        kind in any::<u8>(),
        source in "[ -~\n]{0,48}",
        cut_seed in any::<u64>(),
    ) {
        let request = arb_request(kind, "fc4".into(), String::new(), source, vec![1, 2], 99, false);
        let payload = encode_request(7, &request);
        let cut = (cut_seed as usize) % payload.len().max(1);
        prop_assert!(decode_request(&payload[..cut]).is_err());
    }

    /// Flipping any single byte of a valid payload either still decodes
    /// (to possibly different fields) or errors — never panics, and a
    /// surviving decode re-encodes within the frame cap.
    #[test]
    fn single_byte_corruption_never_panics(
        source in "[ -~\n]{0,48}",
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let request = arb_request(3, "fc4".into(), String::new(), source, vec![7], 500, true);
        let mut payload = encode_request(3, &request);
        let pos = (pos_seed as usize) % payload.len();
        payload[pos] ^= xor;
        if let Ok(envelope) = decode_request(&payload) {
            let re = encode_request(envelope.deadline_ms, &envelope.request);
            prop_assert!(re.len() <= MAX_FRAME);
        }
    }

    /// The frame reader rejects any advertised length beyond the cap
    /// without reading (or allocating) the body, and errors — without
    /// hanging — on any truncated body.
    #[test]
    fn frame_reader_bounds_every_length(
        len in (MAX_FRAME as u32 + 1)..=u32::MAX,
        body in vec(any::<u8>(), 0..64),
    ) {
        let mut oversized = len.to_be_bytes().to_vec();
        oversized.extend_from_slice(&body);
        let mut cursor = std::io::Cursor::new(oversized);
        prop_assert!(matches!(read_frame(&mut cursor), Err(FrameError::TooLarge(_))));

        // a header promising more than the stream holds must error out
        let promised = (body.len() as u32) + 1;
        let mut truncated = promised.to_be_bytes().to_vec();
        truncated.extend_from_slice(&body);
        let mut cursor = std::io::Cursor::new(truncated);
        prop_assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
    }

    /// Replies round-trip for every status/flag/text/data combination.
    #[test]
    fn replies_roundtrip(
        status in 0u8..5,
        cached in any::<bool>(),
        text in "[ -~\n]{0,64}",
        data in vec(any::<u8>(), 0..64),
    ) {
        let reply = Reply {
            status: match status {
                0 => ReplyStatus::Ok,
                1 => ReplyStatus::Error,
                2 => ReplyStatus::Shed,
                3 => ReplyStatus::Protocol,
                _ => ReplyStatus::Deadline,
            },
            cached,
            text,
            data,
        };
        let payload = encode_reply(&reply);
        prop_assert_eq!(decode_reply(&payload).expect("own encoding decodes"), reply);
    }
}
