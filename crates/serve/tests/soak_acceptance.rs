//! The robustness acceptance soak from the issue: concurrent client
//! threads drive a mixed workload against a daemon with injected worker
//! panics (`Boom`), a poisoned cache entry, a deliberately tiny work
//! queue, and per-request deadlines — and the contract must hold:
//!
//! * every request gets exactly one reply (panic, shed and deadline
//!   included — never silence, never a dropped connection);
//! * the daemon never dies;
//! * repeated identical requests produce byte-identical deterministic
//!   replies, poisoned cache or not;
//! * a graceful drain finishes with zero queued and zero in-flight
//!   requests and every client's tally balanced.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use flexserve::cache::{read_raw_entry, write_raw_entry, DiskCache};
use flexserve::protocol::{encode_core, encode_reply_core};
use flexserve::{serve, Client, Reply, ReplyStatus, Request, ServeConfig};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("flexserve-soak-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn canon(reply: &Reply) -> Vec<u8> {
    let mut canon = reply.clone();
    canon.cached = false;
    encode_reply_core(&canon)
}

fn asm(source: &str) -> Request {
    Request::Assemble {
        dialect: "fc4".to_string(),
        features: String::new(),
        source: source.to_string(),
    }
}

const FIXED_SOURCE: &str = "load r0\naddi 3\nstore r1\nhalt\n";
const SPIN_SOURCE: &str = "spin: jmp spin\n";

#[test]
fn hostile_weather_soak_holds_the_robustness_contract() {
    const CLIENTS: usize = 6;
    const ROUNDS: usize = 8;

    let cache_dir = scratch("hostile");
    let handle = serve(ServeConfig {
        workers: 2,
        queue_depth: 4,
        max_connections: 24,
        cache_dir: cache_dir.clone(),
        ..ServeConfig::default()
    })
    .expect("daemon binds");
    let addr = handle.addr();

    // Prime the fixed request, then poison its cache entry on disk: the
    // soak's repeated calls must repair it and stay byte-identical.
    let mut primer = Client::connect(addr).expect("primer connects");
    let fixed = asm(FIXED_SOURCE);
    let reference = primer.call(&fixed).expect("prime");
    assert_eq!(reference.status, ReplyStatus::Ok, "{}", reference.text);
    let reference_bytes = canon(&reference);
    let side_cache = DiskCache::open(&cache_dir).expect("side view opens");
    let key = DiskCache::key_for(&encode_core(&fixed));
    let mut raw = read_raw_entry(&side_cache, &key).expect("primed entry exists");
    let last = raw.len() - 1;
    raw[last] ^= 0xA5;
    write_raw_entry(&side_cache, &key, &raw).expect("poison lands");

    let sent = Arc::new(AtomicU64::new(0));
    let replied = Arc::new(AtomicU64::new(0));
    let booms = Arc::new(AtomicU64::new(0));
    let soak_sheds = Arc::new(AtomicU64::new(0));

    // Under a 4-deep queue and 6 clients, Shed is a *correct* answer —
    // the contract is one reply per request, not zero sheds. Retry
    // until the daemon accepts the work, tallying every attempt.
    fn call_until_accepted(
        client: &mut Client,
        request: &Request,
        sent: &AtomicU64,
        replied: &AtomicU64,
        sheds: &AtomicU64,
    ) -> Reply {
        loop {
            sent.fetch_add(1, Ordering::Relaxed);
            let reply = client.call(request).expect("one reply per request");
            replied.fetch_add(1, Ordering::Relaxed);
            if reply.status != ReplyStatus::Shed {
                return reply;
            }
            sheds.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    let threads: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let reference_bytes = reference_bytes.clone();
            let sent = Arc::clone(&sent);
            let replied = Arc::clone(&replied);
            let booms = Arc::clone(&booms);
            let soak_sheds = Arc::clone(&soak_sheds);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("soak client connects");
                for round in 0..ROUNDS {
                    // 1: the poisoned-then-repaired fixed request — its
                    // deterministic bytes must never vary.
                    let reply = call_until_accepted(
                        &mut client,
                        &asm(FIXED_SOURCE),
                        &sent,
                        &replied,
                        &soak_sheds,
                    );
                    assert_eq!(reply.status, ReplyStatus::Ok, "{}", reply.text);
                    assert_eq!(
                        canon(&reply),
                        reference_bytes,
                        "client {id} round {round}: fixed request diverged"
                    );

                    // 2: a per-client unique source — exercises cold
                    // misses under contention.
                    let unique = format!("load r0\naddi {}\nstore r1\nhalt\n", (id + round) % 7);
                    let reply = call_until_accepted(
                        &mut client,
                        &asm(&unique),
                        &sent,
                        &replied,
                        &soak_sheds,
                    );
                    assert_eq!(reply.status, ReplyStatus::Ok, "{}", reply.text);

                    // 3: an injected worker panic — must come back as an
                    // error reply on a live connection, every time.
                    let reply = call_until_accepted(
                        &mut client,
                        &Request::Boom,
                        &sent,
                        &replied,
                        &soak_sheds,
                    );
                    assert_eq!(reply.status, ReplyStatus::Error, "{}", reply.text);
                    assert!(reply.text.contains("panicked"), "{}", reply.text);
                    booms.fetch_add(1, Ordering::Relaxed);

                    // 4: a deadline that cannot be met — the endless
                    // program must be cancelled, not served or hung.
                    client.deadline_ms = 30;
                    let reply = call_until_accepted(
                        &mut client,
                        &Request::Simulate {
                            dialect: "fc4".to_string(),
                            features: String::new(),
                            source: SPIN_SOURCE.to_string(),
                            inputs: Vec::new(),
                            max_cycles: 100_000_000,
                        },
                        &sent,
                        &replied,
                        &soak_sheds,
                    );
                    assert_eq!(reply.status, ReplyStatus::Deadline, "{}", reply.text);
                    client.deadline_ms = 0;
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("soak client must not panic");
    }

    // Saturate the pool with deadline-bounded spins, then pour a batch
    // through the 4-deep queue: the overflow must shed, not block.
    let spin_threads: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("spin client connects");
                client.deadline_ms = 600;
                let reply = client
                    .call(&Request::Simulate {
                        dialect: "fc4".to_string(),
                        features: String::new(),
                        source: SPIN_SOURCE.to_string(),
                        inputs: Vec::new(),
                        max_cycles: 100_000_000,
                    })
                    .expect("spin reply");
                assert_eq!(reply.status, ReplyStatus::Deadline, "{}", reply.text);
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    let flood: Vec<Request> = (0..12)
        .map(|i| asm(&format!("load r0\naddi {}\nstore r2\nhalt\n", i % 8)))
        .collect();
    let flood_len = flood.len();
    let batch_reply = primer
        .call(&Request::Batch(flood))
        .expect("batch reply even under saturation");
    assert_eq!(batch_reply.status, ReplyStatus::Ok, "{}", batch_reply.text);
    let subs = flexserve::protocol::decode_batch_data(&batch_reply.data).expect("batch decodes");
    assert_eq!(
        subs.len(),
        flood_len,
        "exactly one sub-reply per sub-request"
    );
    for t in spin_threads {
        t.join().expect("spin clients must not panic");
    }

    // Graceful drain: stop accepting, finish everything, lose nothing.
    let drain = primer.call(&Request::Drain).expect("drain reply");
    assert_eq!(drain.status, ReplyStatus::Ok);
    let stats = handle.wait();

    assert_eq!(stats.queued, 0, "drain left work queued");
    assert_eq!(stats.in_flight, 0, "drain left work in flight");
    assert_eq!(stats.connections, 0, "drain left connections open");
    assert_eq!(
        sent.load(Ordering::Relaxed),
        replied.load(Ordering::Relaxed),
        "every soak request must get exactly one reply"
    );
    assert_eq!(
        stats.panics,
        booms.load(Ordering::Relaxed),
        "every injected panic isolated and counted"
    );
    assert!(stats.cache.repairs >= 1, "the poisoned entry was repaired");
    assert!(
        stats.deadlines >= (CLIENTS * ROUNDS) as u64,
        "deadline cancellations counted"
    );
    assert!(
        stats.sheds > 0,
        "the saturated 4-deep queue must have shed some of the 12-wide batch"
    );
    assert!(stats.cache.hits > 0, "repeated requests hit the cache");
}

#[test]
fn drain_finishes_in_flight_work_before_exiting() {
    let handle = serve(ServeConfig {
        workers: 1,
        queue_depth: 8,
        max_connections: 8,
        cache_dir: scratch("drain"),
        ..ServeConfig::default()
    })
    .expect("daemon binds");
    let addr = handle.addr();

    // A request that takes real time (deadline-bounded spin) goes in
    // flight; the drain triggers while it runs; the reply must still
    // arrive before the daemon exits.
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("client connects");
        client.deadline_ms = 400;
        client
            .call(&Request::Simulate {
                dialect: "fc4".to_string(),
                features: String::new(),
                source: SPIN_SOURCE.to_string(),
                inputs: Vec::new(),
                max_cycles: 100_000_000,
            })
            .expect("in-flight request must be answered across the drain")
    });
    std::thread::sleep(Duration::from_millis(100));
    handle.trigger_drain();
    let reply = worker.join().expect("client thread");
    assert_eq!(reply.status, ReplyStatus::Deadline, "{}", reply.text);
    let stats = handle.wait();
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.in_flight, 0);
    assert!(stats.draining);
}

#[test]
fn connection_cap_sheds_with_a_reply_not_a_hang() {
    let handle = serve(ServeConfig {
        workers: 1,
        queue_depth: 4,
        max_connections: 1,
        cache_dir: scratch("conncap"),
        ..ServeConfig::default()
    })
    .expect("daemon binds");
    let addr = handle.addr();

    let mut first = Client::connect(addr).expect("first connects");
    let status = first.call(&Request::Status).expect("status");
    assert_eq!(status.status, ReplyStatus::Ok);

    // The second connection is over the cap: the daemon sends one
    // unsolicited shed reply and closes.
    let mut stream = std::net::TcpStream::connect(addr).expect("second connects at TCP level");
    let frame = flexserve::protocol::read_frame(&mut stream).expect("unsolicited shed frame");
    let reply = flexserve::protocol::decode_reply(&frame).expect("shed decodes");
    assert_eq!(reply.status, ReplyStatus::Shed, "{}", reply.text);

    drop(first);
    handle.drain();
}
