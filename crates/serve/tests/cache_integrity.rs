//! Cache-integrity acceptance: corrupting cached artifacts on disk —
//! payload bytes, metadata header fields, truncation — must never
//! change what the daemon answers. A corrupt entry is detected by the
//! digest check, silently recomputed and repaired, and the reply is
//! byte-identical to a cold miss.

use flexserve::cache::{read_raw_entry, write_raw_entry, DiskCache};
use flexserve::protocol::{encode_core, encode_reply_core};
use flexserve::{serve, Client, Reply, ReplyStatus, Request, ServeConfig};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("flexserve-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(name: &str) -> (flexserve::ServerHandle, Client, DiskCache) {
    let dir = scratch(name);
    let handle = serve(ServeConfig {
        workers: 2,
        queue_depth: 32,
        max_connections: 8,
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    })
    .expect("daemon binds");
    let client = Client::connect(handle.addr()).expect("client connects");
    // A second cache view onto the same directory lets the test reach
    // in and corrupt entries the daemon wrote.
    let cache = DiskCache::open(dir).expect("cache opens");
    (handle, client, cache)
}

fn assemble_req() -> Request {
    Request::Assemble {
        dialect: "fc4".to_string(),
        features: String::new(),
        source: "load r0\naddi 3\nstore r1\nhalt\n".to_string(),
    }
}

/// Strip provenance for byte-identity comparison: a repaired reply is
/// `cached: false` (it was recomputed), a hit is `cached: true`; the
/// *content* must match exactly either way.
fn canon(reply: &Reply) -> Vec<u8> {
    let mut canon = reply.clone();
    canon.cached = false;
    encode_reply_core(&canon)
}

#[test]
fn flipped_artifact_byte_triggers_silent_recompute_and_repair() {
    let (handle, mut client, cache) = start("flip-artifact");
    let request = assemble_req();
    let key = DiskCache::key_for(&encode_core(&request));

    let cold = client.call(&request).expect("cold call");
    assert_eq!(cold.status, ReplyStatus::Ok, "{}", cold.text);
    assert!(!cold.cached);

    // Flip a byte deep in the cached payload (the program image).
    let mut raw = read_raw_entry(&cache, &key).expect("entry exists after cold miss");
    let victim = raw.len() - 3;
    raw[victim] ^= 0x55;
    write_raw_entry(&cache, &key, &raw).expect("corruption lands");

    let repaired = client.call(&request).expect("repaired call");
    assert!(
        !repaired.cached,
        "a corrupt entry must be recomputed, not served"
    );
    assert_eq!(
        canon(&repaired),
        canon(&cold),
        "repair must be byte-identical"
    );

    // The repair wrote a fresh entry: the next call is a clean hit.
    let warm = client.call(&request).expect("warm call");
    assert!(warm.cached, "repaired entry must serve the next hit");
    assert_eq!(canon(&warm), canon(&cold));

    let stats = handle.stats();
    assert_eq!(stats.cache.repairs, 1, "exactly one repair recorded");
    handle.drain();
}

#[test]
fn flipped_metadata_byte_triggers_silent_recompute_and_repair() {
    let (handle, mut client, cache) = start("flip-metadata");
    let request = assemble_req();
    let key = DiskCache::key_for(&encode_core(&request));

    let cold = client.call(&request).expect("cold call");
    assert_eq!(cold.status, ReplyStatus::Ok);

    // Flip a byte inside the entry *header* (the stored payload digest),
    // leaving the payload untouched: metadata corruption must be caught
    // exactly like payload corruption.
    let mut raw = read_raw_entry(&cache, &key).expect("entry exists");
    raw[8 + 32 + 5] ^= 0x01;
    write_raw_entry(&cache, &key, &raw).expect("corruption lands");

    let repaired = client.call(&request).expect("repaired call");
    assert!(!repaired.cached);
    assert_eq!(canon(&repaired), canon(&cold));
    assert_eq!(handle.stats().cache.repairs, 1);
    handle.drain();
}

#[test]
fn truncated_entry_behaves_like_a_torn_write() {
    let (handle, mut client, cache) = start("truncate");
    let request = assemble_req();
    let key = DiskCache::key_for(&encode_core(&request));

    let cold = client.call(&request).expect("cold call");
    let raw = read_raw_entry(&cache, &key).expect("entry exists");
    write_raw_entry(&cache, &key, &raw[..raw.len() / 3]).expect("tear lands");

    let repaired = client.call(&request).expect("repaired call");
    assert!(!repaired.cached);
    assert_eq!(canon(&repaired), canon(&cold));
    handle.drain();
}

#[test]
fn deterministic_error_replies_are_cached_too() {
    let (handle, mut client, _cache) = start("error-cache");
    let request = Request::Assemble {
        dialect: "fc4".to_string(),
        features: String::new(),
        source: "this is not assembly\n".to_string(),
    };
    let cold = client.call(&request).expect("cold call");
    assert_eq!(cold.status, ReplyStatus::Error);
    assert!(!cold.cached);
    let warm = client.call(&request).expect("warm call");
    assert_eq!(warm.status, ReplyStatus::Error);
    assert!(warm.cached, "a deterministic verdict is a verdict");
    assert_eq!(canon(&warm), canon(&cold));
    handle.drain();
}
