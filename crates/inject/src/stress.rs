//! Mission-time stress processes: the fault population as a *function
//! of time*.
//!
//! Every campaign before this module froze its fault draw at t = 0. A
//! deployed flexible die does not: IGZO TFTs drift under bias stress
//! until marginal cells fail permanently, mechanical bend events inject
//! spatially clustered transient bursts, and battery sag opens brownout
//! windows during which store writes tear or vanish. A
//! [`StressSchedule`] materializes all three processes for a whole
//! mission up front, from one seed, in one fixed draw order — so any
//! consumer (the `flexmission` lifetime campaigns, a soak test, a CLI
//! replay) observes the identical stress history bit-for-bit, no matter
//! how its trials are threaded or sharded.
//!
//! The three processes:
//!
//! * **Wear** — each die carries a seeded set of *marginal cells*:
//!   architectural fault sites whose Vth margin erodes until, at a
//!   per-cell wear-out tick drawn uniformly over the mission, the cell
//!   becomes a permanent stuck-at. Wear only accumulates; a cell that
//!   failed stays failed.
//! * **Bend events** — per-tick Bernoulli bursts of one-shot transient
//!   flips. A burst is spatially clustered: it picks one die and a run
//!   of *adjacent* sites in that dialect's enumeration order (the site
//!   list is layout-ordered, so adjacency is the architectural proxy
//!   for physical locality on the foil).
//! * **Brownout windows** — per-tick supply-sag plans. A brownout tick
//!   carries an armed [`PowerCut`] plan: some write during that tick's
//!   store traffic (scrub heals, reprogramming) tears, and every write
//!   after it is lost. Store upsets ride the same process: single-bit
//!   flips that SECDED corrects, plus rarer same-word double flips that
//!   decay a page beyond correction.
//!
//! Draw order is part of the replay contract, exactly like
//! [`sites::enumerate`]'s site order: wear for every die first (die 0's
//! cells, then die 1's, …), then per-tick draws in tick order. New
//! stress processes must be appended after the existing draws so old
//! seeds keep producing the same histories.

use crate::sites::{self, FaultSite};
use flexicore::isa::Dialect;
use flexicore::sim::{ArchFault, FaultKind, PowerCut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one mission's stress processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressConfig {
    /// Dialect whose site list wear and bend draws target.
    pub dialect: Dialect,
    /// Mission length in ticks.
    pub ticks: u32,
    /// Number of dies wear and bend events are distributed over (the
    /// active lanes plus every spare — stress does not spare the
    /// spares).
    pub dies: usize,
    /// Master seed; every draw derives from it.
    pub seed: u64,
    /// Marginal cells per die that wear out to stuck-ats somewhere in
    /// the mission.
    pub marginal_per_die: u32,
    /// Per-tick bend-event probability, in per-mille.
    pub bend_per_mille: u32,
    /// Adjacent sites a bend burst flips on the struck die.
    pub bend_cluster: u8,
    /// Cycle window bend transients are scheduled inside.
    pub flip_window: u64,
    /// Per-tick brownout-window probability, in per-mille.
    pub brownout_per_mille: u32,
    /// Store writes into a brownout tick before the supply collapses
    /// (the cut index is drawn uniformly below this).
    pub brownout_writes: u64,
    /// Per-tick single-bit program-store upset probability, per-mille.
    pub store_upset_per_mille: u32,
    /// Probability that an upset bursts into a *second* flip of the
    /// same code word (an uncorrectable decay event), per-mille of the
    /// upset draws.
    pub store_burst_per_mille: u32,
    /// Store size in code words upsets are drawn over.
    pub store_words: usize,
    /// Bits per store code word (SECDED(13,8) stores use 13).
    pub store_code_bits: u8,
}

impl StressConfig {
    /// A schedule with the default process intensities: a handful of
    /// marginal cells per die, occasional bends and brownouts, and a
    /// store upset rate high enough that long missions see decay.
    #[must_use]
    pub fn new(dialect: Dialect, ticks: u32, dies: usize, seed: u64) -> Self {
        StressConfig {
            dialect,
            ticks,
            dies,
            seed,
            marginal_per_die: 2,
            bend_per_mille: 120,
            bend_cluster: 3,
            flip_window: 1024,
            brownout_per_mille: 80,
            brownout_writes: 64,
            store_upset_per_mille: 250,
            store_burst_per_mille: 300,
            store_words: 512,
            store_code_bits: 13,
        }
    }
}

/// An armed-but-not-yet-constructed supply collapse for one brownout
/// tick. Kept as plain data (not a [`PowerCut`]) so a [`TickStress`]
/// stays `Eq`-comparable and a consumer can arm as many independent
/// cuts as it has write paths in the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutPlan {
    /// Store write index at which the supply collapses.
    pub cut_at: u64,
    /// Seed deciding which bits of the torn word land old vs new.
    pub torn_seed: u64,
}

impl BrownoutPlan {
    /// Arm a fresh [`PowerCut`] implementing this plan.
    #[must_use]
    pub fn arm(&self) -> PowerCut {
        PowerCut::at_write(self.cut_at, self.torn_seed)
    }
}

/// Everything the stress processes do in one mission tick.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickStress {
    /// Marginal cells failing permanently this tick: `(die, fault)`
    /// with a stuck-at kind.
    pub wear: Vec<(usize, ArchFault)>,
    /// Bend-burst transients this tick: `(die, fault)` with a
    /// [`FaultKind::FlipAtCycle`] kind, clustered on adjacent sites.
    pub bend: Vec<(usize, ArchFault)>,
    /// The supply-sag plan, if this tick falls in a brownout window.
    pub brownout: Option<BrownoutPlan>,
    /// Program-store upsets this tick: `(word, bit)` flips. Two entries
    /// sharing a word are a decay event (uncorrectable by SECDED).
    pub store_upsets: Vec<(usize, u8)>,
}

impl TickStress {
    /// Whether this tick applies no stress at all.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.wear.is_empty()
            && self.bend.is_empty()
            && self.brownout.is_none()
            && self.store_upsets.is_empty()
    }
}

/// A whole mission's stress history, materialized tick by tick.
#[derive(Debug, Clone, PartialEq)]
pub struct StressSchedule {
    config: StressConfig,
    ticks: Vec<TickStress>,
}

impl StressSchedule {
    /// Materialize the schedule: a pure function of `config` (the seed
    /// owns every draw), replayable bit-for-bit.
    #[must_use]
    pub fn generate(config: &StressConfig) -> StressSchedule {
        let site_list = sites::enumerate(config.dialect);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x57E5_5EED);
        let mut ticks = vec![TickStress::default(); config.ticks as usize];

        // Wear first, die-major: each marginal cell draws its site, its
        // stuck polarity and its wear-out tick. Cells land in the tick
        // they fail in, preserving draw order within a tick.
        for die in 0..config.dies {
            for _ in 0..config.marginal_per_die {
                if config.ticks == 0 {
                    break;
                }
                let fault = stuck_at(&mut rng, &site_list);
                let at = rng.gen_range(0..config.ticks) as usize;
                ticks[at].wear.push((die, fault));
            }
        }

        // Then the per-tick processes, in tick order.
        for tick in ticks.iter_mut() {
            if per_mille(&mut rng, config.bend_per_mille) && config.dies > 0 {
                let die = rng.gen_range(0..config.dies);
                let center = rng.gen_range(0..site_list.len());
                for k in 0..usize::from(config.bend_cluster.max(1)) {
                    let site = site_list[(center + k) % site_list.len()];
                    let cycle = rng.gen_range(0..config.flip_window.max(1));
                    tick.bend
                        .push((die, site.with_kind(FaultKind::FlipAtCycle(cycle))));
                }
            }
            if per_mille(&mut rng, config.brownout_per_mille) {
                tick.brownout = Some(BrownoutPlan {
                    cut_at: rng.gen_range(0..config.brownout_writes.max(1)),
                    torn_seed: rng.gen(),
                });
            }
            if per_mille(&mut rng, config.store_upset_per_mille) && config.store_words > 0 {
                let word = rng.gen_range(0..config.store_words);
                let bit = rng.gen_range(0..config.store_code_bits.max(1));
                tick.store_upsets.push((word, bit));
                if per_mille(&mut rng, config.store_burst_per_mille) {
                    // a second flip in the same word: SECDED double-bit
                    // decay, repairable only by reprogramming the page
                    let other = (bit + 1 + rng.gen_range(0..config.store_code_bits.max(2) - 1))
                        % config.store_code_bits.max(1);
                    tick.store_upsets.push((word, other));
                }
            }
        }
        StressSchedule {
            config: *config,
            ticks,
        }
    }

    /// The configuration the schedule was generated from.
    #[must_use]
    pub fn config(&self) -> &StressConfig {
        &self.config
    }

    /// Mission length in ticks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// Whether the mission has zero ticks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// The stress applied in tick `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is past the mission end.
    #[must_use]
    pub fn tick(&self, t: u32) -> &TickStress {
        &self.ticks[t as usize]
    }

    /// Total permanent wear faults across the whole mission.
    #[must_use]
    pub fn total_wear(&self) -> usize {
        self.ticks.iter().map(|t| t.wear.len()).sum()
    }
}

/// One per-mille Bernoulli draw. Always consumes exactly one draw so
/// the stream stays aligned regardless of the probability value.
fn per_mille(rng: &mut StdRng, p: u32) -> bool {
    rng.gen_range(0..1000u32) < p
}

/// Draw one permanent stuck-at over the site list.
fn stuck_at(rng: &mut StdRng, site_list: &[FaultSite]) -> ArchFault {
    let site = site_list[rng.gen_range(0..site_list.len())];
    let kind = if rng.gen_bool(0.5) {
        FaultKind::StuckAt0
    } else {
        FaultKind::StuckAt1
    };
    site.with_kind(kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> StressConfig {
        StressConfig::new(Dialect::Fc4, 64, 5, 0xBEEF)
    }

    #[test]
    fn schedules_replay_bit_for_bit() {
        let a = StressSchedule::generate(&config());
        let b = StressSchedule::generate(&config());
        assert_eq!(a, b);
        let c = StressSchedule::generate(&StressConfig {
            seed: 0xBEF0,
            ..config()
        });
        assert_ne!(a, c, "a different seed draws a different history");
    }

    #[test]
    fn wear_is_conserved_and_permanent() {
        let schedule = StressSchedule::generate(&config());
        assert_eq!(
            schedule.total_wear(),
            5 * 2,
            "every marginal cell wears out exactly once"
        );
        for t in 0..schedule.len() as u32 {
            for (die, fault) in &schedule.tick(t).wear {
                assert!(*die < 5);
                assert!(
                    matches!(fault.kind, FaultKind::StuckAt0 | FaultKind::StuckAt1),
                    "wear faults are permanent: {fault:?}"
                );
            }
        }
    }

    #[test]
    fn bend_bursts_are_clustered_transients_on_one_die() {
        let schedule = StressSchedule::generate(&StressConfig {
            bend_per_mille: 1000,
            ..config()
        });
        let site_list = sites::enumerate(Dialect::Fc4);
        let mut bursts = 0;
        for t in 0..schedule.len() as u32 {
            let bend = &schedule.tick(t).bend;
            if bend.is_empty() {
                continue;
            }
            bursts += 1;
            assert_eq!(bend.len(), 3, "cluster width");
            let die = bend[0].0;
            assert!(bend.iter().all(|(d, _)| *d == die), "one die per burst");
            // adjacency in enumeration order (modulo wraparound)
            let index_of = |f: &ArchFault| {
                site_list
                    .iter()
                    .position(|s| (s.element, s.bit) == (f.element, f.bit))
                    .expect("burst site is enumerated")
            };
            let first = index_of(&bend[0].1);
            for (k, (_, fault)) in bend.iter().enumerate() {
                assert_eq!(index_of(fault), (first + k) % site_list.len());
                assert!(matches!(fault.kind, FaultKind::FlipAtCycle(c) if c < 1024));
            }
        }
        assert_eq!(bursts, schedule.len(), "p = 1000‰ bends every tick");
    }

    #[test]
    fn brownouts_and_upsets_stay_in_bounds() {
        let schedule = StressSchedule::generate(&StressConfig {
            brownout_per_mille: 1000,
            store_upset_per_mille: 1000,
            store_burst_per_mille: 1000,
            ..config()
        });
        for t in 0..schedule.len() as u32 {
            let tick = schedule.tick(t);
            let plan = tick.brownout.expect("p = 1000‰ browns out every tick");
            assert!(plan.cut_at < 64);
            assert!(plan.arm().is_armed());
            assert_eq!(tick.store_upsets.len(), 2, "upset + burst");
            let (w0, b0) = tick.store_upsets[0];
            let (w1, b1) = tick.store_upsets[1];
            assert_eq!(w0, w1, "burst strikes the same word");
            assert_ne!(b0, b1, "but a different bit");
            assert!(w0 < 512 && b0 < 13 && b1 < 13);
        }
    }

    #[test]
    fn degenerate_configs_do_not_panic() {
        for (ticks, dies) in [(0u32, 5usize), (8, 0), (0, 0)] {
            let schedule = StressSchedule::generate(&StressConfig {
                ticks,
                dies,
                ..config()
            });
            assert_eq!(schedule.len(), ticks as usize);
            assert_eq!(schedule.total_wear(), if ticks == 0 { 0 } else { dies * 2 });
        }
    }

    #[test]
    fn quiet_ticks_report_quiet() {
        let schedule = StressSchedule::generate(&StressConfig {
            marginal_per_die: 0,
            bend_per_mille: 0,
            brownout_per_mille: 0,
            store_upset_per_mille: 0,
            ..config()
        });
        for t in 0..schedule.len() as u32 {
            assert!(schedule.tick(t).is_quiet());
        }
    }
}
