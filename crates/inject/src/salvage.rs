//! Partial-yield salvage analysis: which dies that fail the §4.1 binary
//! screen would still run real programs.
//!
//! The paper's Table 5 yield is binary — a die passes only if every test
//! vector matches. But a die whose defects are architecturally masked by
//! a given workload is still *useful* for that workload. This module
//! replays each failing die's defect draw as architectural stuck-at
//! faults (via [`crate::sites::die_faults`]) and screens the die against
//! the seven benchmark kernels: a die is **salvaged** when every kernel
//! stays oracle-exact under its fault set.
//!
//! Dies that miss timing are never salvageable — a slow path fails at
//! speed regardless of which program runs — so only defect-limited
//! failures are screened.

use crate::campaign::{classify, Outcome};
use crate::sites;
use flexasm::Target;
use flexfab::tester::DieOutcome;
use flexfab::variation::DieVariation;
use flexfab::wafer_run::{CoreDesign, WaferRun};
use flexicore::sim::{FaultPlane, NoFaults};
use flexkernels::harness::{BatchCase, PreparedKernel, RunError, CYCLE_BUDGET};
use flexkernels::{inputs::Sampler, Kernel};

/// The assembly target whose simulator models a fabricated design.
#[must_use]
pub fn target_for(design: CoreDesign) -> Target {
    match design {
        CoreDesign::FlexiCore4 => Target::fc4(),
        CoreDesign::FlexiCore8 => Target::fc8(),
        CoreDesign::FlexiCore4Plus => Target::xacc_revised(),
    }
}

/// How one die left the combined screen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DieClass {
    /// Passed the binary vector screen (counts toward Table 5 yield).
    Functional,
    /// Failed the screen, but every kernel ran oracle-exact under the
    /// die's defect faults.
    Salvaged,
    /// Failed with timing errors; no workload can mask a slow path.
    TimingFailure,
    /// Defect-limited failure that corrupted at least one kernel.
    Unsalvageable,
}

/// Parameters of the salvage screen.
#[derive(Debug, Clone, Copy)]
pub struct SalvageConfig {
    /// Input cases per kernel in the screen.
    pub cases_per_kernel: usize,
    /// Watchdog budget per run.
    pub budget: u64,
    /// Seed for the screen's input sampling.
    pub seed: u64,
    /// Worker threads classifying dies (`1` = serial). Every die's
    /// classification is a pure function of its outcome and variation,
    /// so the thread count never changes the analysis.
    pub threads: usize,
}

impl Default for SalvageConfig {
    fn default() -> Self {
        SalvageConfig {
            cases_per_kernel: 2,
            budget: CYCLE_BUDGET,
            seed: 0xD1E5,
            threads: 1,
        }
    }
}

/// The wafer-level result: Table 5's binary yield next to the partial
/// ("salvageable dies") yield.
#[derive(Debug, Clone)]
pub struct SalvageAnalysis {
    /// Per-die classification, in wafer site order.
    pub classes: Vec<DieClass>,
    /// Inclusion-zone flags, same order (the paper's headline numbers
    /// exclude the wafer edge).
    pub in_inclusion: Vec<bool>,
    /// The screened design.
    pub design: CoreDesign,
}

impl SalvageAnalysis {
    /// Count dies of `class` (inclusion zone only when `inclusion`).
    #[must_use]
    pub fn count(&self, class: DieClass, inclusion: bool) -> usize {
        self.classes
            .iter()
            .zip(&self.in_inclusion)
            .filter(|&(c, &inc)| *c == class && (!inclusion || inc))
            .count()
    }

    fn population(&self, inclusion: bool) -> usize {
        if inclusion {
            self.in_inclusion.iter().filter(|&&i| i).count()
        } else {
            self.classes.len()
        }
    }

    /// Table 5's binary yield: fraction of dies passing the vector
    /// screen.
    #[must_use]
    pub fn binary_yield(&self, inclusion: bool) -> f64 {
        self.count(DieClass::Functional, inclusion) as f64 / self.population(inclusion) as f64
    }

    /// Partial yield: functional **plus** salvaged dies.
    #[must_use]
    pub fn partial_yield(&self, inclusion: bool) -> f64 {
        (self.count(DieClass::Functional, inclusion) + self.count(DieClass::Salvaged, inclusion))
            as f64
            / self.population(inclusion) as f64
    }
}

/// Screen one die's defect draw against every kernel: `true` when all
/// runs are oracle-exact (outcome [`Outcome::Masked`]).
#[must_use]
pub fn die_is_salvageable(
    prepared: &[PreparedKernel],
    variation: &DieVariation,
    config: &SalvageConfig,
) -> bool {
    die_is_salvageable_pruned(prepared, None, variation, config)
}

/// Screen one die's defect draw, optionally pruned by per-kernel
/// [`VulnReport`]s (one per `prepared` entry, same order).
///
/// Pruning is deliberately all-or-nothing per kernel: a kernel's batch
/// is skipped only when **every** fault of the die plane lands on an
/// element that kernel provably never reads — a set of faults confined
/// to dead state is jointly invisible, so the skipped run is Masked by
/// construction. A *mixed* plane always simulates in full: a live fault
/// can steer execution into code the static analysis proved
/// unreachable, where a "dead" element suddenly gets read, so dropping
/// individual masked faults from a live plane would be unsound.
///
/// [`VulnReport`]: flexcheck::vuln::VulnReport
#[must_use]
pub fn die_is_salvageable_pruned(
    prepared: &[PreparedKernel],
    reports: Option<&[flexcheck::vuln::VulnReport]>,
    variation: &DieVariation,
    config: &SalvageConfig,
) -> bool {
    let Some(first) = prepared.first() else {
        return false;
    };
    if let Some(reports) = reports {
        debug_assert_eq!(reports.len(), prepared.len());
    }
    let faults = sites::die_faults(
        first.target().dialect,
        variation.defect_seed,
        variation.defect_count,
    );
    let plane = FaultPlane::with_faults(faults.clone());
    for (idx, kernel) in prepared.iter().enumerate() {
        if let Some(report) = reports.and_then(|r| r.get(idx)) {
            if faults.iter().all(|f| report.is_masked_fault(f)) {
                continue;
            }
        }
        // All of a kernel's cases run as one multi-core batch, one lane
        // per case; each lane gets a freshly armed copy of the die's
        // fault plane (equivalent to the old serial reset() per run).
        let mut sampler = Sampler::new(kernel.kernel(), config.seed);
        let batch = (0..config.cases_per_kernel)
            .map(|_| BatchCase {
                inputs: sampler.draw(),
                faults: plane.clone(),
            })
            .collect();
        if kernel
            .run_batch(batch, config.budget)
            .into_iter()
            .any(|run| classify(run) != Outcome::Masked)
        {
            return false;
        }
    }
    true
}

/// A reusable salvage screen: kernels assembled and baseline-verified
/// once, then applied to any number of wafer runs.
///
/// [`analyze`] is the one-shot form; long-lived callers (the toolchain
/// daemon's yield queries, lot-scale sweeps) construct the screen once
/// and amortize the kernel preparation and the fault-free baseline
/// across every query.
#[derive(Debug)]
pub struct SalvageScreen {
    design: CoreDesign,
    config: SalvageConfig,
    prepared: Vec<PreparedKernel>,
    vuln: Vec<flexcheck::vuln::VulnReport>,
}

impl SalvageScreen {
    /// Prepare the screen: assemble every kernel the design supports and
    /// verify the fault-free baseline.
    ///
    /// # Errors
    ///
    /// [`RunError`] if a kernel fails to assemble for the design's
    /// target or fails its fault-free reference run — the screen is
    /// meaningless without a clean baseline.
    pub fn new(design: CoreDesign, config: SalvageConfig) -> Result<SalvageScreen, RunError> {
        let target = target_for(design);
        let prepared: Vec<PreparedKernel> = Kernel::ALL
            .iter()
            .filter(|k| k.supports(target.dialect))
            .map(|&k| PreparedKernel::new(k, target))
            .collect::<Result<_, _>>()?;
        // Fault-free baseline: every kernel must verify clean before any
        // die is blamed on its defects.
        for kernel in &prepared {
            let inputs = Sampler::new(kernel.kernel(), config.seed).draw();
            kernel.run_with(&inputs, config.budget, &mut NoFaults)?;
        }
        // Static vulnerability reports, one per kernel: amortized here so
        // pruned analyses pay for the dataflow pass once per screen, not
        // once per die.
        let vuln = prepared
            .iter()
            .map(|kernel| flexcheck::vuln::analyze(&target, kernel.program()))
            .collect();
        Ok(SalvageScreen {
            design,
            config,
            prepared,
            vuln,
        })
    }

    /// Classify every die of a tested wafer. Infallible: the fallible
    /// preparation already happened in [`SalvageScreen::new`].
    #[must_use]
    pub fn analyze(&self, run: &WaferRun) -> SalvageAnalysis {
        self.analyze_with_pruning(run, false)
    }

    /// Classify every die, skipping kernel batches whose whole fault
    /// plane is provably masked by the screen's static vulnerability
    /// reports. Bit-for-bit identical to [`SalvageScreen::analyze`] —
    /// pruning only removes simulations whose outcome is already known.
    #[must_use]
    pub fn analyze_pruned(&self, run: &WaferRun) -> SalvageAnalysis {
        self.analyze_with_pruning(run, true)
    }

    fn analyze_with_pruning(&self, run: &WaferRun, prune: bool) -> SalvageAnalysis {
        // One work unit per die: classification is a pure function of
        // the die's outcome and variation, so dies screen in parallel
        // and merge back in wafer-site order bit-for-bit identical to a
        // serial pass.
        let reports = prune.then_some(self.vuln.as_slice());
        let classes = flexshard::map_indexed(run.outcomes.len(), self.config.threads, |i| {
            classify_die(
                &run.outcomes[i],
                &run.variations[i],
                &self.prepared,
                reports,
                &self.config,
            )
        });
        SalvageAnalysis {
            classes,
            in_inclusion: run.sites.iter().map(|s| s.in_inclusion_zone()).collect(),
            design: self.design,
        }
    }
}

/// Classify every die of a tested wafer (one-shot form of
/// [`SalvageScreen`]).
///
/// # Errors
///
/// [`RunError`] if a kernel fails to assemble for the design's target or
/// fails its fault-free reference run — the screen is meaningless
/// without a clean baseline.
pub fn analyze(
    run: &WaferRun,
    design: CoreDesign,
    config: &SalvageConfig,
) -> Result<SalvageAnalysis, RunError> {
    Ok(SalvageScreen::new(design, *config)?.analyze(run))
}

fn classify_die(
    outcome: &DieOutcome,
    variation: &DieVariation,
    prepared: &[PreparedKernel],
    reports: Option<&[flexcheck::vuln::VulnReport]>,
    config: &SalvageConfig,
) -> DieClass {
    if outcome.functional() {
        DieClass::Functional
    } else if outcome.timing_errors > 0 {
        DieClass::TimingFailure
    } else if die_is_salvageable_pruned(prepared, reports, variation, config) {
        DieClass::Salvaged
    } else {
        DieClass::Unsalvageable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexfab::wafer_run::WaferExperiment;

    fn quick_config() -> SalvageConfig {
        SalvageConfig {
            cases_per_kernel: 1,
            budget: 30_000,
            seed: 5,
            threads: 1,
        }
    }

    #[test]
    fn zero_defect_die_is_salvageable() {
        let target = Target::fc4();
        let prepared: Vec<PreparedKernel> = Kernel::ALL
            .iter()
            .map(|&k| PreparedKernel::new(k, target).unwrap())
            .collect();
        let clean = DieVariation {
            defect_count: 0,
            defect_seed: 1,
            delay_factor: 1.0,
            current_factor: 1.0,
            defect_leak_ma: 0.0,
        };
        assert!(die_is_salvageable(&prepared, &clean, &quick_config()));
    }

    #[test]
    fn heavily_defective_die_is_not_salvageable() {
        let target = Target::fc4();
        let prepared: Vec<PreparedKernel> = Kernel::ALL
            .iter()
            .map(|&k| PreparedKernel::new(k, target).unwrap())
            .collect();
        let wrecked = DieVariation {
            defect_count: 40,
            defect_seed: 9,
            delay_factor: 1.0,
            current_factor: 1.0,
            defect_leak_ma: 0.0,
        };
        assert!(!die_is_salvageable(&prepared, &wrecked, &quick_config()));
    }

    #[test]
    fn partial_yield_dominates_binary_yield() {
        let exp = WaferExperiment::published(CoreDesign::FlexiCore4);
        let run = exp.run(4.5, 300).unwrap();
        let analysis = analyze(&run, CoreDesign::FlexiCore4, &quick_config()).unwrap();
        for inclusion in [false, true] {
            let binary = analysis.binary_yield(inclusion);
            let partial = analysis.partial_yield(inclusion);
            assert!(partial >= binary, "salvage can only add dies");
            assert!(partial <= 1.0);
        }
        // reproducibility: classification is a pure function of its inputs
        let again = analyze(&run, CoreDesign::FlexiCore4, &quick_config()).unwrap();
        assert_eq!(analysis.classes, again.classes);
    }

    #[test]
    fn threaded_salvage_is_bit_identical_to_serial() {
        let exp = WaferExperiment::published(CoreDesign::FlexiCore4);
        let run = exp.run(4.5, 300).unwrap();
        let serial = analyze(&run, CoreDesign::FlexiCore4, &quick_config()).unwrap();
        let threaded = analyze(
            &run,
            CoreDesign::FlexiCore4,
            &SalvageConfig {
                threads: 8,
                ..quick_config()
            },
        )
        .unwrap();
        assert_eq!(serial.classes, threaded.classes);
        assert_eq!(serial.in_inclusion, threaded.in_inclusion);
    }

    #[test]
    fn timing_failures_are_never_screened() {
        let outcome = DieOutcome {
            defect_errors: 3,
            timing_errors: 2,
        };
        let variation = DieVariation {
            defect_count: 0,
            defect_seed: 0,
            delay_factor: 2.0,
            current_factor: 1.0,
            defect_leak_ma: 0.0,
        };
        assert_eq!(
            classify_die(&outcome, &variation, &[], None, &quick_config()),
            DieClass::TimingFailure
        );
    }
}
