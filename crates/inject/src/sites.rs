//! Fault-site enumeration: every (state element, bit) pair a fault can
//! land on, per dialect.
//!
//! The architectural state differs across the four dialects (datapath
//! width, memory depth, presence of an accumulator), so the site list is
//! dialect-specific. Site order is fixed — enumeration order is part of
//! the campaign determinism contract.

use flexicore::isa::Dialect;
use flexicore::sim::{ArchFault, FaultKind, PowerCut, StateElement};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The program counter is 7 bits on every dialect (in-page addressing).
pub const PC_BITS: u8 = 7;

/// Every fetched byte crosses an 8-bit bus regardless of datapath width.
pub const FETCH_BITS: u8 = 8;

/// The off-chip MMU page register and its pending-commit latch are four
/// bits on every dialect (§5.1: sixteen 128-instruction pages).
pub const PAGE_BITS: u8 = 4;

/// One injectable location: a single bit of a single state element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSite {
    /// The state element.
    pub element: StateElement,
    /// The bit within it.
    pub bit: u8,
}

impl FaultSite {
    /// Bind a [`FaultKind`] to this site.
    #[must_use]
    pub fn with_kind(self, kind: FaultKind) -> ArchFault {
        ArchFault {
            element: self.element,
            bit: self.bit,
            kind,
        }
    }
}

/// Datapath width in bits for a dialect.
#[must_use]
pub fn data_bits(dialect: Dialect) -> u8 {
    dialect.datapath_bits() as u8
}

/// Number of data-memory words (or registers, on the load-store
/// dialect).
#[must_use]
pub fn mem_words(dialect: Dialect) -> u8 {
    dialect.mem_words()
}

/// Whether the dialect has an architectural accumulator.
#[must_use]
pub fn has_accumulator(dialect: Dialect) -> bool {
    dialect.has_accumulator()
}

/// Every injectable (element, bit) site of a dialect, in a fixed order:
/// PC, accumulator, memory words, fetch bus, input port, output port,
/// MMU page register, MMU pending-commit latch — low bit first within
/// each element. The MMU sites live on the off-chip programming board
/// but are fabricated on the same flexible substrate, so campaigns
/// target them alongside core state. New elements are appended so the
/// prefix order (and with it old seeds' draws over old site lists)
/// never changes.
#[must_use]
pub fn enumerate(dialect: Dialect) -> Vec<FaultSite> {
    let width = data_bits(dialect);
    let mut sites = Vec::new();
    let mut push = |element: StateElement, bits: u8| {
        for bit in 0..bits {
            sites.push(FaultSite { element, bit });
        }
    };
    push(StateElement::Pc, PC_BITS);
    if has_accumulator(dialect) {
        push(StateElement::Acc, width);
    }
    for word in 0..mem_words(dialect) {
        push(StateElement::Mem(word), width);
    }
    push(StateElement::FetchBus, FETCH_BITS);
    push(StateElement::InputPort, width);
    push(StateElement::OutputPort, width);
    push(StateElement::PageReg, PAGE_BITS);
    push(StateElement::PagePending, PAGE_BITS);
    sites
}

/// An order-sensitive FNV-1a digest of a dialect's site enumeration.
///
/// Every seeded campaign's fault draws index into [`enumerate`]'s list,
/// so its *order* — not just its contents — is part of the replay
/// contract: an insertion anywhere but the end silently reshuffles
/// every historical seed's draws. This digest pins the order; the
/// regression test below snapshots it per dialect, so a future append
/// must consciously update the snapshot while a reshuffle fails loudly.
#[must_use]
pub fn enumeration_digest(dialect: Dialect) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut mix = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for site in enumerate(dialect) {
        let (tag, word) = match site.element {
            StateElement::Pc => (0u8, 0u8),
            StateElement::Acc => (1, 0),
            StateElement::Mem(w) => (2, w),
            StateElement::FetchBus => (3, 0),
            StateElement::InputPort => (4, 0),
            StateElement::OutputPort => (5, 0),
            StateElement::PageReg => (6, 0),
            StateElement::PagePending => (7, 0),
        };
        mix(tag);
        mix(word);
        mix(site.bit);
    }
    hash
}

/// Draw `count` stuck-at faults for one manufactured die from its
/// defect seed, mirroring how `flexfab` maps defect draws onto gate-level
/// fault sites: uniform over the architectural site list, polarity by
/// coin flip, all permanent.
#[must_use]
pub fn die_faults(dialect: Dialect, defect_seed: u64, count: u32) -> Vec<ArchFault> {
    let sites = enumerate(dialect);
    let mut rng = StdRng::seed_from_u64(defect_seed);
    (0..count)
        .map(|_| {
            let site = sites[rng.gen_range(0..sites.len())];
            let kind = if rng.gen_bool(0.5) {
                FaultKind::StuckAt0
            } else {
                FaultKind::StuckAt1
            };
            site.with_kind(kind)
        })
        .collect()
}

/// Draw `count` seeded power-cut plans for a reprogramming campaign:
/// each plan arms a supply collapse at a uniform word-write index below
/// `writes_bound` (the store's write budget for one update — staging
/// pages plus commit-control words), with a per-plan torn-bit seed. The
/// draw order is part of the replay contract, exactly like
/// [`enumerate`]'s site order.
#[must_use]
pub fn power_cut_plans(seed: u64, writes_bound: u64, count: usize) -> Vec<PowerCut> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x70D0_C0DE);
    (0..count)
        .map(|_| PowerCut::at_write(rng.gen_range(0..writes_bound.max(1)), rng.gen()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_counts_per_dialect() {
        // fc4: pc 7 + acc 4 + 8 words * 4 + fetch 8 + in 4 + out 4
        //      + page 4 + pending 4
        assert_eq!(enumerate(Dialect::Fc4).len(), 7 + 4 + 32 + 8 + 4 + 4 + 8);
        // fc8: pc 7 + acc 8 + 4 words * 8 + fetch 8 + in 8 + out 8
        //      + page 4 + pending 4
        assert_eq!(enumerate(Dialect::Fc8).len(), 7 + 8 + 32 + 8 + 8 + 8 + 8);
        // xacc matches fc4's shape
        assert_eq!(
            enumerate(Dialect::ExtendedAcc).len(),
            enumerate(Dialect::Fc4).len()
        );
        // xls: no accumulator, 8 registers
        assert_eq!(enumerate(Dialect::LoadStore).len(), 7 + 32 + 8 + 4 + 4 + 8);
    }

    #[test]
    fn mmu_sites_are_enumerated_last() {
        // appended after core state so older seeds' draw order over the
        // core-only prefix is unchanged
        for dialect in [
            Dialect::Fc4,
            Dialect::Fc8,
            Dialect::ExtendedAcc,
            Dialect::LoadStore,
        ] {
            let sites = enumerate(dialect);
            let tail = &sites[sites.len() - 8..];
            assert!(tail[..4].iter().all(|s| s.element == StateElement::PageReg));
            assert!(tail[4..]
                .iter()
                .all(|s| s.element == StateElement::PagePending));
        }
    }

    #[test]
    fn sites_are_unique_and_in_range() {
        for dialect in [
            Dialect::Fc4,
            Dialect::Fc8,
            Dialect::ExtendedAcc,
            Dialect::LoadStore,
        ] {
            let sites = enumerate(dialect);
            let unique: std::collections::HashSet<_> = sites.iter().collect();
            assert_eq!(unique.len(), sites.len(), "{dialect:?}");
            for s in &sites {
                let width = match s.element {
                    StateElement::Pc => PC_BITS,
                    StateElement::FetchBus => FETCH_BITS,
                    StateElement::PageReg | StateElement::PagePending => PAGE_BITS,
                    _ => data_bits(dialect),
                };
                assert!(s.bit < width, "{dialect:?} {:?}", s);
            }
        }
    }

    #[test]
    fn mem_sites_are_valid_addresses_on_a_real_core() {
        // every enumerated Mem word must be readable through the checked
        // accessors of the matching simulator (no panicking indexing)
        use flexicore::exec::AnyCore;
        use flexicore::isa::features::FeatureSet;
        use flexicore::program::Program;

        for dialect in [
            Dialect::Fc4,
            Dialect::Fc8,
            Dialect::ExtendedAcc,
            Dialect::LoadStore,
        ] {
            let core = AnyCore::for_dialect(dialect, FeatureSet::revised(), Program::default());
            for s in enumerate(dialect) {
                if let StateElement::Mem(word) = s.element {
                    assert!(
                        core.mem(word).is_some(),
                        "{dialect:?}: Mem({word}) out of range"
                    );
                }
            }
            assert!(core.mem(mem_words(dialect)).is_none(), "{dialect:?}");
        }
    }

    #[test]
    fn power_cut_plans_are_seeded_and_in_bound() {
        let a = power_cut_plans(9, 500, 16);
        let b = power_cut_plans(9, 500, 16);
        assert_eq!(a, b, "same seed, same plans");
        assert_eq!(a.len(), 16);
        for plan in &a {
            assert!(plan.is_armed());
            assert!(plan.cut_index().unwrap() < 500);
        }
        assert_ne!(a, power_cut_plans(10, 500, 16));
        // a degenerate write budget still yields armed, valid plans
        for plan in power_cut_plans(3, 0, 4) {
            assert_eq!(plan.cut_index(), Some(0));
        }
    }

    #[test]
    fn enumeration_order_digests_are_seed_stable() {
        // Snapshots of the (element, bit) enumeration per dialect. A
        // failure here means the site order changed, which reshuffles
        // every seeded campaign's historical draws: append new elements
        // at the end and update the snapshot *only* for dialects whose
        // list actually grew.
        assert_eq!(enumeration_digest(Dialect::Fc4), 0x901C_FCAF_9DBE_C1F4);
        assert_eq!(enumeration_digest(Dialect::Fc8), 0x9A3F_826E_1B23_65D4);
        assert_eq!(
            enumeration_digest(Dialect::ExtendedAcc),
            0x901C_FCAF_9DBE_C1F4,
            "xacc mirrors fc4's architectural shape"
        );
        assert_eq!(
            enumeration_digest(Dialect::LoadStore),
            0x4577_A5F6_E562_B640
        );
    }

    #[test]
    fn die_faults_are_deterministic_and_permanent() {
        let a = die_faults(Dialect::Fc4, 42, 5);
        let b = die_faults(Dialect::Fc4, 42, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a
            .iter()
            .all(|f| matches!(f.kind, FaultKind::StuckAt0 | FaultKind::StuckAt1)));
        let c = die_faults(Dialect::Fc4, 43, 5);
        assert_ne!(a, c);
    }
}
