//! Aggregation and text rendering of campaign results.

use crate::campaign::{CampaignResult, Outcome, Trial};
use flexicore::sim::StateElement;
use std::collections::BTreeMap;

/// Outcome counts over a set of trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Tally {
    /// Oracle-exact runs.
    pub masked: usize,
    /// Silent data corruptions.
    pub sdc: usize,
    /// Simulator faults.
    pub crash: usize,
    /// Watchdog expiries.
    pub hang: usize,
}

impl Tally {
    /// Count the outcomes of `trials`.
    #[must_use]
    pub fn of(trials: &[Trial]) -> Tally {
        let mut t = Tally::default();
        for trial in trials {
            t.bump(trial.outcome);
        }
        t
    }

    /// Add one outcome.
    pub fn bump(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Masked => self.masked += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::Crash => self.crash += 1,
            Outcome::Hang => self.hang += 1,
        }
    }

    /// Total trials counted.
    #[must_use]
    pub fn total(&self) -> usize {
        self.masked + self.sdc + self.crash + self.hang
    }

    /// Fraction of trials the fault was masked (the architectural
    /// salvage rate).
    #[must_use]
    pub fn masked_rate(&self) -> f64 {
        self.rate(self.masked)
    }

    /// Fraction of trials ending in silent data corruption.
    #[must_use]
    pub fn sdc_rate(&self) -> f64 {
        self.rate(self.sdc)
    }

    /// Fraction of trials ending in a simulator fault.
    #[must_use]
    pub fn crash_rate(&self) -> f64 {
        self.rate(self.crash)
    }

    /// Fraction of trials caught by the watchdog.
    #[must_use]
    pub fn hang_rate(&self) -> f64 {
        self.rate(self.hang)
    }

    fn rate(&self, n: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            n as f64 / total as f64
        }
    }
}

/// The element class a fault site belongs to, for vulnerability
/// grouping (individual memory words collapse into one class).
#[must_use]
pub fn element_class(element: StateElement) -> &'static str {
    match element {
        StateElement::Pc => "pc",
        StateElement::Acc => "acc",
        StateElement::Mem(_) => "mem",
        StateElement::FetchBus => "fetch",
        StateElement::InputPort => "iport",
        StateElement::OutputPort => "oport",
        StateElement::PageReg => "page",
        StateElement::PagePending => "page*",
    }
}

/// Unmasked-fraction per element class, most vulnerable first (ties
/// broken by class name so the ordering is deterministic).
#[must_use]
pub fn element_vulnerability(trials: &[Trial]) -> Vec<ElementVulnerability> {
    let mut per_class: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
    for t in trials {
        let entry = per_class.entry(element_class(t.fault.element)).or_default();
        entry.1 += 1;
        if t.outcome != Outcome::Masked {
            entry.0 += 1;
        }
    }
    let mut rows: Vec<ElementVulnerability> = per_class
        .into_iter()
        .map(|(class, (unmasked, trials))| ElementVulnerability {
            class,
            unmasked,
            trials,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.unmasked_rate()
            .partial_cmp(&a.unmasked_rate())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.class.cmp(b.class))
    });
    rows
}

/// How often faults on one element class escaped masking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElementVulnerability {
    /// Element class label (`pc`, `acc`, `mem`, `fetch`, `iport`,
    /// `oport`).
    pub class: &'static str,
    /// Trials on this class that were not masked.
    pub unmasked: usize,
    /// Total trials on this class.
    pub trials: usize,
}

impl ElementVulnerability {
    /// Fraction of trials on this class that were not masked.
    #[must_use]
    pub fn unmasked_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.unmasked as f64 / self.trials as f64
        }
    }
}

/// Render a campaign as the CLI's classification table: one row per
/// injection, then the tally and the vulnerability ranking.
#[must_use]
pub fn render_campaign(result: &CampaignResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let cfg = &result.config;
    let _ = writeln!(
        out,
        "# {} on {:?}: {} faults, seed {}, budget {}",
        cfg.kernel, cfg.target.dialect, cfg.trials, cfg.seed, cfg.budget
    );
    let _ = writeln!(out, "{:<6} {:<18} outcome", "trial", "fault");
    for (i, t) in result.trials.iter().enumerate() {
        let _ = writeln!(out, "{:<6} {:<18} {}", i, t.fault.to_string(), t.outcome);
    }
    let tally = Tally::of(&result.trials);
    let _ = writeln!(
        out,
        "\nmasked {:>4} ({:5.1} %)   SDC {:>4} ({:5.1} %)   crash {:>4} ({:5.1} %)   hang {:>4} ({:5.1} %)",
        tally.masked,
        100.0 * tally.masked_rate(),
        tally.sdc,
        100.0 * tally.sdc_rate(),
        tally.crash,
        100.0 * tally.crash_rate(),
        tally.hang,
        100.0 * tally.hang_rate(),
    );
    let _ = writeln!(out, "\nmost vulnerable state elements:");
    for v in element_vulnerability(&result.trials) {
        let _ = writeln!(
            out,
            "  {:<6} {:>3}/{:<3} unmasked ({:5.1} %)",
            v.class,
            v.unmasked,
            v.trials,
            100.0 * v.unmasked_rate()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexicore::sim::{ArchFault, FaultKind};

    fn trial(element: StateElement, outcome: Outcome) -> Trial {
        Trial {
            fault: ArchFault {
                element,
                bit: 0,
                kind: FaultKind::StuckAt1,
            },
            outcome,
        }
    }

    #[test]
    fn tally_counts_and_rates() {
        let trials = [
            trial(StateElement::Pc, Outcome::Masked),
            trial(StateElement::Pc, Outcome::Sdc),
            trial(StateElement::Acc, Outcome::Crash),
            trial(StateElement::Acc, Outcome::Hang),
        ];
        let t = Tally::of(&trials);
        assert_eq!((t.masked, t.sdc, t.crash, t.hang), (1, 1, 1, 1));
        assert_eq!(t.total(), 4);
        assert!((t.masked_rate() - 0.25).abs() < 1e-12);
        assert_eq!(Tally::default().masked_rate(), 0.0);
    }

    #[test]
    fn vulnerability_ranks_unmasked_first() {
        let trials = [
            trial(StateElement::Pc, Outcome::Crash),
            trial(StateElement::Pc, Outcome::Hang),
            trial(StateElement::Mem(0), Outcome::Masked),
            trial(StateElement::Mem(3), Outcome::Sdc),
            trial(StateElement::Acc, Outcome::Masked),
        ];
        let rows = element_vulnerability(&trials);
        assert_eq!(rows[0].class, "pc");
        assert_eq!(rows[0].unmasked, 2);
        assert_eq!(rows[1].class, "mem");
        assert_eq!(rows[1].trials, 2, "mem words collapse into one class");
        assert_eq!(rows.last().unwrap().class, "acc");
    }
}
