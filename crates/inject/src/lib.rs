//! # flexinject
//!
//! Architectural fault-injection campaigns for the FlexiCore functional
//! simulators, and the partial-yield salvage analysis that extends the
//! paper's Table 5.
//!
//! The gate-level wafer model in `flexfab` decides whether a die passes
//! the §4.1 binary go/no-go screen. This crate asks the finer question:
//! *which programs still run on a die that fails?* It enumerates
//! injectable fault sites over each dialect's architectural state
//! ([`sites`]), sweeps deterministic single-fault campaigns over the
//! seven benchmark kernels ([`campaign`]), aggregates
//! masked/SDC/crash/hang tallies and per-element vulnerability
//! ([`report`]), and replays wafer defect draws as architectural fault
//! sets to compute a salvaged-dies yield column ([`salvage`]).
//!
//! ```
//! use flexasm::Target;
//! use flexinject::campaign::{run_campaign, CampaignConfig};
//! use flexinject::report::Tally;
//! use flexkernels::Kernel;
//!
//! let cfg = CampaignConfig {
//!     budget: 20_000,
//!     ..CampaignConfig::new(Target::fc4(), Kernel::ParityCheck, 16, 1)
//! };
//! let result = run_campaign(cfg)?;
//! let tally = Tally::of(&result.trials);
//! assert_eq!(tally.total(), 16);
//! # Ok::<(), flexkernels::RunError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod pool;
pub mod report;
pub mod salvage;
pub mod sites;
pub mod stress;

pub use campaign::{
    run_campaign, run_campaign_pruned, CampaignConfig, CampaignResult, FaultModel, Outcome, Trial,
};
pub use pool::{PoolDie, SalvagePool};
pub use report::Tally;
pub use salvage::{SalvageAnalysis, SalvageConfig, SalvageScreen};
pub use sites::power_cut_plans;
pub use stress::{BrownoutPlan, StressConfig, StressSchedule, TickStress};

use flexasm::Target;
use flexkernels::Kernel;

/// Parse a kernel's CLI spelling.
#[must_use]
pub fn kernel_from_name(name: &str) -> Option<Kernel> {
    match name.to_ascii_lowercase().as_str() {
        "calculator" | "calc" => Some(Kernel::Calculator),
        "fir" | "firfilter" | "fir-filter" => Some(Kernel::FirFilter),
        "tree" | "decisiontree" | "decision-tree" => Some(Kernel::DecisionTree),
        "intavg" | "avg" => Some(Kernel::IntAvg),
        "thresholding" | "threshold" => Some(Kernel::Thresholding),
        "parity" | "paritycheck" | "parity-check" => Some(Kernel::ParityCheck),
        "xorshift" | "xorshift8" => Some(Kernel::XorShift8),
        _ => None,
    }
}

/// Parse a dialect's CLI spelling into a ready-to-run target (the
/// extended dialects use their revised feature sets).
#[must_use]
pub fn target_from_name(name: &str) -> Option<Target> {
    match name.to_ascii_lowercase().as_str() {
        "fc4" => Some(Target::fc4()),
        "fc8" => Some(Target::fc8()),
        "xacc" => Some(Target::xacc_revised()),
        "xls" => Some(Target::xls_revised()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_round_trip() {
        for k in Kernel::ALL {
            let slug = match k {
                Kernel::Calculator => "calc",
                Kernel::FirFilter => "fir",
                Kernel::DecisionTree => "tree",
                Kernel::IntAvg => "intavg",
                Kernel::Thresholding => "threshold",
                Kernel::ParityCheck => "parity",
                Kernel::XorShift8 => "xorshift",
            };
            assert_eq!(kernel_from_name(slug), Some(k));
        }
        assert_eq!(kernel_from_name("bogus"), None);
    }

    #[test]
    fn target_names_cover_all_dialects() {
        use flexicore::isa::Dialect;
        assert_eq!(target_from_name("fc4").unwrap().dialect, Dialect::Fc4);
        assert_eq!(target_from_name("fc8").unwrap().dialect, Dialect::Fc8);
        assert_eq!(
            target_from_name("xacc").unwrap().dialect,
            Dialect::ExtendedAcc
        );
        assert_eq!(target_from_name("XLS").unwrap().dialect, Dialect::LoadStore);
        assert!(target_from_name("fc16").is_none());
    }
}
