//! Salvage pools: partially-defective dies as raw material for
//! redundant execution.
//!
//! The salvage analysis ([`crate::salvage`]) asks whether one die can
//! run every kernel alone. A *pool* asks a weaker, more productive
//! question: which dies can run **together**? Two dies whose defect
//! draws land on different architectural sites never agree on a wrong
//! answer caused by a manufacturing defect, so a majority vote across
//! them masks either die's faults. The resilient executor composes its
//! voting quorums from exactly this material.
//!
//! A pool holds each die's architectural fault set (replayed from its
//! defect seed via [`sites::die_faults`], the same mapping the salvage
//! screen uses). Timing-limited dies never enter a pool — a slow path
//! fails at speed no matter how many partners vote alongside it.

use crate::sites;
use flexfab::wafer_run::{CoreDesign, WaferRun};
use flexicore::isa::Dialect;
use flexicore::sim::ArchFault;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One die available for quorum building.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolDie {
    /// Wafer site index (or synthetic index) — stable across the pool's
    /// lifetime, used in retry traces to name lanes.
    pub id: usize,
    /// The die's permanent architectural fault set; empty for dies that
    /// passed the binary screen.
    pub faults: Vec<ArchFault>,
    /// Gate-level defect count the fault set was replayed from.
    pub defect_count: u32,
}

impl PoolDie {
    /// A die with no known defects.
    #[must_use]
    pub fn clean(id: usize) -> Self {
        PoolDie {
            id,
            faults: Vec::new(),
            defect_count: 0,
        }
    }

    /// Whether the die carries no known faults.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
    }

    /// Whether this die's defect sites are disjoint from `other`'s.
    ///
    /// Disjointness is judged on the (element, bit) site alone, ignoring
    /// stuck polarity: two dies stuck at *opposite* values on the same
    /// bit still vote 1-against-1 there, which a third clean-at-that-bit
    /// lane must break — so a shared site disqualifies the pairing
    /// regardless of polarity.
    #[must_use]
    pub fn disjoint_with(&self, other: &PoolDie) -> bool {
        self.faults.iter().all(|a| {
            other
                .faults
                .iter()
                .all(|b| (a.element, a.bit) != (b.element, b.bit))
        })
    }
}

/// A dialect-specific pool of dies available for redundant execution.
#[derive(Debug, Clone)]
pub struct SalvagePool {
    dialect: Dialect,
    dies: Vec<PoolDie>,
}

impl SalvagePool {
    /// Build a pool directly from dies.
    #[must_use]
    pub fn new(dialect: Dialect, dies: Vec<PoolDie>) -> Self {
        SalvagePool { dialect, dies }
    }

    /// Harvest a tested wafer: functional dies join with an empty fault
    /// set, defect-limited failures join with their replayed fault set,
    /// timing failures are discarded. Die ids are wafer site indices.
    #[must_use]
    pub fn from_wafer(run: &WaferRun, design: CoreDesign) -> Self {
        let dialect = crate::salvage::target_for(design).dialect;
        let dies = run
            .outcomes
            .iter()
            .zip(&run.variations)
            .enumerate()
            .filter_map(|(id, (outcome, variation))| {
                if outcome.functional() {
                    Some(PoolDie::clean(id))
                } else if outcome.timing_errors > 0 {
                    None
                } else {
                    Some(PoolDie {
                        id,
                        faults: sites::die_faults(
                            dialect,
                            variation.defect_seed,
                            variation.defect_count,
                        ),
                        defect_count: variation.defect_count,
                    })
                }
            })
            .collect();
        SalvagePool { dialect, dies }
    }

    /// A deterministic synthetic pool for tests and CLI demos: `n` dies
    /// with defect counts drawn uniformly in `0..=max_defects`.
    #[must_use]
    pub fn synthetic(dialect: Dialect, n: usize, seed: u64, max_defects: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A1_7A9E);
        let dies = (0..n)
            .map(|id| {
                let defect_count = rng.gen_range(0..=max_defects);
                let defect_seed = rng.gen::<u64>();
                PoolDie {
                    id,
                    faults: sites::die_faults(dialect, defect_seed, defect_count),
                    defect_count,
                }
            })
            .collect();
        SalvagePool { dialect, dies }
    }

    /// The dialect every die in the pool implements.
    #[must_use]
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// The dies, in id order as constructed.
    #[must_use]
    pub fn dies(&self) -> &[PoolDie] {
        &self.dies
    }

    /// Number of dies in the pool.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dies.len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dies.is_empty()
    }

    /// Permanently remove a die (a lane the recovery layer retired).
    /// Returns the die if it was present.
    pub fn retire(&mut self, id: usize) -> Option<PoolDie> {
        let at = self.dies.iter().position(|d| d.id == id)?;
        Some(self.dies.remove(at))
    }

    /// Consume the pool, yielding its dies.
    #[must_use]
    pub fn into_dies(self) -> Vec<PoolDie> {
        self.dies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexfab::wafer_run::WaferExperiment;
    use flexicore::sim::{FaultKind, StateElement};

    fn die_with(id: usize, sites: &[(StateElement, u8)]) -> PoolDie {
        PoolDie {
            id,
            faults: sites
                .iter()
                .map(|&(element, bit)| ArchFault {
                    element,
                    bit,
                    kind: FaultKind::StuckAt0,
                })
                .collect(),
            defect_count: sites.len() as u32,
        }
    }

    #[test]
    fn disjointness_ignores_polarity() {
        let a = die_with(0, &[(StateElement::Acc, 1)]);
        let mut b = die_with(1, &[(StateElement::Acc, 1)]);
        b.faults[0].kind = FaultKind::StuckAt1;
        assert!(!a.disjoint_with(&b), "same site, opposite polarity");

        let c = die_with(2, &[(StateElement::Acc, 2)]);
        assert!(a.disjoint_with(&c));
        assert!(c.disjoint_with(&a), "disjointness is symmetric");
        assert!(a.disjoint_with(&PoolDie::clean(3)));
    }

    #[test]
    fn synthetic_pools_are_deterministic() {
        let a = SalvagePool::synthetic(Dialect::Fc4, 12, 7, 3);
        let b = SalvagePool::synthetic(Dialect::Fc4, 12, 7, 3);
        assert_eq!(a.dies(), b.dies());
        assert_eq!(a.len(), 12);
        let c = SalvagePool::synthetic(Dialect::Fc4, 12, 8, 3);
        assert_ne!(a.dies(), c.dies());
    }

    #[test]
    fn wafer_pools_exclude_timing_failures() {
        let exp = WaferExperiment::published(CoreDesign::FlexiCore4);
        let run = exp.run(4.5, 300).unwrap();
        let pool = SalvagePool::from_wafer(&run, CoreDesign::FlexiCore4);
        assert_eq!(pool.dialect(), Dialect::Fc4);
        assert!(!pool.is_empty());

        let timing_failures = run
            .outcomes
            .iter()
            .filter(|o| !o.functional() && o.timing_errors > 0)
            .count();
        assert_eq!(pool.len(), run.outcomes.len() - timing_failures);

        // clean dies carry no faults; defect-limited dies replay theirs
        for die in pool.dies() {
            let outcome = &run.outcomes[die.id];
            assert_eq!(outcome.timing_errors, 0, "timing die leaked into pool");
            if outcome.functional() {
                assert!(die.is_clean());
            }
        }
    }

    #[test]
    fn retirement_shrinks_the_pool() {
        let mut pool = SalvagePool::synthetic(Dialect::Fc8, 5, 1, 2);
        let before = pool.len();
        let gone = pool.retire(2).expect("die 2 exists");
        assert_eq!(gone.id, 2);
        assert_eq!(pool.len(), before - 1);
        assert!(pool.retire(2).is_none(), "already retired");
        assert!(pool.dies().iter().all(|d| d.id != 2));
    }
}
