//! Deterministic fault-injection campaigns over the benchmark kernels.
//!
//! A campaign assembles one kernel once, then repeatedly executes it with
//! a single injected [`ArchFault`] and a freshly sampled input case,
//! classifying every run against the golden oracle:
//!
//! * **Masked** — the output stream is oracle-exact despite the fault;
//! * **SDC** — silent data corruption: the core halted cleanly but the
//!   output stream is wrong;
//! * **Crash** — the simulator raised a [`flexicore::SimError`]
//!   (illegal opcode reached, fetch off the end of the page, …);
//! * **Hang** — the watchdog budget expired before the halt idiom.
//!
//! Everything is a pure function of the campaign seed: fault draws,
//! input draws and transient-flip timing all come from one seeded RNG
//! stream, so a campaign replays bit-for-bit.

use crate::sites::{self, FaultSite};
use flexasm::Target;
use flexicore::sim::{ArchFault, FaultKind, FaultPlane};
use flexkernels::harness::{BatchCase, PreparedKernel, RunError, CYCLE_BUDGET};
use flexkernels::{inputs::Sampler, Kernel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which fault population a campaign draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultModel {
    /// Permanent stuck-at faults only (manufacturing defects, §4.1).
    #[default]
    StuckAt,
    /// One-shot transient bit flips only (single-event upsets).
    Transient,
    /// A 50/50 mix of the two.
    Mixed,
}

impl FaultModel {
    /// Parse a CLI spelling.
    #[must_use]
    pub fn from_name(name: &str) -> Option<FaultModel> {
        match name {
            "stuck" | "stuck-at" | "sa" => Some(FaultModel::StuckAt),
            "transient" | "flip" | "seu" => Some(FaultModel::Transient),
            "mixed" => Some(FaultModel::Mixed),
            _ => None,
        }
    }
}

/// How one faulty execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Outcome {
    /// Output oracle-exact; the fault was architecturally masked.
    Masked,
    /// Halted cleanly but produced a wrong output stream.
    Sdc,
    /// The simulator faulted.
    Crash,
    /// The watchdog budget expired.
    Hang,
}

impl Outcome {
    /// Fixed-width display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Sdc => "SDC",
            Outcome::Crash => "crash",
            Outcome::Hang => "hang",
        }
    }
}

impl core::fmt::Display for Outcome {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// One classified injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// The injected fault.
    pub fault: ArchFault,
    /// How the run ended.
    pub outcome: Outcome,
}

/// Parameters of one campaign.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Assembly target (fixes the dialect and its site list).
    pub target: Target,
    /// The kernel under test.
    pub kernel: Kernel,
    /// Number of injections.
    pub trials: usize,
    /// Master seed; every draw derives from it.
    pub seed: u64,
    /// Watchdog budget per run (cycles on FC4/FC8, retired instructions
    /// on the extended dialects).
    pub budget: u64,
    /// Fault population.
    pub model: FaultModel,
    /// How many contiguous shards the trial list is split into for
    /// execution. The shard count never changes the report — shards only
    /// decide which trials share a worker — so it is free to tune.
    pub shards: usize,
    /// Worker threads executing shards (`1` = run inline, serially).
    pub threads: usize,
}

impl CampaignConfig {
    /// A campaign with the default watchdog and stuck-at model, run
    /// serially (one shard, one thread).
    #[must_use]
    pub fn new(target: Target, kernel: Kernel, trials: usize, seed: u64) -> Self {
        CampaignConfig {
            target,
            kernel,
            trials,
            seed,
            budget: CYCLE_BUDGET,
            model: FaultModel::StuckAt,
            shards: 1,
            threads: 1,
        }
    }
}

/// The classified trials of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The configuration that produced it.
    pub config: CampaignConfig,
    /// One entry per injection, in draw order.
    pub trials: Vec<Trial>,
    /// Cycle count of the fault-free reference run (bounds the transient
    /// flip window).
    pub clean_cycles: u64,
    /// Trials that actually reached the simulator. Equal to
    /// `trials.len()` for an unpruned campaign; smaller when a
    /// [`flexcheck::vuln::VulnReport`] synthesized masked outcomes
    /// statically.
    pub executed: usize,
}

/// Run a campaign: `config.trials` single-fault injections of `kernel`
/// on `target`, each with a freshly sampled input case.
///
/// # Errors
///
/// [`RunError::Asm`] if the kernel does not assemble for the target, or
/// any error from the fault-free reference run — a kernel that fails
/// *clean* makes every classification meaningless, so that is reported
/// rather than counted.
pub fn run_campaign(config: CampaignConfig) -> Result<CampaignResult, RunError> {
    run_campaign_pruned(config, None)
}

/// Run a campaign, optionally pruned by a static
/// [`flexcheck::vuln::VulnReport`] for the same kernel image: trials
/// whose fault lands on a provably-masked
/// element skip the simulator and record [`Outcome::Masked`] directly.
///
/// The fault and input streams are pre-drawn identically to the
/// unpruned path — pruning only decides which pre-drawn trials execute
/// — so the report is bit-for-bit equal to [`run_campaign`]'s for any
/// sound report. Soundness is the analyzer's contract, enforced by
/// `flexcheck::soundness::check_masked_sites`: a single-fault run on a
/// never-read element is observably fault-free, for permanent and
/// transient faults alike.
///
/// The report must describe the same program the campaign assembles
/// (same kernel, same target); the caller owns that pairing.
///
/// # Errors
///
/// As [`run_campaign`].
pub fn run_campaign_pruned(
    config: CampaignConfig,
    prune: Option<&flexcheck::vuln::VulnReport>,
) -> Result<CampaignResult, RunError> {
    let prepared = PreparedKernel::new(config.kernel, config.target)?;
    let site_list = sites::enumerate(config.target.dialect);
    let mut sampler = Sampler::new(config.kernel, config.seed ^ 0x001A_7E57);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Fault-free reference: verifies the kernel on this target and
    // bounds the transient-flip scheduling window.
    let clean = prepared.run_with(
        &sampler.draw(),
        config.budget,
        &mut flexicore::sim::NoFaults,
    )?;
    let clean_cycles = clean.result.cycles.max(1);

    // Pre-draw every (fault, input) pair in trial order — the RNG and
    // sampler streams interleave exactly as the old serial loop did —
    // then execute the pre-drawn trials sharded across worker threads.
    // Each shard runs its contiguous range of trials as one packed batch
    // and the results merge back in shard (= trial) order, so neither
    // the thread count nor the shard count can change a single bit of
    // the report. Pruning happens *after* the draws: a pruned trial
    // still consumes its RNG and sampler draws, it just never reaches
    // the simulator, so pruned and unpruned reports stay comparable.
    let mut faults = Vec::with_capacity(config.trials);
    let mut executed_at = Vec::with_capacity(config.trials);
    let mut batch = Vec::with_capacity(config.trials);
    for i in 0..config.trials {
        let fault = draw_fault(&mut rng, &site_list, config.model, clean_cycles);
        let inputs = sampler.draw();
        faults.push(fault);
        if prune.is_some_and(|report| report.is_masked_fault(&fault)) {
            continue;
        }
        executed_at.push(i);
        batch.push(BatchCase {
            inputs,
            faults: FaultPlane::with_faults(vec![fault]),
        });
    }
    let executed = batch.len();
    let runs = flexshard::map_sharded(batch.len(), config.shards, config.threads, |_, range| {
        prepared.run_batch(batch[range].to_vec(), config.budget)
    });
    let mut trials: Vec<Trial> = faults
        .into_iter()
        .map(|fault| Trial {
            fault,
            outcome: Outcome::Masked,
        })
        .collect();
    for (&i, run) in executed_at.iter().zip(runs) {
        trials[i].outcome = classify(run);
    }
    Ok(CampaignResult {
        config,
        trials,
        clean_cycles,
        executed,
    })
}

/// Map a harness result onto the four-way classification.
#[must_use]
pub fn classify(result: Result<flexkernels::KernelRun, RunError>) -> Outcome {
    match result {
        Ok(_) => Outcome::Masked,
        Err(RunError::OracleMismatch { .. }) => Outcome::Sdc,
        Err(RunError::Sim(_)) => Outcome::Crash,
        Err(RunError::DidNotHalt) => Outcome::Hang,
        // PreparedKernel already assembled, so run_with cannot fail with
        // RunError::Asm (or any future variant the enum might grow).
        Err(other) => unreachable!("unexpected harness error after prepare: {other}"),
    }
}

/// Draw one fault from `model`'s population: a uniformly chosen site
/// from `site_list`, stuck at a random polarity — or, for transients, a
/// one-shot flip scheduled uniformly inside the `clean_cycles` window.
/// Exposed so other campaign-style consumers (the resilient executor's
/// recovery campaigns) draw from the identical population with their
/// own RNG streams.
pub fn draw_fault(
    rng: &mut StdRng,
    site_list: &[FaultSite],
    model: FaultModel,
    clean_cycles: u64,
) -> ArchFault {
    let site = site_list[rng.gen_range(0..site_list.len())];
    let transient = match model {
        FaultModel::StuckAt => false,
        FaultModel::Transient => true,
        FaultModel::Mixed => rng.gen_bool(0.5),
    };
    let kind = if transient {
        FaultKind::FlipAtCycle(rng.gen_range(0..clean_cycles))
    } else if rng.gen_bool(0.5) {
        FaultKind::StuckAt0
    } else {
        FaultKind::StuckAt1
    };
    site.with_kind(kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaigns_replay_bit_for_bit() {
        let cfg = CampaignConfig {
            budget: 20_000,
            ..CampaignConfig::new(Target::fc4(), Kernel::ParityCheck, 24, 7)
        };
        let a = run_campaign(cfg).unwrap();
        let b = run_campaign(cfg).unwrap();
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.clean_cycles, b.clean_cycles);
    }

    #[test]
    fn thread_and_shard_counts_never_change_the_report() {
        let base = CampaignConfig {
            budget: 20_000,
            model: FaultModel::Mixed,
            ..CampaignConfig::new(Target::fc8(), Kernel::ParityCheck, 48, 13)
        };
        let serial = run_campaign(base).unwrap();
        for (shards, threads) in [(1, 8), (64, 1), (64, 8), (48, 3)] {
            let parallel = run_campaign(CampaignConfig {
                shards,
                threads,
                ..base
            })
            .unwrap();
            assert_eq!(
                serial.trials, parallel.trials,
                "{shards} shards / {threads} threads"
            );
            assert_eq!(serial.clean_cycles, parallel.clean_cycles);
        }
    }

    #[test]
    fn different_seeds_draw_different_faults() {
        let base = CampaignConfig::new(Target::fc4(), Kernel::ParityCheck, 24, 1);
        let a = run_campaign(CampaignConfig {
            budget: 20_000,
            ..base
        })
        .unwrap();
        let b = run_campaign(CampaignConfig {
            seed: 2,
            budget: 20_000,
            ..base
        })
        .unwrap();
        let fa: Vec<_> = a.trials.iter().map(|t| t.fault).collect();
        let fb: Vec<_> = b.trials.iter().map(|t| t.fault).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn stuck_output_bit_is_never_fully_masked_across_kernels() {
        // A stuck output-port bit must show up as SDC somewhere: parity
        // emits 0 or 1, so oport.0 stuck at 1 corrupts the zero case.
        use flexicore::sim::{FaultKind, StateElement};
        let prepared = PreparedKernel::new(Kernel::ParityCheck, Target::fc4()).unwrap();
        let mut plane = FaultPlane::with_faults(vec![ArchFault {
            element: StateElement::OutputPort,
            bit: 0,
            kind: FaultKind::StuckAt1,
        }]);
        // 0x00 has even parity -> oracle says 0, stuck bit drives 1
        let out = classify(prepared.run_with(&[0x0, 0x0], 20_000, &mut plane));
        assert_eq!(out, Outcome::Sdc);
    }

    #[test]
    fn transient_model_draws_flips_inside_clean_window() {
        let cfg = CampaignConfig {
            budget: 20_000,
            model: FaultModel::Transient,
            ..CampaignConfig::new(Target::fc4(), Kernel::ParityCheck, 32, 3)
        };
        let r = run_campaign(cfg).unwrap();
        for t in &r.trials {
            match t.fault.kind {
                FaultKind::FlipAtCycle(c) => assert!(c < r.clean_cycles),
                other => panic!("expected transient, got {other:?}"),
            }
        }
    }

    #[test]
    fn all_dialects_sustain_a_campaign() {
        for target in [
            Target::fc4(),
            Target::fc8(),
            Target::xacc_revised(),
            Target::xls_revised(),
        ] {
            let cfg = CampaignConfig {
                budget: 20_000,
                ..CampaignConfig::new(target, Kernel::ParityCheck, 12, 11)
            };
            let r = run_campaign(cfg).unwrap();
            assert_eq!(r.trials.len(), 12);
        }
    }
}
