//! Campaign-pruning equivalence: a statically pruned campaign must be
//! byte-identical to the unpruned one — same trials, same outcomes,
//! same clean-cycle count — it may only *skip* simulations whose
//! outcome the analyzer already proved.
//!
//! These tests are the user-facing face of the soundness contract that
//! `flexcheck::soundness::check_masked_sites` enforces differentially:
//! if the analyzer ever claimed a live site was masked, the pruned
//! report here would diverge from ground truth and fail loudly.

use flexasm::Target;
use flexcheck::vuln::VulnReport;
use flexfab::wafer_run::{CoreDesign, WaferExperiment};
use flexinject::campaign::{run_campaign, run_campaign_pruned, CampaignConfig, FaultModel};
use flexinject::salvage::SalvageScreen;
use flexinject::{Outcome, SalvageConfig};
use flexkernels::harness::PreparedKernel;
use flexkernels::Kernel;

fn all_targets() -> [Target; 4] {
    [
        Target::fc4(),
        Target::fc8(),
        Target::xacc_revised(),
        Target::xls_revised(),
    ]
}

fn report_for(kernel: Kernel, target: Target) -> VulnReport {
    let prepared = PreparedKernel::new(kernel, target).expect("kernel assembles");
    flexcheck::vuln::analyze(&target, prepared.program())
}

#[test]
fn pruned_campaigns_are_byte_identical_on_all_dialects() {
    for target in all_targets() {
        let kernel = Kernel::ParityCheck;
        let report = report_for(kernel, target);
        let cfg = CampaignConfig {
            budget: 20_000,
            model: FaultModel::Mixed,
            ..CampaignConfig::new(target, kernel, 48, 0xE0_17)
        };
        let full = run_campaign(cfg).expect("unpruned campaign");
        let pruned = run_campaign_pruned(cfg, Some(&report)).expect("pruned campaign");
        assert_eq!(full.trials, pruned.trials, "{:?}", target.dialect);
        assert_eq!(full.clean_cycles, pruned.clean_cycles);
        assert_eq!(full.executed, full.trials.len());
        assert!(
            pruned.executed <= full.executed,
            "pruning may only remove simulations"
        );
        // every synthesized trial really is masked per the report
        for t in &pruned.trials {
            if report.is_masked_fault(&t.fault) {
                assert_eq!(t.outcome, Outcome::Masked, "{:?}", t.fault);
            }
        }
    }
}

#[test]
fn pruning_is_stable_across_threads_and_shards() {
    let target = Target::fc8();
    let kernel = Kernel::ParityCheck;
    let report = report_for(kernel, target);
    let base = CampaignConfig {
        budget: 20_000,
        model: FaultModel::Mixed,
        ..CampaignConfig::new(target, kernel, 64, 0x5EED)
    };
    let serial = run_campaign_pruned(base, Some(&report)).expect("serial pruned");
    for (shards, threads) in [(1, 8), (64, 1), (64, 8)] {
        let parallel = run_campaign_pruned(
            CampaignConfig {
                shards,
                threads,
                ..base
            },
            Some(&report),
        )
        .expect("parallel pruned");
        assert_eq!(
            serial.trials, parallel.trials,
            "{shards} shards / {threads} threads"
        );
        assert_eq!(serial.executed, parallel.executed);
    }
}

#[test]
fn pruning_actually_removes_work_on_the_kernel_suite() {
    // The acceptance bar: across the kernel suite, static pruning must
    // remove at least a quarter of all site-runs. Masked fractions per
    // dialect are pinned elsewhere (vuln digests); this asserts the
    // end-to-end effect on real campaigns.
    let mut total = 0usize;
    let mut executed = 0usize;
    for target in all_targets() {
        for kernel in Kernel::ALL {
            if !kernel.supports(target.dialect) {
                continue;
            }
            let report = report_for(kernel, target);
            let cfg = CampaignConfig {
                budget: 20_000,
                ..CampaignConfig::new(target, kernel, 32, 0xCA_FE)
            };
            let pruned = run_campaign_pruned(cfg, Some(&report)).expect("pruned campaign");
            total += pruned.trials.len();
            executed += pruned.executed;
        }
    }
    assert!(
        executed * 4 <= total * 3,
        "pruning removed too little: {executed}/{total} trials still simulated"
    );
}

#[test]
fn pruned_salvage_is_byte_identical() {
    let config = SalvageConfig {
        cases_per_kernel: 1,
        budget: 30_000,
        seed: 5,
        threads: 1,
    };
    let exp = WaferExperiment::published(CoreDesign::FlexiCore4);
    let run = exp.run(4.5, 300).expect("wafer run");
    let screen = SalvageScreen::new(CoreDesign::FlexiCore4, config).expect("screen");
    let full = screen.analyze(&run);
    let pruned = screen.analyze_pruned(&run);
    assert_eq!(full.classes, pruned.classes);
    assert_eq!(full.in_inclusion, pruned.in_inclusion);
    // and the thread count still never changes the pruned analysis
    let threaded = SalvageScreen::new(
        CoreDesign::FlexiCore4,
        SalvageConfig {
            threads: 8,
            ..config
        },
    )
    .expect("screen");
    assert_eq!(threaded.analyze_pruned(&run).classes, pruned.classes);
}
