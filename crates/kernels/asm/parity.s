; Parity Check kernel (reactive, 8-bit input).
;
; Reads an 8-bit word as two nibbles (low first), computes even parity
; (1 if an odd number of bits are set) and writes it to the output port.
;
; registers: r2 folded nibble, r3 parity, r4 bit counter
        load  r0
        store r2
        load  r0
        xor   r2
        store r2            ; parity(word) == parity(lo ^ hi)
        ldi   0
        store r3
        ldi   -4
        store r4
bitloop:
        load  r2
        br    bit_set       ; branch tests the nibble's MSB
        jmp   bit_next
bit_set:
        load  r3
        xori  1
        store r3
bit_next:
        load  r2
        add   r2            ; shift the next bit up to the MSB
        store r2
        load  r4
        addi  1
        store r4
        br    bitloop
        load  r3
        store r1
        halt
