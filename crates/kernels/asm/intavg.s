; IntAvg kernel (streaming): exponential smoothing, alpha = 1/4.
;
; avg += (x - avg) >> 2 (arithmetic shift). Reads eight 3-bit samples and
; emits the updated average after each. This is the paper's IIR low-pass
; de-noising filter; right shifts make it expensive on the base ISA
; (Listing 1) and a major beneficiary of the barrel-shifter extension.
;
; registers: r2 avg, r3 loop counter (asr1/sub clobber r6/r7)
        ldi   0
        store r2
        ldi   -8
        store r3
loop:
        load  r0            ; x in 0..7
        sub   r2            ; x - avg, signed
        asr1
        asr1                ; (x - avg) >> 2
        add   r2
        store r2
        store r1            ; emit new average
        load  r3
        addi  1
        store r3
        br    loop
        halt
