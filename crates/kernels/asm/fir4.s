; Four-tap FIR filter kernel (streaming).
;
; Coefficients are {+1, -1, +1, -1} (taps in {-1,1} per the paper, §5.1).
; Reads eight signed 4-bit samples; after each sample emits
; y[n] = x[n] - x[n-1] + x[n-2] - x[n-3] in mod-16 arithmetic.
;
; registers: r2 newest sample, r3..r5 delay line, r6 loop counter
; (the `sub` pseudo clobbers only r7)
        ldi   0
        store r3
        store r4
        store r5
        ldi   -8
        store r6
loop:
        load  r0
        store r2
        sub   r3
        add   r4
        sub   r5
        store r1            ; emit y[n]
        ldi   0
        store r1            ; zero separator (keeps the MMU disarmed)
        load  r4
        store r5
        load  r3
        store r4
        load  r2
        store r3
        load  r6
        addi  1
        store r6
        br    loop
        halt
