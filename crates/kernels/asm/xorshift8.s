; XorShift8 kernel (reactive, 8-bit state).
;
; One step of the full-period Marsaglia xorshift with triple (3, 5, 7):
;   x ^= x << 3;  x ^= x >> 5;  x ^= x << 7
; State arrives as two nibbles (low first) and the successor is written
; back as two nibbles separated by zeros (the zero separators keep the
; off-chip MMU transducer disarmed).
;
; registers: r2 lo, r3 hi, r4 saved lo, r5 temp (lsr1/or use r6/r7)
        load  r0
        store r2            ; lo
        load  r0
        store r3            ; hi
; ---- x ^= x << 3 :  lo ^= (lo<<3)&0xF ; hi ^= ((hi<<3)&0xF)|(lo>>1) ----
        load  r2
        store r4            ; t = old lo
        add   r2            ; 2*lo
        store r5
        add   r5            ; 4*lo
        store r5
        add   r5            ; 8*lo
        xor   r2
        store r2            ; lo ^= t << 3
        load  r3
        add   r3
        store r5
        add   r5
        store r5
        add   r5
        store r5            ; r5 = (hi<<3) & 0xF
        load  r4
        lsr1                ; t >> 1
        or    r5
        xor   r3
        store r3            ; hi ^= (hi<<3)|(t>>1)
; ---- x ^= x >> 5 :  lo ^= hi >> 1 ----
        load  r3
        lsr1
        xor   r2
        store r2
; ---- x ^= x << 7 :  hi ^= (lo & 1) << 3 ----
        load  r2
        andi  1
        store r5
        add   r5            ; 2b
        store r5
        add   r5            ; 4b
        store r5
        add   r5            ; 8b
        xor   r3
        store r3
; ---- emit successor ----
        load  r2
        store r1
        ldi   0
        store r1
        load  r3
        store r1
        ldi   0
        store r1
        halt
