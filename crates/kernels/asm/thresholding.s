; Thresholding kernel (streaming, 8-bit samples).
;
; Reads eight 8-bit samples (two nibbles each, low first) and, after each,
; emits a sticky flag that is 1 once any sample exceeded 0x5A (90) — the
; out-of-range detector of the paper's sensor applications. The per-sample
; work is one full 8-bit unsigned compare (`brltu8`): nibble-wise borrow
; chains on the base ISA, two coalesced SUB/SWB instructions with the ADC
; extension — the §6.1 data-coalescing showcase.
;
; registers: r2 counter, r3 flag, r4 sample lo, r5 sample hi
;            (brltu8 clobbers acc, r6 and r7)
        ldi   -8
        store r2            ; r3 (the flag) powers up at 0: DFF_R reset
loop:
        load  r0
        store r4            ; sample low nibble
        load  r0
        store r5            ; sample high nibble
        brltu8 r4, r5, 0xB, 0x5, below  ; sample < 0x5B: not above threshold
        ldi   1
        store r3
below:
        load  r3
        store r1            ; emit current flag
        load  r2
        addi  1
        store r2
        br    loop
        halt
