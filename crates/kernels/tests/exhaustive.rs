//! Exhaustive oracle verification for the kernels whose input spaces are
//! fully enumerable — the paper's §5.2 "when possible, we perform
//! exhaustive tests across the input space", done literally.

use flexasm::Target;
use flexkernels::inputs::exhaustive_cases;
use flexkernels::Kernel;

fn exhaustive(kernel: Kernel, target: Target) {
    let cases = exhaustive_cases(kernel).expect("enumerable kernel");
    for case in &cases {
        let run = kernel
            .run(target, case)
            .unwrap_or_else(|e| panic!("{kernel} {case:?}: {e}"));
        assert!(run.verified);
    }
}

#[test]
fn parity_is_exhaustively_correct_on_fc4() {
    exhaustive(Kernel::ParityCheck, Target::fc4());
}

#[test]
fn xorshift_is_exhaustively_correct_on_fc4() {
    exhaustive(Kernel::XorShift8, Target::fc4());
}

#[test]
fn decision_tree_is_exhaustively_correct_on_fc4() {
    exhaustive(Kernel::DecisionTree, Target::fc4());
}

#[test]
fn calculator_is_exhaustively_correct_on_fc4() {
    // 4 ops × 16 × 16 operands (minus ÷0) through all seven MMU pages
    exhaustive(Kernel::Calculator, Target::fc4());
}

#[test]
fn parity_and_xorshift_exhaustive_on_revised_targets() {
    for target in [Target::xacc_revised(), Target::xls_revised()] {
        exhaustive(Kernel::ParityCheck, target);
        exhaustive(Kernel::XorShift8, target);
    }
}
