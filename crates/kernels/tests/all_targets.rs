//! Cross-target kernel validation: every kernel must assemble, run and
//! match its oracle on the base FlexiCore4, on every single-extension
//! configuration of the extended accumulator ISA, on the revised ISA, and
//! (via its own source) on the load-store machine.

use flexasm::Target;
use flexicore::isa::features::{Feature, FeatureSet};
use flexkernels::inputs::Sampler;
use flexkernels::Kernel;

fn check(kernel: Kernel, target: Target, tag: &str) {
    let mut sampler = Sampler::new(kernel, 0xF1E0);
    for (i, case) in sampler.draw_many(12).iter().enumerate() {
        match kernel.run(target, case) {
            Ok(run) => assert!(run.verified),
            Err(e) => panic!("{kernel} on {tag}, case {i} {case:?}: {e}"),
        }
    }
}

#[test]
fn all_kernels_on_fc4() {
    for k in Kernel::ALL {
        check(k, Target::fc4(), "fc4");
    }
}

#[test]
fn all_kernels_on_xacc_base() {
    for k in Kernel::ALL {
        check(k, Target::xacc(FeatureSet::BASE), "xacc-base");
    }
}

#[test]
fn all_kernels_on_every_single_extension() {
    for f in Feature::ALL {
        let target = Target::xacc(FeatureSet::only(f));
        for k in Kernel::ALL {
            check(k, target, &format!("xacc+{f}"));
        }
    }
}

#[test]
fn all_kernels_on_revised_acc() {
    for k in Kernel::ALL {
        check(k, Target::xacc_revised(), "xacc-revised");
    }
}

#[test]
fn all_kernels_on_load_store_revised() {
    for k in Kernel::ALL {
        check(k, Target::xls_revised(), "xls-revised");
    }
}
