//! Golden models: the exact output-port byte stream each kernel must
//! produce, computed in plain Rust.
//!
//! The oracles mirror the kernels *bit for bit*, including mod-16
//! arithmetic, the zero separators, and — for the accumulator dialects'
//! paged kernels — the MMU escape triples that `pjmp` drives onto the
//! output port. The generated kernels (Calculator, Decision Tree) share
//! their tables with these oracles, so program and model cannot drift.

use crate::sources::{
    DecisionTreeSpec, CALC_DIV_PAGE, CALC_MUL_PAGES, CALC_SUB_PAGE, TREE_LEFT_PAGE, TREE_RIGHT_PAGE,
};
use crate::{Kernel, STREAM_LEN};
use flexicore::isa::Dialect;
use flexicore::mmu::{ESCAPE_1, ESCAPE_2};

/// Arithmetic shift right by one on a 4-bit value.
#[must_use]
pub fn nibble_asr(v: u8) -> u8 {
    ((v >> 1) | (v & 0x8)) & 0xF
}

/// One step of the kernel's xorshift (triple 3, 5, 7) on an 8-bit state.
#[must_use]
pub fn xorshift_step(x: u8) -> u8 {
    let mut x = x;
    x ^= x << 3;
    x ^= x >> 5;
    x ^= x << 7;
    x
}

fn escape(page: u8) -> [u8; 3] {
    [ESCAPE_1, ESCAPE_2, page]
}

/// The expected output stream for `kernel` on `inputs`, when built for
/// `dialect`.
///
/// The accumulator dialects (`fc4`, `xacc`) run the paged programs and so
/// include MMU escape triples; the load-store programs are single-page.
///
/// # Panics
///
/// Panics if `inputs` is shorter than [`Kernel::inputs_per_run`] — callers
/// obtain inputs from [`crate::inputs`], which sizes them correctly.
#[must_use]
pub fn expected_outputs(kernel: Kernel, dialect: Dialect, inputs: &[u8]) -> Vec<u8> {
    assert!(
        inputs.len() >= kernel.inputs_per_run(),
        "{kernel} needs {} inputs, got {}",
        kernel.inputs_per_run(),
        inputs.len()
    );
    let paged = dialect != Dialect::LoadStore;
    match kernel {
        Kernel::Calculator => calculator(inputs, paged),
        Kernel::FirFilter => fir(inputs),
        Kernel::DecisionTree => decision_tree(inputs, paged),
        Kernel::IntAvg => intavg(inputs),
        Kernel::Thresholding => thresholding(inputs),
        Kernel::ParityCheck => parity(inputs),
        Kernel::XorShift8 => xorshift(inputs),
    }
}

fn calculator(inputs: &[u8], paged: bool) -> Vec<u8> {
    let op = inputs[0] & 0xF;
    let a = inputs[1] & 0xF;
    let b = inputs[2] & 0xF;
    let mut out = Vec::new();
    match op {
        0 => {
            let sum = u16::from(a) + u16::from(b);
            out.extend([(sum & 0xF) as u8, 0, u8::from(sum > 0xF), 0]);
        }
        1 => {
            if paged {
                out.extend(escape(CALC_SUB_PAGE));
            }
            let diff = a.wrapping_sub(b) & 0xF;
            out.extend([diff, 0, u8::from(a < b), 0]);
        }
        2 => {
            if paged {
                for page in CALC_MUL_PAGES {
                    out.extend(escape(page));
                }
            }
            let p = u16::from(a) * u16::from(b);
            out.extend([(p & 0xF) as u8, 0, (p >> 4) as u8, 0]);
        }
        _ => {
            if paged {
                out.extend(escape(CALC_DIV_PAGE));
            }
            assert!(b != 0, "calculator division requires a non-zero divisor");
            out.extend([a / b, 0, a % b, 0]);
        }
    }
    out
}

fn fir(inputs: &[u8]) -> Vec<u8> {
    let mut delay = [0u8; 3]; // x[n-1], x[n-2], x[n-3]
    let mut out = Vec::new();
    for &raw in &inputs[..STREAM_LEN] {
        let x = raw & 0xF;
        let y = x
            .wrapping_sub(delay[0])
            .wrapping_add(delay[1])
            .wrapping_sub(delay[2])
            & 0xF;
        out.extend([y, 0]);
        delay = [x, delay[0], delay[1]];
    }
    out
}

fn decision_tree(inputs: &[u8], paged: bool) -> Vec<u8> {
    let features = [inputs[0] & 0x7, inputs[1] & 0x7, inputs[2] & 0x7];
    let mut out = Vec::new();
    if paged {
        let root_right = features[DecisionTreeSpec::feature(1)] > DecisionTreeSpec::threshold(1);
        out.extend(escape(if root_right {
            TREE_RIGHT_PAGE
        } else {
            TREE_LEFT_PAGE
        }));
    }
    out.extend([DecisionTreeSpec::classify(features), 0]);
    out
}

fn intavg(inputs: &[u8]) -> Vec<u8> {
    let mut avg = 0u8;
    let mut out = Vec::new();
    for &raw in &inputs[..STREAM_LEN] {
        let x = raw & 0x7;
        let diff = x.wrapping_sub(avg) & 0xF;
        let step = nibble_asr(nibble_asr(diff));
        avg = avg.wrapping_add(step) & 0xF;
        out.push(avg);
    }
    out
}

/// The thresholding kernel's sticky 8-bit threshold.
pub const THRESHOLD: u8 = 0x5A;

fn thresholding(inputs: &[u8]) -> Vec<u8> {
    let mut flag = 0u8;
    let mut out = Vec::new();
    for pair in inputs[..STREAM_LEN * 2].chunks(2) {
        let sample = (pair[1] & 0xF) << 4 | (pair[0] & 0xF);
        if sample > THRESHOLD {
            flag = 1;
        }
        out.push(flag);
    }
    out
}

fn parity(inputs: &[u8]) -> Vec<u8> {
    let word = (inputs[1] & 0xF) << 4 | (inputs[0] & 0xF);
    vec![word.count_ones() as u8 & 1]
}

fn xorshift(inputs: &[u8]) -> Vec<u8> {
    let x = (inputs[1] & 0xF) << 4 | (inputs[0] & 0xF);
    let next = xorshift_step(x);
    vec![next & 0xF, 0, next >> 4, 0]
}

/// Extract the payload values (results only) from a raw output stream by
/// removing the leading MMU escape triples and the zero separators the
/// kernel protocol inserts.
#[must_use]
pub fn payload(kernel: Kernel, dialect: Dialect, raw: &[u8]) -> Vec<u8> {
    let paged = dialect != Dialect::LoadStore;
    let mut values = raw;
    // strip leading escape triples
    while paged && values.len() >= 3 && values[0] == ESCAPE_1 && values[1] == ESCAPE_2 {
        values = &values[3..];
    }
    match kernel {
        Kernel::Calculator | Kernel::XorShift8 | Kernel::FirFilter => {
            // zero-separated pairs: take even positions
            values.iter().step_by(2).copied().collect()
        }
        Kernel::DecisionTree => values.first().copied().into_iter().collect(),
        Kernel::IntAvg | Kernel::Thresholding | Kernel::ParityCheck => values.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_has_full_period() {
        let mut x = 1u8;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..255 {
            assert!(seen.insert(x), "repeated state {x:#04x}");
            x = xorshift_step(x);
            assert_ne!(x, 0, "xorshift must never reach zero");
        }
        assert_eq!(x, 1, "period must be exactly 255");
    }

    #[test]
    fn nibble_asr_sign_fills() {
        assert_eq!(nibble_asr(0b1010), 0b1101);
        assert_eq!(nibble_asr(0b0100), 0b0010);
        assert_eq!(nibble_asr(0xF), 0xF);
        assert_eq!(nibble_asr(0), 0);
    }

    #[test]
    fn calculator_add_carry() {
        assert_eq!(
            calculator(&[0, 9, 9], true),
            vec![2, 0, 1, 0] // 18 = 0x12
        );
        assert_eq!(calculator(&[0, 3, 4], true), vec![7, 0, 0, 0]);
    }

    #[test]
    fn calculator_sub_borrow_and_pages() {
        let out = calculator(&[1, 3, 5], true);
        assert_eq!(&out[..3], &escape(CALC_SUB_PAGE));
        assert_eq!(&out[3..], &[0xE, 0, 1, 0]); // 3-5 = -2, borrow
        let unpaged = calculator(&[1, 3, 5], false);
        assert_eq!(unpaged, vec![0xE, 0, 1, 0]);
    }

    #[test]
    fn calculator_mul_walks_all_pages() {
        let out = calculator(&[2, 7, 6], true);
        assert_eq!(out.len(), 4 * 3 + 4);
        assert_eq!(&out[12..], &[0xA, 0, 0x2, 0]); // 42 = 0x2A
    }

    #[test]
    fn calculator_div() {
        let out = calculator(&[3, 13, 4], false);
        assert_eq!(out, vec![3, 0, 1, 0]);
    }

    #[test]
    fn thresholding_flag_is_sticky() {
        // samples: 0x21, 0x5B (>0x5A), 0x5A (not >), then small ones
        let out = thresholding(&[
            0x1, 0x2, 0xB, 0x5, 0xA, 0x5, 0x0, 0x0, 0x1, 0x0, 0x2, 0x0, 0x3, 0x0, 0x4, 0x0,
        ]);
        assert_eq!(out, vec![0, 1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn thresholding_boundary_cases() {
        let run = |sample: u8| {
            let mut inputs = vec![0u8; 16];
            inputs[0] = sample & 0xF;
            inputs[1] = sample >> 4;
            thresholding(&inputs)[0]
        };
        assert_eq!(run(0x5A), 0, "equal is not above");
        assert_eq!(run(0x5B), 1);
        assert_eq!(run(0x4F), 0, "high nibble below");
        assert_eq!(run(0x60), 1, "high nibble above");
        assert_eq!(run(0xFF), 1);
        assert_eq!(run(0x00), 0);
    }

    #[test]
    fn fir_filters_a_step() {
        // unit step into {+1,-1,+1,-1} taps: 1, 0, 1, 0, 0, ...
        let out = fir(&[1, 1, 1, 1, 1, 1, 1, 1]);
        let ys: Vec<u8> = out.iter().step_by(2).copied().collect();
        assert_eq!(ys, vec![1, 0, 1, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn intavg_converges_toward_input() {
        // truncating alpha=1/4 smoothing of a constant 7 climbs 0,1,2,3,4
        // and stalls once the residual drops below 4
        let out = intavg(&[7, 7, 7, 7, 7, 7, 7, 7]);
        assert_eq!(out, vec![1, 2, 3, 4, 4, 4, 4, 4]);
        assert!(out.iter().all(|&v| v <= 7), "{out:?}");
    }

    #[test]
    fn parity_counts_bits() {
        assert_eq!(parity(&[0x3, 0x5]), vec![0]); // 0x53: 4 bits
        assert_eq!(parity(&[0x1, 0x0]), vec![1]);
        assert_eq!(parity(&[0xF, 0xF]), vec![0]);
    }

    #[test]
    fn payload_strips_protocol() {
        let raw = calculator(&[2, 7, 6], true);
        assert_eq!(
            payload(Kernel::Calculator, Dialect::Fc4, &raw),
            vec![0xA, 0x2]
        );
        let raw = decision_tree(&[1, 2, 3], true);
        let p = payload(Kernel::DecisionTree, Dialect::Fc4, &raw);
        assert_eq!(p.len(), 1);
    }
}
