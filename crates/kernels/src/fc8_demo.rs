//! Native FlexiCore8 demonstration programs.
//!
//! The benchmark suite of Table 6 was measured on FlexiCore4 (§5.2), so
//! the [`Kernel`](crate::Kernel) catalogue targets the 4-bit dialects.
//! FlexiCore8 exists "to support applications with > 4-bit data
//! requirements" (§3.3); this module carries programs that exploit the
//! wider datapath natively — an 8-bit parity check that handles the whole
//! word per ALU operation, and an 8-bit checksum — each with its oracle.
//!
//! On FlexiCore4 the same parity function costs ~29 instructions plus the
//! nibble fold; on FlexiCore8 it is a straight 8-step unrolled fold
//! (FlexiCore8 has only two general-purpose words, r2/r3, so there is no
//! loop counter to spare — exactly the §3.3 capacity trade-off).

use flexasm::{Assembler, Target};
use flexicore::io::{RecordingOutput, ScriptedInput};
use flexicore::sim::fc8::Fc8Core;
use flexicore::SimError;
use std::fmt::Write as _;

/// The native 8-bit parity program: reads one byte from the input port,
/// emits its parity bit on the output port.
#[must_use]
pub fn parity8_source() -> String {
    let mut s = String::from(
        "\
; FlexiCore8-native parity: whole-byte shifts, no nibble folding.
; registers: r2 shifting word, r3 parity accumulator
        load  r0
        store r2
        ldb   0
        store r3
",
    );
    for bit in 0..8 {
        let _ = writeln!(
            s,
            "\
; bit {bit}
        load  r2
        br    @set_{bit}
        jmp   @next_{bit}
@set_{bit}:
        load  r3
        xori  1
        store r3
@next_{bit}:
        load  r2
        add   r2
        store r2"
        );
    }
    s.push_str(
        "\
        load  r3
        store r1
        halt
",
    );
    s
}

/// The native 8-bit ones'-complement checksum: reads `n` bytes (first
/// input is `n`, at most 15) and emits the byte-wise sum mod 256.
#[must_use]
pub fn checksum8_source() -> String {
    "\
; FlexiCore8 checksum: sum = (sum + byte) mod 256 over n bytes.
; registers: r2 sum, r3 counter (counts up from -n)
        ldb   0
        store r2            ; sum = 0
        load  r0            ; n (1..15)
        nandi -1            ; ~n (imm4 -1 sign-extends to 0xFF)
        addi  1             ; -n
        store r3            ; counter counts up to zero
loop:
        load  r0            ; next byte
        add   r2
        store r2
        load  r3
        addi  1
        store r3
        br    loop          ; negative counter: more bytes
        load  r2
        store r1
        halt
"
    .to_string()
}

/// Run the native parity program on a byte; returns the parity bit.
///
/// # Errors
///
/// Propagates assembler or simulator failures.
pub fn run_parity8(word: u8) -> Result<u8, SimError> {
    let assembly = Assembler::new(Target::fc8())
        .assemble(&parity8_source())
        .expect("fc8 parity assembles");
    let mut core = Fc8Core::new(assembly.into_program());
    let mut input = ScriptedInput::new(vec![word]);
    let mut output = RecordingOutput::new();
    let result = core.run(&mut input, &mut output, 100_000)?;
    assert!(result.halted());
    Ok(output.last().expect("one output"))
}

/// Run the native checksum program over `bytes` (at most 15).
///
/// # Errors
///
/// Propagates assembler or simulator failures.
///
/// # Panics
///
/// Panics if `bytes` is empty or longer than 15.
pub fn run_checksum8(bytes: &[u8]) -> Result<u8, SimError> {
    assert!(!bytes.is_empty() && bytes.len() <= 15);
    let assembly = Assembler::new(Target::fc8())
        .assemble(&checksum8_source())
        .expect("fc8 checksum assembles");
    let mut core = Fc8Core::new(assembly.into_program());
    let mut inputs = vec![bytes.len() as u8];
    inputs.extend_from_slice(bytes);
    let mut input = ScriptedInput::new(inputs);
    let mut output = RecordingOutput::new();
    let result = core.run(&mut input, &mut output, 100_000)?;
    assert!(result.halted());
    Ok(output.last().expect("one output"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity8_is_exhaustively_correct() {
        for word in 0..=255u8 {
            let expected = (word.count_ones() & 1) as u8;
            assert_eq!(run_parity8(word).unwrap(), expected, "word {word:#04x}");
        }
    }

    #[test]
    fn parity8_is_much_shorter_than_the_4bit_version() {
        let fc8 = Assembler::new(Target::fc8())
            .assemble(&parity8_source())
            .unwrap();
        let fc4 = crate::Kernel::ParityCheck.assemble(Target::fc4()).unwrap();
        // the wider datapath absorbs the nibble fold, but both stay tiny
        assert!(fc8.static_instructions() < 100);
        assert!(fc4.static_instructions() < 50);
    }

    #[test]
    fn checksum8_matches_wrapping_sum() {
        let cases: &[&[u8]] = &[
            &[1],
            &[0xFF, 0x01],
            &[0x10, 0x20, 0x30],
            &[0xAA; 15],
            &[0x00, 0xFF, 0x80, 0x7F, 0x01],
        ];
        for bytes in cases {
            let expected = bytes.iter().fold(0u8, |acc, &b| acc.wrapping_add(b));
            assert_eq!(run_checksum8(bytes).unwrap(), expected, "{bytes:02x?}");
        }
    }
}
