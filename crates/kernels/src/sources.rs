//! Kernel assembly sources.
//!
//! Five kernels are hand-written `.s` files embedded at compile time. The
//! Calculator and Decision Tree are *generated*: their repetitive bodies
//! (four unrolled multiplier iterations, 31 tree nodes) come from the same
//! Rust tables the oracles use, which keeps program and golden model in
//! lock-step by construction.

use crate::Kernel;
use flexicore::isa::Dialect;
use std::fmt::Write;

/// The assembly source for `kernel` targeting `dialect` (the accumulator
/// dialects share one source; the load-store dialect has its own).
#[must_use]
pub fn source_for(kernel: Kernel, dialect: Dialect) -> String {
    match dialect {
        Dialect::LoadStore => source_ls(kernel),
        Dialect::Fc8 => source_fc8(kernel),
        _ => source(kernel),
    }
}

/// The accumulator-dialect assembly source for `kernel`.
#[must_use]
pub fn source(kernel: Kernel) -> String {
    match kernel {
        Kernel::Calculator => calculator_source(),
        Kernel::FirFilter => include_str!("../asm/fir4.s").to_string(),
        Kernel::DecisionTree => decision_tree_source(),
        Kernel::IntAvg => include_str!("../asm/intavg.s").to_string(),
        Kernel::Thresholding => include_str!("../asm/thresholding.s").to_string(),
        Kernel::ParityCheck => include_str!("../asm/parity.s").to_string(),
        Kernel::XorShift8 => include_str!("../asm/xorshift8.s").to_string(),
    }
}

// ---------------------------------------------------------------------------
// Calculator
// ---------------------------------------------------------------------------

/// MMU pages holding the four unrolled multiplier iterations.
pub const CALC_MUL_PAGES: [u8; 4] = [1, 2, 3, 4];
/// MMU page holding the divider.
pub const CALC_DIV_PAGE: u8 = 5;
/// MMU page holding the subtract path (page 0 cannot hold both add and
/// subtract once the unsigned comparisons are expanded).
pub const CALC_SUB_PAGE: u8 = 6;

/// Four-function calculator: read `op, a, b`; emit the result nibbles
/// separated by zeros. Multiplication (op 2) and division (op 3) live in
/// their own MMU pages, reached through `pjmp` — this kernel is why the
/// paper's §5.1 needs the off-chip MMU at all.
fn calculator_source() -> String {
    let mut s = String::new();
    s.push_str(
        "\
; Calculator kernel (interactive, generated).
; inputs: op (0 add, 1 sub, 2 mul, 3 div), a, b     all 4-bit
; registers: r2 op -> plo/quotient, r3 a/remainder, r4 b, r5 phi/~b,
;            r6 ~a (mul), r7 sub-pseudo scratch
        load  r0
        store r2            ; op
        load  r0
        store r3            ; a
        load  r0
        store r4            ; b
        load  r2
        subi  1
        br    do_add
        load  r2
        subi  2
        br    @to_sub
        load  r2
        subi  3
        br    go_mul
        pjmp  5, div_entry  ; op 3 falls through to divide
@to_sub:
        pjmp  6, do_sub
go_mul:
        pjmp  1, mul_init
do_add:
        load  r3
        add   r4
        store r1            ; sum (mod 16)
        ldi   0
        store r1
        load  r4
        nandi 15
        store r5            ; ~b = 15 - b
        brgtu r3, r5, add_c1 ; carry out iff a > 15 - b
        ldi   0
        store r1            ; carry-out = 0 (fall-through)
        store r1            ; separator (acc already zero)
        halt
add_c1:
        ldi   1
        store r1            ; carry-out = 1
        ldi   0
        store r1
        halt
.page 6
do_sub:
        load  r3
        sub   r4
        store r1            ; difference (mod 16)
        ldi   0
        store r1
        brgtu r4, r3, sub_b1 ; borrow iff b > a
        ldi   0
        store r1            ; borrow-out = 0 (fall-through)
        store r1            ; separator (acc already zero)
        halt
sub_b1:
        ldi   1
        store r1            ; borrow-out = 1
        ldi   0
        store r1
        halt
",
    );

    // four unrolled shift-add multiplier iterations, one MMU page each
    for (idx, page) in CALC_MUL_PAGES.iter().enumerate() {
        let i = idx + 1;
        let _ = writeln!(s, ".page {page}");
        if i == 1 {
            s.push_str(
                "\
mul_init:
        ldi   0
        store r2            ; product low
        store r5            ; product high
",
            );
        }
        let _ = writeln!(s, "mul_iter_{i}:");
        // P <<= 1 (8-bit product in r2/r5, cross-nibble carry via sign test)
        let _ = writeln!(
            s,
            "\
        load  r5
        add   r5
        store r5            ; phi <<= 1
        load  r2
        br    @mcy_{i}
        jmp   @mnc_{i}
@mcy_{i}:
        load  r5
        addi  1
        store r5            ; carry from plo's old MSB
@mnc_{i}:
        load  r2
        add   r2
        store r2            ; plo <<= 1
        load  r4
        br    @madd_{i}     ; multiplier MSB set: P += a
        jmp   @mskip_{i}
@madd_{i}:
        load  r3
        nandi 15
        store r6            ; ~a
        brgtu r2, r6, @mac_{i}  ; carry iff plo > ~a
        jmp   @mdo_{i}
@mac_{i}:
        load  r5
        addi  1
        store r5            ; plo + a will wrap: bump phi
@mdo_{i}:
        load  r2
        add   r3
        store r2            ; plo += a
@mskip_{i}:
        load  r4
        add   r4
        store r4            ; consume the multiplier MSB"
        );
        if i < 4 {
            let _ = writeln!(
                s,
                "        pjmp  {}, mul_iter_{}",
                CALC_MUL_PAGES[idx + 1],
                i + 1
            );
        } else {
            s.push_str(
                "\
        load  r2
        store r1            ; product low
        ldi   0
        store r1
        load  r5
        store r1            ; product high
        ldi   0
        store r1
        halt
",
            );
        }
    }

    // divider: repeated subtraction
    let _ = writeln!(s, ".page {CALC_DIV_PAGE}");
    s.push_str(
        "\
div_entry:
        ldi   0
        store r2            ; quotient
div_loop:
        brgtu r4, r3, div_done ; divisor exceeds remainder: finished
        load  r3
        sub   r4
        store r3            ; remainder -= b
        load  r2
        addi  1
        store r2            ; quotient += 1
        jmp   div_loop
div_done:
        load  r2
        store r1            ; quotient
        ldi   0
        store r1
        load  r3
        store r1            ; remainder
        ldi   0
        store r1
        halt
",
    );
    s
}

// ---------------------------------------------------------------------------
// Decision Tree
// ---------------------------------------------------------------------------

/// A depth-4 complete decision tree over three 3-bit features.
///
/// Nodes are heap-indexed 1..=15; node `i` at depth `d` tests
/// `feature[d % 3] > threshold(i)` and routes right when true. Leaves
/// 16..=31 output class `leaf - 16`. The same table drives both the
/// generated assembly and the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionTreeSpec;

impl DecisionTreeSpec {
    /// Feature index tested by heap node `i` (1..=15).
    #[must_use]
    pub fn feature(i: usize) -> usize {
        debug_assert!((1..=15).contains(&i));
        let depth = usize::BITS as usize - 1 - i.leading_zeros() as usize;
        depth % 3
    }

    /// Threshold tested by heap node `i` (values 0..=6 so the signed-nibble
    /// comparison is exact for 3-bit features).
    #[must_use]
    pub fn threshold(i: usize) -> u8 {
        debug_assert!((1..=15).contains(&i));
        ((i * 5 + 3) % 7) as u8
    }

    /// Classify `features` (each 0..=7), mirroring the kernel exactly.
    #[must_use]
    pub fn classify(features: [u8; 3]) -> u8 {
        let mut i = 1usize;
        while i < 16 {
            let f = features[Self::feature(i)] & 0x7;
            i = if f > Self::threshold(i) {
                2 * i + 1
            } else {
                2 * i
            };
        }
        (i - 16) as u8
    }
}

/// MMU page holding the left subtree (root test false).
pub const TREE_LEFT_PAGE: u8 = 1;
/// MMU page holding the right subtree (root test true).
pub const TREE_RIGHT_PAGE: u8 = 2;

fn decision_tree_source() -> String {
    let mut s = String::new();
    s.push_str(
        "\
; Decision Tree kernel (reactive, generated).
; inputs: three 3-bit features f0, f1, f2
; output: leaf class (0..15) followed by a zero separator
        load  r0
        store r2            ; f0
        load  r0
        store r3            ; f1
        load  r0
        store r4            ; f2
",
    );
    // root node (heap index 1) routes to one of two subtree pages
    let f = DecisionTreeSpec::feature(1);
    let t = DecisionTreeSpec::threshold(1);
    let _ = writeln!(
        s,
        "\
        load  r{reg}
        subi  {cmp}
        br    @root_left
        jmp   @root_right
@root_left:
        pjmp  {lp}, node_2
@root_right:
        pjmp  {rp}, node_3",
        reg = 2 + f,
        cmp = t + 1,
        lp = TREE_LEFT_PAGE,
        rp = TREE_RIGHT_PAGE,
    );

    // Subtree pages. Nodes are emitted depth-first with the *right* child
    // as the fall-through path, so each internal node costs only a compare
    // and one branch; leaves stash their class in r5 and share one output
    // tail per page. This keeps a subtree within a 128-byte page even for
    // the verbose base-ISA expansions.
    for (page, top) in [(TREE_LEFT_PAGE, 2usize), (TREE_RIGHT_PAGE, 3usize)] {
        let _ = writeln!(s, ".page {page}");
        let out = format!("out_{page}");
        emit_subtree(&mut s, top, &out);
        let _ = writeln!(
            s,
            "\
{out}:
        load  r5
        store r1
        ldi   0
        store r1
        halt"
        );
    }
    s
}

fn emit_subtree(s: &mut String, i: usize, out: &str) {
    if i >= 16 {
        // leaf: classes 8..=15 are written as negative nibbles so they fit
        // every dialect's load-immediate range
        let class = i as i64 - 16;
        let imm = if class >= 8 { class - 16 } else { class };
        let _ = writeln!(
            s,
            "\
node_{i}:
        ldi   {imm}
        store r5
        jmp   {out}"
        );
        return;
    }
    let f = DecisionTreeSpec::feature(i);
    let t = DecisionTreeSpec::threshold(i);
    let _ = writeln!(
        s,
        "\
node_{i}:
        load  r{reg}
        subi  {cmp}
        br    node_{left}",
        reg = 2 + f,
        cmp = t + 1,
        left = 2 * i,
    );
    emit_subtree(s, 2 * i + 1, out); // fall-through: feature > threshold
    emit_subtree(s, 2 * i, out); // branch target: feature <= threshold
}

// ---------------------------------------------------------------------------
// FlexiCore8 sources
// ---------------------------------------------------------------------------

/// The FlexiCore8 source for `kernel`.
///
/// FlexiCore8 has four data words, two of them the IO ports, so only
/// kernels that fit in two scratch registers have native programs (the
/// §3.3 capacity trade-off; the full suite was measured on FlexiCore4,
/// §5.2). Kernels without one return the accumulator source, which the
/// assembler rejects with a memory-range error — see
/// [`Kernel::supports`](crate::Kernel::supports) to query availability
/// up front.
#[must_use]
pub fn source_fc8(kernel: Kernel) -> String {
    match kernel {
        Kernel::ParityCheck => parity_fc8_source(),
        _ => source(kernel),
    }
}

/// Parity on the wide datapath, same protocol as the 4-bit program: two
/// nibble inputs (low first), one parity-bit output. The byte is folded
/// MSB-first by testing the sign with `br` and doubling — no nibble
/// split, which is the point of the 8-bit core.
fn parity_fc8_source() -> String {
    let mut s = String::from(
        "\
; Parity (FlexiCore8): combine two nibble inputs, fold eight bits.
; registers: r2 word (shifting), r3 high nibble -> parity accumulator
        load  r0            ; low nibble
        store r2
        load  r0            ; high nibble
        store r3
",
    );
    for _ in 0..4 {
        s.push_str(
            "\
        load  r3
        add   r3
        store r3
",
        );
    }
    s.push_str(
        "\
        load  r2
        add   r3
        store r2            ; word = high << 4 | low
        ldb   0
        store r3            ; parity = 0
",
    );
    for bit in 0..8 {
        let _ = writeln!(
            s,
            "\
; bit {bit}
        load  r2
        br    @set_{bit}
        jmp   @next_{bit}
@set_{bit}:
        load  r3
        xori  1
        store r3
@next_{bit}:
        load  r2
        add   r2
        store r2"
        );
    }
    s.push_str(
        "\
        load  r3
        store r1
        halt
",
    );
    s
}

// ---------------------------------------------------------------------------
// load-store sources (§6.2's two-operand machine, revised feature set)
// ---------------------------------------------------------------------------

/// The load-store-dialect source for `kernel`.
///
/// These are genuinely different programs, not transliterations: the
/// two-operand model plus the architected carry flag turn the base ISA's
/// 30-instruction unsigned comparisons into `sub` + `adci` + one branch,
/// which is where the load-store machine's code-density edge in Figure 12
/// comes from.
#[must_use]
pub fn source_ls(kernel: Kernel) -> String {
    match kernel {
        Kernel::Calculator => calculator_ls_source(),
        Kernel::DecisionTree => decision_tree_ls_source(),
        Kernel::FirFilter => FIR_LS.to_string(),
        Kernel::IntAvg => INTAVG_LS.to_string(),
        Kernel::Thresholding => THRESHOLDING_LS.to_string(),
        Kernel::ParityCheck => PARITY_LS.to_string(),
        Kernel::XorShift8 => XORSHIFT_LS.to_string(),
    }
}

const THRESHOLDING_LS: &str = "
; Thresholding (load-store): sticky flag over eight 8-bit samples
; (> 0x5A), one coalesced SUB/SWB borrow chain per sample.
        movi r2, -8
        movi r3, 0
loop:
        mov  r4, r0          ; sample low nibble
        mov  r5, r0          ; sample high nibble
        movi r6, -5          ; 0xB as a signed nibble
        mov  r7, r4
        sub  r7, r6          ; carry = lo >= 0xB
        movi r6, 5
        mov  r7, r5
        swb  r7, r6          ; carry = sample >= 0x5B
        movi r7, 0
        adci r7, 0           ; r7 = carry, flags track it
        br.z below           ; no carry: sample <= 0x5A
        movi r3, 1
below:
        mov  r1, r3
        addi r2, 1
        br.n loop
        halt
";

const PARITY_LS: &str = "
; Parity Check (load-store): parity of an 8-bit word (two nibbles).
        mov  r2, r0
        mov  r4, r0
        xor  r2, r4          ; parity(word) == parity(lo ^ hi)
        movi r3, 0
        movi r4, -4
bitloop:
        mov  r5, r2          ; sets flags on the nibble
        br.n bit_set
        jmp  bit_next
bit_set:
        xori r3, 1
bit_next:
        add  r2, r2
        addi r4, 1
        br.n bitloop
        mov  r1, r3
        halt
";

const FIR_LS: &str = "
; Four-tap FIR (load-store), coefficients {+1, -1, +1, -1}.
        movi r3, 0
        movi r4, 0
        movi r5, 0
        movi r6, -8
loop:
        mov  r2, r0
        mov  r7, r2
        sub  r7, r3
        add  r7, r4
        sub  r7, r5
        mov  r1, r7          ; y[n]
        movi r7, 0
        mov  r1, r7          ; zero separator (same protocol as fc4)
        mov  r5, r4
        mov  r4, r3
        mov  r3, r2
        addi r6, 1
        br.n loop
        halt
";

const INTAVG_LS: &str = "
; IntAvg (load-store): avg += (x - avg) >> 2, arithmetic shift.
        movi r2, 0
        movi r3, -8
loop:
        mov  r4, r0
        sub  r4, r2
        asri r4, 2
        add  r2, r4
        mov  r1, r2
        addi r3, 1
        br.n loop
        halt
";

const XORSHIFT_LS: &str = "
; XorShift8 (load-store): x ^= x<<3; x ^= x>>5; x ^= x<<7.
        mov  r2, r0          ; lo
        mov  r3, r0          ; hi
; x ^= x << 3
        mov  r4, r2          ; t = lo
        mov  r5, r2
        add  r5, r5
        add  r5, r5
        add  r5, r5          ; (lo<<3) & 0xF
        xor  r2, r5
        mov  r5, r3
        add  r5, r5
        add  r5, r5
        add  r5, r5          ; (hi<<3) & 0xF
        mov  r6, r4
        lsri r6, 1           ; t >> 1
        or   r5, r6
        xor  r3, r5
; x ^= x >> 5
        mov  r5, r3
        lsri r5, 1
        xor  r2, r5
; x ^= x << 7
        mov  r5, r2
        andi r5, 1
        add  r5, r5
        add  r5, r5
        add  r5, r5          ; (lo & 1) << 3
        xor  r3, r5
; emit successor, zero-separated
        mov  r1, r2
        movi r7, 0
        mov  r1, r7
        mov  r1, r3
        mov  r1, r7
        halt
";

/// Carry-flag-based unsigned comparison for the load-store machine:
/// continues at `ge` when `r<x> >= r<m>` (unsigned), else falls through.
/// Leaves `x - m` in r6. Clobbers r6/r7 and the flags.
fn ls_ucmp_ge(out: &mut String, x: u8, m: u8, ge: &str) {
    let _ = writeln!(
        out,
        "\
        mov  r6, r{x}
        sub  r6, r{m}        ; carry = no borrow = x >= m
        movi r7, 0
        adci r7, 0           ; r7 = carry, flags track it
        br.p {ge}"
    );
}

fn calculator_ls_source() -> String {
    let mut s = String::new();
    s.push_str(
        "\
; Calculator (load-store, generated): op, a, b -> result, 0, aux, 0.
; registers: r2 op/counter, r3 a/remainder, r4 b, r5 result, r6 aux/scratch
        mov  r2, r0
        mov  r3, r0
        mov  r4, r0
        subi r2, 1
        br.n do_add
        subi r2, 1
        br.n do_sub
        subi r2, 1
        br.n do_mul
; ---- divide: quotient in r5, remainder in r3 ----
        movi r5, 0
div_loop:
",
    );
    ls_ucmp_ge(&mut s, 3, 4, "@div_step");
    s.push_str(
        "\
        jmp  div_done
@div_step:
        mov  r3, r6          ; remainder -= b (r6 holds rem - b already)
        addi r5, 1
        jmp  div_loop
div_done:
        mov  r6, r3          ; aux = remainder
        jmp  emit
; ---- add: sum + carry ----
do_add:
        mov  r5, r3
        add  r5, r4          ; sets carry
        movi r6, 0
        adci r6, 0           ; aux = carry-out
        jmp  emit
; ---- subtract: difference + borrow ----
do_sub:
        mov  r5, r3
        sub  r5, r4          ; carry = no borrow
        movi r6, 0
        adci r6, 0
        neg  r6
        addi r6, 1           ; aux = borrow = 1 - carry
        jmp  emit
; ---- multiply: 4x4 -> 8, shift-add with the carry flag ----
do_mul:
        movi r5, 0           ; product low
        movi r6, 0           ; product high
        movi r2, -4
mul_loop:
        add  r6, r6          ; phi <<= 1
        mov  r7, r5
        br.n @mc
        jmp  @mnc
@mc:
        addi r6, 1
@mnc:
        add  r5, r5          ; plo <<= 1
        mov  r7, r4
        br.n @madd
        jmp  @mskip
@madd:
        add  r5, r3          ; plo += a, sets carry
        movi r7, 0
        adci r7, 0
        add  r6, r7          ; phi += carry
@mskip:
        add  r4, r4
        addi r2, 1
        br.n mul_loop
        jmp  emit
; ---- common output ----
emit:
        mov  r1, r5
        movi r7, 0
        mov  r1, r7
        mov  r1, r6
        mov  r1, r7
        halt
",
    );
    s
}

fn decision_tree_ls_source() -> String {
    let mut s = String::new();
    s.push_str(
        "\
; Decision Tree (load-store, generated): three 3-bit features -> class.
        mov  r2, r0
        mov  r3, r0
        mov  r4, r0
",
    );
    for i in 1..=15usize {
        let f = DecisionTreeSpec::feature(i);
        let t = DecisionTreeSpec::threshold(i);
        let _ = writeln!(
            s,
            "\
node_{i}:
        mov  r5, r{reg}
        subi r5, {cmp}
        br.n node_{left}
        jmp  node_{right}",
            reg = 2 + f,
            cmp = t + 1,
            left = 2 * i,
            right = 2 * i + 1,
        );
    }
    for leaf in 16..=31usize {
        let _ = writeln!(
            s,
            "\
node_{leaf}:
        movi r5, {class}
        jmp  out",
            class = leaf as i64 - 16 - if leaf >= 24 { 16 } else { 0 },
        );
    }
    s.push_str(
        "\
out:
        mov  r1, r5
        movi r5, 0
        mov  r1, r5
        halt
",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_has_nonempty_source() {
        for k in Kernel::ALL {
            assert!(!source(k).is_empty(), "{k}");
        }
    }

    #[test]
    fn tree_spec_is_deterministic_and_depth_four() {
        for i in 1..=15 {
            assert!(DecisionTreeSpec::threshold(i) <= 6);
            assert!(DecisionTreeSpec::feature(i) < 3);
        }
        // depth: features per level = 0,1,2,0
        assert_eq!(DecisionTreeSpec::feature(1), 0);
        assert_eq!(DecisionTreeSpec::feature(2), 1);
        assert_eq!(DecisionTreeSpec::feature(7), 2);
        assert_eq!(DecisionTreeSpec::feature(8), 0);
        // classification reaches every leaf index range
        let c = DecisionTreeSpec::classify([0, 0, 0]);
        assert!(c < 16);
        let c2 = DecisionTreeSpec::classify([7, 7, 7]);
        assert!(c2 < 16);
        assert_ne!(c, c2);
    }

    #[test]
    fn generated_sources_mention_their_pages() {
        let calc = calculator_source();
        assert!(calc.contains(".page 1"));
        assert!(calc.contains(".page 5"));
        let tree = decision_tree_source();
        assert!(tree.contains(".page 1"));
        assert!(tree.contains(".page 2"));
    }
}
