//! Kernel execution harness: assemble → simulate → verify against oracle.

use crate::{oracle, sources, Kernel};
use flexasm::{AsmError, Target};
use flexicore::exec::{run_packed_lanes, AnyCore, LaneStatus};
use flexicore::io::{InputPort, OutputPort, RecordingOutput, ScriptedInput};
use flexicore::program::Program;
use flexicore::sim::{FaultHook, NoFaults, RunResult};
use flexicore::SimError;

/// Default watchdog budget for one kernel execution (generous; base-ISA
/// shifts are expensive but bounded). Cycles on FC4/FC8, retired
/// instructions on the extended dialects.
pub const CYCLE_BUDGET: u64 = 200_000;

/// The outcome of one verified kernel execution.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Payload outputs (protocol escapes/separators stripped).
    pub outputs: Vec<u8>,
    /// Every value driven on the output port, in order.
    pub raw_outputs: Vec<u8>,
    /// Architectural run statistics from the functional simulator.
    pub result: RunResult,
    /// Whether the raw stream matched the oracle exactly.
    pub verified: bool,
    /// Static instruction count of the assembled program.
    pub static_instructions: usize,
    /// Code size in bytes.
    pub code_bytes: usize,
}

/// Errors from [`run_kernel`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RunError {
    /// The kernel failed to assemble for the target.
    Asm(AsmError),
    /// The simulator faulted.
    Sim(SimError),
    /// Execution did not reach the halt idiom within the watchdog budget
    /// (defaults to [`CYCLE_BUDGET`]).
    DidNotHalt,
    /// The output stream differed from the oracle.
    OracleMismatch {
        /// What the oracle predicted.
        expected: Vec<u8>,
        /// What the simulated core produced.
        actual: Vec<u8>,
    },
}

impl core::fmt::Display for RunError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RunError::Asm(e) => write!(f, "assembly failed: {e}"),
            RunError::Sim(e) => write!(f, "simulation faulted: {e}"),
            RunError::DidNotHalt => write!(f, "kernel did not halt within the cycle budget"),
            RunError::OracleMismatch { expected, actual } => write!(
                f,
                "output mismatch: expected {expected:02x?}, got {actual:02x?}"
            ),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Asm(e) => Some(e),
            RunError::Sim(e) => Some(e),
            RunError::DidNotHalt | RunError::OracleMismatch { .. } => None,
        }
    }
}

impl From<AsmError> for RunError {
    fn from(e: AsmError) -> Self {
        RunError::Asm(e)
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// A kernel assembled once for a target, reusable across many runs
/// (fault-injection campaigns run thousands of executions of the same
/// program image).
#[derive(Debug, Clone)]
pub struct PreparedKernel {
    kernel: Kernel,
    target: Target,
    program: Program,
    static_instructions: usize,
    code_bytes: usize,
}

impl PreparedKernel {
    /// Assemble `kernel` for `target`.
    ///
    /// # Errors
    ///
    /// [`RunError::Asm`] if the kernel does not assemble.
    pub fn new(kernel: Kernel, target: Target) -> Result<Self, RunError> {
        let source = sources::source_for(kernel, target.dialect);
        let assembly = flexasm::Assembler::new(target).assemble(&source)?;
        Ok(PreparedKernel {
            kernel,
            target,
            static_instructions: assembly.static_instructions(),
            code_bytes: assembly.code_bytes(),
            program: assembly.into_program(),
        })
    }

    /// The kernel this program implements.
    #[must_use]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The assembly target.
    #[must_use]
    pub fn target(&self) -> Target {
        self.target
    }

    /// The assembled program image.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// A fresh simulator of the target dialect with the assembled image
    /// loaded.
    #[must_use]
    pub fn core(&self) -> AnyCore {
        AnyCore::for_dialect(
            self.target.dialect,
            self.target.features,
            self.program.clone(),
        )
    }

    /// Execute once with `inputs` scripted on the input port, a `budget`
    /// watchdog, and `faults` injected, verifying against the oracle.
    ///
    /// # Errors
    ///
    /// See [`RunError`].
    pub fn run_with<F: FaultHook>(
        &self,
        inputs: &[u8],
        budget: u64,
        faults: &mut F,
    ) -> Result<KernelRun, RunError> {
        let mut input = ScriptedInput::new(inputs.to_vec());
        let mut output = RecordingOutput::new();
        let result = self
            .core()
            .run_with(&mut input, &mut output, budget, faults)?;
        self.verify(inputs, output.values(), result)
    }

    /// Run one case per [`BatchCase`] through the packed 64-lane tier
    /// ([`run_packed_lanes`]): all lanes share this kernel's program
    /// image, so each batch of 64 shares one decode cache, with lanes
    /// whose fault hook corrupts the fetch bus falling back to private
    /// decode. Results are in case order and bit-for-bit identical to
    /// serial [`run_with`](Self::run_with) calls with the same inputs
    /// and fault hooks (a guarantee the scalar engine's lockstep tests
    /// enforce).
    #[must_use]
    pub fn run_batch<F: FaultHook>(
        &self,
        cases: Vec<BatchCase<F>>,
        budget: u64,
    ) -> Vec<Result<KernelRun, RunError>> {
        let mut inputs = Vec::with_capacity(cases.len());
        let lanes = cases
            .into_iter()
            .map(|case| {
                inputs.push(case.inputs.clone());
                (
                    self.core(),
                    ScriptedInput::new(case.inputs),
                    RecordingOutput::new(),
                    case.faults,
                )
            })
            .collect();
        run_packed_lanes(lanes, budget)
            .into_iter()
            .zip(inputs)
            .map(|((status, output), inputs)| match status {
                LaneStatus::Done(result) | LaneStatus::Hung(result) => {
                    self.verify(&inputs, output.values(), result)
                }
                LaneStatus::Faulted(e) => Err(RunError::Sim(e)),
                LaneStatus::Running => unreachable!("run_packed_lanes retires every lane"),
            })
            .collect()
    }

    /// Oracle-verify a raw output stream produced elsewhere (e.g. by a
    /// resilient or link-layer executor that drove the core itself) and
    /// package it as a [`KernelRun`].
    ///
    /// # Errors
    ///
    /// [`RunError::DidNotHalt`] if `result` never reached the halt
    /// idiom, [`RunError::OracleMismatch`] if the stream differs from
    /// the oracle's prediction for `inputs`.
    pub fn verify(
        &self,
        inputs: &[u8],
        raw_outputs: Vec<u8>,
        result: RunResult,
    ) -> Result<KernelRun, RunError> {
        if !result.halted() {
            return Err(RunError::DidNotHalt);
        }
        let expected = oracle::expected_outputs(self.kernel, self.target.dialect, inputs);
        if raw_outputs != expected {
            return Err(RunError::OracleMismatch {
                expected,
                actual: raw_outputs,
            });
        }
        let outputs = oracle::payload(self.kernel, self.target.dialect, &raw_outputs);
        Ok(KernelRun {
            outputs,
            raw_outputs,
            result,
            verified: true,
            static_instructions: self.static_instructions,
            code_bytes: self.code_bytes,
        })
    }
}

/// One entry in a [`PreparedKernel::run_batch`] sweep: the scripted
/// input stream plus the lane's private fault hook.
#[derive(Debug, Clone)]
pub struct BatchCase<F = NoFaults> {
    /// Values scripted on the input port.
    pub inputs: Vec<u8>,
    /// The lane's fault hook (use [`NoFaults`] for clean runs).
    pub faults: F,
}

impl BatchCase<NoFaults> {
    /// A clean (fault-free) case.
    #[must_use]
    pub fn clean(inputs: Vec<u8>) -> Self {
        BatchCase {
            inputs,
            faults: NoFaults,
        }
    }
}

/// Assemble `kernel` for `target`, execute it on the matching functional
/// simulator with `inputs` scripted on the input port, and verify the
/// output stream against the oracle.
///
/// # Errors
///
/// See [`RunError`].
pub fn run_kernel(kernel: Kernel, target: Target, inputs: &[u8]) -> Result<KernelRun, RunError> {
    run_kernel_with(kernel, target, inputs, CYCLE_BUDGET, &mut NoFaults)
}

/// [`run_kernel`] with a configurable watchdog `budget` and a
/// fault-injection hook. Campaign runners use tighter budgets for faster
/// hang detection and a [`flexicore::sim::FaultPlane`] for injection;
/// `run_kernel(k, t, i)` is exactly
/// `run_kernel_with(k, t, i, CYCLE_BUDGET, &mut NoFaults)`.
///
/// # Errors
///
/// See [`RunError`].
pub fn run_kernel_with<F: FaultHook>(
    kernel: Kernel,
    target: Target,
    inputs: &[u8],
    budget: u64,
    faults: &mut F,
) -> Result<KernelRun, RunError> {
    PreparedKernel::new(kernel, target)?.run_with(inputs, budget, faults)
}

/// Run `program` on the functional simulator matching `target.dialect`,
/// threading a fault-injection hook. Thin wrapper over
/// [`AnyCore::for_dialect`] kept for callers that have a bare program
/// rather than a [`PreparedKernel`].
///
/// # Errors
///
/// Propagates any [`SimError`] from the simulator.
pub fn run_on_dialect_with<I: InputPort, O: OutputPort, F: FaultHook>(
    target: Target,
    program: Program,
    input: &mut I,
    output: &mut O,
    budget: u64,
    faults: &mut F,
) -> Result<RunResult, SimError> {
    AnyCore::for_dialect(target.dialect, target.features, program)
        .run_with(input, output, budget, faults)
}

/// Aggregate statistics over many input cases (one Figure 8 data point).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelStats {
    /// Mean retired instructions per execution.
    pub mean_instructions: f64,
    /// Mean clock cycles per execution (ISA-level).
    pub mean_cycles: f64,
    /// Mean taken branches per execution.
    pub mean_taken_branches: f64,
    /// Mean program bytes fetched per execution.
    pub mean_fetched_bytes: f64,
    /// Number of cases measured.
    pub cases: usize,
    /// Static instruction count (same for every case).
    pub static_instructions: usize,
    /// Code bytes (same for every case).
    pub code_bytes: usize,
}

/// Run `kernel` over every case in `cases` and average the architectural
/// counts. Every case is oracle-verified; the first failure aborts.
///
/// # Errors
///
/// See [`RunError`].
pub fn measure(kernel: Kernel, target: Target, cases: &[Vec<u8>]) -> Result<KernelStats, RunError> {
    assert!(!cases.is_empty(), "need at least one input case");
    let prepared = PreparedKernel::new(kernel, target)?;
    let batch = cases
        .iter()
        .map(|case| BatchCase::clean(case.clone()))
        .collect();
    let mut instructions = 0u64;
    let mut cycles = 0u64;
    let mut taken = 0u64;
    let mut fetched = 0u64;
    let mut static_instructions = 0;
    let mut code_bytes = 0;
    for run in prepared.run_batch(batch, CYCLE_BUDGET) {
        let run = run?;
        instructions += run.result.instructions;
        cycles += run.result.cycles;
        taken += run.result.taken_branches;
        fetched += run.result.fetched_bytes;
        static_instructions = run.static_instructions;
        code_bytes = run.code_bytes;
    }
    let n = cases.len() as f64;
    Ok(KernelStats {
        mean_instructions: instructions as f64 / n,
        mean_cycles: cycles as f64 / n,
        mean_taken_branches: taken as f64 / n,
        mean_fetched_bytes: fetched as f64 / n,
        cases: cases.len(),
        static_instructions,
        code_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::Sampler;

    #[test]
    fn parity_on_fc4_matches_oracle() {
        let run = run_kernel(Kernel::ParityCheck, Target::fc4(), &[0x1, 0x0]).unwrap();
        assert!(run.verified);
        assert_eq!(run.outputs, vec![1]);
    }

    #[test]
    fn thresholding_on_fc4() {
        // samples 0x21, 0x7B (> 0x5A), then zeros: sticky from sample 2
        let run = run_kernel(
            Kernel::Thresholding,
            Target::fc4(),
            &[1, 2, 0xB, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        )
        .unwrap();
        assert_eq!(run.outputs, vec![0, 1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn parity_on_fc8_matches_oracle_exhaustively() {
        let prepared = PreparedKernel::new(Kernel::ParityCheck, Target::fc8()).unwrap();
        for word in 0..=255u8 {
            let run = prepared
                .run_with(&[word & 0xF, word >> 4], CYCLE_BUDGET, &mut NoFaults)
                .unwrap();
            assert_eq!(
                run.outputs,
                vec![(word.count_ones() & 1) as u8],
                "{word:#04x}"
            );
        }
    }

    #[test]
    fn fc8_support_matches_assembler_reality() {
        for k in Kernel::ALL {
            let assembles = k.assemble(Target::fc8()).is_ok();
            assert_eq!(
                assembles,
                k.supports(flexicore::isa::Dialect::Fc8),
                "{k}: supports() must track what actually assembles"
            );
        }
    }

    #[test]
    fn run_batch_matches_serial_runs() {
        let prepared = PreparedKernel::new(Kernel::ParityCheck, Target::fc8()).unwrap();
        let mut s = Sampler::new(Kernel::ParityCheck, 11);
        let cases = s.draw_many(8);
        let batch = prepared.run_batch(
            cases.iter().map(|c| BatchCase::clean(c.clone())).collect(),
            CYCLE_BUDGET,
        );
        for (case, batched) in cases.iter().zip(batch) {
            let serial = prepared.run_with(case, CYCLE_BUDGET, &mut NoFaults);
            let batched = batched.unwrap();
            let serial = serial.unwrap();
            assert_eq!(batched.raw_outputs, serial.raw_outputs);
            assert_eq!(batched.result, serial.result);
        }
    }

    #[test]
    fn run_batch_reports_per_lane_errors() {
        let prepared = PreparedKernel::new(Kernel::ParityCheck, Target::fc4()).unwrap();
        // budget 1 cannot reach the halt idiom: every lane is DidNotHalt
        let batch = prepared.run_batch(vec![BatchCase::clean(vec![0x1, 0x0])], 1);
        assert_eq!(batch.len(), 1);
        assert!(matches!(batch[0], Err(RunError::DidNotHalt)));
    }

    #[test]
    fn measure_averages_over_cases() {
        let mut s = Sampler::new(Kernel::ParityCheck, 3);
        let cases = s.draw_many(10);
        let stats = measure(Kernel::ParityCheck, Target::fc4(), &cases).unwrap();
        assert_eq!(stats.cases, 10);
        assert!(stats.mean_instructions > 10.0);
        assert!(stats.static_instructions > 0);
    }
}
