//! Input-space sampling for the Figure 8 experiments.
//!
//! The paper averages latency/energy over the input space, exhaustively
//! where feasible and by random sampling for the Decision Tree (§5.2). The
//! samplers here implement the same policy with a seeded RNG so every
//! experiment regenerates identically.

use crate::{Kernel, STREAM_LEN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic input-case generator for one kernel.
#[derive(Debug)]
pub struct Sampler {
    kernel: Kernel,
    rng: StdRng,
}

impl Sampler {
    /// A sampler seeded for reproducibility.
    #[must_use]
    pub fn new(kernel: Kernel, seed: u64) -> Self {
        Sampler {
            kernel,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draw one input case (sized per [`Kernel::inputs_per_run`]).
    pub fn draw(&mut self) -> Vec<u8> {
        let rng = &mut self.rng;
        match self.kernel {
            Kernel::Calculator => {
                let op = rng.gen_range(0..4u8);
                let a = rng.gen_range(0..16u8);
                // non-zero divisor per the paper's definition of the kernel
                let b = if op == 3 {
                    rng.gen_range(1..16u8)
                } else {
                    rng.gen_range(0..16u8)
                };
                vec![op, a, b]
            }
            Kernel::DecisionTree => (0..3).map(|_| rng.gen_range(0..8u8)).collect(),
            Kernel::ParityCheck => vec![rng.gen_range(0..16u8), rng.gen_range(0..16u8)],
            Kernel::XorShift8 => {
                // any non-zero 8-bit state
                let x = rng.gen_range(1..=255u8);
                vec![x & 0xF, x >> 4]
            }
            Kernel::FirFilter => (0..STREAM_LEN).map(|_| rng.gen_range(0..16u8)).collect(),
            Kernel::IntAvg => (0..STREAM_LEN).map(|_| rng.gen_range(0..8u8)).collect(),
            Kernel::Thresholding => (0..STREAM_LEN * 2)
                .map(|_| rng.gen_range(0..16u8))
                .collect(),
        }
    }

    /// Draw `n` cases.
    pub fn draw_many(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.draw()).collect()
    }
}

/// Exhaustive input enumeration where the space is small enough
/// (everything except the streaming kernels, whose 8-sample streams are
/// sampled instead). Returns `None` for kernels whose space is sampled.
#[must_use]
pub fn exhaustive_cases(kernel: Kernel) -> Option<Vec<Vec<u8>>> {
    match kernel {
        Kernel::Calculator => {
            let mut v = Vec::new();
            for op in 0..4u8 {
                for a in 0..16u8 {
                    for b in 0..16u8 {
                        if op == 3 && b == 0 {
                            continue;
                        }
                        v.push(vec![op, a, b]);
                    }
                }
            }
            Some(v)
        }
        Kernel::ParityCheck => Some(
            (0..=255u16)
                .map(|w| vec![(w & 0xF) as u8, (w >> 4) as u8])
                .collect(),
        ),
        Kernel::XorShift8 => Some((1..=255u8).map(|w| vec![w & 0xF, w >> 4]).collect()),
        Kernel::DecisionTree => {
            let mut v = Vec::new();
            for f0 in 0..8u8 {
                for f1 in 0..8u8 {
                    for f2 in 0..8u8 {
                        v.push(vec![f0, f1, f2]);
                    }
                }
            }
            Some(v)
        }
        Kernel::FirFilter | Kernel::IntAvg | Kernel::Thresholding => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic() {
        let a: Vec<_> = Sampler::new(Kernel::Calculator, 7).draw_many(5);
        let b: Vec<_> = Sampler::new(Kernel::Calculator, 7).draw_many(5);
        assert_eq!(a, b);
        let c: Vec<_> = Sampler::new(Kernel::Calculator, 8).draw_many(5);
        assert_ne!(a, c);
    }

    #[test]
    fn cases_are_correctly_sized_and_ranged() {
        for k in Kernel::ALL {
            let mut s = Sampler::new(k, 1);
            for case in s.draw_many(50) {
                assert_eq!(case.len(), k.inputs_per_run(), "{k}");
                assert!(case.iter().all(|&v| v < 16));
            }
        }
    }

    #[test]
    fn division_never_draws_zero_divisor() {
        let mut s = Sampler::new(Kernel::Calculator, 99);
        for case in s.draw_many(500) {
            if case[0] == 3 {
                assert_ne!(case[2], 0);
            }
        }
    }

    #[test]
    fn exhaustive_sizes() {
        assert_eq!(exhaustive_cases(Kernel::ParityCheck).unwrap().len(), 256);
        assert_eq!(exhaustive_cases(Kernel::XorShift8).unwrap().len(), 255);
        assert_eq!(exhaustive_cases(Kernel::DecisionTree).unwrap().len(), 512);
        assert_eq!(
            exhaustive_cases(Kernel::Calculator).unwrap().len(),
            4 * 256 - 16
        );
        assert!(exhaustive_cases(Kernel::IntAvg).is_none());
    }
}
