//! # flexkernels
//!
//! The seven benchmark kernels of the FlexiCores paper (Table 6, §5.1),
//! written once in `flexasm`'s feature-conditional assembly so a single
//! source builds for the base FlexiCore4 ISA **and** for every
//! design-space-exploration configuration (§6).
//!
//! | kernel | type (paper) | input protocol |
//! |---|---|---|
//! | Calculator | interactive | op (0 add, 1 sub, 2 mul, 3 div), a, b |
//! | Four-tap FIR | streaming | 8 signed 4-bit samples |
//! | Decision Tree | reactive | 3 features (0..=7) |
//! | IntAvg | streaming | 8 samples (0..=7) |
//! | Thresholding | streaming | 8 samples, 8-bit, two nibbles each |
//! | Parity Check | reactive | 8-bit word as two nibbles, low first |
//! | XorShift8 | reactive | 8-bit state as two nibbles, low first |
//!
//! Each kernel comes with a golden Rust [`oracle`] that predicts the exact
//! output-port byte stream (including the zero separators and, for the
//! paged Calculator, the MMU escape sequences), plus an input-space
//! sampler ([`inputs`]) used by the Figure 8 experiments.
//!
//! ```
//! use flexkernels::Kernel;
//! use flexasm::Target;
//!
//! // parity of 0x53 (0101_0011): four bits set -> parity 0
//! let run = Kernel::ParityCheck.run(Target::fc4(), &[0x3, 0x5])?;
//! assert!(run.verified);
//! assert_eq!(run.outputs, vec![0]);
//! # Ok::<(), flexkernels::RunError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fc8_demo;
pub mod harness;
pub mod inputs;
pub mod oracle;
pub mod sources;

pub use harness::{BatchCase, KernelRun, RunError};

use flexasm::{AsmError, Assembler, Assembly, Target};

/// The seven benchmark kernels of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kernel {
    /// Four-function calculator (interactive; uses MMU pages).
    Calculator,
    /// Four-tap FIR filter, coefficients in {−1, 1} (streaming).
    FirFilter,
    /// Depth-4 decision-tree inference over 3 features (reactive).
    DecisionTree,
    /// Exponential-smoothing integer average (streaming).
    IntAvg,
    /// Stream thresholding with a sticky flag (streaming).
    Thresholding,
    /// 8-bit parity (reactive).
    ParityCheck,
    /// 8-bit xorshift PRNG step, triple (3, 5, 7) (reactive).
    XorShift8,
}

impl Kernel {
    /// All kernels, in the paper's Table 6 order.
    pub const ALL: [Kernel; 7] = [
        Kernel::Calculator,
        Kernel::FirFilter,
        Kernel::DecisionTree,
        Kernel::IntAvg,
        Kernel::Thresholding,
        Kernel::ParityCheck,
        Kernel::XorShift8,
    ];

    /// Display name matching the paper's tables and figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Calculator => "Calculator",
            Kernel::FirFilter => "Four-tap FIR",
            Kernel::DecisionTree => "Decision Tree",
            Kernel::IntAvg => "IntAvg",
            Kernel::Thresholding => "Thresholding",
            Kernel::ParityCheck => "Parity Check",
            Kernel::XorShift8 => "XorShift8",
        }
    }

    /// The paper's reported static instruction count (Table 6), for
    /// side-by-side reporting in EXPERIMENTS.md.
    #[must_use]
    pub fn paper_static_instructions(self) -> usize {
        match self {
            Kernel::Calculator => 352,
            Kernel::FirFilter => 177,
            Kernel::DecisionTree => 210,
            Kernel::IntAvg => 132,
            Kernel::Thresholding => 102,
            Kernel::ParityCheck => 105,
            Kernel::XorShift8 => 186,
        }
    }

    /// Whether the kernel has a program for `dialect`.
    ///
    /// Everything builds for the 4-bit dialects. FlexiCore8's four data
    /// words (two of them the IO ports) fit only the kernels that live in
    /// two scratch registers — currently [`Kernel::ParityCheck`] — which
    /// is the §3.3 capacity trade-off the paper describes.
    #[must_use]
    pub fn supports(self, dialect: flexicore::isa::Dialect) -> bool {
        match dialect {
            flexicore::isa::Dialect::Fc8 => matches!(self, Kernel::ParityCheck),
            _ => true,
        }
    }

    /// Whether the kernel processes a stream (latency/energy reported per
    /// input) rather than a single activation.
    #[must_use]
    pub fn is_streaming(self) -> bool {
        matches!(
            self,
            Kernel::FirFilter | Kernel::IntAvg | Kernel::Thresholding
        )
    }

    /// Number of input items one execution consumes (streaming kernels
    /// process [`STREAM_LEN`] samples; reactive/interactive ones a fixed
    /// tuple).
    #[must_use]
    pub fn inputs_per_run(self) -> usize {
        match self {
            Kernel::Calculator => 3,
            Kernel::FirFilter | Kernel::IntAvg => STREAM_LEN,
            // 8-bit samples arrive as two nibbles each
            Kernel::Thresholding => STREAM_LEN * 2,
            Kernel::DecisionTree => 3,
            Kernel::ParityCheck | Kernel::XorShift8 => 2,
        }
    }

    /// The accumulator-dialect assembly source for this kernel.
    #[must_use]
    pub fn source(self) -> String {
        sources::source(self)
    }

    /// The assembly source for this kernel on a given dialect.
    #[must_use]
    pub fn source_for(self, dialect: flexicore::isa::Dialect) -> String {
        sources::source_for(self, dialect)
    }

    /// Assemble for `target`.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors (e.g. a feature-gated mnemonic with no
    /// software expansion on the chosen target).
    pub fn assemble(self, target: Target) -> Result<Assembly, AsmError> {
        Assembler::new(target).assemble(&self.source_for(target.dialect))
    }

    /// Run on the functional simulator for `target` with the given input
    /// values, verifying against the oracle.
    ///
    /// # Errors
    ///
    /// Assembly errors, simulator faults, oracle mismatches or cycle-limit
    /// overruns — see [`RunError`].
    pub fn run(self, target: Target, inputs: &[u8]) -> Result<KernelRun, RunError> {
        harness::run_kernel(self, target, inputs)
    }
}

impl core::fmt::Display for Kernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Samples consumed per execution by the streaming kernels.
pub const STREAM_LEN: usize = 8;
