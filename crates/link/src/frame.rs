//! Per-page transfer frames with sequence numbers and a CRC-16 check.
//!
//! A program image crosses the reprogramming link as one frame per
//! 128-byte store page:
//!
//! ```text
//! [MAGIC, seq, page, len, payload[0..len], crc_hi, crc_lo]
//! ```
//!
//! The CRC (CCITT polynomial `0x1021`, init `0xFFFF`) covers the
//! header fields and payload, so bit flips, truncation and reordering
//! corruption are all detected at the receiver and answered with a
//! retransmission rather than a corrupt store write.

/// Start-of-frame marker.
pub const MAGIC: u8 = 0xA5;

/// Frame overhead in bytes: magic, seq, page, len, two CRC bytes.
pub const OVERHEAD: usize = 6;

/// Largest payload a one-byte length field can carry.
pub const MAX_PAYLOAD: usize = 255;

/// One reprogramming frame: a page of program bytes in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Monotonic sequence number (wraps at 256), catching duplicated
    /// or replayed deliveries.
    pub seq: u8,
    /// The store page this payload programs.
    pub page: u8,
    /// The page's data bytes.
    pub payload: Vec<u8>,
}

/// Why a received byte string is not a valid frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the fixed overhead.
    TooShort {
        /// Received length in bytes.
        len: usize,
    },
    /// The first byte is not [`MAGIC`].
    BadMagic {
        /// The byte received instead.
        found: u8,
    },
    /// The length field disagrees with the received byte count.
    LengthMismatch {
        /// Payload length the header claims.
        declared: usize,
        /// Payload bytes actually present.
        received: usize,
    },
    /// The CRC check failed.
    BadCrc {
        /// CRC computed over the received header and payload.
        computed: u16,
        /// CRC carried by the frame trailer.
        received: u16,
    },
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::TooShort { len } => {
                write!(f, "frame of {len} bytes is shorter than the overhead")
            }
            FrameError::BadMagic { found } => {
                write!(f, "frame starts with {found:#04x}, not the magic")
            }
            FrameError::LengthMismatch { declared, received } => {
                write!(
                    f,
                    "length field says {declared} payload bytes, got {received}"
                )
            }
            FrameError::BadCrc { computed, received } => {
                write!(
                    f,
                    "crc mismatch: computed {computed:#06x}, received {received:#06x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// CRC-16-CCITT (polynomial `0x1021`, initial value `0xFFFF`).
#[must_use]
pub fn crc16(bytes: &[u8]) -> u16 {
    let mut crc = 0xFFFFu16;
    for &b in bytes {
        crc ^= u16::from(b) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

impl Frame {
    /// Serialize for transmission.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD`] bytes — pages are
    /// 128 bytes, so a larger payload is a caller bug, not a link
    /// condition.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            self.payload.len() <= MAX_PAYLOAD,
            "payload of {} bytes exceeds the length field",
            self.payload.len()
        );
        let mut bytes = Vec::with_capacity(OVERHEAD + self.payload.len());
        bytes.push(MAGIC);
        bytes.push(self.seq);
        bytes.push(self.page);
        bytes.push(self.payload.len() as u8);
        bytes.extend_from_slice(&self.payload);
        let crc = crc16(&bytes[1..]);
        bytes.push((crc >> 8) as u8);
        bytes.push(crc as u8);
        bytes
    }

    /// Parse and integrity-check a received byte string.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]; the caller answers with a retransmission.
    pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
        if bytes.len() < OVERHEAD {
            return Err(FrameError::TooShort { len: bytes.len() });
        }
        if bytes[0] != MAGIC {
            return Err(FrameError::BadMagic { found: bytes[0] });
        }
        let declared = usize::from(bytes[3]);
        let received = bytes.len() - OVERHEAD;
        if declared != received {
            return Err(FrameError::LengthMismatch { declared, received });
        }
        let body_end = bytes.len() - 2;
        let computed = crc16(&bytes[1..body_end]);
        let carried = u16::from(bytes[body_end]) << 8 | u16::from(bytes[body_end + 1]);
        if computed != carried {
            return Err(FrameError::BadCrc {
                computed,
                received: carried,
            });
        }
        Ok(Frame {
            seq: bytes[1],
            page: bytes[2],
            payload: bytes[4..body_end].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame {
            seq: 7,
            page: 3,
            payload: vec![0xDE, 0xAD, 0xBE, 0xEF],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let f = frame();
        assert_eq!(Frame::decode(&f.encode()), Ok(f));
    }

    #[test]
    fn empty_payload_round_trips() {
        let f = Frame {
            seq: 0,
            page: 0,
            payload: vec![],
        };
        assert_eq!(Frame::decode(&f.encode()), Ok(f));
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let bytes = frame().encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    Frame::decode(&corrupt).is_err(),
                    "flip of byte {byte} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = frame().encode();
        for len in 0..bytes.len() {
            assert!(Frame::decode(&bytes[..len]).is_err(), "cut at {len}");
        }
    }

    #[test]
    fn crc_matches_known_vector() {
        // CRC-16/CCITT-FALSE of "123456789"
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }
}
