//! Minimal SHA-256 and HMAC-SHA256 for image authentication.
//!
//! The secure-update path (see [`crate::auth`]) needs a collision-
//! resistant digest for image integrity and a keyed MAC for
//! authenticity, but the workspace vendors its dependencies and ships
//! no crypto crate. This module is a from-scratch FIPS 180-4 SHA-256
//! plus RFC 2104 HMAC — small, allocation-light, and pinned by the
//! standard known-answer vectors (empty string, `"abc"`, RFC 4231).
//!
//! It is *not* hardened against timing side channels beyond the
//! constant-time tag comparison in [`verify_hmac_sha256`]; the threat
//! model (DESIGN.md §11) is a man-in-the-middle on the programming
//! link, not a co-resident attacker timing the verifier.

/// Digest length in bytes.
pub const DIGEST_BYTES: usize = 32;

/// SHA-256 block length in bytes.
const BLOCK_BYTES: usize = 64;

/// FIPS 180-4 §4.2.2 round constants (first 32 bits of the fractional
/// parts of the cube roots of the first 64 primes).
#[rustfmt::skip]
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5,
    0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3,
    0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5,
    0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state (first 32 bits of the fractional parts of the
/// square roots of the first 8 primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_BYTES],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0; BLOCK_BYTES],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb more message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (BLOCK_BYTES - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < BLOCK_BYTES {
                // data exhausted into a still-partial buffer
                return;
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        let mut chunks = data.chunks_exact(BLOCK_BYTES);
        for block in &mut chunks {
            let mut b = [0u8; BLOCK_BYTES];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rest = chunks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    /// Finish padding and produce the digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; DIGEST_BYTES] {
        let bit_len = self.total_len.wrapping_mul(8);
        // One 0x80 byte, zeros, then the 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != BLOCK_BYTES - 8 {
            self.update(&[0]);
        }
        // update() would re-count the length bytes; write them directly.
        self.buf[BLOCK_BYTES - 8..].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; DIGEST_BYTES];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// FIPS 180-4 §6.2.2 compression of one 64-byte block.
    fn compress(&mut self, block: &[u8; BLOCK_BYTES]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// SHA-256 of a message in one shot.
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; DIGEST_BYTES] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// RFC 2104 HMAC-SHA256 of `message` under `key`.
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_BYTES] {
    let mut key_block = [0u8; BLOCK_BYTES];
    if key.len() > BLOCK_BYTES {
        key_block[..DIGEST_BYTES].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time tag comparison: the verifier must not leak, via an
/// early exit, how many prefix bytes of a forged tag were right.
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (&x, &y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Verify an HMAC-SHA256 tag in constant time.
#[must_use]
pub fn verify_hmac_sha256(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    ct_eq(&hmac_sha256(key, message), tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_empty_string() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_message() {
        // FIPS 180-4 example B.2: 56 bytes forces the padding into a
        // second block.
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        // FIPS 180-4 example B.3, streamed in uneven chunks to exercise
        // the buffering path.
        let mut h = Sha256::new();
        let chunk = [b'a'; 997];
        let mut fed = 0usize;
        while fed < 1_000_000 {
            let take = chunk.len().min(1_000_000 - fed);
            h.update(&chunk[..take]);
            fed += take;
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let msg: Vec<u8> = (0..300u16).map(|i| (i * 31) as u8).collect();
        for split in [0, 1, 63, 64, 65, 128, 299, 300] {
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finalize(), sha256(&msg), "split {split}");
        }
    }

    #[test]
    fn hmac_rfc4231_case_1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_rfc4231_case_2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_rfc4231_case_6_long_key() {
        // 131-byte key exercises the hash-the-key path.
        let key = [0xaa; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_good_and_rejects_bad_tags() {
        let tag = hmac_sha256(b"key", b"message");
        assert!(verify_hmac_sha256(b"key", b"message", &tag));
        let mut forged = tag;
        forged[31] ^= 1;
        assert!(!verify_hmac_sha256(b"key", b"message", &forged));
        assert!(!verify_hmac_sha256(b"key", b"message", &tag[..31]));
        assert!(!verify_hmac_sha256(b"other", b"message", &tag));
    }
}
