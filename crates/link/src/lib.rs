//! flexlink — the robust field-reprogramming link for FlexiCores.
//!
//! The paper's §5.1 field reprogrammability assumes the new program
//! image arrives intact and stays intact. This crate drops that
//! assumption and builds the link layer that earns it back:
//!
//! * [`ecc`] — SECDED(13,8) code words: every stored program byte
//!   carries four Hamming parity bits plus an overall parity bit, so
//!   single-bit upsets correct silently and double-bit upsets are
//!   detected rather than executed.
//! * [`frame`] — per-page transfer frames with sequence numbers and a
//!   CRC-16, so corrupted, truncated or misrouted deliveries are
//!   rejected at the receiver.
//! * [`channel`] — a seeded noisy channel (independent bit flips,
//!   bursts, drops, truncation) for deterministic adversarial testing.
//! * [`protocol`] — write → read-back-verify → bounded-retry paging
//!   with exponential backoff and per-frame telemetry.
//! * [`store`] — the ECC-protected external program store, with
//!   background scrubbing that heals corrected words in place and
//!   flags decayed pages for reprogramming.
//! * [`exec`] — a linked executor that runs a kernel out of the store
//!   in checkpointed segments: single upsets are corrected on read,
//!   uncorrectable pages are reprogrammed over the link, and crashes
//!   (including corrupt-MMU page escapes) roll back to the last
//!   checkpoint on the repaired image.
//! * [`soak`] / [`report`] — seeded soak campaigns (kernels × channel
//!   error rates) classifying every trial masked / recovered /
//!   unrecoverable, with bit-for-bit replayable telemetry.
//!
//! PR 6 hardens the link against *adversaries and power loss*, not
//! just noise (ROADMAP item 4, after the OpenSK upgrade-partition
//! playbook):
//!
//! * [`crypto`] — hand-written SHA-256 and HMAC-SHA256 (the workspace
//!   vendors its deps; no crypto crates).
//! * [`auth`] — the signed image metadata page: length, dialect,
//!   monotonic anti-rollback version, digest, HMAC tag.
//! * [`partition`] — A/B dual-slot ECC store with a two-phase commit
//!   marker, so a power cut at any word write boots the old image.
//! * [`update`] — the device-side secure-update engine: stage to the
//!   inactive slot, verify (MAC, digest, dialect, anti-rollback,
//!   `flexcheck` admission), then atomically swap.
//! * [`attack`] — an active man-in-the-middle on the programming link
//!   (forgery, replay, downgrade, truncation, bit flips) plus seeded
//!   attacker × power-cut soak campaigns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod auth;
pub mod channel;
pub mod crypto;
pub mod ecc;
pub mod exec;
pub mod frame;
pub mod partition;
pub mod protocol;
pub mod report;
pub mod soak;
pub mod store;
pub mod update;

pub use attack::{
    run_attack_soak, Attack, AttackCampaign, AttackMix, AttackOutcome, AttackSoakConfig,
};
pub use auth::{sign_update, Metadata, SignedUpdate};
pub use channel::{ChannelConfig, NoisyChannel};
pub use exec::{LinkExecConfig, LinkRun, LinkedExecutor, StoreUpset};
pub use partition::{Boot, DualStore, Slot};
pub use protocol::{FrameClass, LinkConfig, TransferReport};
pub use soak::{run_soak, SoakCampaign, SoakConfig, SoakOutcome};
pub use store::{EccStore, PAGE_BYTES};
pub use update::{Device, RejectReason, UpdateReport, UpdateStatus};
