//! Active-attacker campaigns against the secure-update flow.
//!
//! The noisy channel of [`crate::channel`] models *nature*; this
//! module models an *adversary* sitting on the programming link. The
//! attacker sees every legitimate update, can replace the wire bytes
//! wholesale (so CRC framing and host read-back verification pass by
//! construction — the attacker speaks the protocol perfectly), and can
//! schedule a supply collapse at any store write. What the attacker
//! does **not** have is the device key.
//!
//! [`run_attack_soak`] sweeps kernel × dialect × BER × attack × rep
//! and grades every trial *observationally*: after the update attempt
//! the die is rebooted and its booted image compared against the set
//! of genuinely signed images, then executed against the kernel
//! oracle. The acceptance bar (ISSUE 6): **zero** accepted
//! forged/replayed/downgraded images and **zero** bricked dies, with
//! bit-for-bit replay from the campaign seed.

use crate::auth::sign_update;
use crate::channel::{ChannelConfig, NoisyChannel};
use crate::protocol::LinkConfig;
use crate::store::PAGE_BYTES;
use crate::update::{Device, UpdateStatus};
use flexasm::Target;
use flexicore::exec::AnyCore;
use flexicore::io::{RecordingOutput, ScriptedInput};
use flexicore::isa::Dialect;
use flexicore::sim::PowerCut;
use flexkernels::harness::{PreparedKernel, CYCLE_BUDGET};
use flexkernels::{inputs::Sampler, oracle, Kernel, RunError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The device key used by campaign dies. The attacker's forgeries are
/// signed under a different key — knowing this constant is knowing the
/// *protocol*, not the *secret*; campaigns model a per-fleet key the
/// MITM never holds.
pub const DEVICE_KEY: &[u8] = b"flexicores-fleet-key-v1";

/// One adversarial (or control) behaviour on the programming link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Attack {
    /// No attacker: the legitimate next-version update, over the
    /// (possibly noisy) channel.
    Legit,
    /// The legitimate update with a supply collapse scheduled at a
    /// seeded store-write index (staging or commit, attacker's pick).
    PowerCut,
    /// The legitimate update with 1–4 adversarial bit flips anywhere
    /// in the wire image (the attacker re-frames, so CRCs pass).
    BitFlip,
    /// The legitimate metadata page with the image payload replaced by
    /// attacker bytes of the same length.
    ForgePayload,
    /// A complete forged update — attacker image, attacker-signed
    /// metadata at an inflated version — under the attacker's key.
    ForgeMetadata,
    /// Bit-for-bit replay of the genuine image the die already runs.
    Replay,
    /// A genuine, correctly signed *older* version (v1 after the die
    /// took v2).
    Downgrade,
    /// The legitimate update truncated at a seeded byte offset.
    Truncate,
}

impl Attack {
    /// Every modelled behaviour, in campaign order.
    pub const ALL: [Attack; 8] = [
        Attack::Legit,
        Attack::PowerCut,
        Attack::BitFlip,
        Attack::ForgePayload,
        Attack::ForgeMetadata,
        Attack::Replay,
        Attack::Downgrade,
        Attack::Truncate,
    ];

    /// Short campaign-table name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Attack::Legit => "legit",
            Attack::PowerCut => "power-cut",
            Attack::BitFlip => "bit-flip",
            Attack::ForgePayload => "forge-payload",
            Attack::ForgeMetadata => "forge-metadata",
            Attack::Replay => "replay",
            Attack::Downgrade => "downgrade",
            Attack::Truncate => "truncate",
        }
    }
}

/// The set of behaviours a campaign sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackMix {
    /// Behaviours, swept in order per (kernel, rate) cell.
    pub attacks: Vec<Attack>,
}

impl AttackMix {
    /// Only legitimate updates — the control mix.
    #[must_use]
    pub fn legit() -> Self {
        AttackMix {
            attacks: vec![Attack::Legit],
        }
    }

    /// Every modelled attack plus the legitimate control.
    #[must_use]
    pub fn full() -> Self {
        AttackMix {
            attacks: Attack::ALL.to_vec(),
        }
    }
}

/// Observational grading of one attacked update attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackOutcome {
    /// A legitimate update verified, committed, booted and ran
    /// oracle-exact.
    Applied,
    /// The device refused the update and still boots + runs its
    /// pre-attack genuine image.
    Rejected,
    /// The flow was interrupted (power cut) but the die boots + runs a
    /// genuine image — usually the prior one.
    Recovered,
    /// **Security failure**: the die booted an image outside the
    /// genuinely-signed set, or its version regressed.
    AcceptedForgery,
    /// **Availability failure**: no slot authenticates, or the booted
    /// image no longer runs oracle-exact.
    Bricked,
}

impl core::fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            AttackOutcome::Applied => "applied",
            AttackOutcome::Rejected => "rejected",
            AttackOutcome::Recovered => "recovered",
            AttackOutcome::AcceptedForgery => "accepted-forgery",
            AttackOutcome::Bricked => "bricked",
        })
    }
}

/// Configuration of one attacker soak campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSoakConfig {
    /// Targets (dialects) to sweep.
    pub targets: Vec<Target>,
    /// The channel bit-error-rate axis.
    pub error_rates: Vec<f64>,
    /// Behaviours swept per cell.
    pub mix: AttackMix,
    /// Seeded repetitions per (target, kernel, rate, attack) cell.
    pub reps: usize,
    /// Campaign seed; every draw derives from it.
    pub seed: u64,
    /// Transfer retry policy of the device.
    pub link: LinkConfig,
    /// `flexcheck` admission severity gating activation, if any.
    pub admission: Option<flexcheck::Severity>,
    /// Contiguous shards the trial list is split into for execution.
    /// Never changes the report — every trial's stream derives from its
    /// own sweep coordinates.
    pub shards: usize,
    /// Worker threads executing shards (`1` = run inline, serially).
    pub threads: usize,
}

impl AttackSoakConfig {
    /// A full-mix campaign over all four dialects, run serially.
    #[must_use]
    pub fn new(error_rates: Vec<f64>, reps: usize, seed: u64) -> Self {
        AttackSoakConfig {
            targets: vec![
                Target::fc4(),
                Target::fc8(),
                Target::xacc_revised(),
                Target::xls_revised(),
            ],
            error_rates,
            mix: AttackMix::full(),
            reps,
            seed,
            link: LinkConfig::default(),
            admission: Some(flexcheck::Severity::Error),
            shards: 1,
            threads: 1,
        }
    }

    /// Total trials the sweep will run.
    #[must_use]
    pub fn trial_count(&self) -> usize {
        let kernels: usize = self
            .targets
            .iter()
            .map(|t| Kernel::ALL.iter().filter(|k| k.supports(t.dialect)).count())
            .sum();
        kernels * self.error_rates.len() * self.mix.attacks.len() * self.reps
    }
}

/// One graded trial.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackTrial {
    /// The die's dialect.
    pub dialect: Dialect,
    /// The kernel whose image the die runs.
    pub kernel: Kernel,
    /// Channel bit-error rate.
    pub bit_error_rate: f64,
    /// The behaviour exercised.
    pub attack: Attack,
    /// Repetition index within the cell.
    pub rep: usize,
    /// The device's verdict on the update attempt.
    pub status: UpdateStatus,
    /// The observational grade.
    pub outcome: AttackOutcome,
    /// The version the die booted after the attempt.
    pub booted_version: u64,
}

/// A completed attacker soak campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackCampaign {
    /// The configuration that produced it.
    pub config: AttackSoakConfig,
    /// Every trial, in sweep order.
    pub trials: Vec<AttackTrial>,
}

impl AttackCampaign {
    /// Trials with `outcome`.
    #[must_use]
    pub fn count(&self, outcome: AttackOutcome) -> usize {
        self.trials.iter().filter(|t| t.outcome == outcome).count()
    }

    /// Security failures: forged/replayed/downgraded images accepted.
    #[must_use]
    pub fn accepted_forgeries(&self) -> usize {
        self.count(AttackOutcome::AcceptedForgery)
    }

    /// Availability failures: dies that no longer boot a working
    /// genuine image.
    #[must_use]
    pub fn bricked_dies(&self) -> usize {
        self.count(AttackOutcome::Bricked)
    }

    /// Whether the campaign met the ISSUE 6 acceptance bar.
    #[must_use]
    pub fn defended(&self) -> bool {
        self.accepted_forgeries() == 0 && self.bricked_dies() == 0
    }
}

/// Run the sweep. Every draw — inputs, flip positions, cut schedules,
/// channel noise — derives from `config.seed`, so the same config
/// replays its trials bit-for-bit.
///
/// # Errors
///
/// [`RunError::Asm`] if a kernel fails to assemble for a configured
/// target.
pub fn run_attack_soak(config: AttackSoakConfig) -> Result<AttackCampaign, RunError> {
    // Assemble each (target, kernel) image once, serially, so assembly
    // errors surface before any trial runs.
    let mut groups: Vec<(Target, Kernel, Vec<u8>)> = Vec::new();
    // Every trial's stream derives from its own sweep coordinates, so
    // trials are independent work units: the plan is laid out serially
    // in sweep order, then executed sharded and merged back bit-for-bit
    // identical to a serial pass.
    let mut plan: Vec<(usize, f64, Attack, usize, u64)> = Vec::with_capacity(config.trial_count());
    for (d, &target) in config.targets.iter().enumerate() {
        for (k, &kernel) in Kernel::ALL
            .iter()
            .filter(|k| k.supports(target.dialect))
            .enumerate()
        {
            let prepared = PreparedKernel::new(kernel, target)?;
            groups.push((target, kernel, prepared.program().as_bytes().to_vec()));
            let group = groups.len() - 1;
            for (r, &ber) in config.error_rates.iter().enumerate() {
                for (a, &attack) in config.mix.attacks.iter().enumerate() {
                    for rep in 0..config.reps {
                        // one private, reproducible stream per cell
                        let cell = (d as u64) << 48
                            | (k as u64) << 40
                            | (r as u64) << 32
                            | (a as u64) << 16
                            | rep as u64;
                        let trial_seed = config
                            .seed
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(cell);
                        plan.push((group, ber, attack, rep, trial_seed));
                    }
                }
            }
        }
    }
    let trials = flexshard::map_sharded(plan.len(), config.shards, config.threads, |_, range| {
        plan[range]
            .iter()
            .map(|&(group, ber, attack, rep, trial_seed)| {
                let (target, kernel, ref image) = groups[group];
                run_trial(&config, target, kernel, image, ber, attack, rep, trial_seed)
            })
            .collect()
    });
    Ok(AttackCampaign { config, trials })
}

/// Provision a die, mount one attack, reboot, grade.
#[allow(clippy::too_many_arguments)]
fn run_trial(
    config: &AttackSoakConfig,
    target: Target,
    kernel: Kernel,
    image: &[u8],
    ber: f64,
    attack: Attack,
    rep: usize,
    trial_seed: u64,
) -> AttackTrial {
    let mut rng = StdRng::seed_from_u64(trial_seed);
    let dialect = target.dialect;

    let mut device = Device::new(target, image.len(), DEVICE_KEY).with_link(config.link);
    if let Some(deny) = config.admission {
        device = device.with_admission(deny);
    }
    let v1 = sign_update(dialect, image, 1, DEVICE_KEY);
    device
        .provision(&v1)
        .expect("genuine kernel image must provision");

    // replay/downgrade need history: the die legitimately took v2
    let mut active_version = 1u64;
    if matches!(attack, Attack::Replay | Attack::Downgrade) {
        let v2 = sign_update(dialect, image, 2, DEVICE_KEY);
        let mut clean = NoisyChannel::new(ChannelConfig::clean(), trial_seed ^ 0xC1EA);
        let applied = device.apply_update(&v2.wire_bytes(), &mut clean, &mut PowerCut::never());
        assert!(
            matches!(applied.status, UpdateStatus::Applied { .. }),
            "clean legit update must apply: {:?}",
            applied.status
        );
        active_version = 2;
    }

    let legit_next = sign_update(dialect, image, active_version + 1, DEVICE_KEY).wire_bytes();
    let mut power = PowerCut::never();
    let wire: Vec<u8> = match attack {
        Attack::Legit => legit_next,
        Attack::PowerCut => {
            // anywhere in staging, the commit words, or just past them
            let bound = legit_next.len() as u64 + 4;
            power = PowerCut::at_write(rng.gen_range(0..bound), rng.gen());
            legit_next
        }
        Attack::BitFlip => {
            let mut wire = legit_next;
            for _ in 0..rng.gen_range(1..=4usize) {
                let byte = rng.gen_range(0..wire.len());
                wire[byte] ^= 1 << rng.gen_range(0..8u8);
            }
            wire
        }
        Attack::ForgePayload => {
            let mut wire = legit_next;
            for byte in wire[PAGE_BYTES..].iter_mut() {
                *byte = rng.gen();
            }
            wire
        }
        Attack::ForgeMetadata => {
            let forged_image: Vec<u8> = (0..image.len()).map(|_| rng.gen()).collect();
            sign_update(
                dialect,
                &forged_image,
                active_version + 100,
                b"attacker-key",
            )
            .wire_bytes()
        }
        Attack::Replay => sign_update(dialect, image, 2, DEVICE_KEY).wire_bytes(),
        Attack::Downgrade => v1.wire_bytes(),
        Attack::Truncate => {
            let cut = rng.gen_range(0..legit_next.len());
            legit_next[..cut].to_vec()
        }
    };

    let mut channel =
        NoisyChannel::new(ChannelConfig::with_bit_error_rate(ber), trial_seed ^ 0x5A5A);
    let status = device.apply_update(&wire, &mut channel, &mut power).status;

    // the observational grade: reboot and look at what actually runs
    let (outcome, booted_version) = match device.boot() {
        Err(_) => (AttackOutcome::Bricked, 0),
        Ok(boot) => {
            let genuine = boot.program.as_bytes() == image;
            if !genuine || boot.metadata.version < active_version {
                (AttackOutcome::AcceptedForgery, boot.metadata.version)
            } else if !runs_oracle_exact(target, kernel, boot.program.as_bytes(), trial_seed) {
                (AttackOutcome::Bricked, boot.metadata.version)
            } else {
                let graded = match status {
                    UpdateStatus::Applied { .. } => AttackOutcome::Applied,
                    UpdateStatus::Interrupted => AttackOutcome::Recovered,
                    UpdateStatus::Rejected(_) => AttackOutcome::Rejected,
                };
                (graded, boot.metadata.version)
            }
        }
    };

    AttackTrial {
        dialect,
        kernel,
        bit_error_rate: ber,
        attack,
        rep,
        status,
        outcome,
        booted_version,
    }
}

/// Execute the booted image against seeded inputs and the kernel
/// oracle.
fn runs_oracle_exact(target: Target, kernel: Kernel, image: &[u8], seed: u64) -> bool {
    let inputs = Sampler::new(kernel, seed ^ 0xA5A5).draw();
    let expected = oracle::expected_outputs(kernel, target.dialect, &inputs);
    let program = flexicore::program::Program::from_bytes(image.to_vec());
    let mut core = AnyCore::for_dialect(target.dialect, target.features, program);
    let mut input = ScriptedInput::new(inputs);
    let mut output = RecordingOutput::new();
    match core.run(&mut input, &mut output, CYCLE_BUDGET) {
        Ok(result) => result.halted() && output.values() == expected,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(mix: AttackMix, reps: usize) -> AttackSoakConfig {
        AttackSoakConfig {
            targets: vec![Target::fc4()],
            mix,
            ..AttackSoakConfig::new(vec![0.0], reps, 17)
        }
    }

    #[test]
    fn legit_mix_applies_everywhere() {
        let campaign = run_attack_soak(small_config(AttackMix::legit(), 1)).unwrap();
        assert_eq!(campaign.trials.len(), 7, "every fc4 kernel, one rep");
        assert!(campaign
            .trials
            .iter()
            .all(|t| t.outcome == AttackOutcome::Applied));
        assert!(campaign.defended());
    }

    #[test]
    fn full_mix_never_accepts_a_forgery_or_bricks() {
        let cfg = AttackSoakConfig {
            targets: vec![Target::fc4()],
            mix: AttackMix::full(),
            ..AttackSoakConfig::new(vec![0.0], 2, 23)
        };
        let campaign = run_attack_soak(cfg).unwrap();
        assert_eq!(campaign.trials.len(), 7 * 8 * 2);
        assert_eq!(campaign.accepted_forgeries(), 0);
        assert_eq!(campaign.bricked_dies(), 0);
        // the pure forgery attacks must all be rejected outright
        for t in campaign.trials.iter().filter(|t| {
            matches!(
                t.attack,
                Attack::ForgeMetadata | Attack::Replay | Attack::Downgrade
            )
        }) {
            assert_eq!(
                t.outcome,
                AttackOutcome::Rejected,
                "{:?}/{:?}",
                t.attack,
                t.status
            );
        }
    }

    #[test]
    fn power_cut_trials_always_boot_a_genuine_image() {
        let campaign = run_attack_soak(AttackSoakConfig {
            targets: vec![Target::fc8()],
            mix: AttackMix {
                attacks: vec![Attack::PowerCut],
            },
            ..AttackSoakConfig::new(vec![0.0], 24, 31)
        })
        .unwrap();
        assert!(campaign.defended(), "{:?}", campaign.trials);
        for t in &campaign.trials {
            assert!(
                matches!(
                    t.outcome,
                    AttackOutcome::Applied | AttackOutcome::Recovered | AttackOutcome::Rejected
                ),
                "{t:?}"
            );
            assert!(t.booted_version >= 1);
        }
    }

    #[test]
    fn campaigns_replay_bit_for_bit() {
        let cfg = small_config(AttackMix::full(), 1);
        let a = run_attack_soak(cfg.clone()).unwrap();
        let b = run_attack_soak(cfg).unwrap();
        assert_eq!(a.trials, b.trials);
    }

    #[test]
    fn thread_and_shard_counts_never_change_the_report() {
        let base = small_config(AttackMix::full(), 2);
        let serial = run_attack_soak(base.clone()).unwrap();
        for (shards, threads) in [(1, 8), (64, 1), (64, 8)] {
            let parallel = run_attack_soak(AttackSoakConfig {
                shards,
                threads,
                ..base.clone()
            })
            .unwrap();
            assert_eq!(
                serial.trials, parallel.trials,
                "{shards} shards / {threads} threads"
            );
        }
    }
}
