//! The SECDED-protected external program store.
//!
//! The store keeps one 13-bit code word per program byte, organised in
//! 128-byte pages (the §5.1 MMU page granularity on the byte-addressed
//! dialects, and the transfer-frame unit on all of them). Reads decode
//! through the ECC, so a single-bit upset never reaches the core;
//! [`EccStore::scrub`] sweeps the whole store, rewriting corrected
//! words in place and reporting the pages whose words have decayed
//! beyond correction so the link layer can reprogram them.

use crate::ecc::{self, Decoded};
use flexicore::program::Program;

/// Bytes per store page: one §5.1 page of a byte-addressed dialect and
/// one transfer frame's payload.
pub const PAGE_BYTES: usize = 128;

/// Result of decoding the whole store into an executable image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Materialized {
    /// The decoded image (best-effort bytes on uncorrectable words).
    pub program: Program,
    /// Words whose single-bit upsets the read path corrected. The
    /// store itself still holds the corrupt words until a scrub.
    pub corrected: usize,
    /// Pages containing at least one uncorrectable word; the image
    /// bytes there are untrustworthy and the pages need reprogramming.
    pub bad_pages: Vec<usize>,
}

/// One background-scrub sweep's findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Words corrected and rewritten in place.
    pub corrected: usize,
    /// Words beyond correction (left untouched).
    pub uncorrectable: usize,
    /// Pages containing at least one uncorrectable word.
    pub bad_pages: Vec<usize>,
}

/// The external program store: SECDED words, page-organised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EccStore {
    words: Vec<u16>,
}

impl EccStore {
    /// An erased store sized for `bytes` program bytes (every word
    /// holds an encoded zero, so an unprogrammed store decodes clean).
    #[must_use]
    pub fn erased(bytes: usize) -> Self {
        EccStore {
            words: vec![ecc::encode(0); bytes],
        }
    }

    /// Capacity in program bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the store holds no words at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of (possibly partial) pages.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.words.len().div_ceil(PAGE_BYTES)
    }

    /// The word range backing `page`, clamped to the store size.
    fn page_range(&self, page: usize) -> core::ops::Range<usize> {
        let start = (page * PAGE_BYTES).min(self.words.len());
        let end = ((page + 1) * PAGE_BYTES).min(self.words.len());
        start..end
    }

    /// Encode and write one page of data bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range or `data` does not match the
    /// page's size — the protocol layer frames pages exactly, so a
    /// mismatch is a bug, not a link condition.
    pub fn write_page(&mut self, page: usize, data: &[u8]) {
        let range = self.page_range(page);
        assert!(
            !range.is_empty() && range.len() == data.len(),
            "page {page} write of {} bytes into a {}-word window",
            data.len(),
            range.len(),
        );
        for (word, &byte) in self.words[range].iter_mut().zip(data) {
            *word = ecc::encode(byte);
        }
    }

    /// Decode one page's data bytes (best effort on uncorrectable
    /// words), for read-back verification.
    #[must_use]
    pub fn read_page(&self, page: usize) -> Vec<u8> {
        self.words[self.page_range(page)]
            .iter()
            .map(|&w| ecc::decode(w).data())
            .collect()
    }

    /// Flip one stored bit — the upset-injection hook for campaigns.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range or `bit` is not a code bit.
    pub fn flip_bit(&mut self, word: usize, bit: u8) {
        assert!(
            u32::from(bit) < ecc::CODE_BITS,
            "bit {bit} outside the code word"
        );
        self.words[word] ^= 1 << bit;
    }

    /// Decode the whole store into an executable [`Program`].
    #[must_use]
    pub fn materialize(&self) -> Materialized {
        let mut bytes = Vec::with_capacity(self.words.len());
        let mut corrected = 0;
        let mut bad_pages = Vec::new();
        for (i, &word) in self.words.iter().enumerate() {
            let decoded = ecc::decode(word);
            match decoded {
                Decoded::Clean(_) => {}
                Decoded::Corrected(_) => corrected += 1,
                Decoded::Uncorrectable(_) => {
                    let page = i / PAGE_BYTES;
                    if bad_pages.last() != Some(&page) {
                        bad_pages.push(page);
                    }
                }
            }
            bytes.push(decoded.data());
        }
        Materialized {
            program: Program::from_bytes(bytes),
            corrected,
            bad_pages,
        }
    }

    /// Sweep every word, rewriting corrected words in place and
    /// reporting what was found. Uncorrectable words are left exactly
    /// as they are: only a reprogramming of their page can repair them.
    pub fn scrub(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for (i, word) in self.words.iter_mut().enumerate() {
            match ecc::decode(*word) {
                Decoded::Clean(_) => {}
                Decoded::Corrected(data) => {
                    *word = ecc::encode(data);
                    report.corrected += 1;
                }
                Decoded::Uncorrectable(_) => {
                    report.uncorrectable += 1;
                    let page = i / PAGE_BYTES;
                    if report.bad_pages.last() != Some(&page) {
                        report.bad_pages.push(page);
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn programmed(bytes: &[u8]) -> EccStore {
        let mut store = EccStore::erased(bytes.len());
        for (page, chunk) in bytes.chunks(PAGE_BYTES).enumerate() {
            store.write_page(page, chunk);
        }
        store
    }

    #[test]
    fn write_then_materialize_round_trips() {
        let image: Vec<u8> = (0..200u16).map(|i| (i * 7) as u8).collect();
        let store = programmed(&image);
        let m = store.materialize();
        assert_eq!(m.program.as_bytes(), &image[..]);
        assert_eq!(m.corrected, 0);
        assert!(m.bad_pages.is_empty());
    }

    #[test]
    fn single_upset_is_corrected_on_read_and_healed_by_scrub() {
        let image = vec![0x3Cu8; 130];
        let mut store = programmed(&image);
        store.flip_bit(129, 5);
        let m = store.materialize();
        assert_eq!(m.program.as_bytes(), &image[..], "read path corrects");
        assert_eq!(m.corrected, 1);
        assert!(m.bad_pages.is_empty());

        let report = store.scrub();
        assert_eq!(report.corrected, 1);
        assert_eq!(report.uncorrectable, 0);
        assert_eq!(store.scrub(), ScrubReport::default(), "healed in place");
    }

    #[test]
    fn double_upset_marks_the_page_bad() {
        let image = vec![0xAAu8; 300];
        let mut store = programmed(&image);
        store.flip_bit(150, 0);
        store.flip_bit(150, 7);
        let m = store.materialize();
        assert_eq!(m.bad_pages, vec![1]);
        let report = store.scrub();
        assert_eq!(report.uncorrectable, 1);
        assert_eq!(report.bad_pages, vec![1]);

        // reprogramming the page is the only repair
        store.write_page(1, &image[PAGE_BYTES..2 * PAGE_BYTES]);
        assert!(store.scrub().bad_pages.is_empty());
        assert_eq!(store.materialize().program.as_bytes(), &image[..]);
    }

    #[test]
    fn erased_store_decodes_clean_zeros() {
        let store = EccStore::erased(64);
        let m = store.materialize();
        assert_eq!(m.program.as_bytes(), &[0u8; 64][..]);
        assert_eq!(m.corrected, 0);
    }
}
