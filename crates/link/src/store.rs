//! The SECDED-protected external program store.
//!
//! The store keeps one 13-bit code word per program byte, organised in
//! 128-byte pages (the §5.1 MMU page granularity on the byte-addressed
//! dialects, and the transfer-frame unit on all of them). Reads decode
//! through the ECC, so a single-bit upset never reaches the core;
//! [`EccStore::scrub`] sweeps the whole store, rewriting corrected
//! words in place and reporting the pages whose words have decayed
//! beyond correction so the link layer can reprogram them.

use crate::ecc::{self, Decoded};
use flexicore::program::Program;
use flexicore::sim::PowerCut;

/// Bytes per store page: one §5.1 page of a byte-addressed dialect and
/// one transfer frame's payload.
pub const PAGE_BYTES: usize = 128;

/// Result of decoding the whole store into an executable image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Materialized {
    /// The decoded image (best-effort bytes on uncorrectable words).
    pub program: Program,
    /// Words whose single-bit upsets the read path corrected. The
    /// store itself still holds the corrupt words until a scrub.
    pub corrected: usize,
    /// Pages containing at least one uncorrectable word; the image
    /// bytes there are untrustworthy and the pages need reprogramming.
    pub bad_pages: Vec<usize>,
}

/// One background-scrub sweep's findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Words corrected and rewritten in place.
    pub corrected: usize,
    /// Words beyond correction (left untouched).
    pub uncorrectable: usize,
    /// Pages containing at least one uncorrectable word.
    pub bad_pages: Vec<usize>,
}

/// The external program store: SECDED words, page-organised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EccStore {
    words: Vec<u16>,
}

impl EccStore {
    /// An erased store sized for `bytes` program bytes (every word
    /// holds an encoded zero, so an unprogrammed store decodes clean).
    #[must_use]
    pub fn erased(bytes: usize) -> Self {
        EccStore {
            words: vec![ecc::encode(0); bytes],
        }
    }

    /// Capacity in program bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the store holds no words at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of (possibly partial) pages.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.words.len().div_ceil(PAGE_BYTES)
    }

    /// The word range backing `page`, clamped to the store size.
    fn page_range(&self, page: usize) -> core::ops::Range<usize> {
        let start = (page * PAGE_BYTES).min(self.words.len());
        let end = ((page + 1) * PAGE_BYTES).min(self.words.len());
        start..end
    }

    /// Encode and write one page of data bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range or `data` does not match the
    /// page's size — the protocol layer frames pages exactly, so a
    /// mismatch is a bug, not a link condition.
    pub fn write_page(&mut self, page: usize, data: &[u8]) {
        self.write_page_with(page, data, &mut PowerCut::never());
    }

    /// [`EccStore::write_page`] with a [`PowerCut`] in the write path:
    /// every code word passes through `power`, which may tear one write
    /// (a seeded mix of old and new bits lands in the store) and lose
    /// every write after it. Returns `true` iff every word committed
    /// cleanly.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`EccStore::write_page`].
    pub fn write_page_with(&mut self, page: usize, data: &[u8], power: &mut PowerCut) -> bool {
        let range = self.page_range(page);
        assert!(
            !range.is_empty() && range.len() == data.len(),
            "page {page} write of {} bytes into a {}-word window",
            data.len(),
            range.len(),
        );
        let mut clean = true;
        for (word, &byte) in self.words[range].iter_mut().zip(data) {
            clean &= committed(word, ecc::encode(byte), power);
        }
        clean
    }

    /// Write one program byte's code word through a [`PowerCut`].
    /// Returns `true` iff the write committed cleanly (not torn, not
    /// lost).
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn write_word_with(&mut self, word: usize, byte: u8, power: &mut PowerCut) -> bool {
        committed(&mut self.words[word], ecc::encode(byte), power)
    }

    /// Decode one stored word — the partition layer reads its control
    /// words through this, so a torn word is seen as what it is rather
    /// than best-effort data.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    #[must_use]
    pub fn read_word(&self, word: usize) -> Decoded {
        ecc::decode(self.words[word])
    }

    /// Decode one page's data bytes (best effort on uncorrectable
    /// words), for read-back verification.
    #[must_use]
    pub fn read_page(&self, page: usize) -> Vec<u8> {
        self.words[self.page_range(page)]
            .iter()
            .map(|&w| ecc::decode(w).data())
            .collect()
    }

    /// Flip one stored bit — the upset-injection hook for campaigns.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range or `bit` is not a code bit.
    pub fn flip_bit(&mut self, word: usize, bit: u8) {
        assert!(
            u32::from(bit) < ecc::CODE_BITS,
            "bit {bit} outside the code word"
        );
        self.words[word] ^= 1 << bit;
    }

    /// Decode the whole store into an executable [`Program`].
    #[must_use]
    pub fn materialize(&self) -> Materialized {
        let mut bytes = Vec::with_capacity(self.words.len());
        let mut corrected = 0;
        let mut bad_pages = Vec::new();
        for (i, &word) in self.words.iter().enumerate() {
            let decoded = ecc::decode(word);
            match decoded {
                Decoded::Clean(_) => {}
                Decoded::Corrected(_) => corrected += 1,
                Decoded::Uncorrectable(_) => {
                    let page = i / PAGE_BYTES;
                    if bad_pages.last() != Some(&page) {
                        bad_pages.push(page);
                    }
                }
            }
            bytes.push(decoded.data());
        }
        Materialized {
            program: Program::from_bytes(bytes),
            corrected,
            bad_pages,
        }
    }

    /// Sweep every word, rewriting corrected words in place and
    /// reporting what was found. Uncorrectable words are left exactly
    /// as they are: only a reprogramming of their page can repair them.
    pub fn scrub(&mut self) -> ScrubReport {
        self.scrub_with(&mut PowerCut::never())
    }

    /// [`EccStore::scrub`] with a [`PowerCut`] on the heal-write path —
    /// background scrubbing runs whenever the die is powered, so a
    /// supply collapse lands mid-sweep as readily as mid-update.
    ///
    /// Power loss during a scrub is harmless *by construction*: a heal
    /// rewrite differs from the stored word in exactly the one failing
    /// bit, so a torn write lands on either the old word (still
    /// correctable) or the new word (clean) — never on a third, worse
    /// value — and a lost write simply leaves the correctable word for
    /// the next sweep. `corrected` counts only words that actually
    /// decode clean after their rewrite.
    pub fn scrub_with(&mut self, power: &mut PowerCut) -> ScrubReport {
        let mut report = ScrubReport::default();
        for (i, word) in self.words.iter_mut().enumerate() {
            match ecc::decode(*word) {
                Decoded::Clean(_) => {}
                Decoded::Corrected(data) => {
                    committed(word, ecc::encode(data), power);
                    if matches!(ecc::decode(*word), Decoded::Clean(_)) {
                        report.corrected += 1;
                    }
                }
                Decoded::Uncorrectable(_) => {
                    report.uncorrectable += 1;
                    let page = i / PAGE_BYTES;
                    if report.bad_pages.last() != Some(&page) {
                        report.bad_pages.push(page);
                    }
                }
            }
        }
        report
    }
}

/// Route one word write through the power model; a torn mix still
/// lands in the store, a lost write leaves the old word.
fn committed(word: &mut u16, new: u16, power: &mut PowerCut) -> bool {
    let effect = power.on_write(*word, new);
    if let Some(stored) = effect.stored() {
        *word = stored;
    }
    matches!(effect, flexicore::sim::WriteEffect::Committed(_))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn programmed(bytes: &[u8]) -> EccStore {
        let mut store = EccStore::erased(bytes.len());
        for (page, chunk) in bytes.chunks(PAGE_BYTES).enumerate() {
            store.write_page(page, chunk);
        }
        store
    }

    #[test]
    fn write_then_materialize_round_trips() {
        let image: Vec<u8> = (0..200u16).map(|i| (i * 7) as u8).collect();
        let store = programmed(&image);
        let m = store.materialize();
        assert_eq!(m.program.as_bytes(), &image[..]);
        assert_eq!(m.corrected, 0);
        assert!(m.bad_pages.is_empty());
    }

    #[test]
    fn single_upset_is_corrected_on_read_and_healed_by_scrub() {
        let image = vec![0x3Cu8; 130];
        let mut store = programmed(&image);
        store.flip_bit(129, 5);
        let m = store.materialize();
        assert_eq!(m.program.as_bytes(), &image[..], "read path corrects");
        assert_eq!(m.corrected, 1);
        assert!(m.bad_pages.is_empty());

        let report = store.scrub();
        assert_eq!(report.corrected, 1);
        assert_eq!(report.uncorrectable, 0);
        assert_eq!(store.scrub(), ScrubReport::default(), "healed in place");
    }

    #[test]
    fn double_upset_marks_the_page_bad() {
        let image = vec![0xAAu8; 300];
        let mut store = programmed(&image);
        store.flip_bit(150, 0);
        store.flip_bit(150, 7);
        let m = store.materialize();
        assert_eq!(m.bad_pages, vec![1]);
        let report = store.scrub();
        assert_eq!(report.uncorrectable, 1);
        assert_eq!(report.bad_pages, vec![1]);

        // reprogramming the page is the only repair
        store.write_page(1, &image[PAGE_BYTES..2 * PAGE_BYTES]);
        assert!(store.scrub().bad_pages.is_empty());
        assert_eq!(store.materialize().program.as_bytes(), &image[..]);
    }

    #[test]
    fn power_cut_tears_one_word_and_loses_the_rest() {
        let image = vec![0x5Au8; PAGE_BYTES];
        let mut store = EccStore::erased(PAGE_BYTES);
        let mut power = PowerCut::at_write(10, 77);
        assert!(!store.write_page_with(0, &image, &mut power));
        assert!(power.has_fired());
        // the first ten words committed; everything at or past the cut
        // either tore or was lost entirely
        let bytes = store.read_page(0);
        assert_eq!(&bytes[..10], &image[..10]);
        assert_eq!(
            &bytes[11..],
            &vec![0u8; PAGE_BYTES - 11][..],
            "writes after the cut are lost (erased store decodes zero)"
        );
        // a later write attempt on dead power changes nothing
        let before = store.clone();
        assert!(!store.write_word_with(0, 0xFF, &mut power));
        assert_eq!(store, before);
    }

    #[test]
    fn unarmed_power_writes_commit_cleanly() {
        let image = vec![0xC3u8; 64];
        let mut store = EccStore::erased(64);
        assert!(store.write_page_with(0, &image, &mut PowerCut::never()));
        assert_eq!(store.read_page(0), image);
        assert!(store.write_word_with(3, 0x11, &mut PowerCut::never()));
        assert_eq!(store.read_page(0)[3], 0x11);
    }

    #[test]
    fn read_word_reports_decode_state() {
        let mut store = EccStore::erased(4);
        store.write_page(0, &[1, 2, 3, 4]);
        assert_eq!(store.read_word(1), Decoded::Clean(2));
        store.flip_bit(1, 0);
        assert!(matches!(store.read_word(1), Decoded::Corrected(2)));
        store.flip_bit(1, 7);
        assert!(matches!(store.read_word(1), Decoded::Uncorrectable(_)));
    }

    #[test]
    fn erased_store_decodes_clean_zeros() {
        let store = EccStore::erased(64);
        let m = store.materialize();
        assert_eq!(m.program.as_bytes(), &[0u8; 64][..]);
        assert_eq!(m.corrected, 0);
    }
}
