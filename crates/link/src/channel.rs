//! A seeded model of the noisy reprogramming channel.
//!
//! Field reprogramming reaches the flexible substrate over a cheap
//! serial link, so the model covers the failure modes such links
//! actually exhibit: independent per-bit flips (thermal/contact noise),
//! error bursts (connector scrape), dropped frames (framing loss) and
//! truncated frames (early carrier loss). Every corruption is drawn
//! from one seeded generator, so a transfer — including every retry —
//! replays bit-for-bit from the same seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error rates of a [`NoisyChannel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelConfig {
    /// Probability that any transmitted bit flips independently.
    pub bit_error_rate: f64,
    /// Probability that a frame suffers one contiguous error burst.
    pub burst_rate: f64,
    /// Bits flipped by a burst.
    pub burst_len: usize,
    /// Probability that a frame is dropped outright.
    pub drop_rate: f64,
    /// Probability that a frame is truncated at a random point.
    pub truncate_rate: f64,
}

impl ChannelConfig {
    /// A perfectly clean channel.
    #[must_use]
    pub fn clean() -> Self {
        ChannelConfig {
            bit_error_rate: 0.0,
            burst_rate: 0.0,
            burst_len: 0,
            drop_rate: 0.0,
            truncate_rate: 0.0,
        }
    }

    /// A channel dominated by independent bit flips at `ber`, with the
    /// rarer frame-level failure modes scaled from it (a burst or drop
    /// is roughly a hundred times rarer than a bit flip, matching the
    /// soak campaign's sweep axis).
    #[must_use]
    pub fn with_bit_error_rate(ber: f64) -> Self {
        ChannelConfig {
            bit_error_rate: ber,
            burst_rate: ber * 10.0,
            burst_len: 8,
            drop_rate: ber * 10.0,
            truncate_rate: ber * 10.0,
        }
    }
}

/// What the channel did to one transmitted frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// The frame arrived (possibly corrupted) with these bytes.
    Delivered(Vec<u8>),
    /// The frame never arrived.
    Dropped,
}

/// Deterministic corruption counters, accumulated across a transfer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Frames offered to the channel.
    pub frames: u64,
    /// Frames dropped outright.
    pub dropped: u64,
    /// Frames truncated short.
    pub truncated: u64,
    /// Independent bit flips applied.
    pub flipped_bits: u64,
    /// Error bursts applied.
    pub bursts: u64,
}

/// The noisy channel: seeded corruption over transmitted frames.
#[derive(Debug, Clone)]
pub struct NoisyChannel {
    config: ChannelConfig,
    rng: StdRng,
    stats: ChannelStats,
}

impl NoisyChannel {
    /// A channel with `config`'s rates and a deterministic stream from
    /// `seed`.
    #[must_use]
    pub fn new(config: ChannelConfig, seed: u64) -> Self {
        NoisyChannel {
            config,
            rng: StdRng::seed_from_u64(seed),
            stats: ChannelStats::default(),
        }
    }

    /// The corruption counters so far.
    #[must_use]
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Transmit one frame, applying drops, truncation, independent bit
    /// flips and bursts in that fixed order (the order is part of the
    /// replay contract).
    pub fn transmit(&mut self, bytes: &[u8]) -> Delivery {
        self.stats.frames += 1;
        if self.config.drop_rate > 0.0 && self.rng.gen_bool(self.config.drop_rate) {
            self.stats.dropped += 1;
            return Delivery::Dropped;
        }
        let mut bytes = bytes.to_vec();
        if self.config.truncate_rate > 0.0
            && bytes.len() > 1
            && self.rng.gen_bool(self.config.truncate_rate)
        {
            let keep = self.rng.gen_range(1..bytes.len());
            bytes.truncate(keep);
            self.stats.truncated += 1;
        }
        if self.config.bit_error_rate > 0.0 {
            for byte in &mut bytes {
                for bit in 0..8 {
                    if self.rng.gen_bool(self.config.bit_error_rate) {
                        *byte ^= 1 << bit;
                        self.stats.flipped_bits += 1;
                    }
                }
            }
        }
        if self.config.burst_rate > 0.0
            && self.config.burst_len > 0
            && self.rng.gen_bool(self.config.burst_rate)
        {
            let total_bits = bytes.len() * 8;
            let start = self.rng.gen_range(0..total_bits);
            for offset in 0..self.config.burst_len.min(total_bits - start) {
                let pos = start + offset;
                bytes[pos / 8] ^= 1 << (pos % 8);
            }
            self.stats.bursts += 1;
        }
        Delivery::Delivered(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_is_the_identity() {
        let mut ch = NoisyChannel::new(ChannelConfig::clean(), 1);
        let bytes = vec![0xA5, 1, 2, 3];
        assert_eq!(ch.transmit(&bytes), Delivery::Delivered(bytes));
        assert_eq!(ch.stats().flipped_bits, 0);
    }

    #[test]
    fn same_seed_corrupts_identically() {
        let cfg = ChannelConfig::with_bit_error_rate(0.02);
        let mut a = NoisyChannel::new(cfg, 99);
        let mut b = NoisyChannel::new(cfg, 99);
        let frame = vec![0x55u8; 64];
        for _ in 0..32 {
            assert_eq!(a.transmit(&frame), b.transmit(&frame));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn high_noise_eventually_exercises_every_failure_mode() {
        let cfg = ChannelConfig {
            bit_error_rate: 0.01,
            burst_rate: 0.2,
            burst_len: 8,
            drop_rate: 0.2,
            truncate_rate: 0.2,
        };
        let mut ch = NoisyChannel::new(cfg, 7);
        let frame = vec![0u8; 32];
        for _ in 0..200 {
            ch.transmit(&frame);
        }
        let stats = ch.stats();
        assert!(stats.dropped > 0);
        assert!(stats.truncated > 0);
        assert!(stats.flipped_bits > 0);
        assert!(stats.bursts > 0);
    }

    #[test]
    fn burst_flips_contiguous_bits() {
        let cfg = ChannelConfig {
            bit_error_rate: 0.0,
            burst_rate: 1.0,
            burst_len: 4,
            drop_rate: 0.0,
            truncate_rate: 0.0,
        };
        let mut ch = NoisyChannel::new(cfg, 3);
        let Delivery::Delivered(out) = ch.transmit(&[0u8; 16]) else {
            panic!("nothing drops at rate 0");
        };
        let flipped: u32 = out.iter().map(|b| b.count_ones()).sum();
        assert!((1..=4).contains(&flipped), "burst flipped {flipped} bits");
    }
}
