//! A/B update partitions with a two-phase commit marker.
//!
//! The die's external store is split into two image slots plus a tiny
//! control region (both SECDED-protected). Updates always land in the
//! *inactive* slot; the active image is never modified, so a power cut
//! during staging costs nothing. The swap itself is a three-write
//! commit protocol over two control words:
//!
//! 1. write the **staged marker** `{from, to}`;
//! 2. write the **active pointer** to the new slot;
//! 3. erase the marker — *this write is the commit point*.
//!
//! On boot, a surviving staged marker means the swap never committed:
//! the boot path restores `active = from` and erases the marker, so
//! the die runs the old image. A torn control word (the power model
//! can tear exactly one write) decodes as invalid, and boot falls back
//! to whichever slot *authenticates* — the HMAC page of
//! [`crate::auth`] is the backstop against a torn word that happens to
//! decode to a valid-looking value.
//!
//! Control-word encodings are chosen for Hamming distance on top of
//! the SECDED code: `A = 0x33`, `B = 0xCC`, marker erased `= 0x00`,
//! staged `= 0x50 | from << 2 | to`.

use crate::auth::Metadata;
use crate::ecc::Decoded;
use crate::store::{EccStore, PAGE_BYTES};
use flexicore::program::Program;
use flexicore::sim::PowerCut;

/// One of the two image partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// The A partition (the factory image's home).
    A,
    /// The B partition.
    B,
}

impl Slot {
    /// Index into the slot array.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Slot::A => 0,
            Slot::B => 1,
        }
    }

    /// The other slot.
    #[must_use]
    pub fn other(self) -> Slot {
        match self {
            Slot::A => Slot::B,
            Slot::B => Slot::A,
        }
    }

    fn bit(self) -> u8 {
        self.index() as u8
    }

    fn from_bit(bit: u8) -> Slot {
        if bit == 0 {
            Slot::A
        } else {
            Slot::B
        }
    }
}

/// Active-pointer encoding for slot A.
const ACTIVE_A: u8 = 0x33;
/// Active-pointer encoding for slot B.
const ACTIVE_B: u8 = 0xCC;
/// Erased (committed) marker.
const MARKER_ERASED: u8 = 0x00;
/// Staged-marker tag bits; the low nibble carries `from << 2 | to`.
const MARKER_STAGED: u8 = 0x50;

/// Control word index of the active pointer.
const CTRL_ACTIVE: usize = 0;
/// Control word index of the commit marker.
const CTRL_MARKER: usize = 1;

/// What the commit-marker word says.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Marker {
    /// No swap in flight.
    Erased,
    /// A swap from `from` to `to` was staged but never committed.
    Staged {
        /// The slot that was active when the swap began.
        from: Slot,
        /// The slot the swap was promoting.
        to: Slot,
    },
    /// The word decodes to no valid marker (torn or decayed).
    Invalid,
}

/// How a boot resolved the control region and slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Boot {
    /// The slot the die is running from.
    pub slot: Slot,
    /// The authenticated metadata of the booted image.
    pub metadata: Metadata,
    /// The booted image, decoded through the ECC read path.
    pub program: Program,
    /// `true` if a surviving staged marker forced a roll back to the
    /// pre-update image.
    pub rolled_back: bool,
    /// `true` if the active pointer was torn or pointed at a slot that
    /// failed authentication, and boot repaired it from the slots'
    /// contents.
    pub repaired_pointer: bool,
}

/// Neither slot holds an image that authenticates: the die cannot boot.
/// The soak campaigns count any occurrence as a bricked die.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bricked;

impl core::fmt::Display for Bricked {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "no slot authenticates; die cannot boot")
    }
}

/// The dual-slot store: two image partitions and the control region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DualStore {
    slots: [EccStore; 2],
    ctrl: EccStore,
    capacity: usize,
}

impl DualStore {
    /// An erased dual store whose slots each hold a metadata page plus
    /// up to `capacity` image bytes.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        DualStore {
            slots: [EccStore::erased(0), EccStore::erased(0)],
            ctrl: EccStore::erased(2),
            capacity,
        }
    }

    /// Image bytes one slot can hold (excluding the metadata page).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Largest update wire size a slot accepts: metadata page plus
    /// image.
    #[must_use]
    pub fn slot_bytes(&self) -> usize {
        PAGE_BYTES + self.capacity
    }

    /// A slot's backing store.
    #[must_use]
    pub fn slot(&self, slot: Slot) -> &EccStore {
        &self.slots[slot.index()]
    }

    /// Mutable access to a slot's backing store (upset injection).
    pub fn slot_mut(&mut self, slot: Slot) -> &mut EccStore {
        &mut self.slots[slot.index()]
    }

    /// Erase `slot` and size it for a `bytes`-byte update, returning
    /// the staging store to transfer into.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds [`DualStore::slot_bytes`] — callers
    /// must bounds-check the update first.
    pub fn stage_begin(&mut self, slot: Slot, bytes: usize) -> &mut EccStore {
        assert!(bytes <= self.slot_bytes(), "update exceeds slot capacity");
        self.slots[slot.index()] = EccStore::erased(bytes);
        &mut self.slots[slot.index()]
    }

    /// Decode a control word; uncorrectable words read as `None`.
    fn ctrl_word(&self, word: usize) -> Option<u8> {
        match self.ctrl.read_word(word) {
            Decoded::Clean(b) | Decoded::Corrected(b) => Some(b),
            Decoded::Uncorrectable(_) => None,
        }
    }

    /// The active pointer, if it decodes to a valid slot.
    #[must_use]
    pub fn active_slot(&self) -> Option<Slot> {
        match self.ctrl_word(CTRL_ACTIVE) {
            Some(ACTIVE_A) => Some(Slot::A),
            Some(ACTIVE_B) => Some(Slot::B),
            _ => None,
        }
    }

    /// The commit marker's state.
    #[must_use]
    pub fn marker(&self) -> Marker {
        match self.ctrl_word(CTRL_MARKER) {
            Some(MARKER_ERASED) => Marker::Erased,
            // only the two from != to encodings are valid markers
            Some(b) if b == MARKER_STAGED | 0b001 || b == MARKER_STAGED | 0b100 => Marker::Staged {
                from: Slot::from_bit((b >> 2) & 1),
                to: Slot::from_bit(b & 1),
            },
            _ => Marker::Invalid,
        }
    }

    /// Phase 1 of the swap: record `{from, to}` in the marker word.
    /// Returns `true` iff the write committed.
    pub fn stage_mark(&mut self, from: Slot, to: Slot, power: &mut PowerCut) -> bool {
        let encoded = MARKER_STAGED | from.bit() << 2 | to.bit();
        self.ctrl.write_word_with(CTRL_MARKER, encoded, power)
    }

    /// Phase 2: point the active word at `slot`.
    pub fn set_active(&mut self, slot: Slot, power: &mut PowerCut) -> bool {
        let encoded = match slot {
            Slot::A => ACTIVE_A,
            Slot::B => ACTIVE_B,
        };
        self.ctrl.write_word_with(CTRL_ACTIVE, encoded, power)
    }

    /// Phase 3, the commit point: erase the marker.
    pub fn clear_marker(&mut self, power: &mut PowerCut) -> bool {
        self.ctrl.write_word_with(CTRL_MARKER, MARKER_ERASED, power)
    }

    /// Authenticate one slot's content under `key`: parse the metadata
    /// page, verify the HMAC tag, bounds-check the claimed length and
    /// match the image digest. Returns the metadata and decoded image
    /// on success.
    #[must_use]
    pub fn authenticate(&self, slot: Slot, key: &[u8]) -> Option<(Metadata, Vec<u8>)> {
        let store = self.slot(slot);
        if store.len() < PAGE_BYTES {
            return None;
        }
        let bytes = store.materialize();
        // a bad page anywhere in the slot poisons authentication: the
        // decoded bytes there are best-effort guesses
        if !bytes.bad_pages.is_empty() {
            return None;
        }
        let raw = bytes.program.as_bytes();
        let meta = Metadata::verify(&raw[..PAGE_BYTES], key).ok()?;
        let image = raw.get(PAGE_BYTES..PAGE_BYTES + meta.length as usize)?;
        if !meta.matches_image(image) {
            return None;
        }
        Some((meta, image.to_vec()))
    }

    /// Power-on boot: resolve the commit protocol, repair the control
    /// region if torn, and hand back an image that *authenticates* —
    /// or report the die bricked if neither slot does.
    ///
    /// Boot runs on restored power, so its own control-word repairs
    /// are modelled as clean writes.
    pub fn boot(&mut self, key: &[u8]) -> Result<Boot, Bricked> {
        let mut power = PowerCut::never();
        let mut rolled_back = false;
        let mut repaired = false;

        match self.marker() {
            Marker::Erased => {}
            Marker::Staged { from, .. } => {
                // the swap never committed: restore the old image
                self.set_active(from, &mut power);
                self.clear_marker(&mut power);
                rolled_back = true;
            }
            Marker::Invalid => {
                // a torn marker word: erase it. The active pointer (if
                // valid) still names the image to prefer — a cut on
                // the stage-mark write must boot the *old* image, not
                // the fully staged new one.
                self.clear_marker(&mut power);
                repaired = true;
            }
        }

        let candidates: [Slot; 2] = match self.active_slot() {
            Some(active) => [active, active.other()],
            None => {
                // torn pointer: prefer the slot with the highest
                // authenticated version
                repaired = true;
                let va = self.authenticate(Slot::A, key).map(|(m, _)| m.version);
                let vb = self.authenticate(Slot::B, key).map(|(m, _)| m.version);
                if vb > va {
                    [Slot::B, Slot::A]
                } else {
                    [Slot::A, Slot::B]
                }
            }
        };

        for (i, slot) in candidates.into_iter().enumerate() {
            if let Some((metadata, image)) = self.authenticate(slot, key) {
                let repaired_pointer = repaired || i > 0;
                if repaired_pointer || self.active_slot() != Some(slot) {
                    self.set_active(slot, &mut power);
                }
                return Ok(Boot {
                    slot,
                    metadata,
                    program: Program::from_bytes(image),
                    rolled_back,
                    repaired_pointer,
                });
            }
        }
        Err(Bricked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::sign_update;
    use flexicore::isa::Dialect;

    const KEY: &[u8] = b"unit-key";

    fn image(byte: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| byte.wrapping_add(i as u8)).collect()
    }

    /// Write a signed update straight into a slot (clean local write).
    fn flash(store: &mut DualStore, slot: Slot, img: &[u8], version: u64) {
        let update = sign_update(Dialect::Fc4, img, version, KEY);
        let wire = update.wire_bytes();
        let staging = store.stage_begin(slot, wire.len());
        for (page, chunk) in wire.chunks(PAGE_BYTES).enumerate() {
            staging.write_page(page, chunk);
        }
    }

    fn provisioned(img: &[u8], version: u64) -> DualStore {
        let mut store = DualStore::new(256);
        flash(&mut store, Slot::A, img, version);
        store.set_active(Slot::A, &mut PowerCut::never());
        store.clear_marker(&mut PowerCut::never());
        store
    }

    #[test]
    fn provisioned_store_boots_slot_a() {
        let img = image(7, 100);
        let mut store = provisioned(&img, 1);
        let boot = store.boot(KEY).unwrap();
        assert_eq!(boot.slot, Slot::A);
        assert_eq!(boot.metadata.version, 1);
        assert_eq!(boot.program.as_bytes(), &img[..]);
        assert!(!boot.rolled_back && !boot.repaired_pointer);
    }

    #[test]
    fn committed_swap_boots_the_new_image() {
        let old = image(1, 64);
        let new = image(2, 80);
        let mut store = provisioned(&old, 1);
        flash(&mut store, Slot::B, &new, 2);
        let mut power = PowerCut::never();
        assert!(store.stage_mark(Slot::A, Slot::B, &mut power));
        assert!(store.set_active(Slot::B, &mut power));
        assert!(store.clear_marker(&mut power));
        let boot = store.boot(KEY).unwrap();
        assert_eq!(boot.slot, Slot::B);
        assert_eq!(boot.metadata.version, 2);
        assert_eq!(boot.program.as_bytes(), &new[..]);
        assert!(!boot.rolled_back);
    }

    #[test]
    fn surviving_marker_rolls_back_to_the_old_image() {
        let old = image(1, 64);
        let new = image(2, 64);
        let mut store = provisioned(&old, 1);
        flash(&mut store, Slot::B, &new, 2);
        let mut power = PowerCut::never();
        store.stage_mark(Slot::A, Slot::B, &mut power);
        store.set_active(Slot::B, &mut power);
        // power lost before the marker erase: the commit never happened
        let boot = store.boot(KEY).unwrap();
        assert_eq!(boot.slot, Slot::A, "boots the pre-update image");
        assert_eq!(boot.program.as_bytes(), &old[..]);
        assert!(boot.rolled_back);
        assert_eq!(store.marker(), Marker::Erased);
        assert_eq!(store.active_slot(), Some(Slot::A));
    }

    #[test]
    fn torn_active_pointer_is_repaired_by_authentication() {
        let img = image(9, 64);
        let mut store = provisioned(&img, 3);
        // tear the active word into an uncorrectable state
        store.ctrl.flip_bit(0, 0);
        store.ctrl.flip_bit(0, 5);
        assert_eq!(store.active_slot(), None);
        let boot = store.boot(KEY).unwrap();
        assert_eq!(boot.slot, Slot::A);
        assert!(boot.repaired_pointer);
        assert_eq!(store.active_slot(), Some(Slot::A), "pointer rewritten");
    }

    #[test]
    fn torn_pointer_prefers_the_higher_authenticated_version() {
        let mut store = provisioned(&image(1, 64), 1);
        flash(&mut store, Slot::B, &image(2, 64), 5);
        store.ctrl.flip_bit(0, 1);
        store.ctrl.flip_bit(0, 6);
        let boot = store.boot(KEY).unwrap();
        assert_eq!(boot.slot, Slot::B, "highest authenticated version wins");
        assert_eq!(boot.metadata.version, 5);
    }

    #[test]
    fn active_slot_failing_auth_falls_back_to_the_other() {
        let old = image(1, 64);
        let mut store = provisioned(&old, 1);
        flash(&mut store, Slot::B, &image(2, 64), 2);
        store.set_active(Slot::B, &mut PowerCut::never());
        // decay slot B beyond correction: its image no longer
        // authenticates
        store.slot_mut(Slot::B).flip_bit(PAGE_BYTES + 3, 0);
        store.slot_mut(Slot::B).flip_bit(PAGE_BYTES + 3, 8);
        let boot = store.boot(KEY).unwrap();
        assert_eq!(boot.slot, Slot::A);
        assert!(boot.repaired_pointer);
        assert_eq!(boot.program.as_bytes(), &old[..]);
    }

    #[test]
    fn empty_store_is_bricked() {
        let mut store = DualStore::new(128);
        assert_eq!(store.boot(KEY), Err(Bricked));
    }

    #[test]
    fn tampered_slot_never_boots() {
        let mut store = provisioned(&image(4, 64), 1);
        // single-bit image tamper *below* ECC (a clean re-encode of a
        // different byte): digest catches what SECDED cannot
        let mut raw = store
            .slot(Slot::A)
            .materialize()
            .program
            .as_bytes()
            .to_vec();
        raw[PAGE_BYTES + 10] ^= 0x01;
        let slot_store = store.stage_begin(Slot::A, raw.len());
        for (page, chunk) in raw.chunks(PAGE_BYTES).enumerate() {
            slot_store.write_page(page, chunk);
        }
        assert_eq!(store.boot(KEY), Err(Bricked));
    }

    #[test]
    fn marker_encodings_reject_from_equals_to() {
        let mut store = DualStore::new(64);
        // hand-write an invalid staged marker (from == to)
        store
            .ctrl
            .write_word_with(1, MARKER_STAGED | 0b101, &mut PowerCut::never());
        assert_eq!(store.marker(), Marker::Invalid);
    }
}
