//! Hamming SECDED(13,8): the per-word ECC of the external program store.
//!
//! Every stored program byte is kept as a 13-bit code word: twelve bits
//! of a Hamming(12,8) code — parity bits at positions 1, 2, 4 and 8,
//! data bits at the remaining positions 3, 5, 6, 7, 9, 10, 11, 12 —
//! plus an overall parity bit at position 0. The extended code corrects
//! every single-bit upset and *detects* (without miscorrecting) every
//! double-bit upset:
//!
//! * a single flip at position `p ≥ 1` gives syndrome `p` with the
//!   overall parity violated — flip bit `p` back;
//! * a single flip of the overall parity bit gives syndrome 0 with the
//!   overall parity violated — flip bit 0 back;
//! * any double flip leaves the overall parity *intact* while the
//!   syndrome is nonzero (two distinct positions never XOR to zero),
//!   which is exactly the uncorrectable signature.

/// Bits per SECDED code word (8 data + 4 Hamming parity + 1 overall).
pub const CODE_BITS: u32 = 13;

/// Mask selecting the 13 code bits of a stored word.
pub const WORD_MASK: u16 = (1 << CODE_BITS) - 1;

/// Code-word positions holding data bits, low data bit first.
const DATA_POSITIONS: [u16; 8] = [3, 5, 6, 7, 9, 10, 11, 12];

/// The outcome of decoding one stored word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decoded {
    /// The word was stored intact.
    Clean(u8),
    /// A single-bit upset was corrected; the data is trustworthy.
    Corrected(u8),
    /// A multi-bit upset was detected; the payload is the raw data
    /// bits, which must not be trusted (the page needs reprogramming).
    Uncorrectable(u8),
}

impl Decoded {
    /// The decoded data byte, trustworthy or not.
    #[must_use]
    pub fn data(self) -> u8 {
        match self {
            Decoded::Clean(d) | Decoded::Corrected(d) | Decoded::Uncorrectable(d) => d,
        }
    }

    /// Whether the data can be trusted (clean or corrected).
    #[must_use]
    pub fn is_trustworthy(self) -> bool {
        !matches!(self, Decoded::Uncorrectable(_))
    }
}

/// Encode one data byte into a 13-bit SECDED word.
#[must_use]
pub fn encode(data: u8) -> u16 {
    let mut word = 0u16;
    for (i, &pos) in DATA_POSITIONS.iter().enumerate() {
        if data & (1 << i) != 0 {
            word |= 1 << pos;
        }
    }
    // Hamming parity bits: bit `p` covers every position with `p` set
    for p in [1u16, 2, 4, 8] {
        let mut parity = 0u16;
        for &pos in &DATA_POSITIONS {
            if pos & p != 0 {
                parity ^= (word >> pos) & 1;
            }
        }
        word |= parity << p;
    }
    // overall parity (bit 0): make the popcount of the full word even
    word |= word.count_ones() as u16 & 1;
    word
}

/// Extract the raw data bits of a word without any checking.
#[must_use]
pub fn data_bits(word: u16) -> u8 {
    let mut data = 0u8;
    for (i, &pos) in DATA_POSITIONS.iter().enumerate() {
        if word & (1 << pos) != 0 {
            data |= 1 << i;
        }
    }
    data
}

/// Decode one stored word, correcting a single-bit upset and flagging
/// anything worse.
#[must_use]
pub fn decode(word: u16) -> Decoded {
    let word = word & WORD_MASK;
    let mut syndrome = 0u16;
    for pos in 1..CODE_BITS as u16 {
        if word & (1 << pos) != 0 {
            syndrome ^= pos;
        }
    }
    let parity_even = word.count_ones().is_multiple_of(2);
    match (syndrome, parity_even) {
        (0, true) => Decoded::Clean(data_bits(word)),
        // only the overall parity bit flipped; the data is intact
        (0, false) => Decoded::Corrected(data_bits(word)),
        (s, false) if u32::from(s) < CODE_BITS => Decoded::Corrected(data_bits(word ^ (1 << s))),
        // syndrome set with parity intact (even # of flips), or a
        // syndrome pointing outside the word: at least two upsets
        _ => Decoded::Uncorrectable(data_bits(word)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_byte_round_trips_clean() {
        for b in 0..=255u8 {
            assert_eq!(decode(encode(b)), Decoded::Clean(b), "{b:#04x}");
        }
    }

    #[test]
    fn code_words_have_even_parity() {
        for b in 0..=255u8 {
            assert_eq!(encode(b).count_ones() % 2, 0, "{b:#04x}");
        }
    }

    #[test]
    fn every_single_flip_is_corrected_exhaustively() {
        for b in 0..=255u8 {
            let word = encode(b);
            for bit in 0..CODE_BITS {
                assert_eq!(
                    decode(word ^ (1 << bit)),
                    Decoded::Corrected(b),
                    "{b:#04x} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn every_double_flip_is_flagged_exhaustively() {
        for b in 0..=255u8 {
            let word = encode(b);
            for i in 0..CODE_BITS {
                for j in i + 1..CODE_BITS {
                    let corrupt = word ^ (1 << i) ^ (1 << j);
                    assert!(
                        matches!(decode(corrupt), Decoded::Uncorrectable(_)),
                        "{b:#04x} bits {i},{j}: {:?}",
                        decode(corrupt)
                    );
                }
            }
        }
    }

    #[test]
    fn upper_bits_outside_the_word_are_ignored() {
        assert_eq!(decode(encode(0xA7) | 0xE000), Decoded::Clean(0xA7));
    }
}
